// treecode-inspect: build a demo EvalSession, drive it through a few
// telemetered evaluations, and dump the full engine state snapshot
// (treecode-inspect/v1: provenance, session, governor ledger, plan-cache
// contents, telemetry records, flight-recorder ring, metrics, warnings) as
// one JSON document — the operator's "what is this engine doing?" view.
//
//   ./tools/treecode-inspect [--n 4k] [--alpha 0.5] [--degree 4]
//       [--threads 4] [--evals 4] [--audit-samples 64]
//       [--memory-budget-bytes 0] [--out inspect.json]
//       [--openmetrics-out metrics.prom] [--telemetry-out records.jsonl]
//       [--traces-out traces.jsonl] [--trace-chrome-out trace.json]
//       [--trace-sample-rate 1.0] [--slo] [--service]
//       [--serve PORT] [--serve-seconds 0]
//
// With no --out the document prints to stdout. --slo checks the default
// engine SLO rules against the final snapshot and includes the watchdog
// status block. --service swaps the single-session demo for a two-tenant
// EvalService demo (concurrent submitters, coalesced batched replays) and
// adds the `service` block — tenants, queues, request accounting, batch
// occupancy, per-tenant governor ledgers; --slo then also checks the
// service's per-tenant rules.
//
// Request tracing is armed for the whole run (sampler seed 1, healthy-keep
// rate --trace-sample-rate): --traces-out writes the retained traces as
// treecode-trace/v1 JSONL, --trace-chrome-out as a Chrome/Perfetto
// trace-event file. --serve PORT (requires --service; 0 = ephemeral) starts
// the service's live observability endpoint — GET /metrics /healthz /state
// /traces — prints `serving on http://127.0.0.1:<port>`, and holds the
// process for --serve-seconds after the demo so a scraper can probe it.
// Exit status: 0 on success, 1 on engine error, 2 when --slo found
// breaches.

#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "dist/distributions.hpp"
#include "engine/eval_session.hpp"
#include "engine/introspect.hpp"
#include "obs/openmetrics.hpp"
#include "obs/recorder.hpp"
#include "obs/reqtrace.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "service/eval_service.hpp"
#include "tree/octree.hpp"
#include "util/cli.hpp"

namespace {

// Two random-cloud tenants, `evals` submissions each from concurrent
// submitter threads, so the scheduler actually coalesces batches. Returns
// the service document to attach, or a null Json on failure. serve_port
// >= 0 starts the live endpoint (0 = ephemeral) and, after the demo,
// holds the process serving for serve_seconds.
treecode::obs::Json run_service_demo(std::size_t n, const treecode::EvalConfig& cfg,
                                     int evals, int* exit_code, bool check_slo,
                                     int serve_port, double serve_seconds) {
  using namespace treecode;
  service::EvalService svc;
  if (serve_port >= 0) {
    auto started = svc.start_http(static_cast<std::uint16_t>(serve_port));
    if (!started.ok()) {
      std::fprintf(stderr, "serve failed: %s\n", started.error().message.c_str());
      *exit_code = 1;
      return {};
    }
    // Scrape scripts parse this line for the bound (possibly ephemeral)
    // port; flush so it is visible before the serving window starts.
    std::printf("serving on http://127.0.0.1:%u\n",
                static_cast<unsigned>(started.value()));
    std::fflush(stdout);
  }
  service::EvalService::TenantOptions topt;
  topt.eval = cfg;
  topt.tree = TreeConfig{.leaf_capacity = 8};
  // Give the demo tenants a latency objective so per-tenant p99 SLO rules
  // and slo-reason trace retention are exercised end to end.
  topt.latency_slo_seconds = 30.0;
  const char* names[2] = {"cloud-a", "cloud-b"};
  const std::size_t sizes[2] = {n, n / 2 + 1};
  for (int t = 0; t < 2; ++t) {
    const ParticleSystem ps = dist::uniform_cube(sizes[t], /*seed=*/42 + t);
    if (auto r = svc.try_register_tenant(names[t], ps, {}, topt); !r.ok()) {
      std::fprintf(stderr, "register %s failed: %s\n", names[t],
                   r.error().message.c_str());
      *exit_code = 1;
      return {};
    }
  }
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      std::vector<double> charges(sizes[t], 1.0 / static_cast<double>(sizes[t]));
      std::vector<service::EvalService::Ticket> tickets;
      for (int i = 0; i < evals; ++i) {
        charges[0] = static_cast<double>(i + 1);
        if (auto r = svc.try_submit(names[t], charges); r.ok()) {
          tickets.push_back(std::move(r).value());
        }
      }
      for (auto& ticket : tickets) (void)ticket.wait();
    });
  }
  for (std::thread& th : submitters) th.join();

  if (serve_port >= 0 && serve_seconds > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(serve_seconds));
  }

  obs::Json doc = svc.state_json();
  if (check_slo) {
    obs::slo::Watchdog watchdog;
    for (obs::slo::Rule& rule : svc.slo_rules()) {
      watchdog.add_rule(std::move(rule));
    }
    watchdog.check(obs::registry().snapshot());
    doc["slo"] = watchdog.status_json();
    if (watchdog.breaches() > 0 && *exit_code == 0) *exit_code = 2;
  }
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treecode;
  try {
    const CliFlags flags(argc, argv,
                         {"n", "alpha", "degree", "threads", "evals",
                          "audit-samples", "memory-budget-bytes", "out",
                          "openmetrics-out", "telemetry-out", "traces-out",
                          "trace-chrome-out", "trace-sample-rate", "slo",
                          "service", "serve", "serve-seconds"});
    const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 4'000));
    const int evals = static_cast<int>(flags.get_int("evals", 4));
    const std::string out = flags.get_string("out", "");
    const std::string openmetrics_out = flags.get_string("openmetrics-out", "");
    const std::string telemetry_out = flags.get_string("telemetry-out", "");
    const std::string traces_out = flags.get_string("traces-out", "");
    const std::string trace_chrome_out = flags.get_string("trace-chrome-out", "");
    const int serve_port = static_cast<int>(flags.get_int("serve", -1));
    const double serve_seconds = flags.get_double("serve-seconds", 0.0);
    if (serve_port >= 0 && !flags.get_bool("service")) {
      std::fprintf(stderr, "--serve requires --service\n");
      return 1;
    }

    obs::telemetry::enable();
    if (!telemetry_out.empty()) obs::telemetry::set_sink(telemetry_out);
    obs::recorder::start();
    obs::reqtrace::SamplerConfig trace_cfg;
    trace_cfg.seed = 1;
    trace_cfg.sample_rate = flags.get_double("trace-sample-rate", 1.0);
    obs::reqtrace::enable(trace_cfg);

    EvalConfig cfg;
    cfg.alpha = flags.get_double("alpha", 0.5);
    cfg.degree = static_cast<int>(flags.get_int("degree", 4));
    cfg.mode = DegreeMode::kAdaptive;
    cfg.threads = static_cast<unsigned>(flags.get_int("threads", 4));
    cfg.track_error_bounds = true;
    cfg.audit_samples = static_cast<std::size_t>(flags.get_int("audit-samples", 64));
    cfg.memory_budget_bytes =
        static_cast<std::size_t>(flags.get_int("memory-budget-bytes", 0));

    int exit_code = 0;
    obs::Json doc;
    if (flags.get_bool("service")) {
      // Service demo: the service block carries per-tenant governors and
      // plan caches, so the document has no single-session block.
      obs::Json service_doc =
          run_service_demo(n, cfg, evals, &exit_code, flags.get_bool("slo"),
                           serve_port, serve_seconds);
      if (exit_code == 1) return 1;
      doc = engine::inspect_json(nullptr);
      doc["service"] = std::move(service_doc);
    } else {
      const ParticleSystem ps = dist::uniform_cube(n, /*seed=*/42);
      engine::EvalSession session(Tree(ps, TreeConfig{.leaf_capacity = 8}), cfg);

      // A warm replay loop: compile once, then refresh + replay per "solver
      // iteration" — the lifecycle the telemetry records should show.
      auto plan = session.try_compile_self();
      if (!plan.ok()) {
        std::fprintf(stderr, "compile failed: %s\n", plan.error().message.c_str());
        return 1;
      }
      std::vector<double> charges(session.sorted_charges().begin(),
                                  session.sorted_charges().end());
      for (int i = 0; i < evals; ++i) {
        for (double& q : charges) q = -q;
        if (auto r = session.try_update_charges_sorted(charges); !r.ok()) {
          std::fprintf(stderr, "update failed: %s\n", r.error().message.c_str());
          return 1;
        }
        if (auto r = session.try_evaluate(*plan.value()); !r.ok()) {
          std::fprintf(stderr, "evaluate failed: %s\n", r.error().message.c_str());
          return 1;
        }
      }

      doc = engine::inspect_json(&session);

      if (flags.get_bool("slo")) {
        obs::slo::Watchdog watchdog;
        for (obs::slo::Rule& rule : obs::slo::default_engine_rules()) {
          watchdog.add_rule(std::move(rule));
        }
        watchdog.check(obs::registry().snapshot());
        doc["slo"] = watchdog.status_json();
        if (watchdog.breaches() > 0) exit_code = 2;
      }
    }

    if (!openmetrics_out.empty() &&
        !obs::openmetrics::write(openmetrics_out, obs::registry().snapshot())) {
      return 1;
    }
    if (!traces_out.empty() && !obs::reqtrace::write_jsonl(traces_out)) {
      return 1;
    }
    if (!trace_chrome_out.empty() &&
        !obs::reqtrace::write_chrome_json(trace_chrome_out)) {
      return 1;
    }
    obs::telemetry::close_sink();

    if (out.empty()) {
      std::printf("%s\n", doc.dump(2).c_str());
    } else {
      obs::write_json_file(out, doc);
      std::printf("wrote %s\n", out.c_str());
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
