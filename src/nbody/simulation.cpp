#include "nbody/simulation.hpp"

#include <stdexcept>

namespace treecode {

NBodySimulation::NBodySimulation(ParticleSystem ps, NBodyConfig config,
                                 std::vector<Vec3> velocities)
    : particles_(std::move(ps)), velocities_(std::move(velocities)), config_(config) {
  if (velocities_.empty()) {
    velocities_.assign(particles_.size(), Vec3{});
  }
  if (velocities_.size() != particles_.size()) {
    throw std::invalid_argument("NBodySimulation: velocity count mismatch");
  }
  for (double m : particles_.charges()) {
    if (m <= 0.0) throw std::invalid_argument("NBodySimulation: masses must be positive");
  }
  config_.eval.compute_gradient = true;
  accel_ = accelerations();
}

std::vector<Vec3> NBodySimulation::accelerations() const {
  if (particles_.empty()) return {};
  const Tree tree(particles_, config_.tree);
  const EvalResult r = evaluate_potentials(tree, config_.eval, config_.method);
  // a = +grad Phi for attractive gravity (see file comment).
  return r.gradient;
}

void NBodySimulation::step(double dt) {
  const std::size_t n = particles_.size();
  if (n == 0) return;
  // Kick-drift with accelerations cached at the current positions.
  std::vector<Vec3> pos = particles_.positions();
  for (std::size_t i = 0; i < n; ++i) {
    velocities_[i] += accel_[i] * (0.5 * dt);
    pos[i] += velocities_[i] * dt;
  }
  particles_ = ParticleSystem(std::move(pos), std::vector<double>(particles_.charges()));
  // Closing kick with accelerations at the new positions (cached for the
  // next step's opening kick).
  accel_ = accelerations();
  for (std::size_t i = 0; i < n; ++i) {
    velocities_[i] += accel_[i] * (0.5 * dt);
  }
  ++steps_;
  time_ += dt;
}

void NBodySimulation::run(int count, double dt) {
  for (int s = 0; s < count; ++s) step(dt);
}

NBodyDiagnostics NBodySimulation::diagnostics() const {
  NBodyDiagnostics d;
  const std::size_t n = particles_.size();
  if (n == 0) return d;
  for (std::size_t i = 0; i < n; ++i) {
    const double m = particles_.charge(i);
    d.kinetic += 0.5 * m * norm2(velocities_[i]);
    d.momentum += m * velocities_[i];
    d.angular_momentum += m * cross(particles_.position(i), velocities_[i]);
  }
  const Tree tree(particles_, config_.tree);
  EvalConfig cfg = config_.eval;
  cfg.compute_gradient = false;
  const EvalResult r = evaluate_potentials(tree, cfg, config_.method);
  // Gravitational PE = -(1/2) sum_i m_i Phi_i (Phi is the positive 1/r sum).
  for (std::size_t i = 0; i < n; ++i) {
    d.potential -= 0.5 * particles_.charge(i) * r.potential[i];
  }
  return d;
}

}  // namespace treecode
