#pragma once

/// \file simulation.hpp
/// Treecode-driven n-body time integration.
///
/// The application the paper's introduction motivates first: "large scale
/// simulations in astrophysics and molecular dynamics". This module wraps
/// the evaluators in a symplectic leapfrog (kick-drift-kick) integrator
/// with conservation diagnostics, so downstream users get a ready n-body
/// loop instead of wiring trees and force evaluations by hand.
///
/// Convention: particle "charges" are masses (positive), the interaction
/// is attractive Newtonian gravity with G = 1. The evaluator computes
/// Phi(x) = sum m_j / |x - x_j|, whose gradient points toward mass, so the
/// acceleration is a = +grad Phi.

#include <vector>

#include "core/config.hpp"
#include "core/treecode.hpp"
#include "dist/particle_system.hpp"

namespace treecode {

/// Energy/momentum snapshot of the system.
struct NBodyDiagnostics {
  double kinetic = 0.0;
  double potential = 0.0;   ///< gravitational PE (negative for bound systems)
  Vec3 momentum{};          ///< total linear momentum
  Vec3 angular_momentum{};  ///< about the origin

  [[nodiscard]] double total_energy() const { return kinetic + potential; }
};

/// Configuration of a simulation run.
struct NBodyConfig {
  EvalConfig eval;                       ///< treecode settings (incl. softening)
  TreeConfig tree;                       ///< octree settings (rebuilt each step)
  Method method = Method::kBarnesHut;    ///< force engine
};

/// A leapfrog (kick-drift-kick) n-body simulation.
///
/// The tree is rebuilt every force evaluation (positions move); leapfrog's
/// synchronized form needs one evaluation per step after the first.
class NBodySimulation {
 public:
  /// Masses come from `ps.charges()` and must be positive.
  /// Initial velocities default to zero (cold start) if not given.
  /// Throws std::invalid_argument on size mismatch or non-positive mass.
  explicit NBodySimulation(ParticleSystem ps, NBodyConfig config = {},
                           std::vector<Vec3> velocities = {});

  /// Advance one leapfrog step of size dt.
  void step(double dt);

  /// Advance `count` steps.
  void run(int count, double dt);

  [[nodiscard]] const ParticleSystem& particles() const noexcept { return particles_; }
  [[nodiscard]] const std::vector<Vec3>& velocities() const noexcept { return velocities_; }
  [[nodiscard]] const NBodyConfig& config() const noexcept { return config_; }
  [[nodiscard]] int steps_taken() const noexcept { return steps_; }
  [[nodiscard]] double time() const noexcept { return time_; }

  /// Energies and momenta of the current state. Potential energy uses the
  /// configured force engine (so with softening it is the softened PE that
  /// leapfrog conserves).
  [[nodiscard]] NBodyDiagnostics diagnostics() const;

 private:
  /// Accelerations at the current positions.
  [[nodiscard]] std::vector<Vec3> accelerations() const;

  ParticleSystem particles_;
  std::vector<Vec3> velocities_;
  NBodyConfig config_;
  std::vector<Vec3> accel_;  ///< cached accelerations at current positions
  int steps_ = 0;
  double time_ = 0.0;
};

}  // namespace treecode
