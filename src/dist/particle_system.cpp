#include "dist/particle_system.hpp"

#include <cmath>
#include <stdexcept>

namespace treecode {

ParticleSystem::ParticleSystem(std::vector<Vec3> positions, std::vector<double> charges)
    : positions_(std::move(positions)), charges_(std::move(charges)) {
  if (positions_.size() != charges_.size()) {
    throw std::invalid_argument("ParticleSystem: positions/charges size mismatch");
  }
}

void ParticleSystem::add(const Vec3& pos, double charge) {
  positions_.push_back(pos);
  charges_.push_back(charge);
}

Aabb ParticleSystem::bounds() const {
  return bounding_box(positions_.begin(), positions_.end());
}

double ParticleSystem::total_abs_charge() const {
  double a = 0.0;
  for (double q : charges_) a += std::abs(q);
  return a;
}

void ParticleSystem::permute(const std::vector<std::size_t>& perm) {
  const std::size_t n = size();
  if (perm.size() != n) throw std::invalid_argument("permute: wrong size");
  std::vector<bool> seen(n, false);
  std::vector<Vec3> new_pos(n);
  std::vector<double> new_q(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = perm[i];
    if (src >= n || seen[src]) throw std::invalid_argument("permute: not a permutation");
    seen[src] = true;
    new_pos[i] = positions_[src];
    new_q[i] = charges_[src];
  }
  positions_ = std::move(new_pos);
  charges_ = std::move(new_q);
}

}  // namespace treecode
