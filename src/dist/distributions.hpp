#pragma once

/// \file distributions.hpp
/// Particle distribution generators for the paper's experiments.
///
/// "Problem instances for particle simulations range from uniform to highly
/// irregular distributions in three dimensions. Uniform distributions
/// correspond to a random distribution of points distributed equally across
/// the domain. Irregular distributions are generated using a Gaussian
/// density function or overlapped Gaussian distributions (multiple Gaussians
/// superimposed)."
///
/// All generators are deterministic for a given seed (std::mt19937_64), so
/// every experiment is exactly reproducible.

#include <cstddef>
#include <cstdint>

#include "dist/particle_system.hpp"

namespace treecode::dist {

/// How charges are assigned to generated particles.
enum class ChargeModel {
  kUnit,       ///< every particle has charge +1 (uniform charge density)
  kUniform,    ///< charges uniform in [0.5, 1.5] (positive, varying)
  kMixedSign,  ///< charges uniform in [-1, 1] (signed; nets partially cancel)
};

/// n points uniform in the cube [0, 1]^3. The paper's "structured"
/// distribution.
ParticleSystem uniform_cube(std::size_t n, std::uint64_t seed,
                            ChargeModel charges = ChargeModel::kUnit);

/// n points from a single isotropic Gaussian (mean 0.5·(1,1,1), the given
/// sigma), clamped to [0,1]^3. The paper's basic "unstructured" case.
ParticleSystem gaussian_ball(std::size_t n, std::uint64_t seed, double sigma = 0.12,
                             ChargeModel charges = ChargeModel::kUnit);

/// n points from `k` superimposed Gaussians with centers uniform in the unit
/// cube and the given sigma ("overlapped Gaussian distributions").
ParticleSystem overlapped_gaussians(std::size_t n, std::size_t k, std::uint64_t seed,
                                    double sigma = 0.06,
                                    ChargeModel charges = ChargeModel::kUnit);

/// n points on (not in) the unit sphere surface — an extreme "empty volume"
/// case resembling the paper's boundary-element node distributions.
ParticleSystem spherical_shell(std::size_t n, std::uint64_t seed,
                               ChargeModel charges = ChargeModel::kUnit);

/// An exponential galaxy disk with a central bulge — a strongly flattened,
/// strongly centrally-concentrated distribution (the hierarchical galaxy
/// formation workloads of the paper's astrophysics citations). Disk:
/// surface density ~ exp(-R/scale), Gaussian vertical structure of relative
/// thickness `flattening`; bulge: `bulge_fraction` of the particles from a
/// compact isotropic Gaussian. Centered in the unit cube; charges 1/n.
ParticleSystem galaxy_disk(std::size_t n, std::uint64_t seed, double scale = 0.08,
                           double flattening = 0.05, double bulge_fraction = 0.2);

/// A Plummer-model star cluster (standard astrophysical n-body initial
/// condition; the paper's intro motivates treecodes with astrophysics).
/// Positions follow the Plummer density with scale radius `scale`, truncated
/// at 10·scale and shifted to be centered in a unit-scale domain; charges are
/// equal masses 1/n.
ParticleSystem plummer(std::size_t n, std::uint64_t seed, double scale = 0.1);

}  // namespace treecode::dist
