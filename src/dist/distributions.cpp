#include "dist/distributions.hpp"

#include <cmath>
#include <random>

namespace treecode::dist {

namespace {

double draw_charge(ChargeModel model, std::mt19937_64& rng) {
  switch (model) {
    case ChargeModel::kUnit:
      return 1.0;
    case ChargeModel::kUniform: {
      std::uniform_real_distribution<double> u(0.5, 1.5);
      return u(rng);
    }
    case ChargeModel::kMixedSign: {
      std::uniform_real_distribution<double> u(-1.0, 1.0);
      return u(rng);
    }
  }
  return 1.0;
}

double clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

}  // namespace

ParticleSystem uniform_cube(std::size_t n, std::uint64_t seed, ChargeModel charges) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<Vec3> pos;
  std::vector<double> q;
  pos.reserve(n);
  q.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back({u(rng), u(rng), u(rng)});
    q.push_back(draw_charge(charges, rng));
  }
  return ParticleSystem(std::move(pos), std::move(q));
}

ParticleSystem gaussian_ball(std::size_t n, std::uint64_t seed, double sigma,
                             ChargeModel charges) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.5, sigma);
  std::vector<Vec3> pos;
  std::vector<double> q;
  pos.reserve(n);
  q.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos.push_back({clamp01(g(rng)), clamp01(g(rng)), clamp01(g(rng))});
    q.push_back(draw_charge(charges, rng));
  }
  return ParticleSystem(std::move(pos), std::move(q));
}

ParticleSystem overlapped_gaussians(std::size_t n, std::size_t k, std::uint64_t seed,
                                    double sigma, ChargeModel charges) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.15, 0.85);
  std::vector<Vec3> centers;
  centers.reserve(k == 0 ? 1 : k);
  for (std::size_t c = 0; c < (k == 0 ? 1 : k); ++c) {
    centers.push_back({u(rng), u(rng), u(rng)});
  }
  std::normal_distribution<double> g(0.0, sigma);
  std::uniform_int_distribution<std::size_t> pick(0, centers.size() - 1);
  std::vector<Vec3> pos;
  std::vector<double> q;
  pos.reserve(n);
  q.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3& c = centers[pick(rng)];
    pos.push_back({clamp01(c.x + g(rng)), clamp01(c.y + g(rng)), clamp01(c.z + g(rng))});
    q.push_back(draw_charge(charges, rng));
  }
  return ParticleSystem(std::move(pos), std::move(q));
}

ParticleSystem spherical_shell(std::size_t n, std::uint64_t seed, ChargeModel charges) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<Vec3> pos;
  std::vector<double> q;
  pos.reserve(n);
  q.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 v{g(rng), g(rng), g(rng)};
    double r = norm(v);
    if (r == 0.0) {
      v = {1.0, 0.0, 0.0};
      r = 1.0;
    }
    // Unit sphere centered at (0.5, 0.5, 0.5), radius 0.5: fits in [0,1]^3.
    pos.push_back(Vec3{0.5, 0.5, 0.5} + v * (0.5 / r));
    q.push_back(draw_charge(charges, rng));
  }
  return ParticleSystem(std::move(pos), std::move(q));
}

ParticleSystem galaxy_disk(std::size_t n, std::uint64_t seed, double scale,
                           double flattening, double bulge_fraction) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::normal_distribution<double> g(0.0, 1.0);
  std::exponential_distribution<double> radial(1.0 / scale);
  std::vector<Vec3> pos;
  std::vector<double> q;
  pos.reserve(n);
  q.reserve(n);
  const double mass = n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
  const Vec3 center{0.5, 0.5, 0.5};
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 p;
    if (u(rng) < bulge_fraction) {
      // Compact isotropic bulge.
      p = center + Vec3{g(rng), g(rng), g(rng)} * (0.3 * scale);
    } else {
      double r;
      do {
        r = radial(rng);
      } while (r > 0.45);  // keep inside the unit cube
      const double phi = 2.0 * M_PI * u(rng);
      p = center + Vec3{r * std::cos(phi), r * std::sin(phi), g(rng) * flattening * scale};
    }
    p = {clamp01(p.x), clamp01(p.y), clamp01(p.z)};
    pos.push_back(p);
    q.push_back(mass);
  }
  return ParticleSystem(std::move(pos), std::move(q));
}

ParticleSystem plummer(std::size_t n, std::uint64_t seed, double scale) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<Vec3> pos;
  std::vector<double> q;
  pos.reserve(n);
  q.reserve(n);
  const double mass = n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Inverse-CDF sampling of the Plummer radial profile, truncated at 10a.
    double r;
    do {
      const double x = u(rng);
      r = scale / std::sqrt(std::pow(x, -2.0 / 3.0) - 1.0);
    } while (r > 10.0 * scale);
    Vec3 dir{g(rng), g(rng), g(rng)};
    double d = norm(dir);
    if (d == 0.0) {
      dir = {1.0, 0.0, 0.0};
      d = 1.0;
    }
    pos.push_back(Vec3{0.5, 0.5, 0.5} + dir * (r / d));
    q.push_back(mass);
  }
  return ParticleSystem(std::move(pos), std::move(q));
}

}  // namespace treecode::dist
