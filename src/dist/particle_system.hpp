#pragma once

/// \file particle_system.hpp
/// Structure-of-arrays particle storage shared by all evaluators.

#include <cstddef>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace treecode {

/// A set of point charges (or masses): positions and charges in parallel
/// arrays. SoA layout keeps P2P kernels and P2M passes vectorizable.
class ParticleSystem {
 public:
  ParticleSystem() = default;

  /// Construct from parallel arrays. Throws std::invalid_argument on size
  /// mismatch.
  ParticleSystem(std::vector<Vec3> positions, std::vector<double> charges);

  /// Number of particles.
  [[nodiscard]] std::size_t size() const noexcept { return positions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return positions_.empty(); }

  [[nodiscard]] const std::vector<Vec3>& positions() const noexcept { return positions_; }
  [[nodiscard]] const std::vector<double>& charges() const noexcept { return charges_; }
  [[nodiscard]] std::vector<double>& charges() noexcept { return charges_; }

  [[nodiscard]] const Vec3& position(std::size_t i) const noexcept { return positions_[i]; }
  [[nodiscard]] double charge(std::size_t i) const noexcept { return charges_[i]; }

  /// Append one particle.
  void add(const Vec3& pos, double charge);

  /// Axis-aligned bounding box of all positions (empty box if no particles).
  [[nodiscard]] Aabb bounds() const;

  /// Sum of |q_i| — the paper's aggregate charge magnitude "A" for the whole
  /// system.
  [[nodiscard]] double total_abs_charge() const;

  /// Reorder particles by the given permutation: new i-th particle is the
  /// old perm[i]-th. Throws std::invalid_argument if perm is not a
  /// permutation of [0, size()).
  void permute(const std::vector<std::size_t>& perm);

 private:
  std::vector<Vec3> positions_;
  std::vector<double> charges_;
};

}  // namespace treecode
