#pragma once

/// \file gmres.hpp
/// Restarted GMRES with Givens rotations.
///
/// This is the iterative solver of the paper's BEM experiments: "The
/// matrix-vector product was used in a GMRES solver with a restart of 10
/// and was observed to converge very well." The implementation is the
/// standard Saad-Schultz GMRES(m): Arnoldi with modified Gram-Schmidt,
/// least-squares via Givens rotations, optional right preconditioning.

#include <functional>
#include <vector>

#include "linalg/operator.hpp"

namespace treecode {

/// Solver parameters. Defaults mirror the paper (restart 10).
struct GmresOptions {
  int restart = 10;            ///< Krylov dimension m per cycle
  int max_iterations = 1000;   ///< total inner iterations across cycles
  double tolerance = 1e-8;     ///< relative residual ||r||/||b|| target
  /// Stagnation guard: if the relative residual has improved by less than
  /// a factor of (1 - stagnation_improvement) over the last
  /// `stagnation_window` inner iterations, stop with kStagnation instead
  /// of burning the remaining iteration budget. 0 disables the guard.
  int stagnation_window = 50;
  double stagnation_improvement = 1e-3;
};

/// Structured account of why a solve stopped without converging.
enum class GmresFailure {
  kNone,               ///< converged (or never ran: zero RHS)
  kNonFiniteInput,     ///< b or the initial guess contains NaN/Inf
  kNonFiniteOperator,  ///< A or M^{-1} produced NaN/Inf mid-iteration
  kStagnation,         ///< residual plateaued (see GmresOptions guard)
  kBreakdown,          ///< Krylov space exhausted with residual above tol
                       ///< (singular or inconsistent system); x holds the
                       ///< least-squares solution over the invariant subspace
  kMaxIterations,      ///< iteration budget exhausted
};

/// Human-readable failure reason for logs and error messages.
const char* to_string(GmresFailure f) noexcept;

/// Solve outcome.
struct GmresResult {
  bool converged = false;
  GmresFailure failure_reason = GmresFailure::kNone;  ///< kNone iff converged
  bool happy_breakdown = false;          ///< Arnoldi found an invariant subspace
  int iterations = 0;                    ///< total inner iterations performed
  double relative_residual = 0.0;        ///< final ||b - A x|| / ||b||
  std::vector<double> residual_history;  ///< relative residual per iteration
};

/// Optional right preconditioner: y = M^{-1} x. Identity when empty.
using Preconditioner = std::function<void(std::span<const double>, std::span<double>)>;

/// Build a Jacobi (diagonal) right preconditioner from the matrix diagonal.
/// Zero diagonal entries are treated as 1 (no scaling).
Preconditioner jacobi_preconditioner(std::vector<double> diagonal);

/// Solve A x = b. `x` holds the initial guess on entry and the solution on
/// exit (sizes must equal A.cols() == A.rows()).
GmresResult gmres(const LinearOperator& A, std::span<const double> b, std::span<double> x,
                  const GmresOptions& options = {}, const Preconditioner& precond = {});

}  // namespace treecode
