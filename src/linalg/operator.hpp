#pragma once

/// \file operator.hpp
/// Matrix-free linear operator abstraction.
///
/// The paper's BEM solver never forms the dense system: "the treecode was
/// used to compute matrix-vector products with the approximation of the
/// dense matrices in each iteration of the GMRES iterative solver."
/// LinearOperator is that contract: anything that can apply y = A x.

#include <cstddef>
#include <functional>
#include <span>
#include <stdexcept>

namespace treecode {

/// Abstract square-or-rectangular linear operator y = A x.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Number of rows (length of y).
  [[nodiscard]] virtual std::size_t rows() const = 0;
  /// Number of columns (length of x).
  [[nodiscard]] virtual std::size_t cols() const = 0;

  /// Compute y = A x. Spans must have sizes cols() and rows().
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;

 protected:
  /// Shared argument validation for implementations.
  void check_sizes(std::span<const double> x, std::span<double> y) const {
    if (x.size() != cols() || y.size() != rows()) {
      throw std::invalid_argument("LinearOperator::apply: size mismatch");
    }
  }
};

/// Adapts a callable (y = f(x)) into a LinearOperator.
class FunctionOperator final : public LinearOperator {
 public:
  using Fn = std::function<void(std::span<const double>, std::span<double>)>;

  FunctionOperator(std::size_t rows, std::size_t cols, Fn fn)
      : rows_(rows), cols_(cols), fn_(std::move(fn)) {}

  [[nodiscard]] std::size_t rows() const override { return rows_; }
  [[nodiscard]] std::size_t cols() const override { return cols_; }
  void apply(std::span<const double> x, std::span<double> y) const override {
    check_sizes(x, y);
    fn_(x, y);
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  Fn fn_;
};

}  // namespace treecode
