#include "linalg/dense_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace treecode {

void DenseMatrix::apply(std::span<const double> x, std::span<double> y) const {
  check_sizes(x, y);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

std::vector<double> DenseMatrix::solve(std::span<const double> b) const {
  if (rows_ != cols_) throw std::runtime_error("DenseMatrix::solve: not square");
  if (b.size() != rows_) throw std::runtime_error("DenseMatrix::solve: rhs size");
  const std::size_t n = rows_;
  std::vector<double> a(data_);
  std::vector<double> x(b.begin(), b.end());
  std::vector<std::size_t> piv(n);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t best = k;
    double best_val = std::abs(a[k * n + k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(a[r * n + k]);
      if (v > best_val) {
        best_val = v;
        best = r;
      }
    }
    if (best_val == 0.0) throw std::runtime_error("DenseMatrix::solve: singular");
    if (best != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[k * n + c], a[best * n + c]);
      std::swap(x[k], x[best]);
    }
    const double inv_pivot = 1.0 / a[k * n + k];
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = a[r * n + k] * inv_pivot;
      if (f == 0.0) continue;
      a[r * n + k] = 0.0;
      for (std::size_t c = k + 1; c < n; ++c) a[r * n + c] -= f * a[k * n + c];
      x[r] -= f * x[k];
    }
  }
  // Back substitution.
  for (std::size_t k = n; k-- > 0;) {
    double acc = x[k];
    for (std::size_t c = k + 1; c < n; ++c) acc -= a[k * n + c] * x[c];
    x[k] = acc / a[k * n + k];
  }
  return x;
}

std::vector<double> DenseMatrix::diagonal() const {
  const std::size_t n = std::min(rows_, cols_);
  std::vector<double> d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = at(i, i);
  return d;
}

}  // namespace treecode
