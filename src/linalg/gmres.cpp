#include "linalg/gmres.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"
#include "obs/spans.hpp"

namespace treecode {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double nrm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

bool finite_vector(std::span<const double> a) {
  for (double v : a) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Relative threshold under which the Arnoldi residual norm counts as a
/// happy breakdown: w is numerically inside the current Krylov space.
constexpr double kBreakdownRel = 1e-14;

}  // namespace

const char* to_string(GmresFailure f) noexcept {
  switch (f) {
    case GmresFailure::kNone:
      return "none";
    case GmresFailure::kNonFiniteInput:
      return "non-finite input";
    case GmresFailure::kNonFiniteOperator:
      return "non-finite operator output";
    case GmresFailure::kStagnation:
      return "stagnation";
    case GmresFailure::kBreakdown:
      return "breakdown on singular system";
    case GmresFailure::kMaxIterations:
      return "max iterations";
  }
  return "?";
}

Preconditioner jacobi_preconditioner(std::vector<double> diagonal) {
  for (double& d : diagonal) {
    d = d == 0.0 ? 1.0 : 1.0 / d;
  }
  return [diag = std::move(diagonal)](std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = diag[i] * x[i];
  };
}

GmresResult gmres(const LinearOperator& A, std::span<const double> b, std::span<double> x,
                  const GmresOptions& options, const Preconditioner& precond) {
  if (A.rows() != A.cols()) throw std::invalid_argument("gmres: operator not square");
  const std::size_t n = A.rows();
  if (b.size() != n || x.size() != n) throw std::invalid_argument("gmres: size mismatch");
  const int m = options.restart > 0 ? options.restart : 10;

  const ScopedTimer solve_phase(obs::span::kGmresSolve);
  // Resolved once: append/increment below happen at iteration granularity.
  obs::Series& residual_series = obs::registry().series(obs::metric::kGmresResidual);
  obs::Counter& iteration_counter = obs::registry().counter(obs::metric::kGmresIterations);

  GmresResult result;
  if (!finite_vector(b) || !finite_vector(x)) {
    result.failure_reason = GmresFailure::kNonFiniteInput;
    result.relative_residual = std::numeric_limits<double>::infinity();
    return result;
  }
  const double bnorm = nrm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    result.converged = true;
    return result;
  }

  std::vector<std::vector<double>> V(static_cast<std::size_t>(m) + 1,
                                     std::vector<double>(n));
  // Hessenberg in column-major H[j] has j+2 entries.
  std::vector<std::vector<double>> H(static_cast<std::size_t>(m));
  std::vector<double> cs(static_cast<std::size_t>(m)), sn(static_cast<std::size_t>(m));
  std::vector<double> g(static_cast<std::size_t>(m) + 1);
  std::vector<double> w(n), tmp(n), r(n);

  auto apply_precond = [&](std::span<const double> in, std::span<double> out) {
    if (precond) {
      precond(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };

  bool stagnated = false;
  // A happy breakdown is terminal for the outer loop as well: the Krylov
  // space is invariant under A, so a restart would regenerate the same
  // subspace and make no further progress.
  while (result.iterations < options.max_iterations && !stagnated &&
         !result.happy_breakdown) {
    const obs::TraceSpan cycle_span(obs::span::kGmresCycle);
    // r = b - A x
    A.apply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    double beta = nrm2(r);
    if (!std::isfinite(beta)) {
      // The operator emitted NaN/Inf: x is poisoned beyond repair; report
      // instead of iterating on garbage.
      result.failure_reason = GmresFailure::kNonFiniteOperator;
      result.relative_residual = std::numeric_limits<double>::infinity();
      return result;
    }
    result.relative_residual = beta / bnorm;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      result.failure_reason = GmresFailure::kNone;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) V[0][i] = r[i] / beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    for (; j < m && result.iterations < options.max_iterations; ++j) {
      ++result.iterations;
      iteration_counter.increment();
      // w = A M^{-1} v_j
      apply_precond(V[static_cast<std::size_t>(j)], tmp);
      A.apply(tmp, w);
      const double wnorm = nrm2(w);
      if (!std::isfinite(wnorm)) {
        // Abandon the cycle: x still holds the last completed update.
        result.failure_reason = GmresFailure::kNonFiniteOperator;
        return result;
      }
      // Arnoldi, modified Gram-Schmidt.
      auto& h = H[static_cast<std::size_t>(j)];
      h.assign(static_cast<std::size_t>(j) + 2, 0.0);
      for (int i = 0; i <= j; ++i) {
        const double hij = dot(w, V[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(i)] = hij;
        axpy(-hij, V[static_cast<std::size_t>(i)], w);
      }
      const double hj1 = nrm2(w);
      // Happy breakdown: w lies (numerically) in the span of the current
      // basis, so the Krylov space is invariant and the least-squares
      // solution in it is exact. Record h[j+1] = 0 — dividing w by a tiny
      // hj1 would inject an amplified-noise basis vector — and stop
      // extending the space after this column's rotation.
      const bool breakdown = hj1 <= kBreakdownRel * wnorm;
      h[static_cast<std::size_t>(j) + 1] = breakdown ? 0.0 : hj1;
      if (!breakdown) {
        for (std::size_t i = 0; i < n; ++i) V[static_cast<std::size_t>(j) + 1][i] = w[i] / hj1;
      }
      // Apply existing Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const double t = cs[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i)] +
                         sn[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i) + 1];
        h[static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i)] +
            cs[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i) + 1];
        h[static_cast<std::size_t>(i)] = t;
      }
      // New rotation to zero h[j+1].
      const double denom =
          std::hypot(h[static_cast<std::size_t>(j)], h[static_cast<std::size_t>(j) + 1]);
      if (denom == 0.0) {
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(j)] = h[static_cast<std::size_t>(j)] / denom;
        sn[static_cast<std::size_t>(j)] = h[static_cast<std::size_t>(j) + 1] / denom;
      }
      h[static_cast<std::size_t>(j)] = denom;
      h[static_cast<std::size_t>(j) + 1] = 0.0;
      const double t = cs[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j) + 1] =
          -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] = t;

      const double rel = std::abs(g[static_cast<std::size_t>(j) + 1]) / bnorm;
      result.residual_history.push_back(rel);
      residual_series.append(rel);
      // Breakdown must be checked before the tolerance: on a singular
      // system the breakdown column rotates to a zero diagonal and
      // g[j+1] spuriously reads 0 even though the true residual is not.
      // The outer residual check below decides convergence either way.
      if (breakdown) {
        result.happy_breakdown = true;
        ++j;
        break;
      }
      if (rel <= options.tolerance) {
        ++j;
        break;
      }
      // Stagnation guard: negligible progress over the sliding window.
      const std::size_t window = static_cast<std::size_t>(
          options.stagnation_window > 0 ? options.stagnation_window : 0);
      if (window > 0 && result.residual_history.size() >= window) {
        const double then =
            result.residual_history[result.residual_history.size() - window];
        if (rel > (1.0 - options.stagnation_improvement) * then) {
          stagnated = true;
          ++j;
          break;
        }
      }
    }

    // Solve the triangular system H y = g (size j).
    std::vector<double> y(static_cast<std::size_t>(j));
    // A singular operator leaves a (numerically) zero diagonal in R: the
    // corresponding basis direction carries no information and must be
    // dropped, or roundoff noise on the diagonal amplifies into a huge y.
    // Exact zero is not enough — after Givens rotations the dead diagonal
    // is O(eps) garbage — so the guard is relative to the largest pivot.
    double max_diag = 0.0;
    for (int i = 0; i < j; ++i) {
      max_diag = std::max(
          max_diag, std::abs(H[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)]));
    }
    const double diag_floor = 1e-14 * max_diag;
    for (int i = j - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k) {
        acc -= H[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(k)];
      }
      const double diag = H[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
      y[static_cast<std::size_t>(i)] = std::abs(diag) <= diag_floor ? 0.0 : acc / diag;
    }
    // x += M^{-1} (V y)
    std::fill(tmp.begin(), tmp.end(), 0.0);
    for (int i = 0; i < j; ++i) {
      axpy(y[static_cast<std::size_t>(i)], V[static_cast<std::size_t>(i)], tmp);
    }
    apply_precond(tmp, w);
    axpy(1.0, w, x);
  }

  // Final residual check.
  A.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  result.relative_residual = nrm2(r) / bnorm;
  result.converged =
      std::isfinite(result.relative_residual) && result.relative_residual <= options.tolerance;
  if (result.converged) {
    result.failure_reason = GmresFailure::kNone;
  } else if (!std::isfinite(result.relative_residual)) {
    result.failure_reason = GmresFailure::kNonFiniteOperator;
  } else if (result.happy_breakdown) {
    result.failure_reason = GmresFailure::kBreakdown;
  } else {
    result.failure_reason =
        stagnated ? GmresFailure::kStagnation : GmresFailure::kMaxIterations;
  }
  return result;
}

}  // namespace treecode
