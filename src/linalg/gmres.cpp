#include "linalg/gmres.hpp"

#include <cmath>
#include <stdexcept>

namespace treecode {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double nrm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace

Preconditioner jacobi_preconditioner(std::vector<double> diagonal) {
  for (double& d : diagonal) {
    d = d == 0.0 ? 1.0 : 1.0 / d;
  }
  return [diag = std::move(diagonal)](std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = diag[i] * x[i];
  };
}

GmresResult gmres(const LinearOperator& A, std::span<const double> b, std::span<double> x,
                  const GmresOptions& options, const Preconditioner& precond) {
  if (A.rows() != A.cols()) throw std::invalid_argument("gmres: operator not square");
  const std::size_t n = A.rows();
  if (b.size() != n || x.size() != n) throw std::invalid_argument("gmres: size mismatch");
  const int m = options.restart > 0 ? options.restart : 10;

  GmresResult result;
  const double bnorm = nrm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    result.converged = true;
    return result;
  }

  std::vector<std::vector<double>> V(static_cast<std::size_t>(m) + 1,
                                     std::vector<double>(n));
  // Hessenberg in column-major H[j] has j+2 entries.
  std::vector<std::vector<double>> H(static_cast<std::size_t>(m));
  std::vector<double> cs(static_cast<std::size_t>(m)), sn(static_cast<std::size_t>(m));
  std::vector<double> g(static_cast<std::size_t>(m) + 1);
  std::vector<double> w(n), tmp(n), r(n);

  auto apply_precond = [&](std::span<const double> in, std::span<double> out) {
    if (precond) {
      precond(in, out);
    } else {
      std::copy(in.begin(), in.end(), out.begin());
    }
  };

  while (result.iterations < options.max_iterations) {
    // r = b - A x
    A.apply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    double beta = nrm2(r);
    result.relative_residual = beta / bnorm;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) V[0][i] = r[i] / beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    for (; j < m && result.iterations < options.max_iterations; ++j) {
      ++result.iterations;
      // w = A M^{-1} v_j
      apply_precond(V[static_cast<std::size_t>(j)], tmp);
      A.apply(tmp, w);
      // Arnoldi, modified Gram-Schmidt.
      auto& h = H[static_cast<std::size_t>(j)];
      h.assign(static_cast<std::size_t>(j) + 2, 0.0);
      for (int i = 0; i <= j; ++i) {
        const double hij = dot(w, V[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(i)] = hij;
        axpy(-hij, V[static_cast<std::size_t>(i)], w);
      }
      const double hj1 = nrm2(w);
      h[static_cast<std::size_t>(j) + 1] = hj1;
      if (hj1 > 0.0) {
        for (std::size_t i = 0; i < n; ++i) V[static_cast<std::size_t>(j) + 1][i] = w[i] / hj1;
      }
      // Apply existing Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const double t = cs[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i)] +
                         sn[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i) + 1];
        h[static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i)] +
            cs[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i) + 1];
        h[static_cast<std::size_t>(i)] = t;
      }
      // New rotation to zero h[j+1].
      const double denom = std::hypot(h[static_cast<std::size_t>(j)], hj1);
      if (denom == 0.0) {
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(j)] = h[static_cast<std::size_t>(j)] / denom;
        sn[static_cast<std::size_t>(j)] = h[static_cast<std::size_t>(j) + 1] / denom;
      }
      h[static_cast<std::size_t>(j)] = denom;
      h[static_cast<std::size_t>(j) + 1] = 0.0;
      const double t = cs[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j) + 1] =
          -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] = t;

      const double rel = std::abs(g[static_cast<std::size_t>(j) + 1]) / bnorm;
      result.residual_history.push_back(rel);
      if (rel <= options.tolerance) {
        ++j;
        break;
      }
      if (hj1 == 0.0) {  // lucky breakdown: exact solution in this space
        ++j;
        break;
      }
    }

    // Solve the triangular system H y = g (size j).
    std::vector<double> y(static_cast<std::size_t>(j));
    for (int i = j - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k) {
        acc -= H[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(k)];
      }
      y[static_cast<std::size_t>(i)] = acc / H[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    // x += M^{-1} (V y)
    std::fill(tmp.begin(), tmp.end(), 0.0);
    for (int i = 0; i < j; ++i) {
      axpy(y[static_cast<std::size_t>(i)], V[static_cast<std::size_t>(i)], tmp);
    }
    apply_precond(tmp, w);
    axpy(1.0, w, x);
  }

  // Final residual check.
  A.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  result.relative_residual = nrm2(r) / bnorm;
  result.converged = result.relative_residual <= options.tolerance;
  return result;
}

}  // namespace treecode
