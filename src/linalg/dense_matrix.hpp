#pragma once

/// \file dense_matrix.hpp
/// Row-major dense matrix with the few operations the project needs:
/// operator application, and a pivoted-LU direct solve used as the exact
/// reference for small BEM systems in tests.

#include <vector>

#include "linalg/operator.hpp"

namespace treecode {

/// Row-major dense matrix implementing LinearOperator.
class DenseMatrix final : public LinearOperator {
 public:
  DenseMatrix() = default;
  /// rows x cols zero matrix.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const override { return rows_; }
  [[nodiscard]] std::size_t cols() const override { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  void apply(std::span<const double> x, std::span<double> y) const override;

  /// Solve A x = b by partial-pivoted Gaussian elimination (A must be
  /// square and nonsingular; throws std::runtime_error otherwise).
  /// O(n^3); intended for test-scale reference solves.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Main diagonal (used by the Jacobi preconditioner).
  [[nodiscard]] std::vector<double> diagonal() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace treecode
