#include "multipole/rotation.hpp"

#include <cassert>
#include <cmath>

#include "multipole/ipow.hpp"

namespace treecode {

double wigner_d_entry(int j, int mp, int m, double theta) {
  // Reference implementation: the explicit Wigner sum. O(j) per entry —
  // used to seed boundary entries and to validate the recurrence in tests.
  assert(std::abs(mp) <= j && std::abs(m) <= j);
  const double c = std::cos(0.5 * theta);
  const double s = std::sin(0.5 * theta);
  const double pref = std::sqrt(factorial(j + mp) * factorial(j - mp) * factorial(j + m) *
                                factorial(j - m));
  const int k_lo = std::max(0, m - mp);
  const int k_hi = std::min(j + m, j - mp);
  double sum = 0.0;
  for (int k = k_lo; k <= k_hi; ++k) {
    const double sign = ((mp - m + k) % 2 == 0) ? 1.0 : -1.0;
    const double denom = factorial(j + m - k) * factorial(k) * factorial(mp - m + k) *
                         factorial(j - mp - k);
    sum += sign / denom * ipow(c, 2 * j + m - mp - 2 * k) * ipow(s, mp - m + 2 * k);
  }
  return pref * sum;
}

WignerD::WignerD(int p, double theta) : p_(p) {
  assert(p >= 0 && p <= kMaxDegree);
  offset_.resize(static_cast<std::size_t>(p) + 1);
  std::size_t total = 0;
  for (int n = 0; n <= p; ++n) {
    offset_[static_cast<std::size_t>(n)] = total;
    total += (2 * static_cast<std::size_t>(n) + 1) * (2 * static_cast<std::size_t>(n) + 1);
  }
  data_.resize(total);
  auto set = [&](int n, int mp, int m, double v) {
    data_[offset_[static_cast<std::size_t>(n)] +
          static_cast<std::size_t>(mp + n) * (2 * static_cast<std::size_t>(n) + 1) +
          static_cast<std::size_t>(m + n)] = v;
  };

  const double x = std::cos(theta);
  data_[0] = 1.0;  // d^0_00

  for (int n = 1; n <= p; ++n) {
    // Boundary entries (|m'| = n or |m| = n) from the closed forms; they
    // have a single term in the Wigner sum, so the reference entry is both
    // exact and O(1) there (the pow calls dominate).
    for (int m = -n; m <= n; ++m) {
      set(n, n, m, wigner_d_entry(n, n, m, theta));
      set(n, -n, m, wigner_d_entry(n, -n, m, theta));
      if (std::abs(m) != n) {
        set(n, m, n, wigner_d_entry(n, m, n, theta));
        set(n, m, -n, wigner_d_entry(n, m, -n, theta));
      }
    }
    // Interior entries by the three-term recurrence over degree
    // (Kostelec-Rockmore): stable for the degrees this library supports.
    for (int mp = -(n - 1); mp <= n - 1; ++mp) {
      for (int m = -(n - 1); m <= n - 1; ++m) {
        const double nn = static_cast<double>(n);
        const double root_n =
            std::sqrt((nn * nn - mp * mp) * (nn * nn - m * m));
        const double w1 = nn * (2.0 * nn - 1.0) / root_n;
        // Guard the 0/0 at n = 1 (interior there is only m' = m = 0).
        const double mpm = static_cast<double>(mp) * m;
        const double correction = mpm == 0.0 ? 0.0 : mpm / (nn * (nn - 1.0));
        const double term1 = w1 * (x - correction) * at(n - 1, mp, m);
        double term2 = 0.0;
        const double n1 = nn - 1.0;
        const double root_n1 = std::sqrt((n1 * n1 - mp * mp) * (n1 * n1 - m * m));
        if (root_n1 > 0.0) {  // zero exactly when |m'| or |m| == n-1
          const double w2 = root_n1 * nn / (n1 * root_n);
          term2 = w2 * at(n - 2, mp, m);
        }
        set(n, mp, m, term1 - term2);
      }
    }
  }
}

namespace {

/// Signed-m coefficient access helper shared by the rotations.
inline Complex signed_coeff(const detail::ExpansionBase& e, int n, int m) {
  return e.coeff_signed(n, m);
}

}  // namespace

void rotate_coefficients(detail::ExpansionBase& e, const WignerD& d, double phi,
                         RotateDirection direction) {
  const int p = e.degree();
  assert(p <= d.degree());
  std::vector<Complex> out(tri_size(p));
  // Phases e^{i m phi} for m = 0..p.
  std::vector<Complex> phase(static_cast<std::size_t>(p) + 1);
  phase[0] = Complex{1.0, 0.0};
  const Complex step{std::cos(phi), std::sin(phi)};
  for (int m = 1; m <= p; ++m) phase[static_cast<std::size_t>(m)] = phase[static_cast<std::size_t>(m - 1)] * step;
  auto signed_phase = [&](int m) {
    return m >= 0 ? phase[static_cast<std::size_t>(m)]
                  : std::conj(phase[static_cast<std::size_t>(-m)]);
  };
  // Basis-change sign: this library stores negative orders via
  // C_n^{-m} = conj(C_n^m), whereas the Wigner-D machinery assumes the
  // standard physics convention Y_l^{-m} = (-1)^m conj(Y_l^m). The two
  // bases differ by sigma_m = (-1)^m on negative orders only.
  auto sigma = [](int m) { return (m < 0 && (-m) % 2 != 0) ? -1.0 : 1.0; };

  for (int n = 0; n <= p; ++n) {
    for (int mp = 0; mp <= n; ++mp) {
      Complex acc{0.0, 0.0};
      if (direction == RotateDirection::kForward) {
        // M~_n^{m'} = sum_m sigma_m M_n^m e^{i m phi} d^n_{m m'}(theta)
        for (int m = -n; m <= n; ++m) {
          acc += signed_coeff(e, n, m) * (sigma(m) * d.at(n, m, mp)) * signed_phase(m);
        }
      } else {
        // M_n^{m'} = e^{-i m' phi} sum_m sigma_m d^n_{m' m}(theta) M~_n^m
        for (int m = -n; m <= n; ++m) {
          acc += (sigma(m) * d.at(n, mp, m)) * signed_coeff(e, n, m);
        }
        acc *= std::conj(signed_phase(mp));
      }
      out[tri_index(n, mp)] = acc;
    }
  }
  e.data() = std::move(out);
}

void m2m_axial(const MultipoleExpansion& src, double t, MultipoleExpansion& dst) {
  const int pd = dst.degree();
  const int ps = src.degree();
  assert(t != 0.0);
  // t^0..t^pd
  std::vector<double> tp(static_cast<std::size_t>(pd) + 1);
  tp[0] = 1.0;
  for (int n = 1; n <= pd; ++n) tp[static_cast<std::size_t>(n)] = tp[static_cast<std::size_t>(n - 1)] * t;
  for (int j = 0; j <= pd; ++j) {
    for (int k = 0; k <= j; ++k) {
      Complex acc{0.0, 0.0};
      const int n_hi = j - k;  // |k| <= j - n
      for (int n = 0; n <= n_hi; ++n) {
        const int jn = j - n;
        if (jn > ps) continue;
        // a(n,0) = (-1)^n / n!
        acc += src.coeff(jn, k) *
               (a_coeff(n, 0) * a_coeff(jn, k) * tp[static_cast<std::size_t>(n)]);
      }
      dst.coeff(j, k) += acc / a_coeff(j, k);
    }
  }
}

void m2l_axial(const MultipoleExpansion& src, double t, LocalExpansion& dst) {
  const int pd = dst.degree();
  const int ps = src.degree();
  assert(t != 0.0);
  const double at = std::abs(t);
  const double axis_sign = t > 0.0 ? 1.0 : -1.0;  // Y_{j+n}^0(theta) = (+-1)^{j+n}
  // |t|^-(1..ps+pd+1)
  std::vector<double> itp(static_cast<std::size_t>(ps + pd) + 2);
  itp[0] = 1.0 / at;
  for (std::size_t i = 1; i < itp.size(); ++i) itp[i] = itp[i - 1] / at;
  for (int j = 0; j <= pd; ++j) {
    const double sign_j = (j % 2 == 0) ? 1.0 : -1.0;
    for (int k = 0; k <= j; ++k) {
      const double sign_k = (k % 2 == 0) ? 1.0 : -1.0;
      Complex acc{0.0, 0.0};
      for (int n = k; n <= ps; ++n) {
        const double axis = ((j + n) % 2 == 0 || axis_sign > 0.0) ? 1.0 : -1.0;
        acc += src.coeff(n, k) *
               (sign_k * a_coeff(n, k) * a_coeff(j, k) * sign_j * factorial(j + n) * axis *
                itp[static_cast<std::size_t>(j + n)]);
      }
      dst.coeff(j, k) += acc;
    }
  }
}

void l2l_axial(const LocalExpansion& src, double t, LocalExpansion& dst) {
  const int pd = dst.degree();
  const int ps = src.degree();
  assert(t != 0.0);
  std::vector<double> tp(static_cast<std::size_t>(ps) + 1);
  tp[0] = 1.0;
  for (int n = 1; n <= ps; ++n) tp[static_cast<std::size_t>(n)] = tp[static_cast<std::size_t>(n - 1)] * t;
  for (int j = 0; j <= pd && j <= ps; ++j) {
    for (int k = 0; k <= j; ++k) {
      Complex acc{0.0, 0.0};
      for (int n = std::max(j, k); n <= ps; ++n) {
        const double sign_nj = ((n + j) % 2 == 0) ? 1.0 : -1.0;
        acc += src.coeff(n, k) * (a_coeff(n - j, 0) * a_coeff(j, k) *
                                  tp[static_cast<std::size_t>(n - j)] /
                                  (sign_nj * a_coeff(n, k)));
      }
      dst.coeff(j, k) += acc;
    }
  }
}

namespace {

/// Shared rotate-translate-rotate driver.
template <typename Src, typename Dst, typename AxialOp>
void rotated_translate(const Src& src, const Vec3& src_center, Dst& dst,
                       const Vec3& dst_center, const AxialOp& axial) {
  const Vec3 d = src_center - dst_center;
  const Spherical sp = to_spherical(d);
  const int pmax = std::max(src.degree(), dst.degree());
  if (sp.r == 0.0) {
    // Coincident centers: plain coefficient addition (degree-aware).
    const int p = std::min(src.degree(), dst.degree());
    for (int n = 0; n <= p; ++n) {
      for (int m = 0; m <= n; ++m) dst.coeff(n, m) += src.coeff(n, m);
    }
    return;
  }
  const WignerD wd(pmax, sp.theta);
  Src tmp_src = src;
  rotate_coefficients(tmp_src, wd, sp.phi, RotateDirection::kForward);
  Dst tmp_dst(dst.degree());
  axial(tmp_src, sp.r, tmp_dst);
  rotate_coefficients(tmp_dst, wd, sp.phi, RotateDirection::kInverse);
  for (int n = 0; n <= dst.degree(); ++n) {
    for (int m = 0; m <= n; ++m) dst.coeff(n, m) += tmp_dst.coeff(n, m);
  }
}

}  // namespace

void m2m_rotated(const MultipoleExpansion& src, const Vec3& src_center,
                 MultipoleExpansion& dst, const Vec3& dst_center) {
  rotated_translate(src, src_center, dst, dst_center,
                    [](const MultipoleExpansion& s, double t, MultipoleExpansion& d) {
                      m2m_axial(s, t, d);
                    });
}

void m2l_rotated(const MultipoleExpansion& src, const Vec3& src_center, LocalExpansion& dst,
                 const Vec3& dst_center) {
  rotated_translate(src, src_center, dst, dst_center,
                    [](const MultipoleExpansion& s, double t, LocalExpansion& d) {
                      m2l_axial(s, t, d);
                    });
}

void l2l_rotated(const LocalExpansion& src, const Vec3& src_center, LocalExpansion& dst,
                 const Vec3& dst_center) {
  rotated_translate(src, src_center, dst, dst_center,
                    [](const LocalExpansion& s, double t, LocalExpansion& d) {
                      l2l_axial(s, t, d);
                    });
}

}  // namespace treecode
