#pragma once

/// \file legendre.hpp
/// Associated Legendre function recurrences.
///
/// Computes, for all 0 <= m <= n <= p, the values
///
///   P[n][m]  = P_n^m(cos(theta))                 (Condon-Shortley phase)
///   T[n][m]  = d/dtheta P_n^m(cos(theta))
///   U[n][m]  = P_n^m(cos(theta)) / sin(theta)    (m >= 1; U[n][0] = 0)
///
/// T and U are obtained by differentiating the three standard recurrences
/// directly, so both are *pole-safe*: no 1/sin(theta) division ever occurs
/// (P_n^m carries a sin^m factor, so P/sin is a polynomial in cos and sin for
/// m >= 1). They feed the analytic gradients of multipole/local expansions.
///
/// Storage is the packed triangular layout shared with the expansions:
/// index (n, m) -> n*(n+1)/2 + m.

#include <cstddef>
#include <span>

namespace treecode {

/// Packed triangular index for (n, m) with 0 <= m <= n.
constexpr std::size_t tri_index(int n, int m) noexcept {
  return static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) + 1) / 2 +
         static_cast<std::size_t>(m);
}

/// Number of packed (n, m) coefficients for degrees 0..p.
constexpr std::size_t tri_size(int p) noexcept {
  return static_cast<std::size_t>(p + 1) * static_cast<std::size_t>(p + 2) / 2;
}

/// Evaluate P_n^m(cos theta) for all 0 <= m <= n <= p into `P`
/// (size >= tri_size(p)).
void legendre_all(int p, double cos_theta, double sin_theta, std::span<double> P);

/// Evaluate P, T = dP/dtheta, and U = P/sin(theta) in one pass.
/// All spans must have size >= tri_size(p). U[tri_index(n,0)] is set to 0.
void legendre_all_derivs(int p, double cos_theta, double sin_theta, std::span<double> P,
                         std::span<double> T, std::span<double> U);

}  // namespace treecode
