#include "multipole/operators.hpp"

#include <cassert>
#include <cmath>
#include <vector>

namespace treecode {

namespace {

/// Y_n^m for any sign of m from an m >= 0 packed array.
inline Complex y_signed(std::span<const Complex> Y, int n, int m) noexcept {
  return m >= 0 ? Y[tri_index(n, m)] : std::conj(Y[tri_index(n, -m)]);
}

/// rho^0..rho^p into `powers`.
void eval_powers(double rho, int p, std::vector<double>& powers) {
  powers.resize(static_cast<std::size_t>(p) + 1);
  powers[0] = 1.0;
  for (int n = 1; n <= p; ++n) powers[static_cast<std::size_t>(n)] = powers[static_cast<std::size_t>(n - 1)] * rho;
}

/// When translating between coincident centers the operators degenerate to
/// coefficient addition (degree-aware).
template <typename Expansion>
void add_coincident(const Expansion& src, Expansion& dst) {
  const int p = dst.degree() < src.degree() ? dst.degree() : src.degree();
  for (int n = 0; n <= p; ++n) {
    for (int m = 0; m <= n; ++m) dst.coeff(n, m) += src.coeff(n, m);
  }
}

}  // namespace

void p2m(const Vec3& center, std::span<const Vec3> positions, std::span<const double> charges,
         MultipoleExpansion& out) {
  assert(positions.size() == charges.size());
  const int p = out.degree();
  assert(p >= 0 && p <= kMaxDegree);
  thread_local std::vector<Complex> Y;
  thread_local std::vector<double> rho_pow;
  Y.resize(tri_size(p));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Spherical s = to_spherical(positions[i] - center);
    eval_harmonics(p, s.theta, s.phi, Y);
    eval_powers(s.r, p, rho_pow);
    const double q = charges[i];
    for (int n = 0; n <= p; ++n) {
      const double qr = q * rho_pow[static_cast<std::size_t>(n)];
      for (int m = 0; m <= n; ++m) {
        // M_n^m += q rho^n Y_n^{-m} = q rho^n conj(Y_n^m)
        out.coeff(n, m) += qr * std::conj(Y[tri_index(n, m)]);
      }
    }
  }
}

std::size_t p2m_basis_size(int p, std::size_t count) noexcept {
  return count * (static_cast<std::size_t>(p) + 1 + 2 * tri_size(p));
}

void p2m_basis(int p, const Vec3& center, std::span<const Vec3> positions,
               std::span<double> out) {
  assert(p >= 0 && p <= kMaxDegree);
  assert(out.size() >= p2m_basis_size(p, positions.size()));
  thread_local std::vector<Complex> Y;
  thread_local std::vector<double> rho_pow;
  Y.resize(tri_size(p));
  double* cursor = out.data();
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Spherical s = to_spherical(positions[i] - center);
    eval_harmonics(p, s.theta, s.phi, Y);
    eval_powers(s.r, p, rho_pow);
    for (int n = 0; n <= p; ++n) *cursor++ = rho_pow[static_cast<std::size_t>(n)];
    for (std::size_t k = 0; k < Y.size(); ++k) {
      // Stored pre-conjugated: negation is exact, so the apply's
      // qr * stored_im reproduces qr * (-Y_im) bitwise.
      *cursor++ = Y[k].real();
      *cursor++ = -Y[k].imag();
    }
  }
}

void p2m_apply_basis(std::span<const double> charges, const double* basis,
                     MultipoleExpansion& out) noexcept {
  const int p = out.degree();
  const std::size_t stride = static_cast<std::size_t>(p) + 1 + 2 * tri_size(p);
  for (std::size_t i = 0; i < charges.size(); ++i) {
    const double* rho = basis + i * stride;
    const double* Yc = rho + p + 1;
    const double q = charges[i];
    for (int n = 0; n <= p; ++n) {
      const double qr = q * rho[n];
      for (int m = 0; m <= n; ++m) {
        const std::size_t k = 2 * tri_index(n, m);
        // Same two products and component-wise add as p2m's
        // `coeff += qr * conj(Y)`.
        out.coeff(n, m) += Complex{qr * Yc[k], qr * Yc[k + 1]};
      }
    }
  }
}

void p2m_dipole(const Vec3& center, std::span<const Vec3> positions,
                std::span<const Vec3> moments, MultipoleExpansion& out) {
  assert(positions.size() == moments.size());
  const int p = out.degree();
  assert(p >= 0 && p <= kMaxDegree);
  thread_local std::vector<Complex> Y, dY, Ysin;
  Y.resize(tri_size(p));
  dY.resize(tri_size(p));
  Ysin.resize(tri_size(p));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Spherical s = to_spherical(positions[i] - center);
    eval_harmonics_derivs(p, s.theta, s.phi, Y, dY, Ysin);
    const double st = std::sin(s.theta);
    const double ct = std::cos(s.theta);
    const double sp = std::sin(s.phi);
    const double cp = std::cos(s.phi);
    const Vec3 rhat{st * cp, st * sp, ct};
    const Vec3 that{ct * cp, ct * sp, -st};
    const Vec3 phat{-sp, cp, 0.0};
    // Components of the dipole moment in the local spherical frame.
    const double dr = dot(moments[i], rhat);
    const double dth = dot(moments[i], that);
    const double dph = dot(moments[i], phat);
    // M_n^m += d . grad_y [rho^n conj(Y_n^m)]; the n = 0 term is constant
    // in y, so dipoles contribute nothing there (zero net charge).
    double rp = 1.0;  // rho^(n-1)
    for (int n = 1; n <= p; ++n) {
      for (int m = 0; m <= n; ++m) {
        const std::size_t idx = tri_index(n, m);
        // conj(i m Ysin) = -i m conj(Ysin)
        const Complex grad_f =
            rp * (dr * static_cast<double>(n) * std::conj(Y[idx]) +
                  dth * std::conj(dY[idx]) +
                  dph * Complex{0.0, -static_cast<double>(m)} * std::conj(Ysin[idx]));
        out.coeff(n, m) += grad_f;
      }
      rp *= s.r;
    }
  }
}

void m2m(const MultipoleExpansion& src, const Vec3& src_center, MultipoleExpansion& dst,
         const Vec3& dst_center) {
  const int pd = dst.degree();
  assert(pd >= 0 && pd <= kMaxDegree);
  const Vec3 d = src_center - dst_center;
  const Spherical sp = to_spherical(d);
  if (sp.r == 0.0) {
    add_coincident(src, dst);
    return;
  }
  thread_local std::vector<Complex> Y;
  thread_local std::vector<double> rho_pow;
  Y.resize(tri_size(pd));
  eval_harmonics(pd, sp.theta, sp.phi, Y);
  eval_powers(sp.r, pd, rho_pow);

  for (int j = 0; j <= pd; ++j) {
    for (int k = 0; k <= j; ++k) {
      Complex acc{0.0, 0.0};
      for (int n = 0; n <= j; ++n) {
        const int jn = j - n;
        for (int m = -n; m <= n; ++m) {
          const int km = k - m;
          if (km < -jn || km > jn) continue;
          const Complex o = src.coeff_signed(jn, km);
          if (o == Complex{0.0, 0.0}) continue;
          const int absk = k;  // k >= 0 here
          const int absm = m < 0 ? -m : m;
          const int abskm = km < 0 ? -km : km;
          acc += o * ipow(absk - absm - abskm) *
                 (a_coeff(n, m) * a_coeff(jn, km) * rho_pow[static_cast<std::size_t>(n)]) *
                 y_signed(Y, n, -m);
        }
      }
      dst.coeff(j, k) += acc / a_coeff(j, k);
    }
  }
}

void m2l(const MultipoleExpansion& src, const Vec3& src_center, LocalExpansion& dst,
         const Vec3& dst_center) {
  const int ps = src.degree();
  const int pd = dst.degree();
  assert(ps >= 0 && pd >= 0 && ps + pd <= kMaxDegree);
  const Vec3 d = src_center - dst_center;
  const Spherical sp = to_spherical(d);
  assert(sp.r > 0.0 && "m2l requires separated centers");
  const int ptot = ps + pd;
  thread_local std::vector<Complex> Y;
  thread_local std::vector<double> inv_rho_pow;
  Y.resize(tri_size(ptot));
  eval_harmonics(ptot, sp.theta, sp.phi, Y);
  // 1/rho^(j+n+1) for j+n in [0, ptot]
  inv_rho_pow.resize(static_cast<std::size_t>(ptot) + 2);
  inv_rho_pow[0] = 1.0 / sp.r;
  for (int n = 1; n <= ptot + 1; ++n) {
    inv_rho_pow[static_cast<std::size_t>(n)] = inv_rho_pow[static_cast<std::size_t>(n - 1)] / sp.r;
  }

  for (int j = 0; j <= pd; ++j) {
    for (int k = 0; k <= j; ++k) {
      Complex acc{0.0, 0.0};
      for (int n = 0; n <= ps; ++n) {
        const double sign_n = (n % 2 == 0) ? 1.0 : -1.0;
        for (int m = -n; m <= n; ++m) {
          const Complex o = src.coeff_signed(n, m);
          if (o == Complex{0.0, 0.0}) continue;
          const int absm = m < 0 ? -m : m;
          const int mk = m - k;
          const int absmk = mk < 0 ? -mk : mk;
          acc += o * ipow(absmk - k - absm) *
                 (a_coeff(n, m) * a_coeff(j, k) /
                  (sign_n * a_coeff(j + n, mk))) *
                 y_signed(Y, j + n, mk) * inv_rho_pow[static_cast<std::size_t>(j + n)];
        }
      }
      dst.coeff(j, k) += acc;
    }
  }
}

void l2l(const LocalExpansion& src, const Vec3& src_center, LocalExpansion& dst,
         const Vec3& dst_center) {
  const int ps = src.degree();
  const int pd = dst.degree();
  assert(ps >= 0 && pd >= 0 && ps <= kMaxDegree);
  const Vec3 d = src_center - dst_center;
  const Spherical sp = to_spherical(d);
  if (sp.r == 0.0) {
    add_coincident(src, dst);
    return;
  }
  thread_local std::vector<Complex> Y;
  thread_local std::vector<double> rho_pow;
  Y.resize(tri_size(ps));
  eval_harmonics(ps, sp.theta, sp.phi, Y);
  eval_powers(sp.r, ps, rho_pow);

  for (int j = 0; j <= pd && j <= ps; ++j) {
    for (int k = 0; k <= j; ++k) {
      Complex acc{0.0, 0.0};
      for (int n = j; n <= ps; ++n) {
        const int nj = n - j;
        const double sign_nj = ((n + j) % 2 == 0) ? 1.0 : -1.0;
        for (int m = -n; m <= n; ++m) {
          const int mk = m - k;
          if (mk < -nj || mk > nj) continue;
          const Complex o = src.coeff_signed(n, m);
          if (o == Complex{0.0, 0.0}) continue;
          const int absm = m < 0 ? -m : m;
          const int absmk = mk < 0 ? -mk : mk;
          acc += o * ipow(absm - absmk - k) *
                 (a_coeff(nj, mk) * a_coeff(j, k) /
                  (sign_nj * a_coeff(n, m))) *
                 y_signed(Y, nj, mk) * rho_pow[static_cast<std::size_t>(nj)];
        }
      }
      dst.coeff(j, k) += acc;
    }
  }
}

double m2p(const MultipoleExpansion& mexp, const Vec3& center, const Vec3& point) {
  const int p = mexp.degree();
  const Spherical s = to_spherical(point - center);
  assert(s.r > 0.0);
  thread_local std::vector<Complex> Y;
  Y.resize(tri_size(p));
  eval_harmonics(p, s.theta, s.phi, Y);
  const double inv_r = 1.0 / s.r;
  double phi = 0.0;
  double rpow = inv_r;  // 1/r^(n+1)
  for (int n = 0; n <= p; ++n) {
    double bracket = (mexp.coeff(n, 0) * Y[tri_index(n, 0)]).real();
    for (int m = 1; m <= n; ++m) {
      bracket += 2.0 * (mexp.coeff(n, m) * Y[tri_index(n, m)]).real();
    }
    phi += bracket * rpow;
    rpow *= inv_r;
  }
  return phi;
}

std::size_t m2p_basis_size(int p) noexcept {
  return 1 + 2 * tri_size(p);
}

void m2p_basis(int p, const Vec3& center, const Vec3& point, std::span<double> out) {
  assert(out.size() >= m2p_basis_size(p));
  const Spherical s = to_spherical(point - center);
  assert(s.r > 0.0);
  thread_local std::vector<Complex> Y;
  Y.resize(tri_size(p));
  eval_harmonics(p, s.theta, s.phi, Y);
  out[0] = 1.0 / s.r;
  for (std::size_t i = 0; i < Y.size(); ++i) {
    out[1 + 2 * i] = Y[i].real();
    out[2 + 2 * i] = Y[i].imag();
  }
}

double m2p_apply_basis(const MultipoleExpansion& mexp, const double* basis) noexcept {
  const int p = mexp.degree();
  const double inv_r = basis[0];
  const double* Y = basis + 1;
  double phi = 0.0;
  double rpow = inv_r;  // 1/r^(n+1)
  for (int n = 0; n <= p; ++n) {
    // Each product below reproduces (coeff * Y).real() = re*re - im*im —
    // the exact expression std::complex multiplication evaluates — on the
    // stored Y doubles, keeping the accumulation bitwise-equal to m2p().
    const std::size_t i0 = 2 * tri_index(n, 0);
    const Complex c0 = mexp.coeff(n, 0);
    double bracket = c0.real() * Y[i0] - c0.imag() * Y[i0 + 1];
    for (int m = 1; m <= n; ++m) {
      const std::size_t im = 2 * tri_index(n, m);
      const Complex c = mexp.coeff(n, m);
      bracket += 2.0 * (c.real() * Y[im] - c.imag() * Y[im + 1]);
    }
    phi += bracket * rpow;
    rpow *= inv_r;
  }
  return phi;
}

PotentialGrad m2p_grad(const MultipoleExpansion& mexp, const Vec3& center, const Vec3& point) {
  const int p = mexp.degree();
  const Spherical s = to_spherical(point - center);
  assert(s.r > 0.0);
  thread_local std::vector<Complex> Y, dY, Ysin;
  Y.resize(tri_size(p));
  dY.resize(tri_size(p));
  Ysin.resize(tri_size(p));
  eval_harmonics_derivs(p, s.theta, s.phi, Y, dY, Ysin);

  const double inv_r = 1.0 / s.r;
  double phi = 0.0;
  double dphi_dr = 0.0;        // d/dr
  double dphi_dth_over_r = 0.0;  // (1/r) d/dtheta
  double dphi_az = 0.0;          // (1/(r sin)) d/dphi
  double rpow = inv_r;           // 1/r^(n+1)
  for (int n = 0; n <= p; ++n) {
    double bval = (mexp.coeff(n, 0) * Y[tri_index(n, 0)]).real();
    double bth = (mexp.coeff(n, 0) * dY[tri_index(n, 0)]).real();
    double baz = 0.0;
    for (int m = 1; m <= n; ++m) {
      const Complex c = mexp.coeff(n, m);
      bval += 2.0 * (c * Y[tri_index(n, m)]).real();
      bth += 2.0 * (c * dY[tri_index(n, m)]).real();
      baz += -2.0 * m * (c * Ysin[tri_index(n, m)]).imag();
    }
    phi += bval * rpow;
    dphi_dr += -(n + 1) * bval * rpow * inv_r;
    dphi_dth_over_r += bth * rpow * inv_r;
    dphi_az += baz * rpow * inv_r;
    rpow *= inv_r;
  }
  const double st = std::sin(s.theta);
  const double ct = std::cos(s.theta);
  const double sp = std::sin(s.phi);
  const double cp = std::cos(s.phi);
  PotentialGrad out;
  out.potential = phi;
  const Vec3 rhat{st * cp, st * sp, ct};
  const Vec3 that{ct * cp, ct * sp, -st};
  const Vec3 phat{-sp, cp, 0.0};
  out.gradient = dphi_dr * rhat + dphi_dth_over_r * that + dphi_az * phat;
  return out;
}

double l2p(const LocalExpansion& lexp, const Vec3& center, const Vec3& point) {
  const int p = lexp.degree();
  const Spherical s = to_spherical(point - center);
  thread_local std::vector<Complex> Y;
  Y.resize(tri_size(p));
  eval_harmonics(p, s.theta, s.phi, Y);
  double phi = 0.0;
  double rpow = 1.0;  // r^n
  for (int n = 0; n <= p; ++n) {
    double bracket = (lexp.coeff(n, 0) * Y[tri_index(n, 0)]).real();
    for (int m = 1; m <= n; ++m) {
      bracket += 2.0 * (lexp.coeff(n, m) * Y[tri_index(n, m)]).real();
    }
    phi += bracket * rpow;
    rpow *= s.r;
  }
  return phi;
}

PotentialGrad l2p_grad(const LocalExpansion& lexp, const Vec3& center, const Vec3& point) {
  const int p = lexp.degree();
  const Spherical s = to_spherical(point - center);
  thread_local std::vector<Complex> Y, dY, Ysin;
  Y.resize(tri_size(p));
  dY.resize(tri_size(p));
  Ysin.resize(tri_size(p));
  eval_harmonics_derivs(p, s.theta, s.phi, Y, dY, Ysin);

  double phi = 0.0;
  double dphi_dr = 0.0;
  double dphi_dth_over_r = 0.0;  // sum over n of r^(n-1) * theta-bracket
  double dphi_az = 0.0;
  double rpow = 1.0;       // r^n
  double rpow_m1 = 0.0;    // r^(n-1), defined for n >= 1
  for (int n = 0; n <= p; ++n) {
    double bval = (lexp.coeff(n, 0) * Y[tri_index(n, 0)]).real();
    double bth = (lexp.coeff(n, 0) * dY[tri_index(n, 0)]).real();
    double baz = 0.0;
    for (int m = 1; m <= n; ++m) {
      const Complex c = lexp.coeff(n, m);
      bval += 2.0 * (c * Y[tri_index(n, m)]).real();
      bth += 2.0 * (c * dY[tri_index(n, m)]).real();
      baz += -2.0 * m * (c * Ysin[tri_index(n, m)]).imag();
    }
    phi += bval * rpow;
    if (n >= 1) {
      dphi_dr += n * bval * rpow_m1;
      dphi_dth_over_r += bth * rpow_m1;
      dphi_az += baz * rpow_m1;
    }
    rpow_m1 = rpow;
    rpow *= s.r;
  }
  const double st = std::sin(s.theta);
  const double ct = std::cos(s.theta);
  const double sp = std::sin(s.phi);
  const double cp = std::cos(s.phi);
  PotentialGrad out;
  out.potential = phi;
  const Vec3 rhat{st * cp, st * sp, ct};
  const Vec3 that{ct * cp, ct * sp, -st};
  const Vec3 phat{-sp, cp, 0.0};
  out.gradient = dphi_dr * rhat + dphi_dth_over_r * that + dphi_az * phat;
  return out;
}

double p2p(const Vec3& point, std::span<const Vec3> positions, std::span<const double> charges,
           double softening2) {
  double phi = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double r2 = distance2(point, positions[i]);
    if (r2 == 0.0) continue;
    phi += charges[i] / std::sqrt(r2 + softening2);
  }
  return phi;
}

void p2p_batch(const Vec3& point, std::span<const Vec3> positions,
               std::span<const std::span<const double>> charge_columns,
               double softening2, std::span<double> out) {
  const std::size_t k = charge_columns.size();
  for (std::size_t c = 0; c < k; ++c) out[c] = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const double r2 = distance2(point, positions[i]);
    if (r2 == 0.0) continue;
    // One sqrt shared by every column: p2p() divides by
    // sqrt(r2 + softening2) computed from the same operands, so each
    // column's quotient — and therefore its running sum — is bitwise the
    // single-RHS value.
    const double denom = std::sqrt(r2 + softening2);
    for (std::size_t c = 0; c < k; ++c) out[c] += charge_columns[c][i] / denom;
  }
}

PotentialGrad p2p_grad(const Vec3& point, std::span<const Vec3> positions,
                       std::span<const double> charges, double softening2) {
  PotentialGrad out;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 d = point - positions[i];
    const double r2 = norm2(d);
    if (r2 == 0.0) continue;
    const double inv_r = 1.0 / std::sqrt(r2 + softening2);
    const double inv_r3 = inv_r * inv_r * inv_r;
    out.potential += charges[i] * inv_r;
    // grad (q (r^2 + e^2)^{-1/2}) = -q r (r^2 + e^2)^{-3/2}
    out.gradient += d * (-charges[i] * inv_r3);
  }
  return out;
}

double p2p_dipole(const Vec3& point, std::span<const Vec3> positions,
                  std::span<const Vec3> moments) {
  double phi = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3 d = point - positions[i];
    const double r2 = norm2(d);
    if (r2 == 0.0) continue;
    const double inv_r = 1.0 / std::sqrt(r2);
    phi += dot(moments[i], d) * inv_r * inv_r * inv_r;
  }
  return phi;
}

}  // namespace treecode
