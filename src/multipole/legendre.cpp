#include "multipole/legendre.hpp"

#include <cassert>

namespace treecode {

void legendre_all(int p, double x, double s, std::span<double> P) {
  assert(P.size() >= tri_size(p));
  // Diagonal: P_m^m = (-1)^m (2m-1)!! s^m   (Condon-Shortley phase)
  double pmm = 1.0;
  for (int m = 0; m <= p; ++m) {
    P[tri_index(m, m)] = pmm;
    if (m + 1 <= p) {
      // First subdiagonal: P_{m+1}^m = x (2m+1) P_m^m
      P[tri_index(m + 1, m)] = x * (2 * m + 1) * pmm;
      // Column recurrence: (n-m) P_n^m = x (2n-1) P_{n-1}^m - (n+m-1) P_{n-2}^m
      for (int n = m + 2; n <= p; ++n) {
        P[tri_index(n, m)] = (x * (2 * n - 1) * P[tri_index(n - 1, m)] -
                              (n + m - 1) * P[tri_index(n - 2, m)]) /
                             (n - m);
      }
    }
    pmm *= -(2 * m + 1) * s;  // advance (-1)^m (2m-1)!! s^m to m+1
  }
}

void legendre_all_derivs(int p, double x, double s, std::span<double> P, std::span<double> T,
                         std::span<double> U) {
  assert(P.size() >= tri_size(p));
  assert(T.size() >= tri_size(p));
  assert(U.size() >= tri_size(p));
  // Diagonal trackers: pmm = (-1)^m (2m-1)!! s^m, and for m >= 1
  // umm = (-1)^m (2m-1)!! s^(m-1) = P_m^m / s without dividing by s.
  double pmm = 1.0;
  double umm = 0.0;  // unused at m = 0
  for (int m = 0; m <= p; ++m) {
    const std::size_t imm = tri_index(m, m);
    P[imm] = pmm;
    if (m == 0) {
      T[imm] = 0.0;
      U[imm] = 0.0;
    } else {
      // d/dtheta [c s^m] = m c s^(m-1) x  with c = (-1)^m (2m-1)!!
      T[imm] = m * x * umm;
      U[imm] = umm;
    }
    if (m + 1 <= p) {
      const std::size_t i1 = tri_index(m + 1, m);
      P[i1] = x * (2 * m + 1) * pmm;
      // d/dtheta [x (2m+1) P_m^m] = (2m+1)(-s P_m^m + x T_m^m)
      T[i1] = (2 * m + 1) * (-s * pmm + x * T[imm]);
      U[i1] = m == 0 ? 0.0 : x * (2 * m + 1) * U[imm];
      for (int n = m + 2; n <= p; ++n) {
        const std::size_t in = tri_index(n, m);
        const std::size_t in1 = tri_index(n - 1, m);
        const std::size_t in2 = tri_index(n - 2, m);
        const double inv = 1.0 / (n - m);
        P[in] = (x * (2 * n - 1) * P[in1] - (n + m - 1) * P[in2]) * inv;
        T[in] = ((2 * n - 1) * (-s * P[in1] + x * T[in1]) - (n + m - 1) * T[in2]) * inv;
        U[in] = m == 0 ? 0.0 : (x * (2 * n - 1) * U[in1] - (n + m - 1) * U[in2]) * inv;
      }
    }
    // Advance to m+1: new diagonal = -(2m+1) s * pmm; new U-diagonal
    // (-1)^(m+1) (2m+1)!! s^m = -(2m+1) * pmm.
    umm = -(2 * m + 1) * pmm;
    pmm *= -(2 * m + 1) * s;
  }
}

}  // namespace treecode
