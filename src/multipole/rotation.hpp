#pragma once

/// \file rotation.hpp
/// Rotation-accelerated translation operators.
///
/// The dense M2M/M2L/L2L translations of operators.hpp cost O(p^4). The
/// classical acceleration factors a general translation into
///
///     rotate the frame so the translation axis is +z   (O(p^3)),
///     translate along the z axis                        (O(p^3)),
///     rotate back                                       (O(p^3)),
///
/// because axial translations couple only coefficients of equal order m.
/// With the adaptive method pushing cluster degrees into the teens, the
/// p^4 -> p^3 step is a real constant-factor win for M2L-heavy FMM runs
/// (see bench_micro_operators).
///
/// Rotations use Wigner d-matrices in the same spherical-harmonic
/// convention as harmonics.hpp; the rotated operators are numerically
/// identical (to rounding) to the dense ones — tested coefficient by
/// coefficient.

#include <vector>

#include "geom/vec3.hpp"
#include "multipole/expansion.hpp"

namespace treecode {

/// Single Wigner d-matrix entry d^j_{m',m}(theta) by the explicit sum —
/// the O(j)-per-entry reference implementation used to seed the fast
/// recurrence and to validate it in tests.
double wigner_d_entry(int j, int mp, int m, double theta);

/// Wigner (small) d-matrices d^n_{m',m}(theta) for n = 0..p, packed
/// per degree: entry (m', m) of degree n lives at
/// offset(n) + (m'+n)*(2n+1) + (m+n).
class WignerD {
 public:
  /// Compute all matrices for degrees 0..p at angle theta.
  WignerD(int p, double theta);

  [[nodiscard]] int degree() const noexcept { return p_; }

  /// d^n_{m',m}. Preconditions: |m'| <= n, |m| <= n, n <= degree().
  [[nodiscard]] double at(int n, int mp, int m) const noexcept {
    return data_[offset_[static_cast<std::size_t>(n)] +
                 static_cast<std::size_t>(mp + n) * (2 * static_cast<std::size_t>(n) + 1) +
                 static_cast<std::size_t>(m + n)];
  }

 private:
  int p_ = 0;
  std::vector<std::size_t> offset_;
  std::vector<double> data_;
};

/// Rotate an expansion's coefficients into the frame whose +z axis points
/// along the direction (theta, phi) of the original frame ("forward"), or
/// back ("inverse"). Works for both multipole and local coefficient sets
/// (they transform identically). `coeffs` is the packed m >= 0 layout of
/// ExpansionBase; the conjugate symmetry is preserved.
enum class RotateDirection { kForward, kInverse };
void rotate_coefficients(detail::ExpansionBase& e, const WignerD& d, double phi,
                         RotateDirection direction);

/// Axial translations: centers separated by t along +z, i.e. the source
/// center sits at (0, 0, t) relative to the destination center. These are
/// the specializations of the dense operators to alpha = beta = 0 and are
/// exact in the same sense. All accumulate into `dst`.
void m2m_axial(const MultipoleExpansion& src, double t, MultipoleExpansion& dst);
void m2l_axial(const MultipoleExpansion& src, double t, LocalExpansion& dst);
void l2l_axial(const LocalExpansion& src, double t, LocalExpansion& dst);

/// Rotation-accelerated general translations: drop-in replacements for
/// m2m / m2l / l2l of operators.hpp (same signatures and semantics).
void m2m_rotated(const MultipoleExpansion& src, const Vec3& src_center,
                 MultipoleExpansion& dst, const Vec3& dst_center);
void m2l_rotated(const MultipoleExpansion& src, const Vec3& src_center, LocalExpansion& dst,
                 const Vec3& dst_center);
void l2l_rotated(const LocalExpansion& src, const Vec3& src_center, LocalExpansion& dst,
                 const Vec3& dst_center);

}  // namespace treecode
