#include "multipole/error_bounds.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "multipole/ipow.hpp"

namespace treecode {

double multipole_error_bound(double A, double a, double r, int p) {
  assert(A >= 0.0 && a >= 0.0 && p >= 0);
  if (r <= a) return std::numeric_limits<double>::infinity();
  return A / (r - a) * ipow(a / r, p + 1);
}

double mac_error_bound(double A, double r, double alpha, int p) {
  assert(A >= 0.0 && r > 0.0 && alpha > 0.0 && alpha < 1.0 && p >= 0);
  return A / r * ipow(alpha, p + 1) / (1.0 - alpha);
}

int adaptive_degree(double A, double A_ref, double alpha, int p_min, int p_max) {
  assert(alpha > 0.0 && alpha < 1.0);
  assert(p_min >= 0 && p_max >= p_min);
  if (A_ref <= 0.0 || A <= A_ref) return p_min;
  // Solve alpha^(p+1) * A <= alpha^(p_min+1) * A_ref for the smallest
  // integer p: p = p_min + ceil( log(A/A_ref) / log(1/alpha) ).
  const double extra = std::log(A / A_ref) / std::log(1.0 / alpha);
  const double p = static_cast<double>(p_min) + std::ceil(extra);
  if (p >= static_cast<double>(p_max)) return p_max;
  return static_cast<int>(p);
}

InteractionDistanceBounds interaction_distance_bounds(double alpha) {
  assert(alpha > 0.0 && alpha < 1.0);
  InteractionDistanceBounds b;
  // Accepted interaction with box of size d: the cluster's bounding sphere
  // has radius at most (sqrt(3)/2) d, and the MAC requires a/r <= alpha, so
  //   r >= a/alpha works only when a is known; the geometric worst case is
  //   r >= (sqrt(3)/2) d / alpha... but acceptance is tested on actual a,
  // so the *guaranteed* lower bound uses the tightest cluster (a -> 0+):
  // the traversal only reaches boxes whose parent was rejected, and the
  // parent box (size 2d) rejected means r' < (sqrt(3)/2)(2d)/alpha with
  // r' <= r + sqrt(3) d (particle-to-parent-center vs particle-to-child-
  // center differs by at most the parent's bounding radius).
  const double s3h = std::sqrt(3.0) / 2.0;
  b.lo = 0.0;                                     // acceptance alone gives r > 0
  b.hi = s3h * 2.0 / alpha + std::sqrt(3.0);       // (r/d) upper bound
  // A sharper practical lower bound: a box interacted with at all satisfies
  // r >= a_box/alpha >= 0; for *non-degenerate* clusters that fill their box
  // a is within a constant of d. We report the paper's tight-as-alpha->0
  // form with the cluster radius replaced by half the box size.
  b.lo = 0.5 / 1.0;  // r/d >= 1/2: eval point lies outside the box itself
  return b;
}

double max_interactions_per_level(double alpha) {
  const InteractionDistanceBounds b = interaction_distance_bounds(alpha);
  // Boxes of size d accepted by a particle have centers within radius
  // (hi + sqrt(3)/2) d; whole boxes lie within (hi + sqrt(3)) d. The count
  // is at most the annulus volume over the box volume d^3.
  const double outer = b.hi + std::sqrt(3.0);
  const double inner = std::max(0.0, b.lo - std::sqrt(3.0));
  const double volume = 4.0 / 3.0 * M_PI * (outer * outer * outer - inner * inner * inner);
  return volume;  // divided by d^3 = 1 in units of the box size
}

}  // namespace treecode
