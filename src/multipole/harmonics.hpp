#pragma once

/// \file harmonics.hpp
/// Spherical harmonics in the normalization used by Greengard & Rokhlin.
///
///   Y_n^m(theta, phi) = sqrt((n-|m|)! / (n+|m|)!) P_n^{|m|}(cos theta) e^{i m phi}
///
/// with the Condon-Shortley phase folded into P_n^m (see legendre.hpp).
/// Under this convention Y_n^{-m} = conj(Y_n^m), so all expansion types store
/// only m >= 0 coefficients.
///
/// Also provides the factorial table and the A_n^m = (-1)^n / sqrt((n-m)!(n+m)!)
/// combinatorial coefficients of the translation operators.

#include <complex>
#include <span>

#include "multipole/legendre.hpp"

namespace treecode {

using Complex = std::complex<double>;

/// Largest supported expansion degree. Factorials up to (2*kMaxDegree)! must
/// fit in a double; 60 keeps 120! ~ 6.7e198 comfortably below DBL_MAX.
inline constexpr int kMaxDegree = 60;

/// k! for k in [0, 2*kMaxDegree], from a precomputed table.
double factorial(int k) noexcept;

/// Translation coefficient A_n^m = (-1)^n / sqrt((n-m)! (n+m)!).
/// `m` may be negative (A is even in m). Precondition: |m| <= n <= kMaxDegree.
double a_coeff(int n, int m) noexcept;

/// Harmonic normalization sqrt((n-m)!/(n+m)!) for 0 <= m <= n.
double y_norm(int n, int m) noexcept;

/// i^k for any integer k (k may be negative).
Complex ipow(int k) noexcept;

/// Evaluate Y_n^m(theta, phi) for all 0 <= m <= n <= p into `Y`
/// (packed layout tri_index(n, m); size >= tri_size(p)).
void eval_harmonics(int p, double theta, double phi, std::span<Complex> Y);

/// Evaluate Y plus the two angular derivative arrays needed for gradients:
///   dY[n][m]     = d/dtheta Y_n^m(theta, phi)
///   Ysin[n][m]   = Y_n^m / sin(theta), computed pole-safely (0 for m = 0)
void eval_harmonics_derivs(int p, double theta, double phi, std::span<Complex> Y,
                           std::span<Complex> dY, std::span<Complex> Ysin);

}  // namespace treecode
