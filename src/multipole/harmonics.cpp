#include "multipole/harmonics.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <vector>

namespace treecode {

namespace {

constexpr int kFactTableSize = 2 * kMaxDegree + 1;

const std::array<double, kFactTableSize>& factorial_table() {
  static const std::array<double, kFactTableSize> table = [] {
    std::array<double, kFactTableSize> t{};
    t[0] = 1.0;
    for (int k = 1; k < kFactTableSize; ++k) t[k] = t[k - 1] * k;
    return t;
  }();
  return table;
}

/// e^{i m phi} for m = 0..p, computed by repeated multiplication.
void eval_phases(int p, double phi, std::vector<Complex>& e) {
  e.resize(static_cast<std::size_t>(p) + 1);
  const Complex step{std::cos(phi), std::sin(phi)};
  e[0] = Complex{1.0, 0.0};
  for (int m = 1; m <= p; ++m) e[static_cast<std::size_t>(m)] = e[static_cast<std::size_t>(m - 1)] * step;
}

}  // namespace

double factorial(int k) noexcept {
  assert(k >= 0 && k < kFactTableSize);
  return factorial_table()[static_cast<std::size_t>(k)];
}

double a_coeff(int n, int m) noexcept {
  const int am = m < 0 ? -m : m;
  assert(am <= n && n <= kMaxDegree);
  const double sign = (n % 2 == 0) ? 1.0 : -1.0;
  return sign / std::sqrt(factorial(n - am) * factorial(n + am));
}

double y_norm(int n, int m) noexcept {
  assert(0 <= m && m <= n && n <= kMaxDegree);
  return std::sqrt(factorial(n - m) / factorial(n + m));
}

Complex ipow(int k) noexcept {
  int r = k % 4;
  if (r < 0) r += 4;
  switch (r) {
    case 0:
      return {1.0, 0.0};
    case 1:
      return {0.0, 1.0};
    case 2:
      return {-1.0, 0.0};
    default:
      return {0.0, -1.0};
  }
}

void eval_harmonics(int p, double theta, double phi, std::span<Complex> Y) {
  assert(p >= 0 && p <= kMaxDegree);
  assert(Y.size() >= tri_size(p));
  const double x = std::cos(theta);
  const double s = std::sin(theta);
  thread_local std::vector<double> P;
  thread_local std::vector<Complex> phase;
  P.resize(tri_size(p));
  legendre_all(p, x, s, P);
  eval_phases(p, phi, phase);
  for (int n = 0; n <= p; ++n) {
    for (int m = 0; m <= n; ++m) {
      const std::size_t i = tri_index(n, m);
      Y[i] = y_norm(n, m) * P[i] * phase[static_cast<std::size_t>(m)];
    }
  }
}

void eval_harmonics_derivs(int p, double theta, double phi, std::span<Complex> Y,
                           std::span<Complex> dY, std::span<Complex> Ysin) {
  assert(p >= 0 && p <= kMaxDegree);
  assert(Y.size() >= tri_size(p));
  assert(dY.size() >= tri_size(p));
  assert(Ysin.size() >= tri_size(p));
  const double x = std::cos(theta);
  const double s = std::sin(theta);
  thread_local std::vector<double> P, T, U;
  thread_local std::vector<Complex> phase;
  P.resize(tri_size(p));
  T.resize(tri_size(p));
  U.resize(tri_size(p));
  legendre_all_derivs(p, x, s, P, T, U);
  eval_phases(p, phi, phase);
  for (int n = 0; n <= p; ++n) {
    for (int m = 0; m <= n; ++m) {
      const std::size_t i = tri_index(n, m);
      const Complex em = phase[static_cast<std::size_t>(m)];
      const double norm = y_norm(n, m);
      Y[i] = norm * P[i] * em;
      dY[i] = norm * T[i] * em;
      Ysin[i] = norm * U[i] * em;
    }
  }
}

}  // namespace treecode
