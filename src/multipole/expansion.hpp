#pragma once

/// \file expansion.hpp
/// Coefficient containers for multipole and local expansions.
///
/// Both expansions of a real charge distribution satisfy
/// C_n^{-m} = conj(C_n^m), so only m >= 0 coefficients are stored, in the
/// packed triangular layout of tri_index(). Degrees vary *per tree node* in
/// the adaptive method, so the containers carry their own degree.

#include <complex>
#include <vector>

#include "multipole/harmonics.hpp"

namespace treecode {

namespace detail {

/// Shared storage/indexing for both expansion flavors.
class ExpansionBase {
 public:
  ExpansionBase() = default;
  explicit ExpansionBase(int degree) : degree_(degree), coeff_(tri_size(degree)) {}

  /// Truncation degree p; valid orders are 0..p. -1 means "empty/unset".
  [[nodiscard]] int degree() const noexcept { return degree_; }

  /// Number of stored (m >= 0) complex coefficients.
  [[nodiscard]] std::size_t size() const noexcept { return coeff_.size(); }

  /// Total number of real/complex terms (n, m) with |m| <= n <= p — the
  /// "multipole terms" unit the paper counts for serial complexity.
  [[nodiscard]] long long term_count() const noexcept {
    return static_cast<long long>(degree_ + 1) * (degree_ + 1);
  }

  /// Coefficient for m >= 0. Precondition: 0 <= m <= n <= degree().
  [[nodiscard]] Complex coeff(int n, int m) const noexcept { return coeff_[tri_index(n, m)]; }
  Complex& coeff(int n, int m) noexcept { return coeff_[tri_index(n, m)]; }

  /// Coefficient for any m in [-n, n], using the conjugate symmetry.
  /// Returns 0 for orders beyond the truncation degree, which makes the
  /// translation operators naturally handle sources of lower degree.
  [[nodiscard]] Complex coeff_signed(int n, int m) const noexcept {
    if (n > degree_) return {0.0, 0.0};
    if (m >= 0) return coeff_[tri_index(n, m)];
    return std::conj(coeff_[tri_index(n, -m)]);
  }

  /// Zero all coefficients, keeping the degree.
  void clear() noexcept {
    for (auto& c : coeff_) c = Complex{0.0, 0.0};
  }

  /// Reset to a (possibly different) degree with zeroed coefficients.
  void reset(int degree) {
    degree_ = degree;
    coeff_.assign(tri_size(degree), Complex{0.0, 0.0});
  }

  [[nodiscard]] const std::vector<Complex>& data() const noexcept { return coeff_; }
  [[nodiscard]] std::vector<Complex>& data() noexcept { return coeff_; }

 protected:
  int degree_ = -1;
  std::vector<Complex> coeff_;
};

}  // namespace detail

/// Truncated multipole (outer) expansion: Phi(P) = sum M_n^m Y_n^m / r^(n+1).
/// Valid outside the sphere containing the sources.
class MultipoleExpansion : public detail::ExpansionBase {
 public:
  using ExpansionBase::ExpansionBase;
};

/// Truncated local (inner) expansion: Phi(P) = sum L_n^m Y_n^m r^n.
/// Valid inside a sphere free of sources.
class LocalExpansion : public detail::ExpansionBase {
 public:
  using ExpansionBase::ExpansionBase;
};

}  // namespace treecode
