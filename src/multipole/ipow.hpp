#pragma once

/// \file ipow.hpp
/// Integer-exponent power by squaring.
///
/// The error-bound kernels raise ratios to the (p+1)-th power for every
/// accepted interaction, and std::pow with an integer exponent routes
/// through the general exp/log machinery — an order of magnitude slower
/// than the O(log p) multiply chain below and the thing
/// scripts/treecode_lint.py's `pow-integer-exponent` rule exists to catch.

namespace treecode {

/// base^n for integer n (negative n yields 1 / base^(-n)).
[[nodiscard]] constexpr double ipow(double base, int n) noexcept {
  if (n < 0) return 1.0 / ipow(base, -n);
  double result = 1.0;
  while (n > 0) {
    if ((n & 1) != 0) result *= base;
    base *= base;
    n >>= 1;
  }
  return result;
}

}  // namespace treecode
