#pragma once

/// \file error_bounds.hpp
/// The paper's error analysis, as executable formulas.
///
/// Theorem 1 (Greengard & Rokhlin): for charges of total absolute magnitude
/// A inside a sphere of radius a about the expansion center, the degree-p
/// multipole series evaluated at distance r > a satisfies
///
///     |Phi - Phi_p| <= A / (r - a) * (a / r)^(p+1).
///
/// Theorem 2: under the alpha-MAC (a / r <= alpha < 1) this becomes
///
///     |Phi - Phi_p| <= A / r * alpha^(p+1) / (1 - alpha).
///
/// Theorem 3: equalizing the Theorem-2 bound between a cluster of charge A
/// and the reference cluster of charge A_ref evaluated with degree p_min
/// yields the adaptive degree
///
///     p(A) = p_min + ceil( log(A / A_ref) / log(1 / alpha) ).
///
/// Lemma 1 bounds the distance-to-box-size ratio of any accepted
/// interaction; Lemma 2 turns it into a constant bound K(alpha) on the
/// number of accepted interactions per particle per box size.

#include <cstdint>

namespace treecode {

/// Theorem 1: truncation error bound of a degree-p multipole expansion.
/// Preconditions: A >= 0, 0 <= a < r, p >= 0. Returns +inf if r <= a.
double multipole_error_bound(double A, double a, double r, int p);

/// Theorem 2: interaction error bound under the alpha-criterion.
/// Preconditions: A >= 0, r > 0, 0 < alpha < 1, p >= 0.
double mac_error_bound(double A, double r, double alpha, int p);

/// Theorem 3: smallest integer degree >= p_min whose Theorem-2 bound for
/// charge A does not exceed the bound for charge A_ref at degree p_min.
/// Clamped to [p_min, p_max]. A <= A_ref or A_ref <= 0 returns p_min.
int adaptive_degree(double A, double A_ref, double alpha, int p_min, int p_max);

/// Lemma 1: bounds on r / d for an accepted interaction between a particle
/// and a box of size d (the particle failed the MAC for the parent box).
/// `lo` is the MAC itself (r >= d/(2 alpha) for a cubic cell whose bounding
/// radius is d sqrt(3)/2... see .cpp for the exact geometry used); `hi`
/// follows from the triangle inequality through the parent box.
struct InteractionDistanceBounds {
  double lo = 0.0;
  double hi = 0.0;
};
InteractionDistanceBounds interaction_distance_bounds(double alpha);

/// Lemma 2: upper bound K(alpha) on the number of boxes of one size whose
/// interaction a single particle can accept: the volume of the annulus
/// allowed by Lemma 1 (inflated by one box diagonal so whole boxes fit)
/// divided by the box volume.
double max_interactions_per_level(double alpha);

}  // namespace treecode
