#pragma once

/// \file operators.hpp
/// The multipole operator set: P2M, M2M, M2L, L2L, M2P, L2P, P2P.
///
/// Conventions (Greengard & Rokhlin; see harmonics.hpp):
///  * multipole expansion about center c:
///      Phi(P) = sum_{n<=p} sum_{|m|<=n} M_n^m Y_n^m(theta,phi) / r^(n+1),
///      M_n^m = sum_i q_i rho_i^n Y_n^{-m}(alpha_i, beta_i),
///    where (rho_i, alpha_i, beta_i) are spherical coordinates of source i
///    about c and (r, theta, phi) those of the evaluation point P.
///  * local expansion about center c:
///      Phi(P) = sum_{n<=p} sum_{|m|<=n} L_n^m Y_n^m(theta,phi) r^n.
///
/// Translations are the classical O(p^4) operators (Greengard's Lemmas
/// 3.2.3-3.2.5). M2M is *exact* order-by-order: shifted coefficients of
/// degree <= p depend only on source coefficients of degree <= p. M2L and
/// L2L are exact given the truncated source. Sources of lower degree than
/// the target are handled transparently (missing orders read as zero).

#include <span>

#include "geom/vec3.hpp"
#include "multipole/expansion.hpp"

namespace treecode {

// ---------------------------------------------------------------------------
// Particle -> multipole

/// Accumulate the multipole expansion of point charges about `center` into
/// `out` (which fixes the degree). Positions/charges are parallel spans.
void p2m(const Vec3& center, std::span<const Vec3> positions, std::span<const double> charges,
         MultipoleExpansion& out);

/// Accumulate the multipole expansion of point *dipoles* about `center`:
/// source i contributes the field d_i . grad_y (1/|x - y_i|), i.e. the
/// coefficients are M_n^m += d_i . grad_y [rho^n Y_n^{-m}(y)] — the
/// derivative of the regular solid harmonic at the source, computed with
/// the pole-safe Legendre-derivative recurrences. Used by the double-layer
/// (second-kind) boundary operator.
void p2m_dipole(const Vec3& center, std::span<const Vec3> positions,
                std::span<const Vec3> moments, MultipoleExpansion& out);

// ---------------------------------------------------------------------------
// Translations

/// Shift `src` (about src_center) and accumulate into `dst` (about
/// dst_center). Exact for orders <= min(src.degree, dst.degree); if
/// dst.degree > src.degree the missing source orders contribute nothing
/// (the usual truncation of the adaptive method).
void m2m(const MultipoleExpansion& src, const Vec3& src_center, MultipoleExpansion& dst,
         const Vec3& dst_center);

/// Convert `src` (multipole about src_center) into a local expansion about
/// dst_center, accumulating into `dst`. Requires the evaluation sphere of
/// `dst` to be well-separated from the source sphere (caller enforces the
/// MAC); degree of the internal harmonics is src.degree + dst.degree.
void m2l(const MultipoleExpansion& src, const Vec3& src_center, LocalExpansion& dst,
         const Vec3& dst_center);

/// Shift the local expansion `src` (about src_center) to dst_center,
/// accumulating into `dst`. Exact (triangular in the opposite direction of
/// m2m).
void l2l(const LocalExpansion& src, const Vec3& src_center, LocalExpansion& dst,
         const Vec3& dst_center);

// ---------------------------------------------------------------------------
// Evaluations

/// Potential and (optionally) its gradient at one point.
struct PotentialGrad {
  double potential = 0.0;
  Vec3 gradient{};  ///< grad Phi; the force on a unit charge is -grad Phi.
};

/// Evaluate the multipole expansion at `point` (outside the source sphere).
double m2p(const MultipoleExpansion& m, const Vec3& center, const Vec3& point);

// ---------------------------------------------------------------------------
// Precomputed evaluation basis
//
// The m2p kernel factors into a charge-independent geometric basis
// (1/r and the spherical harmonics Y_n^m of the target direction — the
// expensive transcendentals and recurrences) and a cheap dot product with
// the multipole coefficients. For repeated evaluations over fixed geometry
// (compiled traversal plans), the basis can be computed once and replayed:
// m2p_apply_basis performs the identical floating-point operations on the
// identical stored doubles, so its result is bitwise-equal to m2p().

/// Doubles needed to store the m2p basis for degree p:
/// 1 (for 1/r) + 2 * tri_size(p) (interleaved re/im of Y_n^m).
[[nodiscard]] std::size_t m2p_basis_size(int p) noexcept;

/// Fill `out` (size >= m2p_basis_size(p)) with the evaluation basis of
/// `point` relative to `center`. Precondition: point != center.
void m2p_basis(int p, const Vec3& center, const Vec3& point, std::span<double> out);

/// Evaluate the expansion against a basis previously filled by m2p_basis()
/// with p == m.degree(). Bitwise-identical to m2p(m, center, point).
double m2p_apply_basis(const MultipoleExpansion& m, const double* basis) noexcept;

/// The same factorization for p2m: per source particle the charge enters
/// through exactly two multiplies (q * rho^n, then the scale of conj(Y)),
/// so the rho powers and conjugated harmonics can be stored once per
/// (node, particle) and replayed for every new charge vector.

/// Doubles needed for the p2m basis of `count` particles at degree p:
/// count * ((p + 1) rho powers + 2 * tri_size(p) conj(Y) re/im pairs).
[[nodiscard]] std::size_t p2m_basis_size(int p, std::size_t count) noexcept;

/// Fill `out` (size >= p2m_basis_size(p, positions.size())) with the p2m
/// basis of the particles relative to `center`.
void p2m_basis(int p, const Vec3& center, std::span<const Vec3> positions,
               std::span<double> out);

/// Accumulate the particles' multipole contributions from a basis filled by
/// p2m_basis() with p == out.degree() and the same particle count/order.
/// Bitwise-identical to p2m(center, positions, charges, out).
void p2m_apply_basis(std::span<const double> charges, const double* basis,
                     MultipoleExpansion& out) noexcept;

/// Evaluate potential and analytic gradient of the multipole expansion.
PotentialGrad m2p_grad(const MultipoleExpansion& m, const Vec3& center, const Vec3& point);

/// Evaluate the local expansion at `point` (inside its validity sphere).
double l2p(const LocalExpansion& l, const Vec3& center, const Vec3& point);

/// Evaluate potential and analytic gradient of the local expansion.
PotentialGrad l2p_grad(const LocalExpansion& l, const Vec3& center, const Vec3& point);

// ---------------------------------------------------------------------------
// Direct kernels

/// Potential at `point` due to charges, by direct summation of
/// q / sqrt(|r|^2 + softening2). `softening2` is the square of the Plummer
/// softening length (0 = exact Coulomb/Newton kernel, the default used by
/// the error analysis; n-body integrations use a small epsilon to bound
/// close-encounter forces). Sources located exactly at `point` are skipped
/// (self-interaction rule) regardless of softening.
double p2p(const Vec3& point, std::span<const Vec3> positions, std::span<const double> charges,
           double softening2 = 0.0);

/// Multi-RHS direct summation: potentials at `point` against the same
/// particle set for several charge columns at once, accumulated into `out`
/// (out.size() == charge_columns.size(); out[c] is *overwritten*). Each
/// column performs the identical per-particle division on the identical
/// operands in the identical order as p2p() would on that column alone, so
/// out[c] is bitwise-equal to p2p(point, positions, charge_columns[c],
/// softening2). The positions/distances are computed once and shared across
/// columns — the arithmetic-intensity win of batched replay.
void p2p_batch(const Vec3& point, std::span<const Vec3> positions,
               std::span<const std::span<const double>> charge_columns,
               double softening2, std::span<double> out);

/// Potential and gradient at `point` by direct summation (softened as p2p).
PotentialGrad p2p_grad(const Vec3& point, std::span<const Vec3> positions,
                       std::span<const double> charges, double softening2 = 0.0);

/// Potential at `point` due to point dipoles, by direct summation of
/// d_i . (point - y_i) / |point - y_i|^3. Coincident sources are skipped.
double p2p_dipole(const Vec3& point, std::span<const Vec3> positions,
                  std::span<const Vec3> moments);

}  // namespace treecode
