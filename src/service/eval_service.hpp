#pragma once

/// \file eval_service.hpp
/// Long-lived, in-process, multi-tenant evaluation service over
/// EvalSession + PlanCache — the ROADMAP's serving layer.
///
/// A tenant registers a geometry once: the service builds a dedicated
/// EvalSession (tree, Theorem-3 degree table, thread pool, governor) and
/// compiles the tenant's interaction plan into the session's cache. From
/// then on the tenant submits charge vectors; a scheduler coalesces queued
/// requests that share the plan into one **blocked multi-RHS replay**
/// (EvalSession::try_evaluate_batch), which walks the frozen entry stream
/// once per column block instead of once per request. Each coalesced
/// column is bitwise-identical to the single-RHS replay it replaces, so
/// batching is purely a throughput decision — batch composition can never
/// change a tenant's numbers.
///
/// ## Admission control and backpressure
///
/// Every submission is admitted or rejected synchronously, with a typed
/// Expected error — the service boundary never throws:
///   kInvalidArgument  unknown tenant, wrong charge-vector size
///   kNonFinite        non-finite charges (counted against the tenant's
///                     error budget; caught at admission so one tenant's
///                     bad input can never poison a coalesced batch)
///   kRejected         queue at max_queue_depth (deterministic
///                     backpressure), tenant quarantined (error budget
///                     exhausted), or tenant shutting down
/// Memory quotas ride on each tenant session's ResourceGovernor
/// (EvalConfig::memory_budget_bytes): a tenant over budget degrades or
/// fails *inside its own session* without touching its neighbours.
///
/// Every rejection and error increments both the aggregate service.*
/// counters and the per-tenant `service.<counter>.<tenant>` fan-out
/// series, and every entry point emits one telemetry RequestRecord
/// (Api::kServiceRegister/kServiceSubmit/kServiceUnregister), so the SLO
/// watchdog can hold per-tenant objectives (see slo_rules()).
///
/// ## Threading model
///
/// Public entry points are safe to call from any thread. With
/// Options::start_scheduler (the default) a background scheduler thread
/// drains queues; with it off, the owner drives batches synchronously via
/// pump() — the mode the deterministic tests use. Evaluation runs outside
/// the service mutex (each session parallelizes over its own pool); the
/// mutex only guards tenant-table and queue state.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dist/particle_system.hpp"
#include "engine/eval_session.hpp"
#include "obs/httpd.hpp"
#include "obs/json.hpp"
#include "obs/reqtrace.hpp"
#include "obs/slo.hpp"
#include "util/expected.hpp"

namespace treecode::service {

namespace detail {
/// Shared completion slot behind a Ticket: filled exactly once by the
/// scheduler (or by cancellation), waited on by the submitter.
struct RequestState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::unique_ptr<Expected<EvalResult>> result;
};
}  // namespace detail

/// In-process multi-tenant evaluation service.
class EvalService {
 public:
  /// Per-tenant registration settings.
  struct TenantOptions {
    EvalConfig eval;   ///< treecode settings; memory_budget_bytes = quota
    TreeConfig tree;   ///< octree settings over the tenant's particles
    /// Session tuning (plan cache capacity, basis budgets).
    engine::EvalSession::Options session;
    /// Most columns coalesced into one batched replay (clamped to [1, 8] —
    /// the engine's SoA register block).
    std::size_t max_batch_width = 8;
    /// Queued (admitted, unserved) requests allowed before submissions are
    /// rejected with kRejected — deterministic backpressure.
    std::size_t max_queue_depth = 64;
    /// Failed requests (non-finite submissions, evaluation errors) the
    /// tenant may accumulate before it is quarantined (subsequent submits
    /// rejected with kRejected). 0 = never quarantine.
    std::uint64_t error_budget = 0;
    /// Submit-to-fulfill latency objective in seconds. When > 0: requests
    /// slower than this are tail-kept by the request tracer (reason "slo"),
    /// and slo_rules() adds a p99 objective over the tenant's
    /// `service.<tenant>.request_seconds` histogram. 0 = no objective.
    double latency_slo_seconds = 0.0;
  };

  struct Options {
    /// Run the background scheduler thread. Off = the owner drives
    /// batches with pump() (deterministic, single-threaded scheduling).
    bool start_scheduler = true;
  };

  /// Handle to one admitted request. wait() blocks until the scheduler
  /// serves, fails, or cancels it, and returns the typed result exactly
  /// once (second wait on the same ticket yields kInvalidArgument).
  class Ticket {
   public:
    Ticket() = default;
    [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
    /// Block until completion; moves the result out.
    [[nodiscard]] Expected<EvalResult> wait();

   private:
    friend class EvalService;
    explicit Ticket(std::shared_ptr<detail::RequestState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<detail::RequestState> state_;
  };

  EvalService() : EvalService(Options{}) {}
  explicit EvalService(const Options& options);
  /// Stops the scheduler, cancels every queued request (kCancelled), and
  /// tears down all tenant sessions.
  ~EvalService();
  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Register `name` (lower-case [a-z0-9_-], unique): builds the tenant's
  /// session over `particles` and compiles its plan for `targets`
  /// (empty targets = the tenant's own particles, self-evaluation plan;
  /// results then come back in the particle order of `particles`).
  /// Errors: kInvalidArgument (bad name, duplicate, invalid config or
  /// geometry), kMemoryBudget/kFaultInjected if the plan cannot be
  /// afforded under the tenant's quota.
  [[nodiscard]] Expected<void> try_register_tenant(const std::string& name,
                                                   ParticleSystem particles,
                                                   std::vector<Vec3> targets,
                                                   const TenantOptions& options);

  /// Admit one charge vector (tenant's original particle order). Returns a
  /// Ticket immediately; the evaluation happens when the scheduler (or
  /// pump()) coalesces the queue into a batch. See the file comment for
  /// the admission taxonomy.
  [[nodiscard]] Expected<Ticket> try_submit(const std::string& name,
                                            std::span<const double> charges);

  /// Remove a tenant: waits for its in-flight batch, completes every
  /// queued request with kCancelled, and destroys its session — releasing
  /// its governor reservations and withdrawing its plan/basis bytes from
  /// the engine.plan_bytes / engine.basis_bytes gauges in the same step.
  [[nodiscard]] Expected<void> try_unregister_tenant(const std::string& name);

  /// Drive one scheduler round synchronously: pick the next tenant
  /// (round-robin), coalesce up to max_batch_width queued requests, run
  /// the batched replay, fulfill the tickets. Returns the number of
  /// requests completed (0 = nothing ready). Safe alongside the
  /// background scheduler, though normally one or the other drives.
  std::size_t pump();

  /// Tenants currently registered.
  [[nodiscard]] std::size_t num_tenants() const;

  /// Service state as a `treecode-service/v1` document: scheduler status
  /// and one block per tenant (queue depth, busy/quarantined flags,
  /// request accounting, batch occupancy, plan key/bytes, governor
  /// ledger). What `treecode-inspect --service` prints.
  [[nodiscard]] obs::Json state_json() const;

  /// Per-tenant SLO objectives over the fan-out counters — for each
  /// registered tenant: rejected share and error share of its submissions
  /// (counter ratios), plus the aggregate service error rate, plus a p99
  /// latency objective for tenants with latency_slo_seconds > 0.
  [[nodiscard]] std::vector<obs::slo::Rule> slo_rules() const;

  /// Start the live observability endpoint on 127.0.0.1:`port` (0 =
  /// ephemeral): GET /metrics (OpenMetrics), /healthz (engine + service
  /// SLO status, 503 on breach), /state (state_json document), /traces?n=K
  /// (retained request traces as treecode-trace/v1 JSONL). Returns the
  /// bound port. Not a try_* entry point: serving scrapes is control
  /// plane, not request flow, so it emits no telemetry record.
  [[nodiscard]] Expected<std::uint16_t> start_http(std::uint16_t port);

  /// Stop the observability endpoint. Idempotent; also run by ~EvalService
  /// before teardown (handlers read service state).
  void stop_http();

  /// Bound endpoint port (0 = not running).
  [[nodiscard]] std::uint16_t http_port() const noexcept;

 private:
  struct Request {
    std::vector<double> charges;
    std::shared_ptr<detail::RequestState> state;
    obs::reqtrace::TraceContext trace;  ///< minted at try_submit admission
    std::int64_t submit_us = 0;   ///< reqtrace clock at submit entry
    std::int64_t enqueue_us = 0;  ///< reqtrace clock at queue push
    /// Wall clock at admission, for latency/queue-wait metrics (valid even
    /// when tracing is compiled out).
    std::chrono::steady_clock::time_point submitted_at;
  };

  struct Tenant {
    TenantOptions options;
    std::unique_ptr<engine::EvalSession> session;
    std::shared_ptr<const engine::EvalPlan> plan;
    std::deque<Request> queue;
    bool busy = false;       ///< a batch is evaluating outside the lock
    bool closing = false;    ///< unregister in progress: reject new work
    bool quarantined = false;
    std::size_t source_size = 0;  ///< expected charge-vector length
    std::uint64_t submitted = 0;
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t errors = 0;
    std::uint64_t batches = 0;
    std::uint64_t batch_columns = 0;
    std::size_t max_batch_seen = 0;
  };

  Expected<void> try_register_tenant_impl(const std::string& name,
                                          ParticleSystem particles,
                                          std::vector<Vec3> targets,
                                          const TenantOptions& options);
  Expected<Ticket> try_submit_impl(const std::string& name,
                                   std::span<const double> charges,
                                   obs::reqtrace::RequestScope& rscope);
  Expected<void> try_unregister_tenant_impl(const std::string& name);
  /// Complete `pending` with kCancelled (`message`), finishing each
  /// request's trace with an error verdict so cancellations are tail-kept.
  void cancel_pending(std::vector<Request>& pending, const char* message);
  /// One coalesce-evaluate-fulfill round; the body behind pump() and the
  /// scheduler thread.
  std::size_t run_round();
  /// Round-robin pick of the next tenant with ready work. Caller holds mu_.
  Tenant* pick_next_locked(std::string& name_out);
  /// True when some tenant has ready work. Caller holds mu_.
  [[nodiscard]] bool any_ready_locked() const;
  void scheduler_main();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< submissions -> scheduler
  std::condition_variable idle_cv_;  ///< batch completion -> unregister
  std::map<std::string, Tenant> tenants_;
  std::string rr_cursor_;  ///< name of the last tenant served
  std::uint64_t rounds_ = 0;
  bool stop_ = false;
  std::thread scheduler_;
  std::unique_ptr<obs::httpd::Server> http_;
};

}  // namespace treecode::service
