#pragma once

/// \file bem_tenant.hpp
/// SingleLayerOperator re-hosted as an EvalService tenant: the BEM matvec
/// becomes "just another client" of the shared serving layer.
///
/// Registration inserts the mesh's Gauss points as the tenant geometry and
/// compiles the plan for the mesh vertices; each apply() builds the
/// weighted Gauss charges exactly as SingleLayerOperator's gather does and
/// submits them as one request. Because the service's batched replay is
/// bitwise-identical per column to the single-RHS path, a GMRES solve
/// through this operator reproduces SingleLayerOperator::apply() bit for
/// bit — while its matvecs coalesce with other tenants' traffic.

#include <span>
#include <string>
#include <vector>

#include "bem/mesh.hpp"
#include "bem/quadrature.hpp"
#include "core/config.hpp"
#include "linalg/operator.hpp"
#include "service/eval_service.hpp"

namespace treecode::service {

/// LinearOperator adapter: y = A x served through an EvalService tenant.
class BemTenantOperator final : public LinearOperator {
 public:
  struct Options {
    EvalConfig eval;       ///< treecode settings for the tenant session
    int gauss_points = 6;  ///< per-element rule (the paper uses 6)
    TreeConfig tree;       ///< octree settings over the Gauss points
  };

  /// Registers tenant `name` on `service` with the mesh's Gauss points as
  /// sources and its vertices as targets. Throws (via value_or_throw) if
  /// registration is refused — construction is the one boundary where the
  /// caller has no ticket to carry a typed error.
  BemTenantOperator(EvalService& service, std::string name,
                    const TriangleMesh& mesh, const Options& options);
  /// Unregisters the tenant (best effort; the service may already be gone
  /// from its own shutdown path).
  ~BemTenantOperator() override;
  BemTenantOperator(const BemTenantOperator&) = delete;
  BemTenantOperator& operator=(const BemTenantOperator&) = delete;

  [[nodiscard]] std::size_t rows() const override { return mesh_.num_vertices(); }
  [[nodiscard]] std::size_t cols() const override { return mesh_.num_vertices(); }

  /// Submit one matvec and wait for it. Failures surface via
  /// value_or_throw (GMRES has no typed-error channel).
  void apply(std::span<const double> x, std::span<double> y) const override;

  [[nodiscard]] const std::string& tenant() const noexcept { return name_; }
  [[nodiscard]] std::size_t num_sources() const noexcept { return quad_points_.size(); }

 private:
  EvalService& service_;
  std::string name_;
  const TriangleMesh& mesh_;
  std::vector<MeshQuadPoint> quad_points_;
};

}  // namespace treecode::service
