#include "service/eval_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "engine/introspect.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/openmetrics.hpp"
#include "obs/spans.hpp"
#include "obs/telemetry.hpp"
#include "util/timer.hpp"
#include "util/validate.hpp"

namespace treecode::service {

namespace {

/// Per-tenant fan-out series name: `<base>.<tenant>`. Non-literal by
/// construction, so the metric-name-literal lint exemption applies; the
/// base constants live in obs/metric_names.hpp.
std::string tenant_metric(const char* base, const std::string& tenant) {
  return std::string(base) + "." + tenant;
}

/// Per-tenant latency series name: the tenant slots in after the
/// "service." prefix — `service.<tenant>.request_seconds` — so a tenant's
/// latency histograms group as their own OpenMetrics subsystem.
std::string service_tenant_metric(const char* base, const std::string& tenant) {
  constexpr std::string_view prefix = "service.";
  return std::string(prefix) + tenant + "." + (base + prefix.size());
}

std::span<const double> request_seconds_bounds() {
  // Same decades as telemetry.request_seconds: coalesced serves cluster
  // around milliseconds, but queue wait under load pushes the p99 out.
  static const std::vector<double> bounds =
      obs::exponential_buckets(1e-6, 4.0, 16);
  return bounds;
}

std::span<const double> deadline_slack_bounds() {
  // Slack goes negative exactly when the deadline was missed, so the
  // buckets must straddle zero; symmetric coarse decades around it.
  static const std::vector<double> bounds = {-10.0, -1.0, -0.1, -0.01, 0.0,
                                             0.01,  0.1,  1.0,  10.0,  100.0};
  return bounds;
}

/// Construct a service Error, counting it on the aggregate error series.
/// Rejections (backpressure, quarantine) go through service_rejection
/// instead — they are flow control, not failures, and feed a separate
/// counter so SLO error-rate objectives do not fire on load shedding.
Error service_error(ErrorCode code, std::string message) {
  obs::registry().counter(obs::metric::kServiceErrors).add(1);
  return Error{code, std::move(message)};
}

/// Construct the typed backpressure Error, counting the rejection on the
/// aggregate and per-tenant series.
Error service_rejection(const std::string& tenant, std::string message) {
  obs::registry().counter(obs::metric::kServiceRejected).add(1);
  obs::registry()
      .counter(tenant_metric(obs::metric::kServiceRejected, tenant))
      .add(1);
  return Error{ErrorCode::kRejected, std::move(message)};
}

/// Emit one telemetry RequestRecord at a service entry point's exit,
/// mirroring the engine's emit_request contract: service.requests is
/// counted unconditionally (the per-tenant SLO denominators divide by it),
/// the record itself only while telemetry is enabled.
void emit_request(obs::telemetry::Api api, std::uint64_t plan_key, double wall,
                  bool ok, ErrorCode code, std::uint32_t batch_width,
                  obs::reqtrace::RequestScope& scope) {
  obs::registry().counter(obs::metric::kServiceRequests).add(1);
  obs::reqtrace::Verdict verdict;
  verdict.ok = ok;
  verdict.error_code = static_cast<std::uint8_t>(code);
  verdict.deadline_missed = code == ErrorCode::kDeadline;
  verdict.wall_seconds = wall;
  scope.finish(verdict);  // no-op when the scope was released at admission
  if (!obs::telemetry::enabled()) return;
  obs::telemetry::RequestRecord r;
  r.api = api;
  r.plan_key = plan_key;
  r.outcome = static_cast<std::uint8_t>(code);
  r.outcome_name = error_code_name(code);
  r.ok = ok;
  r.wall_seconds = wall;
  r.batch_width = batch_width;
  r.trace_hi = scope.context().trace_hi;
  r.trace_lo = scope.context().trace_lo;
  obs::telemetry::emit(r);
}

/// One Api::kServiceServe record per coalesced request at fulfillment —
/// where the v2 fields (trace id, queue wait, scheduler round) carry real
/// values. Not an entry point: it neither counts service.requests nor owns
/// a trace scope (run_round finishes the request's trace itself).
void emit_served(std::uint64_t plan_key, double wall, bool ok, ErrorCode code,
                 std::int8_t rung, std::uint64_t targets, double deadline_slack,
                 double queue_wait, std::uint64_t batch_seq,
                 std::uint32_t batch_width, std::uint32_t threads,
                 const obs::reqtrace::TraceContext& trace) {
  if (!obs::telemetry::enabled()) return;
  obs::telemetry::RequestRecord r;
  r.api = obs::telemetry::Api::kServiceServe;
  r.plan_key = plan_key;
  r.rung = rung;
  r.outcome = static_cast<std::uint8_t>(code);
  r.outcome_name = error_code_name(code);
  r.ok = ok;
  r.wall_seconds = wall;
  r.targets = targets;
  r.deadline_slack_seconds = deadline_slack;
  r.threads = threads;
  r.batch_width = batch_width;
  r.trace_hi = trace.trace_hi;
  r.trace_lo = trace.trace_lo;
  r.queue_wait_seconds = queue_wait;
  r.batch_seq = batch_seq;
  obs::telemetry::emit(r);
}

/// Complete one request exactly once and wake its waiter. Called with no
/// service lock held (the state has its own mutex).
void fulfill(const std::shared_ptr<detail::RequestState>& state,
             Expected<EvalResult> result) {
  {
    const std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::make_unique<Expected<EvalResult>>(std::move(result));
    state->done = true;
  }
  state->cv.notify_all();
}

bool valid_tenant_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
                    ch == '_' || ch == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Expected<EvalResult> EvalService::Ticket::wait() {
  if (state_ == nullptr) {
    return Error{ErrorCode::kInvalidArgument, "EvalService: empty ticket"};
  }
  const std::shared_ptr<detail::RequestState> state = std::move(state_);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done; });
  std::unique_ptr<Expected<EvalResult>> result = std::move(state->result);
  lock.unlock();
  if (result == nullptr) {
    return Error{ErrorCode::kInvalidArgument,
                 "EvalService: ticket result already taken"};
  }
  return std::move(*result);
}

EvalService::EvalService(const Options& options) : options_(options) {
  if (options_.start_scheduler) {
    scheduler_ = std::thread([this] { scheduler_main(); });
  }
}

EvalService::~EvalService() {
  stop_http();  // handlers read service state; stop them before teardown
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();

  // Cancel everything still queued, then let the tenant map tear the
  // sessions down (each PlanCache withdraws its gauge contribution and
  // returns its reservations).
  std::vector<Request> pending;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, tenant] : tenants_) {
      for (Request& request : tenant.queue) {
        pending.push_back(std::move(request));
      }
      tenant.queue.clear();
    }
  }
  if (!pending.empty()) {
    obs::registry().counter(obs::metric::kServiceCancelled).add(pending.size());
  }
  cancel_pending(pending, "EvalService: service shut down");
}

void EvalService::cancel_pending(std::vector<Request>& pending,
                                 const char* message) {
  const std::int64_t now = obs::reqtrace::now_us();
  for (Request& request : pending) {
    // Close the root span at cancellation and run the tail decision with
    // an error verdict: every cancelled request's trace is retained.
    obs::reqtrace::record_span(request.trace, obs::span::kServiceRequest,
                               obs::reqtrace::SpanKind::kRequest,
                               request.submit_us, now);
    obs::reqtrace::Verdict verdict;
    verdict.ok = false;
    verdict.error_code = static_cast<std::uint8_t>(ErrorCode::kCancelled);
    obs::reqtrace::finish_request(request.trace, verdict);
    fulfill(request.state, Error{ErrorCode::kCancelled, message});
  }
}

Expected<void> EvalService::try_register_tenant(const std::string& name,
                                                ParticleSystem particles,
                                                std::vector<Vec3> targets,
                                                const TenantOptions& options) {
  const Timer timer;
  obs::reqtrace::RequestScope rscope(obs::span::kReqServiceRegister);
  Expected<void> result = try_register_tenant_impl(name, std::move(particles),
                                                   std::move(targets), options);
  std::uint64_t key = 0;
  if (result.ok()) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = tenants_.find(name); it != tenants_.end()) {
      key = it->second.plan->key;
    }
  }
  emit_request(obs::telemetry::Api::kServiceRegister, key, timer.seconds(),
               result.ok(), result.ok() ? ErrorCode::kOk : result.error().code,
               /*batch_width=*/0, rscope);
  return result;
}

Expected<void> EvalService::try_register_tenant_impl(const std::string& name,
                                                     ParticleSystem particles,
                                                     std::vector<Vec3> targets,
                                                     const TenantOptions& options) {
  if (!valid_tenant_name(name)) {
    return service_error(ErrorCode::kInvalidArgument,
                         "EvalService: tenant name must be 1-64 chars of [a-z0-9_-]");
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return service_rejection(name, "EvalService: service shutting down");
    }
    if (tenants_.count(name) != 0) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: tenant '" + name + "' already registered");
    }
  }

  // The expensive part — tree build, degree assignment, plan compile —
  // runs outside the service lock so registration cannot stall serving.
  Tenant tenant;
  tenant.options = options;
  tenant.options.max_batch_width =
      std::clamp<std::size_t>(options.max_batch_width, 1, 8);
  if (tenant.options.max_queue_depth == 0) tenant.options.max_queue_depth = 1;
  try {
    Tree tree(particles, options.tree);
    tenant.session = std::make_unique<engine::EvalSession>(
        std::move(tree), options.eval, options.session);
  } catch (const std::exception& e) {
    // Tree/config validation rejects the registration input; the client's
    // fault, surfaced as the typed code rather than the exception.
    return service_error(ErrorCode::kInvalidArgument,
                         std::string("EvalService: tenant geometry/config rejected: ") +
                             e.what());
  }
  tenant.source_size = tenant.session->tree().source_size();
  Expected<std::shared_ptr<const engine::EvalPlan>> plan =
      targets.empty() ? tenant.session->try_compile_self()
                      : tenant.session->try_compile(targets);
  if (!plan.ok()) {
    return service_error(plan.error().code, plan.error().message);
  }
  tenant.plan = std::move(plan).value();

  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return service_rejection(name, "EvalService: service shutting down");
    }
    const auto [it, inserted] = tenants_.emplace(name, std::move(tenant));
    if (!inserted) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: tenant '" + name + "' already registered");
    }
    obs::registry()
        .gauge(obs::metric::kServiceTenants)
        .set(static_cast<double>(tenants_.size()));
  }
  return {};
}

Expected<EvalService::Ticket> EvalService::try_submit(
    const std::string& name, std::span<const double> charges) {
  const Timer timer;
  // The root span of the request trace. On admission the impl releases the
  // scope — the request outlives this call, so the scheduler records the
  // root span and runs the tail decision at fulfillment. On rejection the
  // scope finishes here (inside emit_request) with the rejection verdict.
  obs::reqtrace::RequestScope rscope(obs::span::kServiceRequest);
  Expected<Ticket> result = try_submit_impl(name, charges, rscope);
  emit_request(obs::telemetry::Api::kServiceSubmit, 0, timer.seconds(),
               result.ok(), result.ok() ? ErrorCode::kOk : result.error().code,
               /*batch_width=*/0, rscope);
  return result;
}

Expected<EvalService::Ticket> EvalService::try_submit_impl(
    const std::string& name, std::span<const double> charges,
    obs::reqtrace::RequestScope& rscope) {
  std::shared_ptr<detail::RequestState> state;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: unknown tenant '" + name + "'");
    }
    Tenant& tenant = it->second;
    if (tenant.closing || stop_) {
      ++tenant.rejected;
      return service_rejection(name, "EvalService: tenant '" + name +
                                         "' is shutting down");
    }
    if (tenant.quarantined) {
      ++tenant.rejected;
      return service_rejection(name, "EvalService: tenant '" + name +
                                         "' quarantined (error budget exhausted)");
    }
    if (charges.size() != tenant.source_size) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: charge vector size mismatch for tenant '" +
                               name + "'");
    }
    // Checked at admission, not evaluation: a coalesced batch serves many
    // requests with one replay, and one tenant request with poisoned input
    // must fail alone rather than void its batch-mates' results.
    if (!all_finite(charges)) {
      ++tenant.errors;
      obs::registry()
          .counter(tenant_metric(obs::metric::kServiceErrors, name))
          .add(1);
      if (tenant.options.error_budget > 0 &&
          tenant.errors > tenant.options.error_budget) {
        tenant.quarantined = true;
      }
      return service_error(ErrorCode::kNonFinite,
                           "EvalService: non-finite charges for tenant '" + name +
                               "'");
    }
    if (tenant.queue.size() >= tenant.options.max_queue_depth) {
      ++tenant.rejected;
      return service_rejection(name, "EvalService: queue full for tenant '" +
                                         name + "'");
    }
    state = std::make_shared<detail::RequestState>();
    Request request;
    request.charges.assign(charges.begin(), charges.end());
    request.state = state;
    request.trace = rscope.context();
    request.submit_us = rscope.start_us();
    request.enqueue_us = obs::reqtrace::now_us();
    request.submitted_at = std::chrono::steady_clock::now();
    // Admission is a child slice; the root span (submit -> fulfill) is
    // recorded by the scheduler, which takes over the tail decision.
    obs::reqtrace::record_span(obs::reqtrace::child_of(request.trace),
                               obs::span::kReqServiceSubmit,
                               obs::reqtrace::SpanKind::kPhase,
                               request.submit_us, request.enqueue_us);
    (void)rscope.release();
    tenant.queue.push_back(std::move(request));
    ++tenant.submitted;
    obs::registry().counter(obs::metric::kServiceSubmitted).add(1);
    obs::registry()
        .counter(tenant_metric(obs::metric::kServiceSubmitted, name))
        .add(1);
  }
  work_cv_.notify_one();
  return Ticket(std::move(state));
}

Expected<void> EvalService::try_unregister_tenant(const std::string& name) {
  const Timer timer;
  obs::reqtrace::RequestScope rscope(obs::span::kReqServiceUnregister);
  Expected<void> result = try_unregister_tenant_impl(name);
  emit_request(obs::telemetry::Api::kServiceUnregister, 0, timer.seconds(),
               result.ok(), result.ok() ? ErrorCode::kOk : result.error().code,
               /*batch_width=*/0, rscope);
  return result;
}

Expected<void> EvalService::try_unregister_tenant_impl(const std::string& name) {
  std::vector<Request> pending;
  std::unique_ptr<engine::EvalSession> session;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: unknown tenant '" + name + "'");
    }
    Tenant& tenant = it->second;
    if (tenant.closing) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: tenant '" + name + "' already closing");
    }
    tenant.closing = true;  // no new admissions, no new batches
    idle_cv_.wait(lock, [&] { return !tenant.busy; });
    for (Request& request : tenant.queue) {
      pending.push_back(std::move(request));
    }
    tenant.queue.clear();
    // The session (plan cache, reservations) leaves the table under the
    // lock but is destroyed outside it: PlanCache's destructor withdraws
    // the tenant's plan/basis bytes from the shared gauges in this step.
    session = std::move(tenant.session);
    tenants_.erase(it);
    obs::registry()
        .gauge(obs::metric::kServiceTenants)
        .set(static_cast<double>(tenants_.size()));
  }
  if (!pending.empty()) {
    obs::registry().counter(obs::metric::kServiceCancelled).add(pending.size());
    obs::registry()
        .counter(tenant_metric(obs::metric::kServiceCancelled, name))
        .add(pending.size());
  }
  cancel_pending(pending, "EvalService: tenant unregistered");
  session.reset();
  return {};
}

EvalService::Tenant* EvalService::pick_next_locked(std::string& name_out) {
  if (tenants_.empty()) return nullptr;
  auto ready = [](const Tenant& t) {
    return !t.busy && !t.closing && !t.queue.empty();
  };
  // Round-robin: resume after the last-served tenant so a chatty tenant
  // cannot starve the others.
  auto it = tenants_.upper_bound(rr_cursor_);
  for (std::size_t step = 0; step < tenants_.size(); ++step) {
    if (it == tenants_.end()) it = tenants_.begin();
    if (ready(it->second)) {
      name_out = it->first;
      return &it->second;
    }
    ++it;
  }
  return nullptr;
}

bool EvalService::any_ready_locked() const {
  for (const auto& [name, tenant] : tenants_) {
    if (!tenant.busy && !tenant.closing && !tenant.queue.empty()) return true;
  }
  return false;
}

std::size_t EvalService::run_round() {
  std::string name;
  std::vector<Request> batch;
  engine::EvalSession* session = nullptr;
  std::shared_ptr<const engine::EvalPlan> plan;
  double latency_slo = 0.0;
  double deadline_seconds = 0.0;
  std::uint64_t batch_seq = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    Tenant* tenant = pick_next_locked(name);
    if (tenant == nullptr) return 0;
    rr_cursor_ = name;
    const std::size_t width =
        std::min(tenant->queue.size(), tenant->options.max_batch_width);
    batch.reserve(width);
    for (std::size_t c = 0; c < width; ++c) {
      batch.push_back(std::move(tenant->queue.front()));
      tenant->queue.pop_front();
    }
    tenant->busy = true;
    session = tenant->session.get();
    plan = tenant->plan;
    latency_slo = tenant->options.latency_slo_seconds;
    deadline_seconds = tenant->options.eval.deadline_seconds;
    batch_seq = ++rounds_;
  }

  // Queue-wait spans close at pickup, and the batch trace is minted here —
  // on the scheduling thread, never inside workers, so the id stream (and
  // the retained set) is independent of the session pool's schedule.
  const std::int64_t pickup_us = obs::reqtrace::now_us();
  const auto pickup_at = std::chrono::steady_clock::now();
  for (const Request& request : batch) {
    obs::reqtrace::record_span(obs::reqtrace::child_of(request.trace),
                               obs::span::kServiceQueueWait,
                               obs::reqtrace::SpanKind::kQueue,
                               request.enqueue_us, pickup_us);
  }
  const obs::reqtrace::TraceContext batch_ctx = obs::reqtrace::mint_request();

  // The batched replay runs outside the service lock: the session
  // parallelizes over its own pool, and other tenants keep admitting and
  // (under the background scheduler + pump) even serving concurrently.
  const std::size_t width = batch.size();
  std::vector<std::span<const double>> columns;
  columns.reserve(width);
  for (const Request& request : batch) columns.push_back(request.charges);
  Expected<std::vector<EvalResult>> served = [&] {
    // Lend the batch context to the engine: its evaluate_batch scope and
    // replay phase spans become children of the batch span.
    const obs::reqtrace::ContextGuard guard(batch_ctx);
    return session->try_evaluate_batch(*plan, columns);
  }();
  const auto threads = static_cast<std::uint32_t>(session->pool().width());

  {
    const std::lock_guard<std::mutex> lock(mu_);
    Tenant& tenant = tenants_.at(name);  // alive: closing waits on busy
    tenant.busy = false;
    ++tenant.batches;
    tenant.batch_columns += width;
    tenant.max_batch_seen = std::max(tenant.max_batch_seen, width);
    obs::Registry& reg = obs::registry();
    reg.counter(obs::metric::kServiceBatches).add(1);
    reg.counter(obs::metric::kServiceBatchColumns).add(width);
    reg.gauge(obs::metric::kServiceBatchWidth)
        .record_max(static_cast<double>(width));
    if (served.ok()) {
      tenant.served += width;
      reg.counter(obs::metric::kServiceServed).add(width);
      reg.counter(tenant_metric(obs::metric::kServiceServed, name)).add(width);
    } else {
      tenant.errors += width;
      reg.counter(obs::metric::kServiceErrors).add(width);
      reg.counter(tenant_metric(obs::metric::kServiceErrors, name)).add(width);
      if (tenant.options.error_budget > 0 &&
          tenant.errors > tenant.options.error_budget) {
        tenant.quarantined = true;
      }
    }
  }
  idle_cv_.notify_all();

  // Per-request accounting at fulfillment: close the root span, run the
  // tail decision (a retained member force-keeps the batch trace so its
  // flow links resolve), feed the tenant latency histograms, emit the
  // kServiceServe record, wake the waiter.
  const std::int64_t done_us = obs::reqtrace::now_us();
  const auto done_at = std::chrono::steady_clock::now();
  obs::Registry& reg = obs::registry();
  bool any_deadline = false;
  std::int8_t max_rung = -1;
  std::vector<std::uint64_t> flows;
  flows.reserve(width);
  for (std::size_t c = 0; c < width; ++c) {
    Request& request = batch[c];
    const double latency =
        std::chrono::duration<double>(done_at - request.submitted_at).count();
    const double queue_wait =
        std::chrono::duration<double>(pickup_at - request.submitted_at).count();
    const bool ok = served.ok();
    const EvalStats* stats = ok ? &served.value()[c].stats : nullptr;
    const ErrorCode code = ok ? stats->outcome : served.error().code;
    const std::int8_t rung =
        stats != nullptr ? static_cast<std::int8_t>(stats->served_rung) : -1;

    obs::reqtrace::Verdict verdict;
    verdict.ok = ok;
    verdict.error_code = static_cast<std::uint8_t>(code);
    verdict.rung = rung;
    verdict.deadline_missed = code == ErrorCode::kDeadline;
    verdict.slo_breach = latency_slo > 0.0 && latency > latency_slo;
    verdict.wall_seconds = latency;
    if (verdict.deadline_missed) any_deadline = true;
    max_rung = std::max(max_rung, rung);

    obs::reqtrace::record_span(request.trace, obs::span::kServiceRequest,
                               obs::reqtrace::SpanKind::kRequest,
                               request.submit_us, done_us);
    obs::reqtrace::finish_request(request.trace, verdict, &batch_ctx);
    if (obs::reqtrace::is_retained(request.trace)) {
      flows.push_back(request.trace.span_id);
    }

    reg.histogram(obs::metric::kServiceRequestSeconds, request_seconds_bounds())
        .observe(latency);
    reg.histogram(
           service_tenant_metric(obs::metric::kServiceRequestSeconds, name),
           request_seconds_bounds())
        .observe(latency);
    reg.histogram(obs::metric::kServiceQueueWaitSeconds,
                  request_seconds_bounds())
        .observe(queue_wait);
    if (deadline_seconds > 0.0) {
      const double slack = deadline_seconds - latency;
      reg.histogram(obs::metric::kServiceDeadlineSlackSeconds,
                    deadline_slack_bounds())
          .observe(slack);
      reg.histogram(service_tenant_metric(
                        obs::metric::kServiceDeadlineSlackSeconds, name),
                    deadline_slack_bounds())
          .observe(slack);
    }
    emit_served(plan->key, latency, ok, code, rung,
                stats != nullptr ? stats->targets_served : 0,
                deadline_seconds > 0.0 ? deadline_seconds - latency : 0.0,
                queue_wait, batch_seq, static_cast<std::uint32_t>(width),
                threads, request.trace);

    if (ok) {
      fulfill(request.state, std::move(served.value()[c]));
    } else {
      fulfill(request.state, Error(served.error()));
    }
  }

  // The batch span fans in from every *retained* member request span (flow
  // links must resolve in an export), then runs its own tail decision under
  // the members' aggregated verdict — so an errored or degraded member also
  // keeps the batch trace even when force-keep notes were not needed.
  obs::reqtrace::Verdict batch_verdict;
  batch_verdict.ok = served.ok();
  batch_verdict.error_code = static_cast<std::uint8_t>(
      served.ok() ? ErrorCode::kOk : served.error().code);
  batch_verdict.rung = max_rung;
  batch_verdict.deadline_missed = any_deadline;
  batch_verdict.wall_seconds =
      std::chrono::duration<double>(done_at - pickup_at).count();
  obs::reqtrace::record_span(batch_ctx, obs::span::kServiceBatch,
                             obs::reqtrace::SpanKind::kBatch, pickup_us,
                             done_us, flows);
  obs::reqtrace::finish_request(batch_ctx, batch_verdict);
  return width;
}

std::size_t EvalService::pump() { return run_round(); }

void EvalService::scheduler_main() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || any_ready_locked(); });
      if (stop_) return;
    }
    run_round();
  }
}

std::size_t EvalService::num_tenants() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

obs::Json EvalService::state_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  obs::Json doc = obs::Json::object();
  doc["schema"] = "treecode-service/v1";
  doc["scheduler_running"] = scheduler_.joinable() && !stop_;
  doc["rounds"] = rounds_;
  doc["num_tenants"] = static_cast<std::uint64_t>(tenants_.size());
  doc["http_port"] =
      static_cast<std::uint64_t>(http_ != nullptr ? http_->port() : 0);
  // One registry snapshot serves every tenant's latency summary below.
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  obs::Json tenants = obs::Json::array();
  for (const auto& [name, tenant] : tenants_) {
    obs::Json t = obs::Json::object();
    t["name"] = name;
    t["queue_depth"] = static_cast<std::uint64_t>(tenant.queue.size());
    t["busy"] = tenant.busy;
    t["closing"] = tenant.closing;
    t["quarantined"] = tenant.quarantined;
    t["source_size"] = static_cast<std::uint64_t>(tenant.source_size);
    t["max_batch_width"] =
        static_cast<std::uint64_t>(tenant.options.max_batch_width);
    t["max_queue_depth"] =
        static_cast<std::uint64_t>(tenant.options.max_queue_depth);
    t["error_budget"] = tenant.options.error_budget;
    t["submitted"] = tenant.submitted;
    t["served"] = tenant.served;
    t["rejected"] = tenant.rejected;
    t["errors"] = tenant.errors;
    t["batches"] = tenant.batches;
    t["batch_columns"] = tenant.batch_columns;
    t["max_batch_seen"] = static_cast<std::uint64_t>(tenant.max_batch_seen);
    t["mean_batch_width"] =
        tenant.batches > 0 ? static_cast<double>(tenant.batch_columns) /
                                 static_cast<double>(tenant.batches)
                           : 0.0;
    if (tenant.plan != nullptr) {
      char key_hex[19];
      std::snprintf(key_hex, sizeof key_hex, "0x%016llx",
                    static_cast<unsigned long long>(tenant.plan->key));
      obs::Json plan = obs::Json::object();
      plan["key"] = key_hex;
      plan["self"] = tenant.plan->self;
      plan["num_targets"] = static_cast<std::uint64_t>(tenant.plan->num_targets());
      plan["num_entries"] =
          static_cast<std::uint64_t>(tenant.plan->entries.size());
      plan["bytes"] = static_cast<std::uint64_t>(tenant.plan->memory_bytes());
      plan["basis_bytes"] =
          static_cast<std::uint64_t>(tenant.plan->basis.size() * sizeof(double));
      t["plan"] = std::move(plan);
    }
    if (tenant.session != nullptr) {
      t["governor"] = engine::governor_json(tenant.session->governor());
      t["plan_cache"] = engine::plan_cache_json(tenant.session->cache());
    }
    t["latency_slo_seconds"] = tenant.options.latency_slo_seconds;
    const auto hist = snap.histograms.find(
        service_tenant_metric(obs::metric::kServiceRequestSeconds, name));
    if (hist != snap.histograms.end() && hist->second.total > 0) {
      const obs::HistogramSnapshot& h = hist->second;
      obs::Json latency = obs::Json::object();
      latency["count"] = h.total;
      latency["mean_seconds"] = h.sum / static_cast<double>(h.total);
      latency["p50_seconds"] = obs::openmetrics::histogram_quantile(h, 0.50);
      latency["p99_seconds"] = obs::openmetrics::histogram_quantile(h, 0.99);
      t["latency"] = std::move(latency);
    }
    tenants.push_back(std::move(t));
  }
  doc["tenants"] = std::move(tenants);
  return doc;
}

std::vector<obs::slo::Rule> EvalService::slo_rules() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<obs::slo::Rule> rules;
  {
    obs::slo::Rule aggregate;
    aggregate.name = "service-error-rate";
    aggregate.kind = obs::slo::RuleKind::kCounterRatio;
    aggregate.metric = obs::metric::kServiceErrors;
    aggregate.denominator = obs::metric::kServiceRequests;
    aggregate.threshold = 0.01;
    rules.push_back(std::move(aggregate));
  }
  for (const auto& [name, tenant] : tenants_) {
    obs::slo::Rule rejected;
    rejected.name = "service-rejected-share-" + name;
    rejected.kind = obs::slo::RuleKind::kCounterRatio;
    rejected.metric = tenant_metric(obs::metric::kServiceRejected, name);
    rejected.denominator = tenant_metric(obs::metric::kServiceSubmitted, name);
    rejected.threshold = 0.5;
    rules.push_back(std::move(rejected));

    obs::slo::Rule errors;
    errors.name = "service-error-share-" + name;
    errors.kind = obs::slo::RuleKind::kCounterRatio;
    errors.metric = tenant_metric(obs::metric::kServiceErrors, name);
    errors.denominator = tenant_metric(obs::metric::kServiceSubmitted, name);
    errors.threshold = 0.05;
    rules.push_back(std::move(errors));

    if (tenant.options.latency_slo_seconds > 0.0) {
      obs::slo::Rule p99;
      p99.name = "service-latency-p99-" + name;
      p99.kind = obs::slo::RuleKind::kHistogramQuantile;
      p99.metric =
          service_tenant_metric(obs::metric::kServiceRequestSeconds, name);
      p99.quantile = 0.99;
      p99.threshold = tenant.options.latency_slo_seconds;
      rules.push_back(std::move(p99));
    }
  }
  return rules;
}

Expected<std::uint16_t> EvalService::start_http(std::uint16_t port) {
  auto server = std::make_unique<obs::httpd::Server>();
  server->handle("/metrics", [](const obs::httpd::Request&) {
    obs::httpd::Response response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = obs::openmetrics::render(obs::registry().snapshot());
    return response;
  });
  server->handle("/healthz", [this](const obs::httpd::Request&) {
    // A fresh watchdog per scrape: /healthz reports, it does not accumulate
    // breach side effects across scrapes beyond the slo.* counters.
    obs::slo::Watchdog watchdog;
    for (obs::slo::Rule& rule : obs::slo::default_engine_rules()) {
      watchdog.add_rule(std::move(rule));
    }
    for (obs::slo::Rule& rule : slo_rules()) {
      watchdog.add_rule(std::move(rule));
    }
    const std::vector<obs::slo::Status> statuses =
        watchdog.check(obs::registry().snapshot());
    bool breaching = false;
    for (const obs::slo::Status& status : statuses) {
      breaching = breaching || status.breached;
    }
    obs::Json doc = watchdog.status_json();
    doc["status"] = breaching ? "breaching" : "ok";
    obs::httpd::Response response;
    response.status = breaching ? 503 : 200;
    response.body = doc.dump(2) + "\n";
    return response;
  });
  server->handle("/state", [this](const obs::httpd::Request&) {
    obs::httpd::Response response;
    response.body = state_json().dump(2) + "\n";
    return response;
  });
  server->handle("/traces", [](const obs::httpd::Request& request) {
    const std::string n = request.query_value("n", "32");
    const unsigned long long max_traces = std::strtoull(n.c_str(), nullptr, 10);
    obs::httpd::Response response;
    response.content_type = "application/x-ndjson";
    response.body =
        obs::reqtrace::jsonl(static_cast<std::size_t>(max_traces));
    return response;
  });
  const obs::httpd::StartResult started = server->try_start(port);
  if (!started.ok) {
    return service_error(ErrorCode::kInternal,
                         "EvalService: observability endpoint failed: " +
                             started.error);
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (http_ != nullptr) {
      // Caller raced two start_http calls; keep the first server.
      server->stop();
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: observability endpoint already running");
    }
    http_ = std::move(server);
  }
  return started.port;
}

void EvalService::stop_http() {
  std::unique_ptr<obs::httpd::Server> server;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    server = std::move(http_);
  }
  // stop() joins the accept thread, whose handlers may be waiting on mu_ —
  // so it must run with the lock released.
  if (server != nullptr) server->stop();
}

std::uint16_t EvalService::http_port() const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return http_ != nullptr ? http_->port() : 0;
}

}  // namespace treecode::service
