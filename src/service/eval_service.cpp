#include "service/eval_service.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "engine/introspect.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "util/timer.hpp"
#include "util/validate.hpp"

namespace treecode::service {

namespace {

/// Per-tenant fan-out series name: `<base>.<tenant>`. Non-literal by
/// construction, so the metric-name-literal lint exemption applies; the
/// base constants live in obs/metric_names.hpp.
std::string tenant_metric(const char* base, const std::string& tenant) {
  return std::string(base) + "." + tenant;
}

/// Construct a service Error, counting it on the aggregate error series.
/// Rejections (backpressure, quarantine) go through service_rejection
/// instead — they are flow control, not failures, and feed a separate
/// counter so SLO error-rate objectives do not fire on load shedding.
Error service_error(ErrorCode code, std::string message) {
  obs::registry().counter(obs::metric::kServiceErrors).add(1);
  return Error{code, std::move(message)};
}

/// Construct the typed backpressure Error, counting the rejection on the
/// aggregate and per-tenant series.
Error service_rejection(const std::string& tenant, std::string message) {
  obs::registry().counter(obs::metric::kServiceRejected).add(1);
  obs::registry()
      .counter(tenant_metric(obs::metric::kServiceRejected, tenant))
      .add(1);
  return Error{ErrorCode::kRejected, std::move(message)};
}

/// Emit one telemetry RequestRecord at a service entry point's exit,
/// mirroring the engine's emit_request contract: service.requests is
/// counted unconditionally (the per-tenant SLO denominators divide by it),
/// the record itself only while telemetry is enabled.
void emit_request(obs::telemetry::Api api, std::uint64_t plan_key, double wall,
                  bool ok, ErrorCode code, std::uint32_t batch_width) {
  obs::registry().counter(obs::metric::kServiceRequests).add(1);
  if (!obs::telemetry::enabled()) return;
  obs::telemetry::RequestRecord r;
  r.api = api;
  r.plan_key = plan_key;
  r.outcome = static_cast<std::uint8_t>(code);
  r.outcome_name = error_code_name(code);
  r.ok = ok;
  r.wall_seconds = wall;
  r.batch_width = batch_width;
  obs::telemetry::emit(r);
}

/// Complete one request exactly once and wake its waiter. Called with no
/// service lock held (the state has its own mutex).
void fulfill(const std::shared_ptr<detail::RequestState>& state,
             Expected<EvalResult> result) {
  {
    const std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::make_unique<Expected<EvalResult>>(std::move(result));
    state->done = true;
  }
  state->cv.notify_all();
}

bool valid_tenant_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
                    ch == '_' || ch == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Expected<EvalResult> EvalService::Ticket::wait() {
  if (state_ == nullptr) {
    return Error{ErrorCode::kInvalidArgument, "EvalService: empty ticket"};
  }
  const std::shared_ptr<detail::RequestState> state = std::move(state_);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done; });
  std::unique_ptr<Expected<EvalResult>> result = std::move(state->result);
  lock.unlock();
  if (result == nullptr) {
    return Error{ErrorCode::kInvalidArgument,
                 "EvalService: ticket result already taken"};
  }
  return std::move(*result);
}

EvalService::EvalService(const Options& options) : options_(options) {
  if (options_.start_scheduler) {
    scheduler_ = std::thread([this] { scheduler_main(); });
  }
}

EvalService::~EvalService() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();

  // Cancel everything still queued, then let the tenant map tear the
  // sessions down (each PlanCache withdraws its gauge contribution and
  // returns its reservations).
  std::vector<std::shared_ptr<detail::RequestState>> pending;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, tenant] : tenants_) {
      for (Request& request : tenant.queue) {
        pending.push_back(std::move(request.state));
      }
      tenant.queue.clear();
    }
  }
  if (!pending.empty()) {
    obs::registry().counter(obs::metric::kServiceCancelled).add(pending.size());
  }
  for (const auto& state : pending) {
    fulfill(state, Error{ErrorCode::kCancelled, "EvalService: service shut down"});
  }
}

Expected<void> EvalService::try_register_tenant(const std::string& name,
                                                ParticleSystem particles,
                                                std::vector<Vec3> targets,
                                                const TenantOptions& options) {
  const Timer timer;
  Expected<void> result = try_register_tenant_impl(name, std::move(particles),
                                                   std::move(targets), options);
  std::uint64_t key = 0;
  if (result.ok()) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = tenants_.find(name); it != tenants_.end()) {
      key = it->second.plan->key;
    }
  }
  emit_request(obs::telemetry::Api::kServiceRegister, key, timer.seconds(),
               result.ok(), result.ok() ? ErrorCode::kOk : result.error().code,
               /*batch_width=*/0);
  return result;
}

Expected<void> EvalService::try_register_tenant_impl(const std::string& name,
                                                     ParticleSystem particles,
                                                     std::vector<Vec3> targets,
                                                     const TenantOptions& options) {
  if (!valid_tenant_name(name)) {
    return service_error(ErrorCode::kInvalidArgument,
                         "EvalService: tenant name must be 1-64 chars of [a-z0-9_-]");
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return service_rejection(name, "EvalService: service shutting down");
    }
    if (tenants_.count(name) != 0) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: tenant '" + name + "' already registered");
    }
  }

  // The expensive part — tree build, degree assignment, plan compile —
  // runs outside the service lock so registration cannot stall serving.
  Tenant tenant;
  tenant.options = options;
  tenant.options.max_batch_width =
      std::clamp<std::size_t>(options.max_batch_width, 1, 8);
  if (tenant.options.max_queue_depth == 0) tenant.options.max_queue_depth = 1;
  try {
    Tree tree(particles, options.tree);
    tenant.session = std::make_unique<engine::EvalSession>(
        std::move(tree), options.eval, options.session);
  } catch (const std::exception& e) {
    // Tree/config validation rejects the registration input; the client's
    // fault, surfaced as the typed code rather than the exception.
    return service_error(ErrorCode::kInvalidArgument,
                         std::string("EvalService: tenant geometry/config rejected: ") +
                             e.what());
  }
  tenant.source_size = tenant.session->tree().source_size();
  Expected<std::shared_ptr<const engine::EvalPlan>> plan =
      targets.empty() ? tenant.session->try_compile_self()
                      : tenant.session->try_compile(targets);
  if (!plan.ok()) {
    return service_error(plan.error().code, plan.error().message);
  }
  tenant.plan = std::move(plan).value();

  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return service_rejection(name, "EvalService: service shutting down");
    }
    const auto [it, inserted] = tenants_.emplace(name, std::move(tenant));
    if (!inserted) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: tenant '" + name + "' already registered");
    }
    obs::registry()
        .gauge(obs::metric::kServiceTenants)
        .set(static_cast<double>(tenants_.size()));
  }
  return {};
}

Expected<EvalService::Ticket> EvalService::try_submit(
    const std::string& name, std::span<const double> charges) {
  const Timer timer;
  Expected<Ticket> result = try_submit_impl(name, charges);
  emit_request(obs::telemetry::Api::kServiceSubmit, 0, timer.seconds(),
               result.ok(), result.ok() ? ErrorCode::kOk : result.error().code,
               /*batch_width=*/0);
  return result;
}

Expected<EvalService::Ticket> EvalService::try_submit_impl(
    const std::string& name, std::span<const double> charges) {
  std::shared_ptr<detail::RequestState> state;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: unknown tenant '" + name + "'");
    }
    Tenant& tenant = it->second;
    if (tenant.closing || stop_) {
      ++tenant.rejected;
      return service_rejection(name, "EvalService: tenant '" + name +
                                         "' is shutting down");
    }
    if (tenant.quarantined) {
      ++tenant.rejected;
      return service_rejection(name, "EvalService: tenant '" + name +
                                         "' quarantined (error budget exhausted)");
    }
    if (charges.size() != tenant.source_size) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: charge vector size mismatch for tenant '" +
                               name + "'");
    }
    // Checked at admission, not evaluation: a coalesced batch serves many
    // requests with one replay, and one tenant request with poisoned input
    // must fail alone rather than void its batch-mates' results.
    if (!all_finite(charges)) {
      ++tenant.errors;
      obs::registry()
          .counter(tenant_metric(obs::metric::kServiceErrors, name))
          .add(1);
      if (tenant.options.error_budget > 0 &&
          tenant.errors > tenant.options.error_budget) {
        tenant.quarantined = true;
      }
      return service_error(ErrorCode::kNonFinite,
                           "EvalService: non-finite charges for tenant '" + name +
                               "'");
    }
    if (tenant.queue.size() >= tenant.options.max_queue_depth) {
      ++tenant.rejected;
      return service_rejection(name, "EvalService: queue full for tenant '" +
                                         name + "'");
    }
    state = std::make_shared<detail::RequestState>();
    tenant.queue.push_back(
        Request{std::vector<double>(charges.begin(), charges.end()), state});
    ++tenant.submitted;
    obs::registry().counter(obs::metric::kServiceSubmitted).add(1);
    obs::registry()
        .counter(tenant_metric(obs::metric::kServiceSubmitted, name))
        .add(1);
  }
  work_cv_.notify_one();
  return Ticket(std::move(state));
}

Expected<void> EvalService::try_unregister_tenant(const std::string& name) {
  const Timer timer;
  Expected<void> result = try_unregister_tenant_impl(name);
  emit_request(obs::telemetry::Api::kServiceUnregister, 0, timer.seconds(),
               result.ok(), result.ok() ? ErrorCode::kOk : result.error().code,
               /*batch_width=*/0);
  return result;
}

Expected<void> EvalService::try_unregister_tenant_impl(const std::string& name) {
  std::vector<std::shared_ptr<detail::RequestState>> pending;
  std::unique_ptr<engine::EvalSession> session;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: unknown tenant '" + name + "'");
    }
    Tenant& tenant = it->second;
    if (tenant.closing) {
      return service_error(ErrorCode::kInvalidArgument,
                           "EvalService: tenant '" + name + "' already closing");
    }
    tenant.closing = true;  // no new admissions, no new batches
    idle_cv_.wait(lock, [&] { return !tenant.busy; });
    for (Request& request : tenant.queue) {
      pending.push_back(std::move(request.state));
    }
    // The session (plan cache, reservations) leaves the table under the
    // lock but is destroyed outside it: PlanCache's destructor withdraws
    // the tenant's plan/basis bytes from the shared gauges in this step.
    session = std::move(tenant.session);
    tenants_.erase(it);
    obs::registry()
        .gauge(obs::metric::kServiceTenants)
        .set(static_cast<double>(tenants_.size()));
  }
  if (!pending.empty()) {
    obs::registry().counter(obs::metric::kServiceCancelled).add(pending.size());
    obs::registry()
        .counter(tenant_metric(obs::metric::kServiceCancelled, name))
        .add(pending.size());
  }
  for (const auto& state : pending) {
    fulfill(state,
            Error{ErrorCode::kCancelled, "EvalService: tenant unregistered"});
  }
  session.reset();
  return {};
}

EvalService::Tenant* EvalService::pick_next_locked(std::string& name_out) {
  if (tenants_.empty()) return nullptr;
  auto ready = [](const Tenant& t) {
    return !t.busy && !t.closing && !t.queue.empty();
  };
  // Round-robin: resume after the last-served tenant so a chatty tenant
  // cannot starve the others.
  auto it = tenants_.upper_bound(rr_cursor_);
  for (std::size_t step = 0; step < tenants_.size(); ++step) {
    if (it == tenants_.end()) it = tenants_.begin();
    if (ready(it->second)) {
      name_out = it->first;
      return &it->second;
    }
    ++it;
  }
  return nullptr;
}

bool EvalService::any_ready_locked() const {
  for (const auto& [name, tenant] : tenants_) {
    if (!tenant.busy && !tenant.closing && !tenant.queue.empty()) return true;
  }
  return false;
}

std::size_t EvalService::run_round() {
  std::string name;
  std::vector<Request> batch;
  engine::EvalSession* session = nullptr;
  std::shared_ptr<const engine::EvalPlan> plan;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    Tenant* tenant = pick_next_locked(name);
    if (tenant == nullptr) return 0;
    rr_cursor_ = name;
    const std::size_t width =
        std::min(tenant->queue.size(), tenant->options.max_batch_width);
    batch.reserve(width);
    for (std::size_t c = 0; c < width; ++c) {
      batch.push_back(std::move(tenant->queue.front()));
      tenant->queue.pop_front();
    }
    tenant->busy = true;
    session = tenant->session.get();
    plan = tenant->plan;
    ++rounds_;
  }

  // The batched replay runs outside the service lock: the session
  // parallelizes over its own pool, and other tenants keep admitting and
  // (under the background scheduler + pump) even serving concurrently.
  const std::size_t width = batch.size();
  std::vector<std::span<const double>> columns;
  columns.reserve(width);
  for (const Request& request : batch) columns.push_back(request.charges);
  Expected<std::vector<EvalResult>> served =
      session->try_evaluate_batch(*plan, columns);

  {
    const std::lock_guard<std::mutex> lock(mu_);
    Tenant& tenant = tenants_.at(name);  // alive: closing waits on busy
    tenant.busy = false;
    ++tenant.batches;
    tenant.batch_columns += width;
    tenant.max_batch_seen = std::max(tenant.max_batch_seen, width);
    obs::Registry& reg = obs::registry();
    reg.counter(obs::metric::kServiceBatches).add(1);
    reg.counter(obs::metric::kServiceBatchColumns).add(width);
    reg.gauge(obs::metric::kServiceBatchWidth)
        .record_max(static_cast<double>(width));
    if (served.ok()) {
      tenant.served += width;
      reg.counter(obs::metric::kServiceServed).add(width);
      reg.counter(tenant_metric(obs::metric::kServiceServed, name)).add(width);
    } else {
      tenant.errors += width;
      reg.counter(obs::metric::kServiceErrors).add(width);
      reg.counter(tenant_metric(obs::metric::kServiceErrors, name)).add(width);
      if (tenant.options.error_budget > 0 &&
          tenant.errors > tenant.options.error_budget) {
        tenant.quarantined = true;
      }
    }
  }
  idle_cv_.notify_all();

  if (served.ok()) {
    std::vector<EvalResult>& results = served.value();
    for (std::size_t c = 0; c < width; ++c) {
      fulfill(batch[c].state, std::move(results[c]));
    }
  } else {
    for (std::size_t c = 0; c < width; ++c) {
      fulfill(batch[c].state, Error(served.error()));
    }
  }
  return width;
}

std::size_t EvalService::pump() { return run_round(); }

void EvalService::scheduler_main() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || any_ready_locked(); });
      if (stop_) return;
    }
    run_round();
  }
}

std::size_t EvalService::num_tenants() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

obs::Json EvalService::state_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  obs::Json doc = obs::Json::object();
  doc["schema"] = "treecode-service/v1";
  doc["scheduler_running"] = scheduler_.joinable() && !stop_;
  doc["rounds"] = rounds_;
  doc["num_tenants"] = static_cast<std::uint64_t>(tenants_.size());
  obs::Json tenants = obs::Json::array();
  for (const auto& [name, tenant] : tenants_) {
    obs::Json t = obs::Json::object();
    t["name"] = name;
    t["queue_depth"] = static_cast<std::uint64_t>(tenant.queue.size());
    t["busy"] = tenant.busy;
    t["closing"] = tenant.closing;
    t["quarantined"] = tenant.quarantined;
    t["source_size"] = static_cast<std::uint64_t>(tenant.source_size);
    t["max_batch_width"] =
        static_cast<std::uint64_t>(tenant.options.max_batch_width);
    t["max_queue_depth"] =
        static_cast<std::uint64_t>(tenant.options.max_queue_depth);
    t["error_budget"] = tenant.options.error_budget;
    t["submitted"] = tenant.submitted;
    t["served"] = tenant.served;
    t["rejected"] = tenant.rejected;
    t["errors"] = tenant.errors;
    t["batches"] = tenant.batches;
    t["batch_columns"] = tenant.batch_columns;
    t["max_batch_seen"] = static_cast<std::uint64_t>(tenant.max_batch_seen);
    t["mean_batch_width"] =
        tenant.batches > 0 ? static_cast<double>(tenant.batch_columns) /
                                 static_cast<double>(tenant.batches)
                           : 0.0;
    if (tenant.plan != nullptr) {
      char key_hex[19];
      std::snprintf(key_hex, sizeof key_hex, "0x%016llx",
                    static_cast<unsigned long long>(tenant.plan->key));
      obs::Json plan = obs::Json::object();
      plan["key"] = key_hex;
      plan["self"] = tenant.plan->self;
      plan["num_targets"] = static_cast<std::uint64_t>(tenant.plan->num_targets());
      plan["num_entries"] =
          static_cast<std::uint64_t>(tenant.plan->entries.size());
      plan["bytes"] = static_cast<std::uint64_t>(tenant.plan->memory_bytes());
      plan["basis_bytes"] =
          static_cast<std::uint64_t>(tenant.plan->basis.size() * sizeof(double));
      t["plan"] = std::move(plan);
    }
    if (tenant.session != nullptr) {
      t["governor"] = engine::governor_json(tenant.session->governor());
      t["plan_cache"] = engine::plan_cache_json(tenant.session->cache());
    }
    tenants.push_back(std::move(t));
  }
  doc["tenants"] = std::move(tenants);
  return doc;
}

std::vector<obs::slo::Rule> EvalService::slo_rules() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<obs::slo::Rule> rules;
  {
    obs::slo::Rule aggregate;
    aggregate.name = "service-error-rate";
    aggregate.kind = obs::slo::RuleKind::kCounterRatio;
    aggregate.metric = obs::metric::kServiceErrors;
    aggregate.denominator = obs::metric::kServiceRequests;
    aggregate.threshold = 0.01;
    rules.push_back(std::move(aggregate));
  }
  for (const auto& [name, tenant] : tenants_) {
    obs::slo::Rule rejected;
    rejected.name = "service-rejected-share-" + name;
    rejected.kind = obs::slo::RuleKind::kCounterRatio;
    rejected.metric = tenant_metric(obs::metric::kServiceRejected, name);
    rejected.denominator = tenant_metric(obs::metric::kServiceSubmitted, name);
    rejected.threshold = 0.5;
    rules.push_back(std::move(rejected));

    obs::slo::Rule errors;
    errors.name = "service-error-share-" + name;
    errors.kind = obs::slo::RuleKind::kCounterRatio;
    errors.metric = tenant_metric(obs::metric::kServiceErrors, name);
    errors.denominator = tenant_metric(obs::metric::kServiceSubmitted, name);
    errors.threshold = 0.05;
    rules.push_back(std::move(errors));
  }
  return rules;
}

}  // namespace treecode::service
