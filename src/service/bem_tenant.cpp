#include "service/bem_tenant.hpp"

#include <utility>

namespace treecode::service {

namespace {

/// Gauss points as a particle system: position = world-space quadrature
/// point, charge slot = quadrature weight (placeholder; every apply
/// overwrites the charges through the service). Identical to
/// SingleLayerOperator's tree input.
ParticleSystem gauss_particles(const std::vector<MeshQuadPoint>& points) {
  std::vector<Vec3> positions;
  std::vector<double> charges;
  positions.reserve(points.size());
  charges.reserve(points.size());
  for (const MeshQuadPoint& p : points) {
    positions.push_back(p.position);
    charges.push_back(p.weight);
  }
  return ParticleSystem(std::move(positions), std::move(charges));
}

}  // namespace

BemTenantOperator::BemTenantOperator(EvalService& service, std::string name,
                                     const TriangleMesh& mesh,
                                     const Options& options)
    : service_(service),
      name_(std::move(name)),
      mesh_(mesh),
      quad_points_(quadrature_points(mesh, triangle_rule(options.gauss_points))) {
  EvalService::TenantOptions tenant;
  tenant.eval = options.eval;
  tenant.tree = options.tree;
  service_.try_register_tenant(name_, gauss_particles(quad_points_),
                               mesh_.vertices(), tenant)
      .value_or_throw();
}

BemTenantOperator::~BemTenantOperator() {
  (void)service_.try_unregister_tenant(name_);
}

void BemTenantOperator::apply(std::span<const double> x,
                              std::span<double> y) const {
  // Weighted Gauss charges in the tenant's original particle order. The
  // per-point arithmetic (shape-function dot, then * weight) matches
  // SingleLayerOperator::gather_sorted_charges operand-for-operand; the
  // engine applies the tree's sort permutation afterwards, so the sorted
  // charge array — and therefore every downstream kernel call — is
  // bitwise-identical to the in-process operator's.
  std::vector<double> charges(quad_points_.size());
  for (std::size_t g = 0; g < quad_points_.size(); ++g) {
    const MeshQuadPoint& p = quad_points_[g];
    const Triangle& tri = mesh_.triangle(p.triangle);
    double q = 0.0;
    for (int k = 0; k < 3; ++k) {
      q += p.shape[static_cast<std::size_t>(k)] *
           x[tri.v[static_cast<std::size_t>(k)]];
    }
    charges[g] = q * p.weight;
  }
  EvalService::Ticket ticket =
      service_.try_submit(name_, charges).value_or_throw();
  EvalResult result = ticket.wait().value_or_throw();
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = result.potential[i];
}

}  // namespace treecode::service
