#include "obs/report.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace treecode::obs {

// ---- warning channel -------------------------------------------------------

namespace {
std::mutex g_warnings_mutex;
std::vector<std::string>& warning_list() {
  static std::vector<std::string> list;
  return list;
}
}  // namespace

void warn(std::string message) {
  // The recorder only keeps static labels; the message text itself is in
  // the warning sink, the event just timestamps that *a* warning fired.
  recorder::record(recorder::Category::kWarning, "obs.warn", 0.0);
  std::lock_guard lock(g_warnings_mutex);
  auto& list = warning_list();
  if (std::find(list.begin(), list.end(), message) == list.end()) {
    list.push_back(std::move(message));
  }
}

std::vector<std::string> warnings() {
  std::lock_guard lock(g_warnings_mutex);
  return warning_list();
}

std::vector<std::string> drain_warnings() {
  std::lock_guard lock(g_warnings_mutex);
  return std::exchange(warning_list(), {});
}

// ---- serializers -----------------------------------------------------------

Json metrics_json(const MetricsSnapshot& snapshot) {
  Json m = Json::object();
  Json& counters = m["counters"] = Json::object();
  for (const auto& [name, v] : snapshot.counters) counters[name] = v;
  Json& gauges = m["gauges"] = Json::object();
  for (const auto& [name, v] : snapshot.gauges) gauges[name] = v;
  Json& maxima = m["gauge_maxima"] = Json::object();
  for (const auto& [name, v] : snapshot.gauge_maxima) maxima[name] = v;
  Json& hists = m["histograms"] = Json::object();
  for (const auto& [name, h] : snapshot.histograms) {
    Json& hj = hists[name] = Json::object();
    Json& bounds = hj["bounds"] = Json::array();
    for (const double b : h.bounds) bounds.push_back(b);
    Json& counts = hj["counts"] = Json::array();
    for (const std::uint64_t c : h.counts) counts.push_back(c);
    hj["total"] = h.total;
    hj["sum"] = h.sum;
  }
  Json& series = m["series"] = Json::object();
  for (const auto& [name, values] : snapshot.series) {
    Json& sj = series[name] = Json::array();
    for (const double v : values) sj.push_back(v);
  }
  return m;
}

Json spans_json() {
  Json arr = Json::array();
  for (const TraceEvent& e : trace::events()) {
    Json span = Json::object();
    span["name"] = e.name;
    span["tid"] = static_cast<std::uint64_t>(e.tid);
    span["ts_us"] = e.ts_us;
    span["dur_us"] = e.dur_us;
    arr.push_back(std::move(span));
  }
  return arr;
}

// ---- provenance ------------------------------------------------------------

Json provenance_json() {
  Json p = Json::object();
  const char* sha = std::getenv("TREECODE_GIT_SHA");
  p["git_sha"] = (sha != nullptr && *sha != '\0') ? sha : "unknown";
#if defined(__VERSION__)
  p["compiler"] = __VERSION__;
#else
  p["compiler"] = "unknown";
#endif
#if defined(NDEBUG)
  p["assertions"] = false;
#else
  p["assertions"] = true;
#endif
#if defined(TREECODE_TRACING_ENABLED)
  p["tracing"] = true;
#else
  p["tracing"] = false;
#endif
#if defined(TREECODE_CHECK_INVARIANTS)
  p["invariants"] = true;
#else
  p["invariants"] = false;
#endif
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    p["host"] = host;
  } else {
    p["host"] = "unknown";
  }
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  char stamp[32] = {};
  if (gmtime_r(&now, &tm_utc) != nullptr &&
      std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm_utc) > 0) {
    p["utc"] = stamp;
  } else {
    p["utc"] = "unknown";
  }
  return p;
}

// ---- RunReport -------------------------------------------------------------

RunReport::RunReport(std::string tool) : tool_(std::move(tool)) {}

Json RunReport::build() const {
  Json doc = Json::object();
  doc["schema"] = kReportSchema;
  doc["tool"] = tool_;
  doc["config"] = config_;
  doc["results"] = results_;
  doc["provenance"] = provenance_json();
  const MetricsSnapshot snapshot = registry().snapshot();
  // Tightness block: only when the audit engine actually sampled something
  // this process, so non-auditing reports stay v1-shaped plus provenance.
  const auto counter_it = snapshot.counters.find("audit.samples");
  if (counter_it != snapshot.counters.end() && counter_it->second > 0) {
    Json& t = doc["tightness"] = Json::object();
    t["samples"] = counter_it->second;
    const auto violations_it = snapshot.counters.find("audit.bound_violations");
    t["bound_violations"] =
        violations_it != snapshot.counters.end() ? violations_it->second : 0;
    const auto max_it = snapshot.gauge_maxima.find("audit.max_tightness");
    t["max"] = max_it != snapshot.gauge_maxima.end() ? max_it->second : 0.0;
    const auto hist_it = snapshot.histograms.find("audit.tightness");
    if (hist_it != snapshot.histograms.end() && hist_it->second.total > 0) {
      t["mean"] = hist_it->second.sum / static_cast<double>(hist_it->second.total);
    } else {
      t["mean"] = 0.0;
    }
  }
  doc["metrics"] = metrics_json(snapshot);
  doc["spans"] = spans_json();
  Json& warn_arr = doc["warnings"] = Json::array();
  for (const std::string& w : warnings()) warn_arr.push_back(w);
  return doc;
}

void RunReport::write(const std::string& path) const { write_json_file(path, build()); }

}  // namespace treecode::obs
