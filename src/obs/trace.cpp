#include "obs/trace.hpp"

#if defined(TREECODE_TRACING_ENABLED)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace treecode::obs::trace {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};
/// Epoch of the current trace session; guarded by g_buffers_mutex for
/// writes, read via relaxed atomic duplicate below.
std::atomic<std::int64_t> g_epoch_ns{0};

/// Per-thread event buffer. Owned jointly by the global list and the
/// thread_local handle so events survive thread exit (thread pools die
/// before the report is written).
struct ThreadBuffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

std::mutex g_buffers_mutex;
std::vector<std::shared_ptr<ThreadBuffer>>& buffers() {
  static std::vector<std::shared_ptr<ThreadBuffer>> list;
  return list;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    b->tid = thread_index();
    std::lock_guard lock(g_buffers_mutex);
    buffers().push_back(b);
    return b;
  }();
  return *buf;
}

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void start() {
  std::lock_guard lock(g_buffers_mutex);
  for (auto& b : buffers()) {
    std::lock_guard blk(b->mutex);
    b->events.clear();
  }
  g_epoch_ns.store(steady_ns(), std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void stop() { g_enabled.store(false, std::memory_order_relaxed); }

double now_us() noexcept {
  return static_cast<double>(steady_ns() - g_epoch_ns.load(std::memory_order_relaxed)) *
         1e-3;
}

void record(const char* name, double ts_us, double dur_us) noexcept {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  buf.events.push_back(TraceEvent{name, buf.tid, ts_us, dur_us});
}

std::vector<TraceEvent> events() {
  std::vector<TraceEvent> all;
  {
    std::lock_guard lock(g_buffers_mutex);
    for (auto& b : buffers()) {
      std::lock_guard blk(b->mutex);
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
  return all;
}

namespace {

/// JSON string escaping for span names. Names are string literals, but a
/// stray quote/backslash/control char must not corrupt the whole trace.
std::string escape_name(const char* name) {
  std::string out;
  for (const char* p = name; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char esc[8];
      std::snprintf(esc, sizeof(esc), "\\u%04x", c);
      out += esc;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

}  // namespace

std::string chrome_json() {
  // Emitted by hand rather than through obs::Json: the event list can be
  // large and its shape is fixed by the Chrome trace-event spec.
  std::string out = "[";
  char line[256];
  bool first = true;
  for (const TraceEvent& e : events()) {
    std::snprintf(line, sizeof(line),
                  "%s\n{\"name\":\"%s\",\"cat\":\"treecode\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                  first ? "" : ",", escape_name(e.name).c_str(), e.ts_us, e.dur_us, e.tid);
    out += line;
    first = false;
  }
  out += "\n]\n";
  return out;
}

void write_chrome_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("trace: cannot open " + path + " for writing");
  }
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) throw std::runtime_error("trace: short write to " + path);
}

}  // namespace treecode::obs::trace

#endif  // TREECODE_TRACING_ENABLED
