#include "obs/openmetrics.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <string>

#include "obs/report.hpp"

namespace treecode::obs::openmetrics {

namespace {

/// Format a sample value the way the text exposition expects: `NaN`,
/// `+Inf`, `-Inf` for non-finite values, shortest-round-trip decimal
/// otherwise.
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  for (int precision = 1; precision < 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string format_count(std::uint64_t v) {
  return std::to_string(v);
}

/// Track sanitized names already emitted; a collision (two registry names
/// mapping to one exposition name) would interleave unrelated series, so
/// the later name is skipped with a warning instead.
bool claim_name(std::set<std::string>& taken, const std::string& sanitized,
                const std::string& original) {
  if (taken.insert(sanitized).second) return true;
  warn("openmetrics: skipping '" + original + "': sanitized name '" +
       sanitized + "' already emitted");
  return false;
}

}  // namespace

std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string render(const MetricsSnapshot& snapshot) {
  std::string out;
  std::set<std::string> taken;

  for (const auto& [name, value] : snapshot.counters) {
    const std::string base = sanitize_name(name);
    if (!claim_name(taken, base, name)) continue;
    out += "# TYPE " + base + " counter\n";
    out += base + "_total " + format_count(value) + "\n";
  }

  for (const auto& [name, value] : snapshot.gauges) {
    const std::string base = sanitize_name(name);
    if (!claim_name(taken, base, name)) continue;
    out += "# TYPE " + base + " gauge\n";
    out += base + " " + format_value(value) + "\n";
    const auto max_it = snapshot.gauge_maxima.find(name);
    if (max_it != snapshot.gauge_maxima.end()) {
      const std::string max_name = base + "_max";
      if (claim_name(taken, max_name, name + " (max)")) {
        out += "# TYPE " + max_name + " gauge\n";
        out += max_name + " " + format_value(max_it->second) + "\n";
      }
    }
  }

  for (const auto& [name, h] : snapshot.histograms) {
    const std::string base = sanitize_name(name);
    if (!claim_name(taken, base, name)) continue;
    out += "# TYPE " + base + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += base + "_bucket{le=\"" +
             escape_label_value(format_value(h.bounds[i])) + "\"} " +
             format_count(cumulative) + "\n";
    }
    out += base + "_bucket{le=\"+Inf\"} " + format_count(h.total) + "\n";
    out += base + "_sum " + format_value(h.sum) + "\n";
    out += base + "_count " + format_count(h.total) + "\n";
  }

  // snapshot.series (ordered trajectories) has no exposition equivalent and
  // is intentionally omitted; see the header comment.

  out += "# EOF\n";
  return out;
}

bool write(const std::string& path, const MetricsSnapshot& snapshot) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) {
    warn("openmetrics: cannot open " + path);
    return false;
  }
  file << render(snapshot);
  file.flush();
  if (!file) {
    warn("openmetrics: write failed for " + path);
    return false;
  }
  return true;
}

double histogram_quantile(const HistogramSnapshot& h, double q) {
  if (h.total == 0 || h.bounds.empty() || std::isnan(q)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (q <= 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(h.total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    const std::uint64_t in_bucket = i < h.counts.size() ? h.counts[i] : 0;
    const std::uint64_t next = cumulative + in_bucket;
    if (static_cast<double>(next) >= rank && in_bucket > 0) {
      const double lower = i == 0 ? 0.0 : h.bounds[i - 1];
      const double upper = h.bounds[i];
      const double fraction =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * fraction;
    }
    cumulative = next;
  }
  // Rank falls in the overflow bucket: no upper edge to interpolate toward.
  return h.bounds.back();
}

}  // namespace treecode::obs::openmetrics
