#include "obs/recorder.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace treecode::obs::recorder {

namespace {

/// One ring slot. All fields are atomics so concurrent write/read is a data
/// race on values only in the benign seqlock sense: the begin/end stamps
/// bracket the payload, and a reader discards any slot whose stamps do not
/// match. Stamps store seq+1 so the zero-initialized state reads as empty.
struct Slot {
  std::atomic<std::uint64_t> begin{0};
  std::atomic<std::uint64_t> end{0};
  std::atomic<std::int64_t> ts_us{0};
  std::atomic<std::uint32_t> tid{0};
  std::atomic<std::uint8_t> category{0};
  std::atomic<const char*> label{nullptr};
  std::atomic<double> value{0.0};
};

static_assert((kCapacity & (kCapacity - 1)) == 0, "ring index uses a mask");

struct State {
  std::array<Slot, kCapacity> ring;
  std::atomic<std::uint64_t> next_seq{0};
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> epoch_us{0};
  std::atomic<std::uint64_t> triggers{0};
  // Dump-path state is cold (configured once, read on trigger); a mutex is
  // fine here and keeps the string out of the lock-free part.
  std::mutex dump_mutex;
  std::string dump_path;
};

State& state() {
  static State s;
  return s;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* category_name(Category c) {
  switch (c) {
    case Category::kPhase: return "phase";
    case Category::kBudget: return "budget";
    case Category::kEviction: return "eviction";
    case Category::kInvariant: return "invariant";
    case Category::kNonFinite: return "nonfinite";
    case Category::kWarning: return "warning";
    case Category::kAudit: return "audit";
    case Category::kCustom: return "custom";
  }
  return "unknown";
}

void start() {
  State& s = state();
  s.epoch_us.store(now_us(), std::memory_order_relaxed);
  s.enabled.store(true, std::memory_order_release);
}

void stop() { state().enabled.store(false, std::memory_order_release); }

bool enabled() { return state().enabled.load(std::memory_order_relaxed); }

void reset() {
  State& s = state();
  s.enabled.store(false, std::memory_order_release);
  for (Slot& slot : s.ring) {
    slot.begin.store(0, std::memory_order_relaxed);
    slot.end.store(0, std::memory_order_relaxed);
    slot.label.store(nullptr, std::memory_order_relaxed);
  }
  s.next_seq.store(0, std::memory_order_relaxed);
  s.triggers.store(0, std::memory_order_relaxed);
  const std::scoped_lock lock(s.dump_mutex);
  s.dump_path.clear();
}

void record(Category category, const char* label, double value) noexcept {
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  const std::uint64_t seq = s.next_seq.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = s.ring[seq & (kCapacity - 1)];
  // Seqlock write: open the slot (begin != end marks it torn), fill the
  // payload relaxed, then publish by matching the end stamp with release so
  // a reader that acquires `end` sees the full payload.
  slot.begin.store(seq + 1, std::memory_order_relaxed);
  slot.ts_us.store(now_us() - s.epoch_us.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  slot.tid.store(static_cast<std::uint32_t>(thread_index()), std::memory_order_relaxed);
  slot.category.store(static_cast<std::uint8_t>(category), std::memory_order_relaxed);
  slot.label.store(label, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.end.store(seq + 1, std::memory_order_release);
}

std::vector<Event> events() {
  State& s = state();
  std::vector<Event> out;
  out.reserve(kCapacity);
  for (const Slot& slot : s.ring) {
    const std::uint64_t end = slot.end.load(std::memory_order_acquire);
    if (end == 0) continue;  // never written
    Event e;
    e.ts_us = slot.ts_us.load(std::memory_order_relaxed);
    e.tid = slot.tid.load(std::memory_order_relaxed);
    e.category = static_cast<Category>(slot.category.load(std::memory_order_relaxed));
    const char* label = slot.label.load(std::memory_order_relaxed);
    e.value = slot.value.load(std::memory_order_relaxed);
    const std::uint64_t begin = slot.begin.load(std::memory_order_relaxed);
    if (begin != end) continue;  // torn: writer was mid-update
    e.seq = end - 1;
    e.label = label != nullptr ? label : "";
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::uint64_t recorded_count() {
  return state().next_seq.load(std::memory_order_relaxed);
}

Json to_json(const std::string& reason) {
  const std::vector<Event> snapshot = events();
  const std::uint64_t recorded = recorded_count();
  Json doc = Json::object();
  doc["schema"] = "treecode-flight-record/v2";
  doc["reason"] = reason;
  // v2: the same provenance block bench reports carry (git SHA, compiler,
  // host, UTC timestamp), so a post-mortem dump found on disk weeks later
  // is attributable to a build and a machine.
  doc["provenance"] = provenance_json();
  doc["recorded"] = recorded;
  doc["dropped"] = recorded > snapshot.size()
                       ? recorded - static_cast<std::uint64_t>(snapshot.size())
                       : std::uint64_t{0};
  Json list = Json::array();
  for (const Event& e : snapshot) {
    Json item = Json::object();
    item["seq"] = e.seq;
    item["ts_us"] = e.ts_us;
    item["tid"] = static_cast<std::uint64_t>(e.tid);
    item["category"] = category_name(e.category);
    item["label"] = e.label;
    item["value"] = e.value;
    list.push_back(std::move(item));
  }
  doc["events"] = std::move(list);
  return doc;
}

void set_dump_path(std::string path) {
  State& s = state();
  const std::scoped_lock lock(s.dump_mutex);
  s.dump_path = std::move(path);
}

bool dump(const std::string& path, const std::string& reason) {
  try {
    write_json_file(path, to_json(reason));
    return true;
  } catch (const std::exception& e) {
    warn(std::string("flight recorder dump failed: ") + e.what());
    return false;
  }
}

void trigger(const std::string& reason) {
  State& s = state();
  record(Category::kCustom, "recorder.trigger", 0.0);
  std::string path;
  {
    const std::scoped_lock lock(s.dump_mutex);
    path = s.dump_path;
  }
  if (path.empty()) return;
  if (dump(path, reason)) s.triggers.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t trigger_count() {
  return state().triggers.load(std::memory_order_relaxed);
}

}  // namespace treecode::obs::recorder
