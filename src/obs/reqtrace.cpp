#include "obs/reqtrace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/json.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace treecode::obs::reqtrace {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kQueue: return "queue";
    case SpanKind::kBatch: return "batch";
    case SpanKind::kPhase: return "phase";
  }
  return "unknown";
}

std::string trace_id_hex(std::uint64_t hi, std::uint64_t lo) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::string span_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(id));
  return buf;
}

#if defined(TREECODE_TRACING_ENABLED)

namespace {

/// Span slots per thread ring. Power of two so the slot index is a mask.
constexpr std::size_t kSpanRingCapacity = 512;
/// Thread rings; obs::thread_index() wraps past this (slots are still
/// claimed atomically, two threads just share a ring).
constexpr std::size_t kMaxThreadRings = 64;

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

/// splitmix64 output scrambler (Steele/Lea/Flood). The id stream is
/// id(c) = mix(seed + (c+1) * golden) over one shared draw counter.
std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

/// One ring slot, seqlock-stamped exactly like the flight recorder's
/// (obs/recorder.cpp): begin/end bracket the payload, a reader discards
/// any slot whose stamps disagree. Stamps store seq+1 so zero-initialized
/// reads as empty.
struct Slot {
  std::atomic<std::uint64_t> begin{0};
  std::atomic<std::uint64_t> end{0};
  std::atomic<std::uint64_t> trace_hi{0};
  std::atomic<std::uint64_t> trace_lo{0};
  std::atomic<std::uint64_t> span_id{0};
  std::atomic<std::uint64_t> parent_span_id{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<std::uint32_t> tid{0};
  std::atomic<std::int64_t> start_us{0};
  std::atomic<std::int64_t> end_us{0};
  std::atomic<std::uint32_t> flow_count{0};
  std::array<std::atomic<std::uint64_t>, kMaxFlows> flows{};
};

static_assert((kSpanRingCapacity & (kSpanRingCapacity - 1)) == 0,
              "ring index uses a mask");

struct ThreadRing {
  std::array<Slot, kSpanRingCapacity> slots;
  std::atomic<std::uint64_t> next{0};
};

struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  bool operator==(const TraceId&) const = default;
};

struct Retained {
  TraceId id;
  const char* reason = "";
};

struct State {
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> epoch_us{0};
  std::atomic<std::uint64_t> draws{0};   ///< id-stream position
  std::atomic<std::uint64_t> seed{1};    ///< from SamplerConfig::seed

  // Rings are allocated on a thread's first span and kept for the process
  // lifetime (readers hold bare pointers); reset() only clears stamps.
  std::array<std::atomic<ThreadRing*>, kMaxThreadRings> rings{};
  std::mutex ring_alloc_mutex;
  std::vector<std::unique_ptr<ThreadRing>> owned_rings;

  // Sampler state is cold relative to the span path — decisions happen at
  // request completion, never inside kernel loops — so a mutex is fine.
  std::mutex sampler_mutex;
  SamplerConfig config;
  std::deque<Retained> retained_traces;  ///< FIFO, oldest first
  std::vector<TraceId> forced;           ///< keep-demands awaiting the root
};

State& state() {
  static State s;
  return s;
}

thread_local TraceContext tl_current{};

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Next id from the seeded deterministic stream. Never returns 0 (0 is the
/// "no trace" sentinel).
std::uint64_t mint_id(State& s) {
  const std::uint64_t draw = s.draws.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t v =
      mix64(s.seed.load(std::memory_order_relaxed) + (draw + 1) * kGolden);
  return v != 0 ? v : 1;
}

ThreadRing& ring_for_thread(State& s) {
  const std::size_t idx = thread_index() % kMaxThreadRings;
  ThreadRing* ring = s.rings[idx].load(std::memory_order_acquire);
  if (ring != nullptr) return *ring;
  const std::scoped_lock lock(s.ring_alloc_mutex);
  ring = s.rings[idx].load(std::memory_order_relaxed);
  if (ring == nullptr) {
    s.owned_rings.push_back(std::make_unique<ThreadRing>());
    ring = s.owned_rings.back().get();
    s.rings[idx].store(ring, std::memory_order_release);
  }
  return *ring;
}

/// The always-keep rules, in precedence order for the recorded reason.
/// Returns nullptr when the verdict alone does not demand retention.
const char* keep_reason(const SamplerConfig& config, const Verdict& verdict) {
  if (!verdict.ok) return "error";
  if (verdict.deadline_missed) return "deadline";
  if (verdict.rung > 0) return "degraded";
  if (verdict.slo_breach) return "slo";
  if (config.keep_slower_than_seconds >= 0.0 &&
      verdict.wall_seconds > config.keep_slower_than_seconds) {
    return "slow";
  }
  return nullptr;
}

/// Deterministic uniform in [0, 1) from the trace id — the sampling coin
/// depends on identity, not on schedule or clock.
double sample_coin(std::uint64_t seed, const TraceId& id) {
  const std::uint64_t h = mix64(id.lo ^ mix64(id.hi ^ seed));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Caller holds sampler_mutex. Erases and reports any pending forced-keep
/// demand for `id`.
bool take_forced_locked(State& s, const TraceId& id) {
  const auto it = std::find(s.forced.begin(), s.forced.end(), id);
  if (it == s.forced.end()) return false;
  s.forced.erase(it);
  return true;
}

/// Caller holds sampler_mutex.
void add_forced_locked(State& s, const TraceId& id) {
  if (std::find(s.forced.begin(), s.forced.end(), id) != s.forced.end()) return;
  // Bounded: a leak here would only grow if roots never finish, which the
  // RequestScope destructor rules out; the cap is a belt for torn-down
  // traces (service shutdown mid-batch).
  if (s.forced.size() >= 1024) s.forced.erase(s.forced.begin());
  s.forced.push_back(id);
  registry().counter(metric::kTraceForcedKeeps).add(1);
}

/// Collect every readable span, appending those whose trace is retained to
/// its RetainedTrace. `index` maps trace id -> position in `out`.
void collect_spans(State& s, std::vector<RetainedTrace>& out) {
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index;
  for (std::size_t i = 0; i < out.size(); ++i) {
    index[out[i].trace_lo].push_back(i);
  }
  for (std::size_t r = 0; r < kMaxThreadRings; ++r) {
    const ThreadRing* ring = s.rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (const Slot& slot : ring->slots) {
      const std::uint64_t end = slot.end.load(std::memory_order_acquire);
      if (end == 0) continue;  // never written
      SpanRecord record;
      record.trace_hi = slot.trace_hi.load(std::memory_order_relaxed);
      record.trace_lo = slot.trace_lo.load(std::memory_order_relaxed);
      record.span_id = slot.span_id.load(std::memory_order_relaxed);
      record.parent_span_id = slot.parent_span_id.load(std::memory_order_relaxed);
      const char* name = slot.name.load(std::memory_order_relaxed);
      record.kind = static_cast<SpanKind>(slot.kind.load(std::memory_order_relaxed));
      record.tid = slot.tid.load(std::memory_order_relaxed);
      record.start_us = slot.start_us.load(std::memory_order_relaxed);
      record.end_us = slot.end_us.load(std::memory_order_relaxed);
      record.flow_count = std::min<std::uint32_t>(
          slot.flow_count.load(std::memory_order_relaxed), kMaxFlows);
      for (std::size_t f = 0; f < kMaxFlows; ++f) {
        record.flows[f] = slot.flows[f].load(std::memory_order_relaxed);
      }
      const std::uint64_t begin = slot.begin.load(std::memory_order_relaxed);
      if (begin != end) continue;  // torn: writer was mid-update
      record.name = name != nullptr ? name : "";
      const auto it = index.find(record.trace_lo);
      if (it == index.end()) continue;
      for (const std::size_t i : it->second) {
        if (out[i].trace_hi == record.trace_hi) out[i].spans.push_back(record);
      }
    }
  }
  for (RetainedTrace& trace : out) {
    std::sort(trace.spans.begin(), trace.spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.start_us != b.start_us ? a.start_us < b.start_us
                                                : a.span_id < b.span_id;
              });
  }
}

Json span_json(const SpanRecord& span) {
  Json doc = Json::object();
  doc["name"] = span.name;
  doc["kind"] = span_kind_name(span.kind);
  doc["span_id"] = span_id_hex(span.span_id);
  doc["parent_span_id"] = span_id_hex(span.parent_span_id);
  doc["tid"] = static_cast<std::uint64_t>(span.tid);
  doc["start_us"] = span.start_us;
  doc["end_us"] = span.end_us;
  Json flows = Json::array();
  for (std::uint32_t f = 0; f < span.flow_count; ++f) {
    flows.push_back(span_id_hex(span.flows[f]));
  }
  doc["flows"] = std::move(flows);
  return doc;
}

}  // namespace

void enable(const SamplerConfig& config) {
  State& s = state();
  {
    const std::scoped_lock lock(s.sampler_mutex);
    s.config = config;
    s.config.sample_rate = std::clamp(config.sample_rate, 0.0, 1.0);
    if (s.config.retain_capacity == 0) s.config.retain_capacity = 1;
  }
  s.seed.store(config.seed, std::memory_order_relaxed);
  s.epoch_us.store(steady_now_us(), std::memory_order_relaxed);
  s.enabled.store(true, std::memory_order_release);
}

void disable() { state().enabled.store(false, std::memory_order_release); }

bool enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

void reset() {
  State& s = state();
  s.enabled.store(false, std::memory_order_release);
  for (std::size_t r = 0; r < kMaxThreadRings; ++r) {
    ThreadRing* ring = s.rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (Slot& slot : ring->slots) {
      slot.begin.store(0, std::memory_order_relaxed);
      slot.end.store(0, std::memory_order_relaxed);
      slot.name.store(nullptr, std::memory_order_relaxed);
    }
    ring->next.store(0, std::memory_order_relaxed);
  }
  s.draws.store(0, std::memory_order_relaxed);
  const std::scoped_lock lock(s.sampler_mutex);
  s.retained_traces.clear();
  s.forced.clear();
}

std::int64_t now_us() noexcept {
  State& s = state();
  const std::int64_t epoch = s.epoch_us.load(std::memory_order_relaxed);
  return epoch == 0 ? 0 : steady_now_us() - epoch;
}

TraceContext mint_request() noexcept {
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return {};
  TraceContext ctx;
  ctx.trace_hi = mint_id(s);
  ctx.trace_lo = mint_id(s);
  ctx.span_id = mint_id(s);
  ctx.parent_span_id = 0;
  return ctx;
}

TraceContext child_of(const TraceContext& parent) noexcept {
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed) || !parent.valid()) return {};
  TraceContext ctx;
  ctx.trace_hi = parent.trace_hi;
  ctx.trace_lo = parent.trace_lo;
  ctx.span_id = mint_id(s);
  ctx.parent_span_id = parent.span_id;
  return ctx;
}

const TraceContext& current() noexcept { return tl_current; }

void set_current(const TraceContext& ctx) noexcept { tl_current = ctx; }

void record_span(const TraceContext& ctx, const char* name, SpanKind kind,
                 std::int64_t start_us, std::int64_t end_us,
                 std::span<const std::uint64_t> flows) noexcept {
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed) || !ctx.valid()) return;
  ThreadRing& ring = ring_for_thread(s);
  const std::uint64_t seq = ring.next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[seq & (kSpanRingCapacity - 1)];
  slot.begin.store(seq + 1, std::memory_order_relaxed);
  slot.trace_hi.store(ctx.trace_hi, std::memory_order_relaxed);
  slot.trace_lo.store(ctx.trace_lo, std::memory_order_relaxed);
  slot.span_id.store(ctx.span_id, std::memory_order_relaxed);
  slot.parent_span_id.store(ctx.parent_span_id, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.tid.store(thread_index(), std::memory_order_relaxed);
  slot.start_us.store(start_us, std::memory_order_relaxed);
  slot.end_us.store(end_us, std::memory_order_relaxed);
  const std::uint32_t count =
      static_cast<std::uint32_t>(std::min(flows.size(), kMaxFlows));
  slot.flow_count.store(count, std::memory_order_relaxed);
  for (std::size_t f = 0; f < kMaxFlows; ++f) {
    slot.flows[f].store(f < count ? flows[f] : 0, std::memory_order_relaxed);
  }
  slot.end.store(seq + 1, std::memory_order_release);
  registry().counter(metric::kTraceSpans).add(1);
}

void finish_request(const TraceContext& ctx, const Verdict& verdict,
                    const TraceContext* force_keep_link) {
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed) || !ctx.valid()) return;
  const TraceId id{ctx.trace_hi, ctx.trace_lo};
  const std::scoped_lock lock(s.sampler_mutex);
  registry().counter(metric::kTraceRequests).add(1);
  const char* reason = keep_reason(s.config, verdict);
  const bool forced = take_forced_locked(s, id);
  if (reason == nullptr && forced) reason = "forced";
  if (reason == nullptr &&
      sample_coin(s.config.seed, id) < s.config.sample_rate) {
    reason = "sampled";
  }
  if (reason == nullptr) {
    registry().counter(metric::kTraceSampledOut).add(1);
    return;
  }
  s.retained_traces.push_back(Retained{id, reason});
  while (s.retained_traces.size() > s.config.retain_capacity) {
    s.retained_traces.pop_front();
  }
  registry().counter(metric::kTraceRetained).add(1);
  if (force_keep_link != nullptr && force_keep_link->valid()) {
    add_forced_locked(
        s, TraceId{force_keep_link->trace_hi, force_keep_link->trace_lo});
  }
}

void note_child_verdict(const TraceContext& ctx, const Verdict& verdict) {
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed) || !ctx.valid()) return;
  const std::scoped_lock lock(s.sampler_mutex);
  if (keep_reason(s.config, verdict) == nullptr) return;
  add_forced_locked(s, TraceId{ctx.trace_hi, ctx.trace_lo});
}

bool is_retained(const TraceContext& ctx) {
  State& s = state();
  if (!ctx.valid()) return false;
  const TraceId id{ctx.trace_hi, ctx.trace_lo};
  const std::scoped_lock lock(s.sampler_mutex);
  for (const Retained& r : s.retained_traces) {
    if (r.id == id) return true;
  }
  return false;
}

std::vector<RetainedTrace> retained() {
  State& s = state();
  std::vector<RetainedTrace> out;
  {
    const std::scoped_lock lock(s.sampler_mutex);
    out.reserve(s.retained_traces.size());
    for (const Retained& r : s.retained_traces) {
      RetainedTrace trace;
      trace.trace_hi = r.id.hi;
      trace.trace_lo = r.id.lo;
      trace.reason = r.reason;
      out.push_back(std::move(trace));
    }
  }
  collect_spans(s, out);
  return out;
}

std::string jsonl(std::size_t max_traces) {
  std::vector<RetainedTrace> traces = retained();
  const std::size_t begin =
      max_traces > 0 && traces.size() > max_traces ? traces.size() - max_traces
                                                   : 0;
  std::string out;
  for (std::size_t i = begin; i < traces.size(); ++i) {
    const RetainedTrace& trace = traces[i];
    Json doc = Json::object();
    doc["schema"] = "treecode-trace/v1";
    doc["trace_id"] = trace_id_hex(trace.trace_hi, trace.trace_lo);
    doc["reason"] = trace.reason;
    Json spans = Json::array();
    for (const SpanRecord& span : trace.spans) {
      spans.push_back(span_json(span));
    }
    doc["spans"] = std::move(spans);
    out += doc.dump(0);
    out += '\n';
  }
  return out;
}

std::string chrome_json() {
  const std::vector<RetainedTrace> traces = retained();
  // Flow sources are looked up across all exported traces: the batch span
  // links to request spans that live in other (member) traces.
  std::unordered_map<std::uint64_t, const SpanRecord*> by_span_id;
  for (const RetainedTrace& trace : traces) {
    for (const SpanRecord& span : trace.spans) {
      by_span_id.emplace(span.span_id, &span);
    }
  }
  Json events = Json::array();
  for (const RetainedTrace& trace : traces) {
    const std::string trace_id = trace_id_hex(trace.trace_hi, trace.trace_lo);
    for (const SpanRecord& span : trace.spans) {
      Json event = Json::object();
      event["name"] = span.name;
      event["cat"] = span_kind_name(span.kind);
      event["ph"] = "X";
      event["ts"] = span.start_us;
      event["dur"] = span.end_us - span.start_us;
      event["pid"] = 0;
      event["tid"] = static_cast<std::uint64_t>(span.tid);
      Json args = Json::object();
      args["trace_id"] = trace_id;
      args["span_id"] = span_id_hex(span.span_id);
      args["parent_span_id"] = span_id_hex(span.parent_span_id);
      args["reason"] = trace.reason;
      event["args"] = std::move(args);
      events.push_back(std::move(event));
      for (std::uint32_t f = 0; f < span.flow_count; ++f) {
        const auto it = by_span_id.find(span.flows[f]);
        if (it == by_span_id.end()) continue;
        const SpanRecord& source = *it->second;
        // Flow start must sit inside the source slice for Perfetto to bind
        // the arrow; clamp the batch start into the source's window.
        const std::int64_t start_ts = std::clamp(span.start_us, source.start_us,
                                                 source.end_us);
        Json flow_start = Json::object();
        flow_start["name"] = "batch.fanin";
        flow_start["cat"] = "flow";
        flow_start["ph"] = "s";
        flow_start["id"] = span_id_hex(source.span_id);
        flow_start["ts"] = start_ts;
        flow_start["pid"] = 0;
        flow_start["tid"] = static_cast<std::uint64_t>(source.tid);
        events.push_back(std::move(flow_start));
        Json flow_end = Json::object();
        flow_end["name"] = "batch.fanin";
        flow_end["cat"] = "flow";
        flow_end["ph"] = "f";
        flow_end["bp"] = "e";
        flow_end["id"] = span_id_hex(source.span_id);
        flow_end["ts"] = span.start_us;
        flow_end["pid"] = 0;
        flow_end["tid"] = static_cast<std::uint64_t>(span.tid);
        events.push_back(std::move(flow_end));
      }
    }
  }
  return events.dump(0);
}

namespace {

bool write_text(const std::string& path, const std::string& text,
                const char* what) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    warn(std::string(what) + " open failed: " + path);
    return false;
  }
  out << text;
  out.flush();
  if (!out) {
    warn(std::string(what) + " write failed: " + path);
    return false;
  }
  return true;
}

}  // namespace

bool write_jsonl(const std::string& path) {
  return write_text(path, jsonl(), "reqtrace jsonl");
}

bool write_chrome_json(const std::string& path) {
  return write_text(path, chrome_json(), "reqtrace chrome trace");
}

#endif  // TREECODE_TRACING_ENABLED

}  // namespace treecode::obs::reqtrace
