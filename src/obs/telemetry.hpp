#pragma once

/// \file telemetry.hpp
/// Request-level telemetry: one structured RequestRecord per engine entry
/// point exit, kept in a bounded lock-free ring and optionally streamed to a
/// rotating JSONL sink.
///
/// The metrics registry aggregates (how many replays, how many denials);
/// the flight recorder captures fine-grained events around a failure. What
/// neither answers is the per-request question a serving operator asks:
/// *this* evaluation — which plan did it hit, which degradation rung served
/// it, how long did it take, how much deadline slack was left, how tight
/// was its audited error bound? The telemetry layer records exactly that
/// tuple at every EvalSession try_* exit, success or failure.
///
/// Design constraints mirror the flight recorder (obs/recorder.hpp):
///  - emit() must be safe from any thread: ring slots are seqlock-stamped
///    atomics, torn reads are detected and skipped, no allocation on the
///    ring path. The JSONL sink is mutex-serialized (requests finish at
///    call granularity, never inside kernel loops).
///  - Disabled (the default) costs one relaxed load and a branch.
///  - This layer lives in obs and cannot see engine/core types: the serving
///    rung travels as a small integer (matching core ServeRung values) and
///    the outcome as the ErrorCode's numeric value plus its static name.
///
/// Every record also feeds three registry series — telemetry.requests,
/// telemetry.errors, and the telemetry.request_seconds histogram — so the
/// OpenMetrics exposition and SLO watchdog (obs/slo.hpp) see request rates
/// and latency quantiles without reading the ring.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace treecode::obs::telemetry {

/// Which EvalSession entry point produced a record. Values are stable:
/// they appear in JSONL sinks read by external tooling.
enum class Api : std::uint8_t {
  kCompile = 0,
  kCompileSelf,
  kUpdateCharges,
  kUpdateChargesSorted,
  kEvaluatePlan,
  kEvaluateAt,
  kEvaluateSelf,
  kEvaluateBatch,      ///< multi-RHS batched replay (EvalSession::try_evaluate_batch)
  kServiceRegister,    ///< service tenant registration (EvalService)
  kServiceSubmit,      ///< service request admission (EvalService)
  kServiceUnregister,  ///< service tenant teardown (EvalService)
  kServiceServe,       ///< one coalesced request at fulfillment (EvalService)
};

/// Human-readable name for an Api ("compile", "evaluate_at", ...).
const char* api_name(Api api);

/// One request, as recorded at an entry point's exit. Sentinel conventions:
/// plan_key 0 = no plan involved, rung -1 = not an evaluation (or failed
/// before rung choice), deadline_slack_seconds NaN = no deadline armed,
/// audit_max_tightness 0 = no audit ran.
struct RequestRecord {
  std::uint64_t seq = 0;        ///< assigned by emit(); total request order
  std::int64_t ts_us = 0;       ///< assigned by emit(); microseconds since enable()
  Api api = Api::kEvaluateAt;
  std::uint64_t plan_key = 0;   ///< PlanCache key (FNV-1a) or 0
  std::int8_t rung = -1;        ///< core ServeRung value (0-3) or -1
  std::uint8_t outcome = 0;     ///< util ErrorCode numeric value (0 = ok)
  const char* outcome_name = "ok";  ///< static error_code_name() string
  bool ok = true;               ///< whether the Expected held a value
  double wall_seconds = 0.0;    ///< entry-to-exit wall time
  std::uint64_t targets = 0;    ///< targets served (0 for non-evaluations)
  std::uint64_t plan_bytes = 0;   ///< resident compiled-plan bytes at exit
  std::uint64_t basis_bytes = 0;  ///< resident evaluation-basis bytes at exit
  double deadline_slack_seconds = 0.0;  ///< deadline - wall; NaN = no deadline
  double audit_max_tightness = 0.0;     ///< max |error|/bound this request
  std::uint32_t threads = 0;    ///< session pool width
  std::uint32_t batch_width = 0;  ///< multi-RHS columns (0 = not a batch)
  // v2 fields (treecode-request-record/v2). A zero trace id means request
  // tracing was off; JSON renders it as 32 '0' hex chars.
  std::uint64_t trace_hi = 0;   ///< obs/reqtrace.hpp trace id, high half
  std::uint64_t trace_lo = 0;   ///< low half
  double queue_wait_seconds = 0.0;  ///< admission -> batch pickup (service)
  std::uint64_t batch_seq = 0;  ///< service scheduler round (0 = no batch)
};

/// Number of ring slots. Power of two so the slot index is a mask.
inline constexpr std::size_t kRingCapacity = 1024;

/// Enable recording. Idempotent; resets the timestamp epoch.
void enable();

/// Disable recording. Records already in the ring remain readable; the
/// sink (if any) stays configured.
void disable();

/// Whether emit() currently stores records. One relaxed load.
bool enabled();

/// Discard all records, close and forget the sink, zero the counters.
/// Not safe concurrently with emit(); intended for test setup.
void reset();

/// Stream every record as one JSON line appended to `path`. When
/// `rotate_bytes` > 0 the file is rotated (path -> path.1 -> ... ->
/// path.<max_files-1>, oldest dropped) once it would exceed that size.
/// Write failures increment telemetry.sink_errors and drop the line; the
/// ring is unaffected.
void set_sink(std::string path, std::uint64_t rotate_bytes = 0,
              unsigned max_files = 3);

/// Flush and detach the sink. Records keep flowing to the ring.
void close_sink();

/// Record one request: stamps seq/ts_us, writes the ring slot, appends to
/// the sink, and feeds the telemetry.* registry metrics. No-op (one
/// relaxed load + branch) while disabled.
void emit(RequestRecord record);

/// Snapshot the ring: readable records, oldest first. Torn slots skipped.
std::vector<RequestRecord> records();

/// Total records ever emitted (including ones the ring has overwritten).
std::uint64_t emitted_count();

/// One record as a `treecode-request-record/v2` JSON object — the same
/// shape the JSONL sink writes per line (validated by
/// scripts/validate_telemetry.py against scripts/telemetry_record_schema.json).
Json to_json(const RequestRecord& record);

}  // namespace treecode::obs::telemetry
