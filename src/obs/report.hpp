#pragma once

/// \file report.hpp
/// Structured run reports: one JSON document per bench/example run
/// containing the tool's configuration and results, a snapshot of every
/// metric in the registry, the recorded trace spans, and any warnings the
/// library raised — the machine-readable record the perf-trajectory tooling
/// consumes (`BENCH_*.json`), replacing grep-the-console-table.
///
/// Also home of the library's warning channel: subsystems report anomalous
/// but non-fatal conditions (e.g. "the error budget demoted most
/// MAC-accepted interactions") with obs::warn() instead of printing to
/// stderr; warnings land in every report built afterwards and callers can
/// drain them programmatically.

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace treecode::obs {

/// Record a one-line warning. Thread-safe; exact duplicates are collapsed
/// (hot paths may detect the same condition once per evaluation).
void warn(std::string message);

/// Snapshot of all warnings since process start / the last drain.
[[nodiscard]] std::vector<std::string> warnings();

/// Return and clear all warnings (tests use this for isolation).
std::vector<std::string> drain_warnings();

/// Serialize a MetricsSnapshot:
///   {"counters": {...}, "gauges": {...}, "gauge_maxima": {...},
///    "histograms": {name: {"bounds": [...], "counts": [...],
///                          "total": n, "sum": s}},
///    "series": {name: [...]}}
[[nodiscard]] Json metrics_json(const MetricsSnapshot& snapshot);

/// Serialize the current trace events:
///   [{"name": ..., "tid": ..., "ts_us": ..., "dur_us": ...}, ...]
/// Empty array when tracing is off or compiled out.
[[nodiscard]] Json spans_json();

/// Builder for the report document. Fill config() and results(), then
/// build()/write() — which append the registry snapshot, spans, and
/// warnings at that moment.
class RunReport {
 public:
  /// `tool` names the producing binary (e.g. "bench_table1_structured").
  explicit RunReport(std::string tool);

  /// Mutable "config" section (flag values, sizes, seeds).
  Json& config() { return config_; }
  /// Mutable "results" section (rows, errors, timings — tool-specific).
  Json& results() { return results_; }

  /// Assemble the full document. Schema (validated by
  /// scripts/validate_report.py against scripts/bench_report_schema.json):
  ///   {"schema": "treecode-bench-report/v2", "tool": ..., "config": {...},
  ///    "results": ..., "provenance": {...}, "metrics": {...},
  ///    "spans": [...], "warnings": [...]}
  /// plus an optional "tightness" block summarizing the audit engine's
  /// observed-error/bound ratios when any audit ran this process.
  [[nodiscard]] Json build() const;

  /// build() and write pretty-printed JSON to `path`.
  void write(const std::string& path) const;

 private:
  std::string tool_;
  Json config_ = Json::object();
  Json results_ = Json::object();
};

/// The provenance block stamped into every report: what produced this
/// measurement (git SHA from $TREECODE_GIT_SHA, compiler, build flags,
/// host, UTC timestamp), so a trajectory of BENCH_*.json files stays
/// attributable. Flight-recorder dumps (v2) embed the same block.
[[nodiscard]] Json provenance_json();

/// The schema identifier stamped into every report. v2 added the required
/// "provenance" block and the optional "tightness" block; consumers
/// (validate_report.py, bench_compare.py) still accept v1.
inline constexpr const char* kReportSchema = "treecode-bench-report/v2";

}  // namespace treecode::obs
