#pragma once

/// \file httpd.hpp
/// Minimal dependency-free blocking HTTP/1.1 server for live observability
/// scrapes: GET /metrics (OpenMetrics), /healthz (SLO status), /state
/// (engine/service state JSON), /traces (retained request traces).
///
/// Deliberately tiny: one listening socket bound to loopback, one accept
/// thread (poll with a timeout so stop() is prompt), one connection served
/// at a time, Connection: close on every response. That is the right shape
/// for an operator's curl / Prometheus scrape loop — a handful of requests
/// per scrape interval — and keeps the server from ever contending with
/// the evaluation pool for cores. Handlers run on the accept thread and
/// must be safe to call concurrently with serving (the registry snapshot,
/// service state_json and reqtrace exports all are).
///
/// This layer lives in obs and cannot see engine/service/util types, so
/// start errors surface as a plain StartResult rather than Expected; the
/// service boundary (EvalService::start_http) wraps it into the typed
/// error taxonomy. Requests and errors feed the httpd.* registry counters.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace treecode::obs::httpd {

/// One parsed request line. Only the method, path and query string are
/// parsed — headers are read and discarded (nothing here needs them).
struct Request {
  std::string method;  ///< "GET", "HEAD", ...
  std::string path;    ///< target up to '?', e.g. "/traces"
  std::vector<std::pair<std::string, std::string>> query;  ///< decoded pairs

  /// First value for `key`, or `fallback` when absent.
  [[nodiscard]] std::string query_value(std::string_view key,
                                        std::string fallback = "") const;
};

/// Handler output. `content_type` defaults to JSON; /metrics overrides it
/// with the OpenMetrics text type.
struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Outcome of Server::try_start (obs cannot return util::Expected).
struct StartResult {
  bool ok = false;
  std::uint16_t port = 0;  ///< bound port (useful with requested port 0)
  std::string error;
};

class Server {
 public:
  using Handler = std::function<Response(const Request&)>;

  Server() = default;
  /// Stops the accept loop and closes the socket.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register `handler` for exact-match `path`. Call before try_start —
  /// the route table is read by the accept thread without a lock.
  void handle(std::string path, Handler handler);

  /// Bind 127.0.0.1:`port` (0 = ephemeral), start the accept thread.
  /// Fails (never throws) if already running or the socket calls fail.
  [[nodiscard]] StartResult try_start(std::uint16_t port);

  /// Stop the accept thread and close the socket. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Requests answered (any status) since construction.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  std::vector<std::pair<std::string, Handler>> routes_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace treecode::obs::httpd
