#pragma once

/// \file json.hpp
/// Minimal JSON document model for the structured report emitter.
///
/// Dependency-free by design (the container bakes in no JSON library):
/// an insertion-ordered value tree with a writer (`dump`) and a strict
/// parser (`parse`) used by the tests and the report round-trip. Not a
/// general-purpose library — no comments, no trailing commas, UTF-8 passed
/// through verbatim. Non-finite doubles serialize as `null` so emitted
/// reports are always standard JSON.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace treecode::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}
  Json(std::string v) : type_(Type::kString), str_(std::move(v)) {}
  Json(std::string_view v) : Json(std::string(v)) {}
  Json(const char* v) : Json(std::string(v)) {}

  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }

  /// Object access; inserts a null member on first use (a null object or
  /// null value silently becomes an object, so `j["a"]["b"] = 1` works).
  Json& operator[](std::string_view key);
  /// Const lookup; throws std::out_of_range if missing or not an object.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const noexcept;

  /// Array append (a null value silently becomes an array).
  void push_back(Json v);
  [[nodiscard]] std::size_t size() const noexcept;
  /// Array element access; throws std::out_of_range.
  [[nodiscard]] const Json& at(std::size_t index) const;

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serialize. indent > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parse of a complete JSON document; throws std::runtime_error
  /// with a byte offset on malformed input.
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Write `value.dump(2)` to `path`; throws std::runtime_error on I/O error.
void write_json_file(const std::string& path, const Json& value);

}  // namespace treecode::obs
