#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace treecode::obs {

// ---- accessors -------------------------------------------------------------

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::runtime_error("Json: operator[] on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), Json());
  return object_.back().second;
}

const Json& Json::at(std::string_view key) const {
  if (type_ == Type::kObject) {
    for (const auto& [k, v] : object_) {
      if (k == key) return v;
    }
  }
  throw std::out_of_range("Json: missing key '" + std::string(key) + "'");
}

bool Json::contains(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::runtime_error("Json: push_back on non-array");
  array_.push_back(std::move(v));
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray || index >= array_.size()) {
    throw std::out_of_range("Json: array index out of range");
  }
  return array_[index];
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("Json: not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) throw std::runtime_error("Json: not a number");
  return num_;
}

std::int64_t Json::as_int() const { return static_cast<std::int64_t>(as_double()); }

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("Json: not a string");
  return str_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) throw std::runtime_error("Json: not an object");
  return object_;
}

// ---- writer ----------------------------------------------------------------

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  // Integers up to 2^53 print exactly and without an exponent.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) append_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (indent > 0) append_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent > 0) append_indent(out, indent, depth + 1);
        append_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent > 0) append_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  /// Containers may nest at most this deep. The parser recurses once per
  /// nesting level, so without a cap a pathological input like 100k '['
  /// characters overflows the stack instead of throwing; 512 levels is far
  /// beyond any report the library emits.
  static constexpr int kMaxDepth = 512;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth) parser.fail("nesting too deep");
    }
    ~DepthGuard() { --parser.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser;
  };

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': {
        const DepthGuard guard(*this);
        return parse_object();
      }
      case '[': {
        const DepthGuard guard(*this);
        return parse_array();
      }
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Minimal UTF-8 encoding (no surrogate-pair handling; the
          // reports only ever emit ASCII escapes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin) fail("expected value");
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number '" + token + "'");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

void write_json_file(const std::string& path, const Json& value) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("json: cannot open " + path + " for writing");
  }
  std::string text = value.dump(2);
  text += '\n';
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) throw std::runtime_error("json: short write to " + path);
}

}  // namespace treecode::obs
