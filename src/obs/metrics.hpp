#pragma once

/// \file metrics.hpp
/// Process-wide metrics registry: named counters, gauges, histograms, and
/// series with near-zero-overhead concurrent recording.
///
/// The paper's whole argument is quantitative — serial cost in multipole
/// terms (p+1)^2, per-thread work for the speedup model, a-posteriori error
/// bounds — so the evaluators need a place to record degree distributions,
/// per-level interaction counts, budget-refinement causes, and GMRES
/// residual trajectories without perturbing the hot loops they measure.
///
/// Design:
///  * Counters and histograms are sharded: each records into one of
///    kMetricShards cache-line-padded atomic slots selected by a stable
///    per-thread index, so concurrent recording never contends on a single
///    cache line. Relaxed atomic adds make aggregation *exact* (tested
///    under TSan via scripts/sanitize.sh), not sampled.
///  * Lookup by name takes a mutex; hot paths resolve their metrics once
///    (outside the loop, or batch per-thread totals into locals and flush
///    after the parallel region — the pattern the evaluators use).
///  * The registry is append-only: a metric, once registered, lives for the
///    process lifetime, so references returned by counter()/histogram()/...
///    stay valid forever. reset_values() zeroes values but keeps
///    registrations.
///
/// Metric naming convention (documented in README "Observability"):
/// dot-separated `<subsystem>.<quantity>[_<unit>]`, e.g. `bh.m2p_count`,
/// `time.bh_p2m_ns`, `gmres.residual`.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace treecode::obs {

/// Number of independent accumulation slots per sharded metric. Power of
/// two; threads map onto slots by a stable per-thread counter, so up to
/// kMetricShards threads record with zero cache-line sharing.
inline constexpr unsigned kMetricShards = 64;

/// Stable small id for the calling thread (assigned on first use,
/// monotonically increasing across the process).
unsigned thread_index() noexcept;

namespace detail {
/// One cache line per shard so concurrent add() never false-shares.
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(64) PaddedF64 {
  std::atomic<double> v{0.0};
};
}  // namespace detail

/// Monotonic sharded counter (u64). Exact under concurrency.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    shards_[thread_index() & (kMetricShards - 1)].v.fetch_add(delta,
                                                              std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Sum over all shards.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t s = 0;
    for (const auto& shard : shards_) s += shard.v.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    for (auto& shard : shards_) shard.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedU64, kMetricShards> shards_{};
};

/// Last-written double value plus running max — enough for "largest
/// Theorem-2 bound seen" style quantities. set()/record_max() are atomic but
/// the gauge is not sharded: gauges are written at phase granularity.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void record_max(double v) noexcept {
    double cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  void reset() noexcept {
    value_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

/// Aggregated view of one histogram.
struct HistogramSnapshot {
  /// Inclusive upper bound of bucket i; the final bucket (counts.back())
  /// catches everything above bounds.back().
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t total = 0;
  double sum = 0.0;
};

/// Fixed-boundary histogram with per-thread sharded bucket counts.
/// Boundaries are inclusive upper bounds; values above the last boundary
/// land in an implicit overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept { observe_n(v, 1); }
  /// Record `n` observations of value `v` at once — the batched flush the
  /// evaluators use after a parallel region.
  void observe_n(double v, std::uint64_t n) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset() noexcept;

 private:
  [[nodiscard]] std::size_t bucket_of(double v) const noexcept;

  std::vector<double> bounds_;
  std::size_t num_buckets_ = 0;  ///< bounds_.size() + 1 (overflow bucket)
  std::size_t stride_ = 0;       ///< num_buckets_ rounded up to a cache line
  /// counts_[shard * stride_ + bucket]; the shard stride keeps each
  /// thread's buckets on its own cache lines.
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::array<detail::PaddedF64, kMetricShards> sums_{};  ///< per-shard value sums
};

/// Append-only ordered sequence of doubles (e.g. a GMRES residual
/// trajectory). Mutex-protected: appends happen at iteration granularity,
/// never in kernel hot loops.
class Series {
 public:
  void append(double v);
  [[nodiscard]] std::vector<double> values() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> values_;
};

/// Everything the registry knows, aggregated — the report emitter's input.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, double> gauge_maxima;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, std::vector<double>> series;
};

/// Named-metric registry. All accessors register on first use and return
/// references that stay valid for the process lifetime.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is consulted only on first registration; later calls
  /// with the same name return the existing histogram unchanged.
  Histogram& histogram(std::string_view name, std::span<const double> upper_bounds);
  Series& series(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every value; registrations (and histogram boundaries) survive.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
};

/// The process-global registry every subsystem records into.
Registry& registry() noexcept;

/// Boundaries {0, 1, ..., max_value}: bucket i counts integer value i
/// exactly (used for multipole degrees and tree levels).
std::vector<double> integer_buckets(int max_value);

/// Boundaries start, start*factor, ... (n of them) — decades/octaves for
/// wide-range quantities.
std::vector<double> exponential_buckets(double start, double factor, int n);

}  // namespace treecode::obs
