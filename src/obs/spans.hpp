#pragma once

/// \file spans.hpp
/// Central registry of every trace-span / phase name in the library.
///
/// Span names identify phases across three consumers at once: the Chrome
/// trace-event export (obs/trace.hpp), the `time.*_ns` phase counters
/// (util/timer.hpp ScopedTimer), and the flight recorder's phase events
/// (obs/recorder.hpp). A typo'd literal at any one call site silently
/// fragments all three — the span records under a name nothing else
/// aggregates. Every call site therefore names its span through one of
/// these constants; scripts/treecode_lint.py (rule `span-registry`)
/// rejects raw string literals at TraceSpan / ScopedTimer /
/// parallel_for(_blocked) call sites and any constant here whose value
/// duplicates another's.
///
/// Naming convention: `time.<subsystem>_<phase>` for ScopedTimer phases
/// (the `_ns` counter suffix is appended by ScopedTimer), and
/// `<subsystem>.<phase>.worker` for per-worker parallel-region spans.

namespace treecode::obs::span {

// -- tree construction -------------------------------------------------------
inline constexpr const char* kTreeBuild = "time.tree_build";

// -- Barnes-Hut evaluator ----------------------------------------------------
inline constexpr const char* kBhP2m = "time.bh_p2m";
inline constexpr const char* kBhTraverse = "time.bh_traverse";
inline constexpr const char* kBhP2mWorker = "bh.p2m.worker";
inline constexpr const char* kBhTraverseWorker = "bh.traverse.worker";

// -- dipole Barnes-Hut evaluator ---------------------------------------------
inline constexpr const char* kDipoleBhP2m = "time.dipole_bh_p2m";
inline constexpr const char* kDipoleBhTraverse = "time.dipole_bh_traverse";
inline constexpr const char* kDipoleBhP2mWorker = "dipole_bh.p2m.worker";
inline constexpr const char* kDipoleBhTraverseWorker = "dipole_bh.traverse.worker";

// -- FMM evaluator -----------------------------------------------------------
inline constexpr const char* kFmmP2m = "time.fmm_p2m";
inline constexpr const char* kFmmTraverse = "time.fmm_traverse";
inline constexpr const char* kFmmM2l = "time.fmm_m2l";
inline constexpr const char* kFmmDownward = "time.fmm_downward";
inline constexpr const char* kFmmP2p = "time.fmm_p2p";
inline constexpr const char* kFmmP2mWorker = "fmm.p2m.worker";
inline constexpr const char* kFmmM2lWorker = "fmm.m2l.worker";
inline constexpr const char* kFmmDownwardWorker = "fmm.downward.worker";
inline constexpr const char* kFmmP2pWorker = "fmm.p2p.worker";

// -- direct summation --------------------------------------------------------
inline constexpr const char* kDirectEval = "time.direct_eval";
inline constexpr const char* kDirectEvalWorker = "direct.eval.worker";

// -- evaluation engine -------------------------------------------------------
inline constexpr const char* kEngineCompile = "time.engine_compile";
inline constexpr const char* kEngineRefresh = "time.engine_refresh";
inline constexpr const char* kEngineReplay = "time.engine_replay";
inline constexpr const char* kEngineDirect = "time.engine_direct";
inline constexpr const char* kEngineCompileWorker = "engine.compile.worker";
inline constexpr const char* kEngineRefreshWorker = "engine.refresh.worker";
inline constexpr const char* kEngineReplayWorker = "engine.replay.worker";
inline constexpr const char* kEngineDirectWorker = "engine.direct.worker";

// -- request tracing (obs/reqtrace.hpp RequestScope / service spans) ---------
// Root request-scope names, one per engine entry point. Direct calls mint a
// root trace under these; calls inside a service batch become child spans.
inline constexpr const char* kReqEngineCompile = "engine.req.compile";
inline constexpr const char* kReqEngineCompileSelf = "engine.req.compile_self";
inline constexpr const char* kReqEngineUpdateCharges = "engine.req.update_charges";
inline constexpr const char* kReqEngineUpdateChargesSorted =
    "engine.req.update_charges_sorted";
inline constexpr const char* kReqEngineEvaluatePlan = "engine.req.evaluate_plan";
inline constexpr const char* kReqEngineEvaluateAt = "engine.req.evaluate_at";
inline constexpr const char* kReqEngineEvaluateSelf = "engine.req.evaluate_self";
inline constexpr const char* kReqEngineEvaluateBatch = "engine.req.evaluate_batch";
// Service request lifecycle: the root request span (submit -> fulfill), the
// admission slice of submit, the queue-wait span, and the coalesced batch
// span that carries flow links back to its member request spans.
inline constexpr const char* kServiceRequest = "service.request";
inline constexpr const char* kReqServiceSubmit = "service.req.submit";
inline constexpr const char* kServiceQueueWait = "service.queue_wait";
inline constexpr const char* kServiceBatch = "service.batch";
inline constexpr const char* kReqServiceRegister = "service.req.register";
inline constexpr const char* kReqServiceUnregister = "service.req.unregister";

// -- audit engine ------------------------------------------------------------
inline constexpr const char* kAuditFinalize = "time.audit_finalize";

// -- linear algebra ----------------------------------------------------------
inline constexpr const char* kGmresSolve = "time.gmres_solve";
inline constexpr const char* kGmresCycle = "gmres.cycle";

// -- parallel runtime --------------------------------------------------------
/// Fallback for parallel regions whose caller passed no span name.
inline constexpr const char* kParallelFor = "parallel_for";

}  // namespace treecode::obs::span
