#pragma once

/// \file metric_names.hpp
/// Central registry of every metrics-registry series name in the library.
///
/// Metric names identify the same series across four consumers at once: the
/// in-process registry (obs/metrics.hpp), the bench-report JSON snapshot
/// (obs/report.hpp), the OpenMetrics exposition (obs/openmetrics.hpp), and
/// the SLO watchdog's rules (obs/slo.hpp). A typo'd literal at any one call
/// site silently forks the series — increments land under a name nothing
/// scrapes, and a watchdog rule over the intended name reads zero forever.
/// Every call site therefore names its metric through one of these
/// constants; scripts/treecode_lint.py (rule `metric-name-literal`) rejects
/// raw string literals at counter()/gauge()/histogram()/series()/
/// flush_counts() call sites in src/ and any constant here whose value
/// duplicates another's.
///
/// Naming convention: `<subsystem>.<measurement>`, dot-separated; the
/// OpenMetrics exporter rewrites dots to underscores on export. Per-level
/// and per-degree fan-out names (`audit.tightness.L%d` etc.) are built with
/// snprintf at the one call site that owns them and are exempt by
/// construction (a non-literal first argument is never flagged).

namespace treecode::obs::metric {

// -- tree construction -------------------------------------------------------
inline constexpr const char* kTreeHeight = "tree.height";
inline constexpr const char* kTreeNumNodes = "tree.num_nodes";
inline constexpr const char* kTreeNumLeaves = "tree.num_leaves";
inline constexpr const char* kTreeNumParticles = "tree.num_particles";

// -- Barnes-Hut evaluator ----------------------------------------------------
inline constexpr const char* kBhMultipoleTerms = "bh.multipole_terms";
inline constexpr const char* kBhM2pCount = "bh.m2p_count";
inline constexpr const char* kBhP2pPairs = "bh.p2p_pairs";
inline constexpr const char* kBhBudgetRefinements = "bh.budget_refinements";
inline constexpr const char* kBhBudgetRefinementsLeaf = "bh.budget_refinements_leaf";
inline constexpr const char* kBhMaxInteractionBound = "bh.max_interaction_bound";
inline constexpr const char* kBhM2pPerLevel = "bh.m2p_per_level";
inline constexpr const char* kBhP2pPerLevel = "bh.p2p_per_level";
inline constexpr const char* kBhDegreeUsed = "bh.degree_used";

// -- dipole Barnes-Hut evaluator ---------------------------------------------
inline constexpr const char* kDipoleBhMultipoleTerms = "dipole_bh.multipole_terms";
inline constexpr const char* kDipoleBhP2pPairs = "dipole_bh.p2p_pairs";

// -- FMM evaluator -----------------------------------------------------------
inline constexpr const char* kFmmMultipoleTerms = "fmm.multipole_terms";
inline constexpr const char* kFmmM2lCount = "fmm.m2l_count";
inline constexpr const char* kFmmP2pPairs = "fmm.p2p_pairs";
inline constexpr const char* kFmmMaxInteractionBound = "fmm.max_interaction_bound";
inline constexpr const char* kFmmM2lPerLevel = "fmm.m2l_per_level";
inline constexpr const char* kFmmP2pPerLevel = "fmm.p2p_per_level";
inline constexpr const char* kFmmDegreeUsed = "fmm.degree_used";

// -- direct summation --------------------------------------------------------
inline constexpr const char* kDirectP2pPairs = "direct.p2p_pairs";

// -- evaluation engine -------------------------------------------------------
/// Every public try_* entry-point call, counted unconditionally (before the
/// telemetry-enabled gate) — the SLO ratio denominator.
inline constexpr const char* kEngineRequests = "engine.requests";
inline constexpr const char* kEngineErrors = "engine.errors";
inline constexpr const char* kEnginePlanCacheHits = "engine.plan_cache_hits";
inline constexpr const char* kEnginePlanCacheMisses = "engine.plan_cache_misses";
inline constexpr const char* kEnginePlanDenied = "engine.plan_denied";
inline constexpr const char* kEngineBasisDenied = "engine.basis_denied";
inline constexpr const char* kEnginePlanCompiles = "engine.plan_compiles";
inline constexpr const char* kEnginePlanEntries = "engine.plan_entries";
inline constexpr const char* kEnginePlanBytes = "engine.plan_bytes";
inline constexpr const char* kEngineBasisBytes = "engine.basis_bytes";
inline constexpr const char* kEngineRefreshDenied = "engine.refresh_denied";
inline constexpr const char* kEngineRefreshBasisBytes = "engine.refresh_basis_bytes";
inline constexpr const char* kEngineP2mBasisDenied = "engine.p2m_basis_denied";
inline constexpr const char* kEngineNodesRefreshed = "engine.nodes_refreshed";
inline constexpr const char* kEngineDeadlineExpirations = "engine.deadline_expirations";
inline constexpr const char* kEngineReplays = "engine.replays";
inline constexpr const char* kEngineMultipoleTerms = "engine.multipole_terms";
inline constexpr const char* kEngineM2pCount = "engine.m2p_count";
inline constexpr const char* kEngineP2pPairs = "engine.p2p_pairs";
inline constexpr const char* kEngineM2pPerLevel = "engine.m2p_per_level";
inline constexpr const char* kEngineP2pPerLevel = "engine.p2p_per_level";
inline constexpr const char* kEngineDegreeUsed = "engine.degree_used";
inline constexpr const char* kEngineDegradedServes = "engine.degraded_serves";
inline constexpr const char* kEngineServeBasisReplay = "engine.serve.basis_replay";
inline constexpr const char* kEngineServePlainReplay = "engine.serve.plain_replay";
inline constexpr const char* kEngineServeTraversal = "engine.serve.traversal";
inline constexpr const char* kEngineServeDirect = "engine.serve.direct";
/// Multi-RHS batched replay (EvalSession::try_evaluate_batch).
inline constexpr const char* kEngineBatchReplays = "engine.batch_replays";
inline constexpr const char* kEngineBatchColumns = "engine.batch_columns";
inline constexpr const char* kEngineBatchFallbacks = "engine.batch_fallbacks";
inline constexpr const char* kEngineBatchDenied = "engine.batch_denied";

// -- evaluation service ------------------------------------------------------
/// Every public EvalService try_* entry-point call, counted unconditionally
/// (before the telemetry-enabled gate) — mirrors engine.requests.
inline constexpr const char* kServiceRequests = "service.requests";
inline constexpr const char* kServiceErrors = "service.errors";
inline constexpr const char* kServiceTenants = "service.tenants";
inline constexpr const char* kServiceSubmitted = "service.submitted";
inline constexpr const char* kServiceServed = "service.served";
inline constexpr const char* kServiceRejected = "service.rejected";
inline constexpr const char* kServiceCancelled = "service.cancelled";
inline constexpr const char* kServiceBatches = "service.batches";
inline constexpr const char* kServiceBatchColumns = "service.batch_columns";
inline constexpr const char* kServiceBatchWidth = "service.batch_width";

// -- per-tenant service latency (fan-out bases; see service_tenant_metric) ---
/// Per-tenant fan-outs insert the tenant after the "service." prefix:
/// `service.<tenant>.request_seconds` / `.deadline_slack_seconds` — submit
/// -to-fulfill latency and deadline slack histograms whose p50/p99 the
/// OpenMetrics exposition and `treecode-inspect --service` surface.
inline constexpr const char* kServiceRequestSeconds = "service.request_seconds";
inline constexpr const char* kServiceDeadlineSlackSeconds =
    "service.deadline_slack_seconds";
inline constexpr const char* kServiceQueueWaitSeconds = "service.queue_wait_seconds";

// -- audit engine ------------------------------------------------------------
inline constexpr const char* kAuditTightness = "audit.tightness";
inline constexpr const char* kAuditSamples = "audit.samples";
inline constexpr const char* kAuditBoundViolations = "audit.bound_violations";
inline constexpr const char* kAuditMaxTightness = "audit.max_tightness";

// -- resource governor -------------------------------------------------------
inline constexpr const char* kGovernorDenials = "governor.denials";
inline constexpr const char* kGovernorUsedBytes = "governor.used_bytes";

// -- fault injection ---------------------------------------------------------
inline constexpr const char* kFaultInjected = "fault.injected";

// -- linear algebra ----------------------------------------------------------
inline constexpr const char* kGmresResidual = "gmres.residual";
inline constexpr const char* kGmresIterations = "gmres.iterations";

// -- parallel runtime --------------------------------------------------------
inline constexpr const char* kPoolThreads = "pool.threads";
inline constexpr const char* kPoolDispatches = "pool.dispatches";

// -- request telemetry -------------------------------------------------------
inline constexpr const char* kTelemetryRequests = "telemetry.requests";
inline constexpr const char* kTelemetryErrors = "telemetry.errors";
inline constexpr const char* kTelemetryRequestSeconds = "telemetry.request_seconds";
inline constexpr const char* kTelemetrySinkRotations = "telemetry.sink_rotations";
inline constexpr const char* kTelemetrySinkErrors = "telemetry.sink_errors";

// -- request tracing (obs/reqtrace.hpp) --------------------------------------
inline constexpr const char* kTraceSpans = "reqtrace.spans";
inline constexpr const char* kTraceRequests = "reqtrace.requests";
inline constexpr const char* kTraceRetained = "reqtrace.retained";
inline constexpr const char* kTraceSampledOut = "reqtrace.sampled_out";
inline constexpr const char* kTraceForcedKeeps = "reqtrace.forced_keeps";

// -- observability HTTP endpoint (obs/httpd.hpp) -----------------------------
inline constexpr const char* kHttpRequests = "httpd.requests";
inline constexpr const char* kHttpErrors = "httpd.errors";

// -- SLO watchdog ------------------------------------------------------------
inline constexpr const char* kSloChecks = "slo.checks";
inline constexpr const char* kSloBreaches = "slo.breaches";

}  // namespace treecode::obs::metric
