#include "obs/httpd.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"

namespace treecode::obs::httpd {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

/// Minimal %XX + '+' decoding for query values ("n=32" needs none, but a
/// curl user typing %2F should not get a silent mismatch).
std::string url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (ch == '+') {
      out += ' ';
    } else if (ch == '%' && i + 2 < text.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(text[i + 1]);
      const int lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += ch;
      }
    } else {
      out += ch;
    }
  }
  return out;
}

/// Parse "GET /traces?n=8 HTTP/1.1" into a Request. False on malformed.
bool parse_request_line(std::string_view line, Request& out) {
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos) return false;
  const std::size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos) return false;
  out.method = std::string(line.substr(0, method_end));
  std::string_view target =
      line.substr(method_end + 1, target_end - method_end - 1);
  if (target.empty() || target[0] != '/') return false;
  const std::size_t query_begin = target.find('?');
  out.path = std::string(target.substr(0, query_begin));
  if (query_begin != std::string_view::npos) {
    std::string_view query = target.substr(query_begin + 1);
    while (!query.empty()) {
      const std::size_t amp = query.find('&');
      const std::string_view pair = query.substr(0, amp);
      const std::size_t eq = pair.find('=');
      if (!pair.empty()) {
        out.query.emplace_back(
            url_decode(pair.substr(0, eq)),
            eq == std::string_view::npos ? "" : url_decode(pair.substr(eq + 1)));
      }
      if (amp == std::string_view::npos) break;
      query.remove_prefix(amp + 1);
    }
  }
  return true;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#if defined(MSG_NOSIGNAL)
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer gone; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const Response& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, response.body);
}

}  // namespace

std::string Request::query_value(std::string_view key,
                                 std::string fallback) const {
  for (const auto& [name, value] : query) {
    if (name == key) return value;
  }
  return fallback;
}

Server::~Server() { stop(); }

void Server::handle(std::string path, Handler handler) {
  routes_.emplace_back(std::move(path), std::move(handler));
}

StartResult Server::try_start(std::uint16_t port) {
  StartResult result;
  if (running_.load(std::memory_order_acquire)) {
    result.error = "httpd: already running on port " + std::to_string(port_);
    return result;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    result.error = std::string("httpd: socket failed: ") + std::strerror(errno);
    return result;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    result.error = "httpd: bind 127.0.0.1:" + std::to_string(port) +
                   " failed: " + std::strerror(errno);
    ::close(fd);
    return result;
  }
  if (::listen(fd, 64) != 0) {
    result.error = std::string("httpd: listen failed: ") + std::strerror(errno);
    ::close(fd);
    return result;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  result.ok = true;
  result.port = port_;
  return result;
}

void Server::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void Server::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (stop check) or EINTR
    if ((pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void Server::handle_connection(int fd) {
  // Bound both directions so a stalled peer cannot wedge the accept loop.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);

  std::string raw;
  char buf[2048];
  while (raw.find("\r\n\r\n") == std::string::npos && raw.size() < 16 * 1024) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  registry().counter(metric::kHttpRequests).add(1);
  served_.fetch_add(1, std::memory_order_relaxed);

  Request request;
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos ||
      !parse_request_line(std::string_view(raw).substr(0, line_end), request)) {
    registry().counter(metric::kHttpErrors).add(1);
    send_response(fd, Response{400, "text/plain", "bad request\n"});
    return;
  }
  if (request.method != "GET" && request.method != "HEAD") {
    registry().counter(metric::kHttpErrors).add(1);
    send_response(fd, Response{405, "text/plain", "method not allowed\n"});
    return;
  }
  const Handler* handler = nullptr;
  for (const auto& [path, route] : routes_) {
    if (path == request.path) {
      handler = &route;
      break;
    }
  }
  if (handler == nullptr) {
    registry().counter(metric::kHttpErrors).add(1);
    send_response(fd, Response{404, "text/plain", "not found\n"});
    return;
  }
  Response response;
  try {
    response = (*handler)(request);
  } catch (const std::exception& e) {
    registry().counter(metric::kHttpErrors).add(1);
    response = Response{500, "text/plain", std::string("error: ") + e.what() + "\n"};
  }
  if (request.method == "HEAD") response.body.clear();
  send_response(fd, response);
}

}  // namespace treecode::obs::httpd
