#include "obs/slo.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/metric_names.hpp"
#include "obs/openmetrics.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"

namespace treecode::obs::slo {

namespace {

Status measure(const Rule& rule, const MetricsSnapshot& snapshot) {
  Status status;
  switch (rule.kind) {
    case RuleKind::kCounterRatio: {
      const auto num = snapshot.counters.find(rule.metric);
      if (num == snapshot.counters.end()) return status;
      const auto den = snapshot.counters.find(rule.denominator);
      status.evaluated = true;
      status.measured =
          (den == snapshot.counters.end() || den->second == 0)
              ? 0.0
              : static_cast<double>(num->second) / static_cast<double>(den->second);
      break;
    }
    case RuleKind::kHistogramQuantile: {
      const auto it = snapshot.histograms.find(rule.metric);
      if (it == snapshot.histograms.end() || it->second.total == 0) return status;
      status.evaluated = true;
      status.measured = openmetrics::histogram_quantile(it->second, rule.quantile);
      break;
    }
    case RuleKind::kGaugeValue: {
      const auto it = snapshot.gauges.find(rule.metric);
      if (it == snapshot.gauges.end()) return status;
      status.evaluated = true;
      status.measured = it->second;
      break;
    }
    case RuleKind::kGaugeMax: {
      const auto it = snapshot.gauge_maxima.find(rule.metric);
      if (it == snapshot.gauge_maxima.end()) return status;
      status.evaluated = true;
      status.measured = it->second;
      break;
    }
  }
  status.breached = status.evaluated && std::isfinite(status.measured) &&
                    status.measured > rule.threshold;
  return status;
}

}  // namespace

const char* rule_kind_name(RuleKind kind) {
  switch (kind) {
    case RuleKind::kCounterRatio: return "counter_ratio";
    case RuleKind::kHistogramQuantile: return "histogram_quantile";
    case RuleKind::kGaugeValue: return "gauge_value";
    case RuleKind::kGaugeMax: return "gauge_max";
  }
  return "unknown";
}

std::vector<Status> Watchdog::check(const MetricsSnapshot& snapshot) {
  registry().counter(metric::kSloChecks).add(1);
  last_.clear();
  last_.reserve(rules_.size());
  for (const Rule& rule : rules_) {
    Status status = measure(rule, snapshot);
    if (status.breached) {
      ++breaches_;
      registry().counter(metric::kSloBreaches).add(1);
      char line[256];
      std::snprintf(line, sizeof line,
                    "slo breach: %s measured %.6g exceeds threshold %.6g",
                    rule.name.c_str(), status.measured, rule.threshold);
      warn(line);
      // Arm the flight recorder around the breach: start it if idle so the
      // *next* window is captured, stamp the breach itself, and dump if a
      // dump path is configured.
      if (!recorder::enabled()) recorder::start();
      recorder::record(recorder::Category::kCustom, "slo.breach", status.measured);
      recorder::trigger("slo: " + rule.name);
    }
    last_.push_back(status);
  }
  return last_;
}

Json Watchdog::status_json() const {
  Json doc = Json::object();
  Json rules = Json::array();
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    Json item = Json::object();
    item["name"] = rule.name;
    item["kind"] = rule_kind_name(rule.kind);
    item["metric"] = rule.metric;
    if (rule.kind == RuleKind::kCounterRatio) {
      item["denominator"] = rule.denominator;
    }
    if (rule.kind == RuleKind::kHistogramQuantile) {
      item["quantile"] = rule.quantile;
    }
    item["threshold"] = rule.threshold;
    if (i < last_.size()) {
      item["measured"] = last_[i].measured;
      item["breached"] = last_[i].breached;
      item["evaluated"] = last_[i].evaluated;
    }
    rules.push_back(std::move(item));
  }
  doc["rules"] = std::move(rules);
  doc["breaches"] = breaches_;
  return doc;
}

std::vector<Rule> default_engine_rules() {
  Rule error_rate;
  error_rate.name = "engine-error-rate";
  error_rate.kind = RuleKind::kCounterRatio;
  error_rate.metric = metric::kEngineErrors;
  // engine.requests, not telemetry.requests: the engine counts every
  // entry-point call even when no telemetry session is active, so the
  // error rate cannot be inflated by an undercounted denominator.
  error_rate.denominator = metric::kEngineRequests;
  error_rate.threshold = 0.01;

  Rule degraded_share;
  degraded_share.name = "engine-degraded-share";
  degraded_share.kind = RuleKind::kCounterRatio;
  degraded_share.metric = metric::kEngineDegradedServes;
  degraded_share.denominator = metric::kEngineRequests;
  degraded_share.threshold = 0.05;

  Rule latency_p99;
  latency_p99.name = "replay-latency-p99";
  latency_p99.kind = RuleKind::kHistogramQuantile;
  latency_p99.metric = metric::kTelemetryRequestSeconds;
  latency_p99.quantile = 0.99;
  latency_p99.threshold = 1.0;

  Rule tightness_ceiling;
  tightness_ceiling.name = "audit-tightness-ceiling";
  tightness_ceiling.kind = RuleKind::kGaugeMax;
  tightness_ceiling.metric = metric::kAuditMaxTightness;
  tightness_ceiling.threshold = 1.0;

  return {std::move(error_rate), std::move(degraded_share),
          std::move(latency_p99), std::move(tightness_ceiling)};
}

}  // namespace treecode::obs::slo
