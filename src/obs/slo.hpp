#pragma once

/// \file slo.hpp
/// Declarative SLO watchdog: named rules evaluated against a
/// MetricsSnapshot, with breach side effects wired into the rest of the
/// obs stack.
///
/// A serving deployment states its objectives as data — "error rate under
/// 1%", "p99 replay latency under a second", "audited tightness never
/// exceeds 1" — and wants drift detected by machinery, not by a human
/// reading dashboards. A Watchdog holds such rules and, on every check():
///  - measures each rule against the snapshot (counter ratios, histogram
///    quantiles via openmetrics::histogram_quantile, gauge values/maxima);
///  - on breach increments `slo.breaches`, emits an obs::warn naming the
///    rule, measured value, and threshold, and *arms the flight recorder*
///    (starts it if idle, records a kCustom "slo.breach" event, and
///    triggers a dump when a dump path is configured) so the window around
///    the breach is captured for post-mortem;
///  - returns per-rule Status (measured value, breached, evaluated) for
///    programmatic consumers (treecode-inspect, tests).
///
/// A rule over a metric the snapshot does not contain is reported
/// evaluated=false and never breaches: objectives may be declared for
/// subsystems that have not run yet (no replay => no latency histogram).
///
/// Not thread-safe: check() is called from a monitoring point (bench exit,
/// inspect CLI, a future scrape handler), never from evaluation hot paths.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace treecode::obs::slo {

/// How a rule turns a snapshot into one measured value.
enum class RuleKind : std::uint8_t {
  /// counters[metric] / counters[denominator] (0 when the denominator is 0
  /// or missing). Example: engine.errors per engine.requests.
  kCounterRatio,
  /// histogram_quantile(histograms[metric], quantile).
  kHistogramQuantile,
  /// gauges[metric] (last written value).
  kGaugeValue,
  /// gauge_maxima[metric] (running max since reset).
  kGaugeMax,
};

/// One objective: measured value must stay <= threshold.
struct Rule {
  std::string name;         ///< stable identifier, quoted in warnings
  RuleKind kind = RuleKind::kGaugeValue;
  std::string metric;       ///< registry name (obs::metric constant value)
  std::string denominator;  ///< kCounterRatio only
  double quantile = 0.99;   ///< kHistogramQuantile only
  double threshold = 0.0;
};

/// Outcome of measuring one rule against one snapshot.
struct Status {
  double measured = 0.0;
  bool breached = false;
  bool evaluated = false;  ///< false = the metric was absent from the snapshot
};

/// Holds rules; measures them on demand.
class Watchdog {
 public:
  void add_rule(Rule rule) { rules_.push_back(std::move(rule)); }
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return rules_; }

  /// Measure every rule against `snapshot`, applying breach side effects
  /// (slo.breaches counter, obs::warn, flight-recorder arm + trigger).
  /// Also increments slo.checks. Returns one Status per rule, in order.
  std::vector<Status> check(const MetricsSnapshot& snapshot);

  /// Total breaches across all check() calls on this watchdog.
  [[nodiscard]] std::uint64_t breaches() const noexcept { return breaches_; }

  /// The last check()'s outcome as JSON: {"rules": [{name, kind, metric,
  /// threshold, measured, breached, evaluated}], "breaches": n}. Useful for
  /// treecode-inspect and run reports.
  [[nodiscard]] Json status_json() const;

 private:
  std::vector<Rule> rules_;
  std::vector<Status> last_;
  std::uint64_t breaches_ = 0;
};

/// The default objectives for an engine-serving process — the rules the
/// bench harness arms under --slo and treecode-inspect reports:
///   engine-error-rate        engine.errors / engine.requests     <= 0.01
///   engine-degraded-share    engine.degraded_serves / engine.requests <= 0.05
///   replay-latency-p99       p99(telemetry.request_seconds)      <= 1.0 s
///   audit-tightness-ceiling  max(audit.max_tightness)            <= 1.0
[[nodiscard]] std::vector<Rule> default_engine_rules();

/// Human-readable name for a RuleKind ("counter_ratio", ...).
const char* rule_kind_name(RuleKind kind);

}  // namespace treecode::obs::slo
