#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace treecode::obs {

unsigned thread_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  num_buckets_ = bounds_.size() + 1;
  // Round the per-shard stride up to a whole cache line of counters so two
  // shards never split a line.
  constexpr std::size_t kLine = 64 / sizeof(std::uint64_t);
  stride_ = (num_buckets_ + kLine - 1) / kLine * kLine;
  counts_ = std::vector<std::atomic<std::uint64_t>>(stride_ * kMetricShards);
}

std::size_t Histogram::bucket_of(double v) const noexcept {
  // First bound >= v; NaN falls through every comparison into overflow.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe_n(double v, std::uint64_t n) noexcept {
  if (n == 0) return;
  const unsigned shard = thread_index() & (kMetricShards - 1);
  counts_[shard * stride_ + bucket_of(v)].fetch_add(n, std::memory_order_relaxed);
  sums_[shard].v.fetch_add(v * static_cast<double>(n), std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.assign(num_buckets_, 0);
  for (unsigned shard = 0; shard < kMetricShards; ++shard) {
    for (std::size_t b = 0; b < num_buckets_; ++b) {
      s.counts[b] += counts_[shard * stride_ + b].load(std::memory_order_relaxed);
    }
    s.sum += sums_[shard].v.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : s.counts) s.total += c;
  return s;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (auto& sum : sums_) sum.v.store(0.0, std::memory_order_relaxed);
}

// ---- Series ----------------------------------------------------------------

void Series::append(double v) {
  std::lock_guard lock(mutex_);
  values_.push_back(v);
}

std::vector<double> Series::values() const {
  std::lock_guard lock(mutex_);
  return values_;
}

void Series::reset() {
  std::lock_guard lock(mutex_);
  values_.clear();
}

// ---- Registry --------------------------------------------------------------

namespace {

template <typename Map, typename Make>
auto& find_or_make(Map& map, std::mutex& mutex, std::string_view name, Make make) {
  std::lock_guard lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_make(counters_, mutex_, name, [] { return std::make_unique<Counter>(); });
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_make(gauges_, mutex_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram& Registry::histogram(std::string_view name, std::span<const double> upper_bounds) {
  return find_or_make(histograms_, mutex_, name, [&] {
    return std::make_unique<Histogram>(
        std::vector<double>(upper_bounds.begin(), upper_bounds.end()));
  });
}

Series& Registry::series(std::string_view name) {
  return find_or_make(series_, mutex_, name, [] { return std::make_unique<Series>(); });
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    s.gauges[name] = g->value();
    s.gauge_maxima[name] = g->max();
  }
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  for (const auto& [name, ser] : series_) s.series[name] = ser->values();
  return s;
}

void Registry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : series_) s->reset();
}

Registry& registry() noexcept {
  static Registry r;
  return r;
}

std::vector<double> integer_buckets(int max_value) {
  std::vector<double> b;
  b.reserve(static_cast<std::size_t>(max_value) + 1);
  for (int i = 0; i <= max_value; ++i) b.push_back(static_cast<double>(i));
  return b;
}

std::vector<double> exponential_buckets(double start, double factor, int n) {
  std::vector<double> b;
  b.reserve(static_cast<std::size_t>(n));
  double v = start;
  for (int i = 0; i < n; ++i, v *= factor) b.push_back(v);
  return b;
}

}  // namespace treecode::obs
