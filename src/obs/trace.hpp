#pragma once

/// \file trace.hpp
/// Hierarchical phase tracing: RAII spans exported as Chrome trace-event
/// JSON, loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
///
/// Usage:
///
///   obs::trace::start();
///   { obs::TraceSpan span("bh.traverse"); ... }   // one complete event
///   obs::trace::write_chrome_json("trace.json");
///
/// Spans record into per-thread buffers (one uncontended mutex per thread,
/// taken only when a span *ends*), so phase-level tracing costs nothing
/// measurable. Nested spans nest naturally in the Perfetto timeline because
/// events carry begin timestamps and durations per thread.
///
/// Two off switches:
///  * Runtime: spans are recorded only between trace::start() and
///    trace::stop(); a disabled span is one relaxed atomic load.
///  * Compile time: configure with -DTREECODE_TRACING=OFF and every
///    TraceSpan and trace:: call compiles to nothing at all — the
///    instrumented evaluators produce the same hot-loop code as
///    uninstrumented ones (bench_micro_operators BM_ObsOverhead_* measures
///    the residual, which must stay under 2%).

#include <cstdint>
#include <string>
#include <vector>

namespace treecode::obs {

/// One completed span, Chrome trace-event "X" (complete) phase.
struct TraceEvent {
  const char* name = "";  ///< static string; spans take string literals
  std::uint32_t tid = 0;  ///< obs::thread_index() of the recording thread
  double ts_us = 0.0;     ///< begin, microseconds since trace::start()
  double dur_us = 0.0;
};

namespace trace {

#if defined(TREECODE_TRACING_ENABLED)

/// True between start() and stop().
[[nodiscard]] bool enabled() noexcept;

/// Clear all buffers and begin recording; timestamps are relative to this
/// call.
void start();

/// Stop recording (already-recorded events are kept for drain()).
void stop();

/// Snapshot every thread's events, merged and time-ordered.
[[nodiscard]] std::vector<TraceEvent> events();

/// Record a completed span directly (used by ScopedTimer and the span
/// RAII type; begin/duration in microseconds relative to start()).
void record(const char* name, double ts_us, double dur_us) noexcept;

/// Microseconds since start() (0 when tracing has never started).
[[nodiscard]] double now_us() noexcept;

/// Render events() as a Chrome trace-event JSON array.
[[nodiscard]] std::string chrome_json();

/// Write chrome_json() to `path`; throws std::runtime_error on I/O failure.
void write_chrome_json(const std::string& path);

#else  // tracing compiled out: every call is a no-op the optimizer deletes.

[[nodiscard]] inline bool enabled() noexcept { return false; }
inline void start() {}
inline void stop() {}
[[nodiscard]] inline std::vector<TraceEvent> events() { return {}; }
inline void record(const char*, double, double) noexcept {}
[[nodiscard]] inline double now_us() noexcept { return 0.0; }
[[nodiscard]] inline std::string chrome_json() { return "[]"; }
inline void write_chrome_json(const std::string&) {}

#endif

}  // namespace trace

/// RAII span: records one complete trace event for its lifetime. Pass a
/// string literal (the name is stored by pointer, not copied).
#if defined(TREECODE_TRACING_ENABLED)
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept : name_(name) {
    if (trace::enabled()) begin_us_ = trace::now_us();
  }
  ~TraceSpan() {
    if (begin_us_ >= 0.0 && trace::enabled()) {
      trace::record(name_, begin_us_, trace::now_us() - begin_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  double begin_us_ = -1.0;  ///< < 0 means "tracing was off at construction"
};
#else
class TraceSpan {
 public:
  explicit TraceSpan(const char*) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};
#endif

}  // namespace treecode::obs
