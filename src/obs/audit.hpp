#pragma once

/// \file audit.hpp
/// Sampled exact-error audit engine: measures how tight the Theorem-1
/// truncation bound actually is on live evaluations.
///
/// The library *asserts* the paper's bounds analytically (tests compare
/// against direct summation on small systems), but production-size runs
/// never observe the bound's slack: Salmon & Warren's error
/// characterizations show observed multipole error commonly sits orders of
/// magnitude below the worst-case bound, which is exactly the information
/// an adaptive-degree law should be calibrated against. When enabled
/// (EvalConfig::audit_samples > 0), the evaluators sample K accepted M2P
/// interactions per evaluation, recompute each sampled cluster's exact P2P
/// partial sum, and record the tightness ratio
///
///     |phi_m2p - phi_exact| / Theorem-1 bound
///
/// into per-level, per-degree, and per-charge-magnitude histograms in the
/// metrics registry. A ratio above 1 means the rigorous bound was violated
/// — either a genuine bug or floating-point noise at denormal scales —
/// and is counted and warned about separately.
///
/// Determinism contract (the tier-1 gate applies to audits too): the
/// sample set must be bitwise identical across thread counts and block
/// sizes. Sampling is therefore *counter-based*: every accepted M2P
/// interaction is keyed by hashing (seed, target index, per-target
/// acceptance ordinal) — all schedule-independent quantities, since the
/// per-target DFS visits clusters in a fixed order — and the audit keeps
/// the K interactions with the smallest keys. Each thread maintains a
/// private top-K reservoir (a bounded max-heap, no allocation after
/// set_capacity); merging per-thread reservoirs yields the global top-K
/// because the global K smallest of a fixed multiset are each among the K
/// smallest of whichever reservoir saw them. No RNG state, no timing
/// dependence, no atomics on the hot path.
///
/// This header is tree-agnostic: evaluators capture samples (they know
/// nodes and targets) and pass an exact-sum callback to finalize(), so obs
/// stays free of core dependencies.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace treecode::obs::audit {

/// One sampled M2P interaction, captured during traversal.
struct Sample {
  std::uint64_t key = 0;     ///< sampling key; smaller = more likely audited
  std::uint64_t target = 0;  ///< evaluation-point index (schedule-independent)
  std::int64_t node = -1;    ///< tree node index of the accepted cluster
  int level = 0;             ///< tree level of the cluster
  int degree = 0;            ///< expansion degree actually evaluated
  double abs_charge = 0.0;   ///< cluster absolute-charge mass A
  double approx = 0.0;       ///< the M2P contribution added to the potential
  double bound = 0.0;        ///< Theorem-1 bound for this interaction
  /// Magnitude prefactor A / (r - a) of the cluster's potential at the
  /// target: the scale against which floating-point rounding of the
  /// approx-vs-exact comparison is measured. Theorem 1 bounds *truncation*
  /// error only; an observed difference at or below the rounding floor of
  /// this scale (point-like clusters have near-zero truncation error but
  /// never agree to better than ~eps * |phi|) carries no information about
  /// the bound and must not be scored against it.
  double noise_scale = 0.0;
};

/// Deterministic total order on samples: by key, then target, then node.
/// Ties on key alone are possible (hash collisions), so the comparator
/// extends to fields that uniquely identify the interaction — keeping the
/// selected set independent of encounter order.
[[nodiscard]] inline bool sample_less(const Sample& a, const Sample& b) noexcept {
  if (a.key != b.key) return a.key < b.key;
  if (a.target != b.target) return a.target < b.target;
  return a.node < b.node;
}

/// Stateless counter-based sampling key: a splitmix64-style mix of
/// (seed, target, ordinal). Uniform enough that "keep the K smallest keys"
/// is an unbiased uniform sample of all accepted interactions.
[[nodiscard]] std::uint64_t sample_key(std::uint64_t seed, std::uint64_t target,
                                       std::uint64_t ordinal) noexcept;

/// Per-thread bounded reservoir of the K smallest-keyed samples seen.
/// offer() is O(log K) worst case and allocation-free after set_capacity().
class Reservoir {
 public:
  Reservoir() = default;

  /// Set capacity K and clear. K == 0 disables the reservoir (offer is a
  /// no-op), which is how non-auditing runs keep the accumulator cheap.
  void set_capacity(std::size_t k);

  [[nodiscard]] std::size_t capacity() const noexcept { return k_; }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Consider one accepted interaction. Kept iff the reservoir is not yet
  /// full or `s` orders below the current worst kept sample.
  void offer(const Sample& s);

  /// The kept samples, in unspecified (heap) order.
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return heap_; }

 private:
  std::size_t k_ = 0;
  std::vector<Sample> heap_;  ///< max-heap under sample_less
};

/// Merge per-thread reservoirs into the global K smallest samples, sorted
/// ascending under sample_less. Deterministic for any partition of the
/// interactions across reservoirs (including reservoir count/order),
/// because selection and ordering depend only on the samples themselves.
[[nodiscard]] std::vector<Sample> merge(std::span<const Reservoir> reservoirs,
                                        std::size_t k);

/// Aggregate audit outcome of one evaluation (lands in EvalStats).
struct Summary {
  std::uint64_t samples = 0;           ///< interactions audited
  std::uint64_t bound_violations = 0;  ///< tightness > 1 (or error with zero bound)
  double max_tightness = 0.0;          ///< largest finite tightness ratio
  double mean_tightness = 0.0;         ///< mean of finite tightness ratios
};

/// Audit the selected samples: for each, call `exact_of` to obtain the
/// cluster's exact P2P partial sum, form the tightness ratio
/// |approx - exact| / bound, and record it into registry histograms
/// (`audit.tightness`, `.L<level>`, `.p<degree>`, `.q<charge decade>`) and
/// counters (`audit.samples`, `audit.bound_violations`). An observed
/// difference at or below the rounding floor (kNoiseRelEps * noise_scale)
/// is truncation-unresolvable at double precision and scores ratio 0. Above
/// the floor, a sample with a nonpositive bound counts as a violation with
/// infinite ratio (histogrammed into the overflow bucket, excluded from
/// max/mean). Violations emit an obs::warn and a flight-recorder event.
///
/// `winners` must already be merge()-sorted; the mean is accumulated in
/// that order, so the summary is bitwise identical across schedules.
Summary finalize(std::span<const Sample> winners,
                 const std::function<double(const Sample&)>& exact_of);

/// Relative rounding floor used by finalize(): observed errors below
/// kNoiseRelEps * noise_scale are attributed to floating-point rounding of
/// the two summations, not to multipole truncation. 64 ulp absorbs the
/// accumulation error of both the expansion evaluation and the exact P2P
/// partial sum over a leaf-sized cluster.
inline constexpr double kNoiseRelEps = 64.0 * 2.220446049250313e-16;

}  // namespace treecode::obs::audit
