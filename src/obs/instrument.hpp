#pragma once

/// \file instrument.hpp
/// Hot-loop instrumentation helpers shared by the evaluators.
///
/// The evaluators must record degree distributions and per-level
/// interaction counts without touching shared state inside traversal loops.
/// The pattern: each worker owns plain fixed-size arrays in its per-thread
/// accumulator (one `++` on thread-private memory per event — the same cost
/// class as the existing counters), and the reduction after the parallel
/// region flushes them into named registry histograms in one batch.

#include <array>
#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"

namespace treecode::obs {

/// Slots for per-tree-level tallies. The octree's height is bounded by the
/// SFC key depth (21 levels per axis) + root; anything deeper clamps into
/// the last slot.
inline constexpr std::size_t kLevelSlots = 24;
/// Slots for per-degree tallies; EvalConfig::max_degree defaults to 30 and
/// degrees beyond 63 clamp into the last slot.
inline constexpr std::size_t kDegreeSlots = 64;

using LevelCounts = std::array<std::uint64_t, kLevelSlots>;
using DegreeCounts = std::array<std::uint64_t, kDegreeSlots>;

template <std::size_t N>
inline void count_slot(std::array<std::uint64_t, N>& counts, int slot,
                       std::uint64_t n = 1) noexcept {
  const std::size_t i = slot < 0 ? 0 : static_cast<std::size_t>(slot);
  counts[i < N ? i : N - 1] += n;
}

/// Merge `counts` into the registry histogram `name` (integer buckets
/// 0..N-1) as batched observations — one registry lookup per flush, not
/// per event.
template <std::size_t N>
inline void flush_counts(std::string_view name, const std::array<std::uint64_t, N>& counts) {
  bool any = false;
  for (const std::uint64_t c : counts) {
    if (c != 0) {
      any = true;
      break;
    }
  }
  if (!any) return;
  static const std::vector<double> bounds = integer_buckets(static_cast<int>(N) - 1);
  Histogram& h = registry().histogram(name, bounds);
  for (std::size_t i = 0; i < N; ++i) {
    if (counts[i] != 0) h.observe_n(static_cast<double>(i), counts[i]);
  }
}

}  // namespace treecode::obs
