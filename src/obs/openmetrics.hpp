#pragma once

/// \file openmetrics.hpp
/// OpenMetrics/Prometheus text exposition over a MetricsSnapshot.
///
/// Bench reports snapshot the registry as one-shot JSON; a monitoring
/// system wants the standard pull format instead. render() turns a
/// MetricsSnapshot into the Prometheus text exposition (OpenMetrics
/// compatible): counters as `<name>_total`, gauges as plain samples (the
/// registry's running maxima as a companion `<name>_max` gauge), histograms
/// as cumulative `_bucket{le="..."}` series plus `_sum`/`_count`, ending
/// with `# EOF`.
///
/// Conventions and edge cases (all covered by tests/obs/test_openmetrics.cpp
/// and checked by scripts/validate_openmetrics.py in CI):
///  - Registry names are dotted (`engine.plan_bytes`); exposition names must
///    match [a-zA-Z_:][a-zA-Z0-9_:]* — sanitize_name() rewrites every
///    invalid character to '_' and prefixes '_' when the first character is
///    a digit. Two registry names that collide after sanitization would
///    silently interleave one series; the second is skipped with a warning.
///  - Non-finite values render as the literals `NaN`, `+Inf`, `-Inf` (the
///    text format, unlike JSON, has them).
///  - Histogram buckets are *inclusive upper bounds* in both models; the
///    registry's implicit overflow bucket becomes `le="+Inf"`, and bucket
///    counts are cumulated on the way out (the registry stores per-bucket
///    counts).
///  - Label *values* escape backslash, double-quote, and newline; the only
///    label this exporter emits is `le`.
///  - Series (ordered value lists, e.g. gmres.residual) have no exposition
///    equivalent and are omitted — scrape-based monitors read rates, not
///    trajectories; trajectories stay in the JSON reports.
///
/// Also home of histogram_quantile(): Prometheus-style linear interpolation
/// inside the bucket containing the target rank — what the SLO watchdog
/// (obs/slo.hpp) uses for p99 latency rules over
/// telemetry.request_seconds.

#include <string>

#include "obs/metrics.hpp"

namespace treecode::obs::openmetrics {

/// Rewrite a registry metric name into a valid exposition name.
[[nodiscard]] std::string sanitize_name(std::string_view name);

/// Escape a label value (backslash, double-quote, newline).
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Render the full exposition text for a snapshot, `# EOF` terminated.
[[nodiscard]] std::string render(const MetricsSnapshot& snapshot);

/// render() to a file. Returns false (after a warning) on I/O failure.
bool write(const std::string& path, const MetricsSnapshot& snapshot);

/// The value at quantile q (0..1] of a histogram, linearly interpolated
/// within the bucket containing the target rank (Prometheus
/// histogram_quantile semantics: buckets are inclusive upper bounds, the
/// lowest bucket interpolates from 0). An empty histogram yields NaN; a
/// rank landing in the overflow bucket yields the last finite bound (the
/// quantile is at least that; the overflow bucket has no upper edge to
/// interpolate toward).
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& h, double q);

}  // namespace treecode::obs::openmetrics
