#pragma once

/// \file reqtrace.hpp
/// Request-scoped causal tracing with tail-based sampling.
///
/// The phase tracer (obs/trace.hpp) answers "where does wall time go,
/// process-wide"; the telemetry ring (obs/telemetry.hpp) answers "what did
/// request N look like at its exit". Neither links the two: once the
/// service coalesces k tenant requests into one batched replay, a slow or
/// degraded request can only be explained by following *its* path — queue
/// wait, batch placement, replay phases — across threads. This layer mints
/// a TraceContext (128-bit trace id + 64-bit span ids) at every service
/// submission and every direct engine entry, propagates it through the
/// scheduler queue and the coalesced batch (the batch span carries *flow
/// links* back to each member request span, so Perfetto renders the
/// fan-in), and lets the engine's existing ScopedTimer phases join the
/// active trace automatically.
///
/// Design constraints:
///  - Span writes follow the flight-recorder discipline (obs/recorder.cpp):
///    per-thread fixed-size rings of seqlock-stamped slots, torn reads
///    detected and skipped, no locks on the record path.
///  - IDs come from splitmix64 over one seeded global counter — no wall
///    clock, no std::random_device — so a replayed workload mints the same
///    ids and the retained-trace set is bitwise-deterministic for a fixed
///    seed regardless of worker thread count (only driver threads mint).
///  - Sampling is **tail-based**: the keep/drop decision happens at request
///    completion, when the verdict (error, served rung, deadline, latency)
///    is known. Errored, degraded (rung > basis replay), deadline-missed,
///    SLO-breaching and over-threshold-slow requests are always kept; the
///    healthy rest is sampled at SamplerConfig::sample_rate by hashing the
///    trace id (schedule-independent).
///  - Compile time: with -DTREECODE_TRACING=OFF every type and call here
///    collapses to an empty inline stub, same as obs/trace.hpp.
///
/// Exports: `treecode-trace/v1` JSONL (one retained trace per line,
/// validated by scripts/validate_trace.py) and Chrome trace-event JSON with
/// flow events (loadable in Perfetto).

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace treecode::obs::reqtrace {

/// Position of one span in its trace: which trace, this span's id, and the
/// parent span (0 = root). Copied freely; carried by queued requests.
struct TraceContext {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  /// A zero trace id means "no trace" (tracing disabled at mint time).
  [[nodiscard]] bool valid() const noexcept { return (trace_hi | trace_lo) != 0; }
};

/// What a span represents. Values are stable: they appear in JSONL exports.
enum class SpanKind : std::uint8_t {
  kRequest = 0,  ///< root span of a request trace (or batch trace)
  kQueue,        ///< time spent queued between admission and batch pickup
  kBatch,        ///< one coalesced batched replay; carries flow links
  kPhase,        ///< engine phase / nested scope inside a request
};

/// Stable name for a SpanKind ("request", "queue", "batch", "phase").
const char* span_kind_name(SpanKind kind);

/// Most flow links one span can carry — the engine's SoA register block
/// caps batch width at 8, so a batch span fans in from at most 8 requests.
inline constexpr std::size_t kMaxFlows = 8;

/// One completed span, as read back from the rings.
struct SpanRecord {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  const char* name = "";  ///< static string from obs/spans.hpp
  SpanKind kind = SpanKind::kPhase;
  std::uint32_t tid = 0;  ///< obs::thread_index() of the recording thread
  std::int64_t start_us = 0;  ///< microseconds since enable()
  std::int64_t end_us = 0;
  std::uint32_t flow_count = 0;
  std::array<std::uint64_t, kMaxFlows> flows{};  ///< linked request span ids
};

/// Tail-sampler policy. All fields participate in the deterministic keep
/// decision; keep rates other than 0/1 hash the trace id, never a clock.
struct SamplerConfig {
  std::uint64_t seed = 1;     ///< id-stream + sampling-hash seed
  double sample_rate = 0.0;   ///< healthy-trace keep probability in [0, 1]
  /// Keep any request slower than this many seconds (the "slowest tail"
  /// rule; pair it with the observed p99). Negative = off, and off is the
  /// default because a wall-time threshold is schedule-dependent.
  double keep_slower_than_seconds = -1.0;
  std::size_t retain_capacity = 256;  ///< retained traces kept, FIFO evicted
};

/// Completion verdict for one request — the inputs to the tail decision.
struct Verdict {
  bool ok = true;
  std::uint8_t error_code = 0;   ///< util ErrorCode numeric value
  std::int8_t rung = -1;         ///< core ServeRung value; > 0 = degraded
  bool deadline_missed = false;
  bool slo_breach = false;       ///< caller-determined SLO breach
  double wall_seconds = 0.0;
};

/// One retained trace: identity, why the sampler kept it, and its spans in
/// start order.
struct RetainedTrace {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  const char* reason = "";  ///< "error", "degraded", "deadline", "slo",
                            ///< "slow", "forced", "sampled"
  std::vector<SpanRecord> spans;
};

/// 32-lowercase-hex rendering of a 128-bit trace id (zero id = all '0').
std::string trace_id_hex(std::uint64_t hi, std::uint64_t lo);

/// 16-lowercase-hex rendering of a 64-bit span id.
std::string span_id_hex(std::uint64_t id);

#if defined(TREECODE_TRACING_ENABLED)

/// Begin recording and sampling under `config`; resets the timestamp epoch.
/// Does not clear rings or retained traces — call reset() first for a
/// clean, replay-deterministic id stream.
void enable(const SamplerConfig& config = {});

/// Stop recording. Retained traces stay readable.
void disable();

/// Whether spans are being recorded. One relaxed load.
bool enabled() noexcept;

/// Clear rings, retained traces, counters and the id counter. Not safe
/// concurrently with recording; intended for test setup.
void reset();

/// Microseconds since enable() (0 before the first enable()).
[[nodiscard]] std::int64_t now_us() noexcept;

/// Mint a new root context: fresh 128-bit trace id, fresh root span id,
/// parent 0. Returns an invalid context while disabled. Call only from
/// driver threads (never inside parallel workers) so the id stream — and
/// with it the retained set — is independent of worker schedule.
[[nodiscard]] TraceContext mint_request() noexcept;

/// Mint a child context inside `parent`'s trace (fresh span id, parent =
/// parent.span_id). Invalid in, invalid out.
[[nodiscard]] TraceContext child_of(const TraceContext& parent) noexcept;

/// The calling thread's active context (invalid when none is installed).
[[nodiscard]] const TraceContext& current() noexcept;

/// Install `ctx` as the calling thread's active context. Prefer
/// ContextGuard / RequestScope, which restore the previous context.
void set_current(const TraceContext& ctx) noexcept;

/// Record one completed span into the calling thread's ring. `name` must
/// be a registry constant from obs/spans.hpp (it is stored by pointer).
/// At most kMaxFlows flow links are kept.
void record_span(const TraceContext& ctx, const char* name, SpanKind kind,
                 std::int64_t start_us, std::int64_t end_us,
                 std::span<const std::uint64_t> flows = {}) noexcept;

/// Tail decision for a completed request trace. When the trace is kept and
/// `force_keep_link` names another (not yet finished) trace — the batch a
/// retained member rode in — that trace is force-kept too, so flow links
/// in an export always resolve.
void finish_request(const TraceContext& ctx, const Verdict& verdict,
                    const TraceContext* force_keep_link = nullptr);

/// A non-root scope's verdict: a keep-worthy child (an errored engine call
/// inside a healthy-looking batch) force-keeps its enclosing trace at the
/// root's later finish_request.
void note_child_verdict(const TraceContext& ctx, const Verdict& verdict);

/// Whether `ctx`'s trace is currently in the retained set.
[[nodiscard]] bool is_retained(const TraceContext& ctx);

/// Snapshot the retained traces (oldest first), each with its readable
/// spans gathered from every thread ring. Torn/overwritten slots skipped.
[[nodiscard]] std::vector<RetainedTrace> retained();

/// Retained traces as `treecode-trace/v1` JSONL, one trace per line,
/// newest last. `max_traces` 0 = all.
[[nodiscard]] std::string jsonl(std::size_t max_traces = 0);

/// Retained traces as a Chrome trace-event JSON array with flow events
/// ("s"/"f" pairs) from each member request span into its batch span.
[[nodiscard]] std::string chrome_json();

/// Write jsonl() / chrome_json() to `path`; false on I/O failure (warns).
bool write_jsonl(const std::string& path);
bool write_chrome_json(const std::string& path);

#else  // tracing compiled out: every call is a no-op the optimizer deletes.

inline void enable(const SamplerConfig& = {}) {}
inline void disable() {}
[[nodiscard]] inline bool enabled() noexcept { return false; }
inline void reset() {}
[[nodiscard]] inline std::int64_t now_us() noexcept { return 0; }
[[nodiscard]] inline TraceContext mint_request() noexcept { return {}; }
[[nodiscard]] inline TraceContext child_of(const TraceContext&) noexcept {
  return {};
}
[[nodiscard]] inline const TraceContext& current() noexcept {
  static constexpr TraceContext kNone{};
  return kNone;
}
inline void set_current(const TraceContext&) noexcept {}
inline void record_span(const TraceContext&, const char*, SpanKind,
                        std::int64_t, std::int64_t,
                        std::span<const std::uint64_t> = {}) noexcept {}
inline void finish_request(const TraceContext&, const Verdict&,
                           const TraceContext* = nullptr) {}
inline void note_child_verdict(const TraceContext&, const Verdict&) {}
[[nodiscard]] inline bool is_retained(const TraceContext&) { return false; }
[[nodiscard]] inline std::vector<RetainedTrace> retained() { return {}; }
[[nodiscard]] inline std::string jsonl(std::size_t = 0) { return {}; }
[[nodiscard]] inline std::string chrome_json() { return "[]"; }
inline bool write_jsonl(const std::string&) { return true; }
inline bool write_chrome_json(const std::string&) { return true; }

#endif

#if defined(TREECODE_TRACING_ENABLED)

/// RAII request scope for an entry point (engine try_* / service submit).
/// With no active context it mints a new root trace; inside one (an engine
/// call under a service batch) it becomes a child span. Either way it
/// installs itself as the thread's current context for its lifetime.
/// finish(verdict) records the span and runs the tail decision (root) or
/// the forced-keep note (child); an unfinished, unreleased scope finishes
/// with a default-healthy verdict on destruction, so no exit path can leak
/// an undecided trace.
class RequestScope {
 public:
  explicit RequestScope(const char* name) noexcept : name_(name) {
    if (!enabled()) return;
    const TraceContext& active = current();
    if (active.valid()) {
      ctx_ = child_of(active);
      root_ = false;
    } else {
      ctx_ = mint_request();
      root_ = true;
    }
    prev_ = active;
    installed_ = true;
    set_current(ctx_);
    start_us_ = now_us();
  }

  ~RequestScope() {
    if (installed_) set_current(prev_);
    if (ctx_.valid() && !done_) finish(Verdict{});
  }

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  /// Record the scope span and decide retention. Idempotent.
  void finish(const Verdict& verdict) {
    if (!ctx_.valid() || done_) return;
    done_ = true;
    record_span(ctx_, name_, root_ ? SpanKind::kRequest : SpanKind::kPhase,
                start_us_, now_us());
    if (root_) {
      finish_request(ctx_, verdict);
    } else {
      note_child_verdict(ctx_, verdict);
    }
  }

  /// Hand span recording + tail decision to the caller (async admission:
  /// the request outlives the submit call). The context stays installed
  /// until destruction; finish() becomes a no-op.
  TraceContext release() noexcept {
    done_ = true;
    return ctx_;
  }

  [[nodiscard]] TraceContext context() const noexcept { return ctx_; }
  [[nodiscard]] bool root() const noexcept { return root_; }
  [[nodiscard]] std::int64_t start_us() const noexcept { return start_us_; }

 private:
  TraceContext ctx_{};
  TraceContext prev_{};
  const char* name_;
  std::int64_t start_us_ = 0;
  bool root_ = false;
  bool installed_ = false;
  bool done_ = false;
};

/// RAII phase span: a child of the thread's current context, recorded on
/// destruction. Inert (one branch) when no context is active — this is the
/// hook ScopedTimer uses, so engine phases join whatever request trace is
/// running without touching evaluator code.
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name) noexcept : name_(name) {
    if (!enabled()) return;
    const TraceContext& active = current();
    if (!active.valid()) return;
    ctx_ = child_of(active);
    start_us_ = now_us();
  }
  ~PhaseSpan() {
    if (ctx_.valid()) {
      record_span(ctx_, name_, SpanKind::kPhase, start_us_, now_us());
    }
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  TraceContext ctx_{};
  const char* name_;
  std::int64_t start_us_ = 0;
};

/// RAII install/restore of the thread's current context — how the service
/// scheduler lends the batch context to the engine for one evaluation.
class ContextGuard {
 public:
  explicit ContextGuard(const TraceContext& ctx) noexcept : prev_(current()) {
    set_current(ctx);
  }
  ~ContextGuard() { set_current(prev_); }
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  TraceContext prev_;
};

#else

class RequestScope {
 public:
  explicit RequestScope(const char*) noexcept {}
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;
  void finish(const Verdict&) noexcept {}
  TraceContext release() noexcept { return {}; }
  [[nodiscard]] TraceContext context() const noexcept { return {}; }
  [[nodiscard]] bool root() const noexcept { return false; }
  [[nodiscard]] std::int64_t start_us() const noexcept { return 0; }
};

class PhaseSpan {
 public:
  explicit PhaseSpan(const char*) noexcept {}
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;
};

class ContextGuard {
 public:
  explicit ContextGuard(const TraceContext&) noexcept {}
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;
};

#endif

}  // namespace treecode::obs::reqtrace
