#include "obs/telemetry.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <utility>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/reqtrace.hpp"

namespace treecode::obs::telemetry {

namespace {

/// One ring slot, seqlock-stamped exactly like the flight recorder's
/// (obs/recorder.cpp): begin/end bracket the payload, a reader discards any
/// slot whose stamps disagree. Stamps store seq+1 so zero-initialized reads
/// as empty.
struct Slot {
  std::atomic<std::uint64_t> begin{0};
  std::atomic<std::uint64_t> end{0};
  std::atomic<std::int64_t> ts_us{0};
  std::atomic<std::uint8_t> api{0};
  std::atomic<std::uint64_t> plan_key{0};
  std::atomic<std::int8_t> rung{-1};
  std::atomic<std::uint8_t> outcome{0};
  std::atomic<const char*> outcome_name{nullptr};
  std::atomic<bool> ok{true};
  std::atomic<double> wall_seconds{0.0};
  std::atomic<std::uint64_t> targets{0};
  std::atomic<std::uint64_t> plan_bytes{0};
  std::atomic<std::uint64_t> basis_bytes{0};
  std::atomic<double> deadline_slack_seconds{0.0};
  std::atomic<double> audit_max_tightness{0.0};
  std::atomic<std::uint32_t> threads{0};
  std::atomic<std::uint32_t> batch_width{0};
  std::atomic<std::uint64_t> trace_hi{0};
  std::atomic<std::uint64_t> trace_lo{0};
  std::atomic<double> queue_wait_seconds{0.0};
  std::atomic<std::uint64_t> batch_seq{0};
};

static_assert((kRingCapacity & (kRingCapacity - 1)) == 0, "ring index uses a mask");

struct State {
  std::array<Slot, kRingCapacity> ring;
  std::atomic<std::uint64_t> next_seq{0};
  std::atomic<bool> enabled{false};
  std::atomic<std::int64_t> epoch_us{0};
  // Sink state is cold relative to the ring (one line per finished request);
  // a mutex serializes appends and rotation.
  std::mutex sink_mutex;
  std::string sink_path;
  std::ofstream sink;
  std::uint64_t sink_bytes = 0;
  std::uint64_t rotate_bytes = 0;
  unsigned max_files = 3;
};

State& state() {
  static State s;
  return s;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Degradation-ladder rung names, matching core ServeRung's enumerator
/// values (obs cannot include core/config.hpp — util links obs).
const char* rung_name(std::int8_t rung) {
  switch (rung) {
    case 0: return "basis_replay";
    case 1: return "plain_replay";
    case 2: return "traversal";
    case 3: return "direct";
    default: return "none";
  }
}

/// Rotate path.<max-2> -> path.<max-1>, ..., path -> path.1 and reopen.
/// Called with sink_mutex held.
void rotate_locked(State& s) {
  s.sink.close();
  for (unsigned i = s.max_files - 1; i >= 1; --i) {
    const std::string to = s.sink_path + "." + std::to_string(i);
    const std::string from =
        i == 1 ? s.sink_path : s.sink_path + "." + std::to_string(i - 1);
    std::remove(to.c_str());
    std::rename(from.c_str(), to.c_str());
  }
  s.sink.open(s.sink_path, std::ios::out | std::ios::trunc);
  s.sink_bytes = 0;
  registry().counter(metric::kTelemetrySinkRotations).add(1);
}

/// Append one JSONL line, rotating first if it would exceed the budget.
/// Called with sink_mutex held.
void append_line_locked(State& s, const std::string& line) {
  if (!s.sink.is_open()) return;
  const std::uint64_t bytes = line.size() + 1;
  if (s.rotate_bytes > 0 && s.sink_bytes > 0 &&
      s.sink_bytes + bytes > s.rotate_bytes) {
    rotate_locked(s);
  }
  s.sink << line << '\n';
  s.sink.flush();
  if (!s.sink) {
    registry().counter(metric::kTelemetrySinkErrors).add(1);
    s.sink.clear();
  } else {
    s.sink_bytes += bytes;
  }
}

std::span<const double> request_seconds_bounds() {
  // 1us .. ~1000s in factor-4 decades: replay latencies cluster around
  // milliseconds, compile around seconds; the tails matter for p99.
  static const std::vector<double> bounds = exponential_buckets(1e-6, 4.0, 16);
  return bounds;
}

}  // namespace

const char* api_name(Api api) {
  switch (api) {
    case Api::kCompile: return "compile";
    case Api::kCompileSelf: return "compile_self";
    case Api::kUpdateCharges: return "update_charges";
    case Api::kUpdateChargesSorted: return "update_charges_sorted";
    case Api::kEvaluatePlan: return "evaluate_plan";
    case Api::kEvaluateAt: return "evaluate_at";
    case Api::kEvaluateSelf: return "evaluate_self";
    case Api::kEvaluateBatch: return "evaluate_batch";
    case Api::kServiceRegister: return "service_register";
    case Api::kServiceSubmit: return "service_submit";
    case Api::kServiceUnregister: return "service_unregister";
    case Api::kServiceServe: return "service_serve";
  }
  return "unknown";
}

void enable() {
  State& s = state();
  s.epoch_us.store(now_us(), std::memory_order_relaxed);
  s.enabled.store(true, std::memory_order_release);
}

void disable() { state().enabled.store(false, std::memory_order_release); }

bool enabled() { return state().enabled.load(std::memory_order_relaxed); }

void reset() {
  State& s = state();
  s.enabled.store(false, std::memory_order_release);
  for (Slot& slot : s.ring) {
    slot.begin.store(0, std::memory_order_relaxed);
    slot.end.store(0, std::memory_order_relaxed);
    slot.outcome_name.store(nullptr, std::memory_order_relaxed);
  }
  s.next_seq.store(0, std::memory_order_relaxed);
  const std::scoped_lock lock(s.sink_mutex);
  if (s.sink.is_open()) s.sink.close();
  s.sink_path.clear();
  s.sink_bytes = 0;
  s.rotate_bytes = 0;
  s.max_files = 3;
}

void set_sink(std::string path, std::uint64_t rotate_bytes, unsigned max_files) {
  State& s = state();
  const std::scoped_lock lock(s.sink_mutex);
  if (s.sink.is_open()) s.sink.close();
  s.sink_path = std::move(path);
  s.rotate_bytes = rotate_bytes;
  s.max_files = max_files < 2 ? 2 : max_files;
  s.sink_bytes = 0;
  s.sink.open(s.sink_path, std::ios::out | std::ios::trunc);
  if (!s.sink.is_open()) {
    registry().counter(metric::kTelemetrySinkErrors).add(1);
    warn("telemetry sink open failed: " + s.sink_path);
  }
}

void close_sink() {
  State& s = state();
  const std::scoped_lock lock(s.sink_mutex);
  if (s.sink.is_open()) s.sink.close();
  s.sink_path.clear();
}

void emit(RequestRecord record) {
  State& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  record.seq = s.next_seq.fetch_add(1, std::memory_order_relaxed);
  record.ts_us = now_us() - s.epoch_us.load(std::memory_order_relaxed);

  // Seqlock write (see obs/recorder.cpp): open the slot, fill relaxed,
  // publish with a release store of the matching end stamp.
  Slot& slot = s.ring[record.seq & (kRingCapacity - 1)];
  slot.begin.store(record.seq + 1, std::memory_order_relaxed);
  slot.ts_us.store(record.ts_us, std::memory_order_relaxed);
  slot.api.store(static_cast<std::uint8_t>(record.api), std::memory_order_relaxed);
  slot.plan_key.store(record.plan_key, std::memory_order_relaxed);
  slot.rung.store(record.rung, std::memory_order_relaxed);
  slot.outcome.store(record.outcome, std::memory_order_relaxed);
  slot.outcome_name.store(record.outcome_name, std::memory_order_relaxed);
  slot.ok.store(record.ok, std::memory_order_relaxed);
  slot.wall_seconds.store(record.wall_seconds, std::memory_order_relaxed);
  slot.targets.store(record.targets, std::memory_order_relaxed);
  slot.plan_bytes.store(record.plan_bytes, std::memory_order_relaxed);
  slot.basis_bytes.store(record.basis_bytes, std::memory_order_relaxed);
  slot.deadline_slack_seconds.store(record.deadline_slack_seconds,
                                    std::memory_order_relaxed);
  slot.audit_max_tightness.store(record.audit_max_tightness,
                                 std::memory_order_relaxed);
  slot.threads.store(record.threads, std::memory_order_relaxed);
  slot.batch_width.store(record.batch_width, std::memory_order_relaxed);
  slot.trace_hi.store(record.trace_hi, std::memory_order_relaxed);
  slot.trace_lo.store(record.trace_lo, std::memory_order_relaxed);
  slot.queue_wait_seconds.store(record.queue_wait_seconds,
                                std::memory_order_relaxed);
  slot.batch_seq.store(record.batch_seq, std::memory_order_relaxed);
  slot.end.store(record.seq + 1, std::memory_order_release);

  Registry& reg = registry();
  reg.counter(metric::kTelemetryRequests).add(1);
  if (!record.ok) reg.counter(metric::kTelemetryErrors).add(1);
  reg.histogram(metric::kTelemetryRequestSeconds, request_seconds_bounds())
      .observe(record.wall_seconds);

  const std::scoped_lock lock(s.sink_mutex);
  if (s.sink.is_open()) append_line_locked(s, to_json(record).dump(0));
}

std::vector<RequestRecord> records() {
  State& s = state();
  std::vector<RequestRecord> out;
  out.reserve(kRingCapacity);
  for (const Slot& slot : s.ring) {
    const std::uint64_t end = slot.end.load(std::memory_order_acquire);
    if (end == 0) continue;  // never written
    RequestRecord r;
    r.ts_us = slot.ts_us.load(std::memory_order_relaxed);
    r.api = static_cast<Api>(slot.api.load(std::memory_order_relaxed));
    r.plan_key = slot.plan_key.load(std::memory_order_relaxed);
    r.rung = slot.rung.load(std::memory_order_relaxed);
    r.outcome = slot.outcome.load(std::memory_order_relaxed);
    const char* name = slot.outcome_name.load(std::memory_order_relaxed);
    r.ok = slot.ok.load(std::memory_order_relaxed);
    r.wall_seconds = slot.wall_seconds.load(std::memory_order_relaxed);
    r.targets = slot.targets.load(std::memory_order_relaxed);
    r.plan_bytes = slot.plan_bytes.load(std::memory_order_relaxed);
    r.basis_bytes = slot.basis_bytes.load(std::memory_order_relaxed);
    r.deadline_slack_seconds =
        slot.deadline_slack_seconds.load(std::memory_order_relaxed);
    r.audit_max_tightness = slot.audit_max_tightness.load(std::memory_order_relaxed);
    r.threads = slot.threads.load(std::memory_order_relaxed);
    r.batch_width = slot.batch_width.load(std::memory_order_relaxed);
    r.trace_hi = slot.trace_hi.load(std::memory_order_relaxed);
    r.trace_lo = slot.trace_lo.load(std::memory_order_relaxed);
    r.queue_wait_seconds = slot.queue_wait_seconds.load(std::memory_order_relaxed);
    r.batch_seq = slot.batch_seq.load(std::memory_order_relaxed);
    const std::uint64_t begin = slot.begin.load(std::memory_order_relaxed);
    if (begin != end) continue;  // torn: writer was mid-update
    r.seq = end - 1;
    r.outcome_name = name != nullptr ? name : "ok";
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const RequestRecord& a, const RequestRecord& b) { return a.seq < b.seq; });
  return out;
}

std::uint64_t emitted_count() {
  return state().next_seq.load(std::memory_order_relaxed);
}

Json to_json(const RequestRecord& record) {
  char key_hex[19];
  std::snprintf(key_hex, sizeof key_hex, "0x%016llx",
                static_cast<unsigned long long>(record.plan_key));
  Json doc = Json::object();
  doc["schema"] = "treecode-request-record/v2";
  doc["seq"] = record.seq;
  doc["ts_us"] = record.ts_us;
  doc["api"] = api_name(record.api);
  doc["plan_key"] = key_hex;
  doc["rung"] = static_cast<std::int64_t>(record.rung);
  doc["rung_name"] = rung_name(record.rung);
  doc["outcome"] = record.outcome_name;
  doc["ok"] = record.ok;
  doc["wall_seconds"] = record.wall_seconds;
  doc["targets"] = record.targets;
  doc["plan_bytes"] = record.plan_bytes;
  doc["basis_bytes"] = record.basis_bytes;
  // NaN marks "no deadline armed"; the JSON writer turns it into null.
  doc["deadline_slack_seconds"] = record.deadline_slack_seconds;
  doc["audit_max_tightness"] = record.audit_max_tightness;
  doc["threads"] = static_cast<std::uint64_t>(record.threads);
  doc["batch_width"] = static_cast<std::uint64_t>(record.batch_width);
  doc["trace_id"] = reqtrace::trace_id_hex(record.trace_hi, record.trace_lo);
  doc["queue_wait_seconds"] = record.queue_wait_seconds;
  doc["batch_seq"] = record.batch_seq;
  return doc;
}

}  // namespace treecode::obs::telemetry
