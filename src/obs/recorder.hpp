#pragma once

/// \file recorder.hpp
/// Flight recorder: a fixed-size lock-free ring buffer of recent structured
/// events, dumped as a JSON diagnostic snapshot when something goes wrong.
///
/// Long evaluations fail rarely and far from a debugger: an invariant check
/// trips after hours of replays, a non-finite potential surfaces mid-solve.
/// The metrics registry tells you *how much* happened in aggregate but not
/// *in what order* just before the failure. The recorder keeps the last
/// `kCapacity` events (phase transitions, budget demotions, plan-cache
/// evictions, invariant-check outcomes, ...) and writes them to disk as a
/// `treecode-flight-record/v2` JSON document on invariant failure,
/// non-finite detection, or explicit request.
///
/// Design constraints, in order:
///  - Recording must be safe from any thread at any time, including inside
///    evaluator hot paths that run under the TSan stress suite. Every slot
///    field is an atomic; a seqlock-style begin/end stamp pair makes torn
///    reads detectable instead of undefined. There are no locks and no
///    allocation on the record path.
///  - Disabled (the default) must cost one relaxed atomic load and a
///    predicted branch, so the recorder can stay compiled into release
///    evaluators without showing up in benchmarks.
///  - Event labels are `const char*` and must point at storage that outlives
///    the recorder — in practice string literals or obs::span constants.
///    Dynamic strings are deliberately unsupported: copying them would need
///    allocation or a length cap, and every current producer has a static
///    name.
///
/// A slot being overwritten while a snapshot reader visits it yields a
/// mismatched begin/end stamp and the slot is skipped; with a 4096-slot ring
/// the writer would have to lap the reader for a stamp to false-match, which
/// is acceptable for a diagnostic artifact (the snapshot is already "the
/// recent past", not a consistent cut).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace treecode::obs::recorder {

/// What kind of event a slot holds. Serialized by name in snapshots.
enum class Category : std::uint8_t {
  kPhase = 0,      ///< a timed phase completed (label = span name, value = seconds)
  kBudget,         ///< error-budget demotions in an evaluation (value = count)
  kEviction,       ///< plan-cache eviction (value = plan bytes released)
  kInvariant,      ///< invariant check outcome (value = violation count)
  kNonFinite,      ///< non-finite potential/gradient detected (value = target index)
  kWarning,        ///< obs::warn was called (message itself lives in the warning sink)
  kAudit,          ///< audit engine event (value = tightness ratio or violation count)
  kCustom,         ///< anything else; meaning carried by the label
};

/// Human-readable name for a category ("phase", "budget", ...).
const char* category_name(Category c);

/// One recorded event, as read back out of the ring.
struct Event {
  std::uint64_t seq = 0;       ///< global sequence number (total order of records)
  std::int64_t ts_us = 0;      ///< microseconds since recorder start
  std::uint32_t tid = 0;       ///< obs::thread_index() of the recording thread
  Category category = Category::kCustom;
  const char* label = "";      ///< static string naming the event
  double value = 0.0;          ///< category-specific payload
};

/// Number of slots in the ring. Power of two so the slot index is a mask.
inline constexpr std::size_t kCapacity = 4096;

/// Enable event recording. Idempotent; resets the epoch used for `ts_us`
/// but keeps previously recorded events (they predate the new epoch and
/// keep their old timestamps).
void start();

/// Disable event recording. Events already in the ring remain readable.
void stop();

/// Whether record() currently stores events. One relaxed load.
bool enabled();

/// Discard all recorded events and the dump-path / dump-count state.
/// Not safe concurrently with record(); intended for test setup.
void reset();

/// Record one event. Lock-free, allocation-free, safe from any thread.
/// No-op (one relaxed load + branch) while the recorder is disabled.
/// `label` must outlive the recorder (string literal / obs::span constant).
void record(Category category, const char* label, double value) noexcept;

/// Snapshot the ring: all readable events, oldest first (sorted by seq).
/// Slots mid-write or torn are skipped.
std::vector<Event> events();

/// Total events ever recorded (including ones the ring has overwritten).
std::uint64_t recorded_count();

/// Snapshot as a `treecode-flight-record/v2` JSON document:
/// {schema, reason, provenance, recorded, dropped,
///  events:[{seq,ts_us,tid,category,label,value}]}. v2 added the bench
/// reports' provenance block (git SHA, compiler, host, UTC timestamp).
Json to_json(const std::string& reason);

/// Where trigger() writes snapshots. Empty (default) disables dumping;
/// trigger() still records a kCustom "recorder.trigger" event so the cause
/// is visible in later snapshots.
void set_dump_path(std::string path);

/// Dump a snapshot to `path` immediately. Returns false (after recording a
/// warning) if the file cannot be written. Usable whether or not enabled().
bool dump(const std::string& path, const std::string& reason);

/// Something went wrong: dump a snapshot to the configured dump path.
/// Called on invariant failure and non-finite detection; callers that are
/// about to throw call this first so the artifact survives the unwind.
/// No-op beyond an event record when no dump path is configured.
void trigger(const std::string& reason);

/// How many times trigger() has dumped since the last reset().
std::uint64_t trigger_count();

}  // namespace treecode::obs::recorder
