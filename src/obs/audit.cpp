#include "obs/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/spans.hpp"
#include "util/timer.hpp"

namespace treecode::obs::audit {

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix, so consecutive
/// (target, ordinal) counters map to effectively independent uniform keys.
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Tightness histogram buckets: 1e-9 .. 1e2 by decades. Ratios land well
/// below 1 for healthy bounds; the >1 decades exist so violations are
/// visible in the distribution, not only in the violation counter.
const std::vector<double>& tightness_buckets() {
  static const std::vector<double> buckets = exponential_buckets(1e-9, 10.0, 12);
  return buckets;
}

/// Decade of the cluster charge magnitude, clamped to [-8, 8] so the
/// per-charge-magnitude histogram family stays bounded.
int charge_decade(double abs_charge) noexcept {
  if (!(abs_charge > 0.0)) return -8;
  const double d = std::floor(std::log10(abs_charge));
  return static_cast<int>(std::clamp(d, -8.0, 8.0));
}

}  // namespace

std::uint64_t sample_key(std::uint64_t seed, std::uint64_t target,
                         std::uint64_t ordinal) noexcept {
  // Chain the mixer over the three inputs; mixing the previous digest into
  // the next counter keeps (target=2, ordinal=3) and (target=3, ordinal=2)
  // uncorrelated.
  return mix64(mix64(mix64(seed) ^ target) ^ ordinal);
}

void Reservoir::set_capacity(std::size_t k) {
  k_ = k;
  heap_.clear();
  heap_.reserve(k);
}

void Reservoir::offer(const Sample& s) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.push_back(s);
    std::push_heap(heap_.begin(), heap_.end(), sample_less);
    return;
  }
  if (!sample_less(s, heap_.front())) return;  // not among the K smallest
  std::pop_heap(heap_.begin(), heap_.end(), sample_less);
  heap_.back() = s;
  std::push_heap(heap_.begin(), heap_.end(), sample_less);
}

std::vector<Sample> merge(std::span<const Reservoir> reservoirs, std::size_t k) {
  std::vector<Sample> all;
  for (const Reservoir& r : reservoirs) {
    all.insert(all.end(), r.samples().begin(), r.samples().end());
  }
  std::sort(all.begin(), all.end(), sample_less);
  if (all.size() > k) all.resize(k);
  return all;
}

Summary finalize(std::span<const Sample> winners,
                 const std::function<double(const Sample&)>& exact_of) {
  Summary summary;
  if (winners.empty()) return summary;
  const ScopedTimer phase(span::kAuditFinalize);

  Registry& reg = registry();
  Histogram& tightness_all = reg.histogram(metric::kAuditTightness, tightness_buckets());
  double mean_sum = 0.0;
  std::uint64_t finite_count = 0;

  for (const Sample& s : winners) {
    const double exact = exact_of(s);
    const double observed = std::abs(s.approx - exact);
    const double noise_floor = kNoiseRelEps * s.noise_scale;
    double ratio;
    bool violation = false;
    if (observed <= noise_floor) {
      // Truncation error is unresolvable beneath the rounding of the two
      // summations (typical for point-like clusters, whose bound is ~0 but
      // whose approx/exact paths still differ by ~eps * |phi|).
      ratio = 0.0;
    } else if (s.bound > 0.0) {
      ratio = observed / s.bound;
      violation = ratio > 1.0;
    } else {
      // Zero bound claims zero truncation error; an observed error above
      // the rounding floor is a violation with no finite ratio to report.
      ratio = std::numeric_limits<double>::infinity();
      violation = true;
    }

    tightness_all.observe(ratio);
    char name[48];
    std::snprintf(name, sizeof(name), "audit.tightness.L%d", s.level);
    reg.histogram(name, tightness_buckets()).observe(ratio);
    std::snprintf(name, sizeof(name), "audit.tightness.p%d", s.degree);
    reg.histogram(name, tightness_buckets()).observe(ratio);
    std::snprintf(name, sizeof(name), "audit.tightness.q%d", charge_decade(s.abs_charge));
    reg.histogram(name, tightness_buckets()).observe(ratio);

    ++summary.samples;
    if (violation) {
      ++summary.bound_violations;
      recorder::record(recorder::Category::kAudit, "audit.bound_violation", ratio);
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "audit: Theorem-1 bound violated at target %llu node %lld "
                    "(observed %.3g, bound %.3g)",
                    static_cast<unsigned long long>(s.target),
                    static_cast<long long>(s.node), observed, s.bound);
      warn(msg);
    }
    if (std::isfinite(ratio)) {
      summary.max_tightness = std::max(summary.max_tightness, ratio);
      mean_sum += ratio;
      ++finite_count;
    }
  }
  if (finite_count > 0) {
    summary.mean_tightness = mean_sum / static_cast<double>(finite_count);
  }

  reg.counter(metric::kAuditSamples).add(summary.samples);
  reg.counter(metric::kAuditBoundViolations).add(summary.bound_violations);
  reg.gauge(metric::kAuditMaxTightness).record_max(summary.max_tightness);
  recorder::record(recorder::Category::kAudit, "audit.finalize",
                   static_cast<double>(summary.samples));
  return summary;
}

}  // namespace treecode::obs::audit
