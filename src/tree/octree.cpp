#include "tree/octree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "analysis/invariants.hpp"
#include "geom/hilbert.hpp"
#include "geom/morton.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"
#include "obs/spans.hpp"

namespace treecode {

namespace {

/// Total SFC key bits (3 per level).
constexpr int kKeyBits = 3 * kSfcBitsPerAxis;

}  // namespace

Tree::Tree(const ParticleSystem& ps, const TreeConfig& config) : config_(config) {
  if (config_.leaf_capacity == 0) config_.leaf_capacity = 1;
  build(ps);
}

void Tree::build(const ParticleSystem& ps) {
  const ScopedTimer build_phase(obs::span::kTreeBuild);
  source_size_ = ps.size();
  validation_ = validate_particles(ps.positions(), ps.charges());
  enforce_validation(validation_, config_.validation, "Tree");

  // Under kSanitize/kWarn (kThrow would have thrown above), drop the
  // invalid particles: positions/charges that are not finite cannot enter
  // the SFC sort (NaN breaks the comparator) or the quantizer.
  std::vector<std::size_t> kept;
  if (validation_.has_errors()) {
    dropped_ = validation_.invalid_particles();
    kept.reserve(source_size_ - dropped_.size());
    std::size_t d = 0;
    for (std::size_t i = 0; i < source_size_; ++i) {
      if (d < dropped_.size() && dropped_[d] == i) {
        ++d;
      } else {
        kept.push_back(i);
      }
    }
  } else {
    kept.resize(source_size_);
    std::iota(kept.begin(), kept.end(), std::size_t{0});
  }

  const std::size_t n = kept.size();
  positions_.resize(n);
  charges_.resize(n);
  keys_.resize(n);
  original_index_.resize(n);
  if (n == 0) {
    nodes_.push_back(TreeNode{});
    height_ = 1;
    level_counts_ = {1};
    return;
  }

  // Bounds over the kept particles only (ps.bounds() would be poisoned by
  // any dropped non-finite position).
  Aabb bounds;
  for (std::size_t i : kept) bounds.expand(ps.position(i));
  root_cube_ = bounds.bounding_cube();
  // Degenerate case: all particles coincident -> zero-size cube. Inflate a
  // hair so quantization and child boxes stay well-defined.
  if (root_cube_.max_extent() == 0.0) {
    const Vec3 c = root_cube_.center();
    const double h = 0.5;
    root_cube_.lo = c - Vec3{h, h, h};
    root_cube_.hi = c + Vec3{h, h, h};
  }

  // Key + sort (indirect, then gather).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::uint64_t> raw_keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    raw_keys[i] = config_.ordering == Ordering::kHilbert
                      ? hilbert_key(ps.position(kept[i]), root_cube_)
                      : morton_key(ps.position(kept[i]), root_cube_);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return raw_keys[a] < raw_keys[b]; });
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = order[i];
    positions_[i] = ps.position(kept[src]);
    charges_[i] = ps.charge(kept[src]);
    keys_[i] = raw_keys[src];
    original_index_[i] = kept[src];
  }

  // Root node covers everything.
  TreeNode root;
  root.box = root_cube_;
  root.begin = 0;
  root.end = n;
  root.level = 0;
  nodes_.push_back(root);
  split(0, kKeyBits - 3);

  // Finalize per-node cluster quantities and level stats.
  height_ = 0;
  for (auto& node : nodes_) {
    finalize_node(node);
    height_ = std::max(height_, node.level + 1);
  }
  level_counts_.assign(static_cast<std::size_t>(height_), 0);
  double min_leaf = std::numeric_limits<double>::infinity();
  double min_density = std::numeric_limits<double>::infinity();
  double sum_leaf = 0.0;
  double sum_density = 0.0;
  std::size_t num_leaves = 0;
  for (const auto& node : nodes_) {
    ++level_counts_[static_cast<std::size_t>(node.level)];
    if (node.is_leaf() && node.count() > 0) {
      ++num_leaves;
      sum_leaf += node.abs_charge;
      const double density = node.size() > 0.0 ? node.abs_charge / node.size() : 0.0;
      sum_density += density;
      if (node.abs_charge > 0.0) {
        min_leaf = std::min(min_leaf, node.abs_charge);
        if (density > 0.0) min_density = std::min(min_density, density);
      }
    }
  }
  min_leaf_abs_charge_ = std::isfinite(min_leaf) ? min_leaf : 0.0;
  mean_leaf_abs_charge_ = num_leaves == 0 ? 0.0 : sum_leaf / static_cast<double>(num_leaves);
  min_leaf_charge_density_ = std::isfinite(min_density) ? min_density : 0.0;
  mean_leaf_charge_density_ =
      num_leaves == 0 ? 0.0 : sum_density / static_cast<double>(num_leaves);

  obs::Registry& reg = obs::registry();
  reg.gauge(obs::metric::kTreeHeight).set(static_cast<double>(height_));
  reg.gauge(obs::metric::kTreeNumNodes).set(static_cast<double>(nodes_.size()));
  reg.gauge(obs::metric::kTreeNumLeaves).set(static_cast<double>(num_leaves));
  reg.gauge(obs::metric::kTreeNumParticles).set(static_cast<double>(positions_.size()));

  TREECODE_ASSERT_TREE_INVARIANTS(*this, "Tree::build");
}

void Tree::split(std::size_t node_index, int shift) {
  // Copy out the range: nodes_ may reallocate during recursion.
  const std::size_t begin = nodes_[node_index].begin;
  const std::size_t end = nodes_[node_index].end;
  if (end - begin <= config_.leaf_capacity || shift < 0) return;

  // Children = maximal runs of equal 3-bit digits at the working shift.
  struct ChildRange {
    std::size_t begin, end;
  };
  ChildRange ranges[8];
  int num_children = 0;
  const auto find_runs = [&](int at_shift) {
    const auto digit = [&](std::size_t i) -> std::uint64_t {
      return (keys_[i] >> at_shift) & 0x7u;
    };
    num_children = 0;
    std::size_t pos = begin;
    while (pos < end) {
      const std::uint64_t d = digit(pos);
      std::size_t run_end = pos + 1;
      while (run_end < end && digit(run_end) == d) ++run_end;
      ranges[num_children++] = {pos, run_end};
      pos = run_end;
    }
  };

  int use_shift = shift;
  find_runs(use_shift);
  assert(num_children >= 1 && num_children <= 8);
  if (config_.collapse_chains) {
    // Skip non-separating levels: descend until the particles actually
    // split into more than one cell (or the keys are exhausted, meaning
    // all particles coincide on the grid -> leaf).
    while (num_children == 1 && use_shift >= 3) {
      use_shift -= 3;
      find_runs(use_shift);
    }
    if (num_children == 1) return;  // identical keys: keep as a leaf
  }
  // Without collapsing, a single child covering the whole range still
  // descends one level at a time (the cell shrinks); fully identical keys
  // terminate via `shift < 0`.

  // Grid level of the children: shift s holds the digit of level
  // kSfcBitsPerAxis - s/3 (the first call uses s = 3*(kSfcBitsPerAxis-1),
  // i.e. level 1).
  const int child_level = kSfcBitsPerAxis - use_shift / 3;
  const int first_child = static_cast<int>(nodes_.size());
  nodes_[node_index].first_child = first_child;
  nodes_[node_index].num_children = num_children;
  for (int c = 0; c < num_children; ++c) {
    TreeNode child;
    child.begin = ranges[c].begin;
    child.end = ranges[c].end;
    child.level = child_level;
    child.parent = static_cast<int>(node_index);
    // Geometric cell: derived from the quantized grid cell of any member.
    const GridCoord g = quantize(positions_[child.begin], root_cube_);
    const std::uint32_t cell_shift = static_cast<std::uint32_t>(kSfcBitsPerAxis - child_level);
    const double cell_size = root_cube_.extents().x / static_cast<double>(1u << child_level);
    const Vec3 lo{
        root_cube_.lo.x + cell_size * static_cast<double>(g.x >> cell_shift),
        root_cube_.lo.y + cell_size * static_cast<double>(g.y >> cell_shift),
        root_cube_.lo.z + cell_size * static_cast<double>(g.z >> cell_shift)};
    child.box.lo = lo;
    child.box.hi = lo + Vec3{cell_size, cell_size, cell_size};
    nodes_.push_back(child);
  }
  for (int c = 0; c < num_children; ++c) {
    split(static_cast<std::size_t>(first_child + c), use_shift - 3);
  }
}

void Tree::finalize_node(TreeNode& node) {
  double abs_q = 0.0;
  double net_q = 0.0;
  Vec3 weighted{};
  for (std::size_t i = node.begin; i < node.end; ++i) {
    const double w = std::abs(charges_[i]);
    abs_q += w;
    net_q += charges_[i];
    weighted += positions_[i] * w;
  }
  node.abs_charge = abs_q;
  node.net_charge = net_q;
  if (abs_q > 0.0) {
    node.center = weighted / abs_q;
  } else if (node.count() > 0) {
    // All-zero charges: fall back to the unweighted centroid.
    Vec3 c{};
    for (std::size_t i = node.begin; i < node.end; ++i) c += positions_[i];
    node.center = c / static_cast<double>(node.count());
  } else {
    node.center = node.box.empty() ? Vec3{} : node.box.center();
  }
  double r2max = 0.0;
  for (std::size_t i = node.begin; i < node.end; ++i) {
    r2max = std::max(r2max, distance2(positions_[i], node.center));
  }
  node.radius = std::sqrt(r2max);
}

}  // namespace treecode
