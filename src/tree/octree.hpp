#pragma once

/// \file octree.hpp
/// Hierarchical domain decomposition: the octree underlying both treecode
/// evaluators.
///
/// Construction follows the paper's pipeline:
///  1. quantize particles onto a 2^21-per-axis grid inside the bounding cube,
///  2. sort them by a proximity-preserving space-filling-curve key
///     (Peano-Hilbert by default, Morton as an ablation alternative),
///  3. split key ranges recursively on 3-bit prefixes: every octree cell at
///     level L corresponds to a contiguous key range sharing a 3L-bit prefix,
///     so children are found with binary searches instead of data movement.
///
/// Each node records the cluster quantities the error analysis needs:
/// the aggregate absolute charge A = sum |q_i| (Theorems 2 and 3), the
/// expansion center (|q|-weighted center of charge, the paper's "center of
/// mass"), and the cluster radius a (Theorem 1).

#include <cstdint>
#include <vector>

#include "dist/particle_system.hpp"
#include "geom/aabb.hpp"
#include "util/validate.hpp"

namespace treecode {

/// Space-filling-curve particle ordering used by the tree.
enum class Ordering {
  kHilbert,  ///< Peano-Hilbert (the paper's choice; best locality)
  kMorton,   ///< Z-order (ablation alternative)
};

/// Octree construction parameters.
struct TreeConfig {
  /// Maximum particles per leaf. The paper notes leaves of 32-64 particles
  /// for cache performance; the error analysis uses 1. Default 8 balances
  /// the two for laptop-scale runs.
  std::size_t leaf_capacity = 8;
  Ordering ordering = Ordering::kHilbert;
  /// Collapse chains of single-child cells: when all of a cell's particles
  /// fall into one octant (common in the paper's "unstructured domains"),
  /// descend directly to the first level that actually separates them
  /// instead of materializing a chain of degenerate nodes. This is the
  /// height-balancing remedy the paper points to (via Callahan & Kosaraju)
  /// for the large-degree problem on clustered distributions: tree height
  /// tracks the *separating* levels only.
  bool collapse_chains = false;
  /// What to do with invalid input particles (NaN/Inf positions or
  /// charges): fail fast (default), silently drop them, or drop them with
  /// a stderr warning. Dropped particles keep their slot in caller-order
  /// results (potential 0); see Tree::dropped(). Warning-severity findings
  /// (coincident particles, zero net charge, empty system) never throw —
  /// they are recorded in Tree::validation_report().
  ValidationPolicy validation = ValidationPolicy::kThrow;
};

/// One octree node. Children are stored contiguously; `first_child < 0`
/// marks a leaf. Particle membership is the contiguous range [begin, end)
/// of the tree's SFC-sorted particle arrays.
struct TreeNode {
  Aabb box;                ///< cubic cell bounds
  Vec3 center;             ///< expansion center (center of charge)
  double radius = 0.0;     ///< max distance of a member particle from center
  double abs_charge = 0.0; ///< A = sum of |q_i| over members
  double net_charge = 0.0; ///< sum of q_i over members
  std::size_t begin = 0;   ///< first particle index (sorted order)
  std::size_t end = 0;     ///< one-past-last particle index
  int level = 0;           ///< root is level 0
  int parent = -1;
  int first_child = -1;
  int num_children = 0;

  [[nodiscard]] bool is_leaf() const noexcept { return first_child < 0; }
  [[nodiscard]] std::size_t count() const noexcept { return end - begin; }
  /// Cell edge length ("dimension of the box enclosing the cluster").
  [[nodiscard]] double size() const noexcept { return box.extents().x; }
};

/// The octree plus the SFC-sorted copy of the particle data.
///
/// Evaluators read positions/charges in sorted order for locality (this is
/// the paper's proximity-preserving aggregation) and use `original_index`
/// to scatter results back to the caller's particle order.
class Tree {
 public:
  /// Build the tree over `ps`. The particle system itself is not modified;
  /// the tree holds a sorted copy.
  Tree(const ParticleSystem& ps, const TreeConfig& config = {});

  [[nodiscard]] const TreeConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_particles() const noexcept { return positions_.size(); }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::vector<TreeNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const TreeNode& node(std::size_t i) const noexcept { return nodes_[i]; }
  [[nodiscard]] const TreeNode& root() const noexcept { return nodes_.front(); }

  /// Sorted particle data (SFC order).
  [[nodiscard]] const std::vector<Vec3>& positions() const noexcept { return positions_; }
  [[nodiscard]] const std::vector<double>& charges() const noexcept { return charges_; }

  /// original_index()[i] is the caller's index of sorted particle i.
  [[nodiscard]] const std::vector<std::size_t>& original_index() const noexcept {
    return original_index_;
  }

  /// Size of the ParticleSystem the tree was built from. Equals
  /// num_particles() unless validation dropped particles; caller-order
  /// result vectors are sized to this.
  [[nodiscard]] std::size_t source_size() const noexcept { return source_size_; }

  /// Caller indices of particles dropped by a sanitizing build (sorted;
  /// empty under kThrow or for clean input). Their caller-order result
  /// slots are left at zero by the evaluators.
  [[nodiscard]] const std::vector<std::size_t>& dropped() const noexcept { return dropped_; }

  /// What validation found about the input (including warning-severity
  /// issues that never throw: coincident particles, zero total charge).
  [[nodiscard]] const ValidationReport& validation_report() const noexcept {
    return validation_;
  }

  /// Tree height: number of levels (root-only tree has height 1). Matches
  /// the paper's "number of distinct sizes of clusters".
  [[nodiscard]] int height() const noexcept { return height_; }

  /// Node counts per level, root first.
  [[nodiscard]] const std::vector<std::size_t>& level_counts() const noexcept {
    return level_counts_;
  }

  /// Smallest nonzero cluster charge among leaves: the paper's reference
  /// charge A_ref ("the smallest net charge cluster at lowest level") for
  /// Theorem 3. Returns 0 for an empty tree.
  [[nodiscard]] double min_leaf_abs_charge() const noexcept { return min_leaf_abs_charge_; }

  /// Mean leaf cluster charge; a practical alternative degree threshold.
  [[nodiscard]] double mean_leaf_abs_charge() const noexcept { return mean_leaf_abs_charge_; }

  /// Smallest nonzero leaf charge *density* A / d (d = leaf cell size):
  /// the reference for the size-scaled Theorem-3 law. Interactions with a
  /// cluster of size d happen at distance r within a constant factor of d
  /// (Lemma 1), so equalizing the Theorem-2 bound A/r alpha^(p+1) across
  /// levels equalizes A/d alpha^(p+1).
  [[nodiscard]] double min_leaf_charge_density() const noexcept {
    return min_leaf_charge_density_;
  }

  /// Mean leaf charge density A / d over nonempty leaves.
  [[nodiscard]] double mean_leaf_charge_density() const noexcept {
    return mean_leaf_charge_density_;
  }

 private:
  void build(const ParticleSystem& ps);
  /// Recursively split node `node_index` whose particles span [begin, end)
  /// and share the key prefix above `shift+3` bits.
  void split(std::size_t node_index, int shift);
  void finalize_node(TreeNode& node);

  TreeConfig config_;
  std::vector<TreeNode> nodes_;
  std::vector<Vec3> positions_;
  std::vector<double> charges_;
  std::vector<std::uint64_t> keys_;
  std::vector<std::size_t> original_index_;
  std::size_t source_size_ = 0;
  std::vector<std::size_t> dropped_;
  ValidationReport validation_;
  Aabb root_cube_;
  int height_ = 0;
  std::vector<std::size_t> level_counts_;
  double min_leaf_abs_charge_ = 0.0;
  double mean_leaf_abs_charge_ = 0.0;
  double min_leaf_charge_density_ = 0.0;
  double mean_leaf_charge_density_ = 0.0;
};

}  // namespace treecode
