#include "parallel/parallel_for.hpp"

#include "util/timer.hpp"

namespace treecode {

WorkStats parallel_for_blocked(ThreadPool& pool, std::size_t n, std::size_t block_size,
                               const BlockedBody& body) {
  if (block_size == 0) block_size = 1;
  const unsigned width = pool.width();
  WorkStats stats;
  stats.work.assign(width, 0);
  stats.seconds.assign(width, 0.0);
  if (n == 0) return stats;

  std::atomic<std::size_t> next{0};
  pool.run_on_all([&](unsigned t) {
    Timer timer;
    std::uint64_t my_work = 0;
    for (;;) {
      const std::size_t begin = next.fetch_add(block_size, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = begin + block_size < n ? begin + block_size : n;
      my_work += body(begin, end, t);
    }
    stats.work[t] = my_work;
    stats.seconds[t] = timer.seconds();
  });
  return stats;
}

void parallel_for(ThreadPool& pool, std::size_t n, std::size_t block_size,
                  const std::function<void(std::size_t, std::size_t, unsigned)>& body) {
  parallel_for_blocked(pool, n, block_size,
                       [&body](std::size_t b, std::size_t e, unsigned t) -> std::uint64_t {
                         body(b, e, t);
                         return e - b;
                       });
}

}  // namespace treecode
