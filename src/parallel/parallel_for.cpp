#include "parallel/parallel_for.hpp"

#include <exception>
#include <mutex>

#include "obs/trace.hpp"
#include "util/timer.hpp"
#include "obs/spans.hpp"

namespace treecode {

WorkStats parallel_for_blocked(ThreadPool& pool, std::size_t n, std::size_t block_size,
                               const BlockedBody& body, CancellationToken* cancel,
                               const char* trace_name) {
  if (block_size == 0) block_size = 1;
  const unsigned width = pool.width();
  WorkStats stats;
  stats.work.assign(width, 0);
  stats.seconds.assign(width, 0.0);
  if (n == 0) return stats;

  // Exceptions cancel the sweep cooperatively: the throwing worker trips
  // the token, the others stop claiming blocks, and the first exception is
  // rethrown here after the region drains. Without a caller-provided token
  // a local one serves the same purpose.
  CancellationToken local_token;
  CancellationToken* token = cancel != nullptr ? cancel : &local_token;
  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::atomic<std::size_t> next{0};
  pool.run_on_all([&](unsigned t) {
    // Callers forward string literals per the parallel_for contract; the
    // fallback makes this the one non-literal span site.
    const obs::TraceSpan span(trace_name != nullptr ? trace_name
                                                    : obs::span::kParallelFor);
    Timer timer;
    std::uint64_t my_work = 0;
    while (!token->cancelled()) {
      const std::size_t begin = next.fetch_add(block_size, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = begin + block_size < n ? begin + block_size : n;
      try {
        my_work += body(begin, end, t);
      } catch (...) {
        {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        token->cancel();
        break;
      }
    }
    stats.work[t] = my_work;
    stats.seconds[t] = timer.seconds();
  });
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

void parallel_for(ThreadPool& pool, std::size_t n, std::size_t block_size,
                  const std::function<void(std::size_t, std::size_t, unsigned)>& body,
                  CancellationToken* cancel, const char* trace_name) {
  parallel_for_blocked(
      pool, n, block_size,
      [&body](std::size_t b, std::size_t e, unsigned t) -> std::uint64_t {
        body(b, e, t);
        return e - b;
      },
      cancel, trace_name);
}

}  // namespace treecode
