#include "parallel/thread_pool.hpp"

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"

namespace treecode {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads > 1) {
    workers_.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      workers_.emplace_back(
          [this, t](const std::stop_token& stop) { worker_loop(t, stop); });
    }
  }
  obs::registry().gauge(obs::metric::kPoolThreads).set(static_cast<double>(width()));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    for (auto& w : workers_) w.request_stop();
  }
  work_cv_.notify_all();
  // jthread destructors join.
}

void ThreadPool::run_on_all(const std::function<void(unsigned)>& task) {
  obs::registry().counter(obs::metric::kPoolDispatches).increment();
  if (workers_.empty()) {
    task(0);
    return;
  }
  std::unique_lock lock(mutex_);
  current_task_ = &task;
  remaining_ = workers_.size();
  first_error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  current_task_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(unsigned worker_index, const std::stop_token& stop) {
  std::size_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned)>* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop.stop_requested() || (current_task_ != nullptr && generation_ != seen_generation);
      });
      if (stop.stop_requested()) return;
      seen_generation = generation_;
      task = current_task_;
    }
    std::exception_ptr error;
    try {
      (*task)(worker_index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace treecode
