#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool built on std::jthread.
///
/// The paper's parallel formulation "exploits the concurrency available in
/// independent tree traversal of each particle": the only parallel construct
/// the treecode needs is a barrier-style parallel-for over particle blocks.
/// This pool provides exactly that (see parallel_for.hpp), plus a generic
/// task submission primitive used by the tree builder's upward pass.
///
/// Design notes (C++ Core Guidelines CP.*):
///  * Threads are owned RAII-style; the destructor requests stop and joins.
///  * Work items are std::function<void()>; exceptions thrown by a task are
///    captured and rethrown on the waiting thread so failures do not get
///    swallowed inside a worker.
///  * Early termination of a sweep is cooperative and lives one layer up:
///    parallel_for(_blocked) pairs this pool with a CancellationToken so a
///    body exception (or an explicit cancel) stops the remaining blocks
///    instead of completing the full range (see parallel_for.hpp).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace treecode {

/// Fixed-size worker pool. Construct with the desired worker count (0 or 1
/// means "run everything inline on the calling thread": the pool degrades to
/// serial execution with zero thread overhead, which keeps single-thread
/// baseline timings honest).
class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (0 means inline execution).
  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Effective parallel width: max(1, size()).
  [[nodiscard]] unsigned width() const noexcept { return size() == 0 ? 1u : size(); }

  /// Run `task(t)` on every worker t in [0, width()) and block until all
  /// complete. With an inline pool this simply calls task(0).
  /// The first exception thrown by any task is rethrown here.
  void run_on_all(const std::function<void(unsigned)>& task);

  /// Hardware concurrency, never zero.
  static unsigned hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1u : n;
  }

 private:
  struct Job {
    const std::function<void(unsigned)>* task = nullptr;
    unsigned index = 0;
  };

  void worker_loop(unsigned worker_index, const std::stop_token& stop);

  std::vector<std::jthread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* current_task_ = nullptr;
  std::size_t generation_ = 0;       // bumped per run_on_all call
  std::size_t remaining_ = 0;        // workers yet to finish current task
  std::exception_ptr first_error_;
};

}  // namespace treecode
