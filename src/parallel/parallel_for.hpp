#pragma once

/// \file parallel_for.hpp
/// Blocked parallel-for with the paper's "w-particle aggregation".
///
/// The paper sorts particles in Peano-Hilbert order and aggregates the force
/// computation for blocks of `w` consecutive particles into one unit of
/// thread work. `parallel_for_blocked` implements exactly that: the index
/// range is cut into blocks of `block_size`, workers claim blocks from a
/// shared atomic counter (dynamic scheduling, which is what keeps load
/// balance high on non-uniform distributions), and each worker records how
/// much work it performed so the bench harness can compute the measured
/// load-balance speedup model (see WorkStats).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace treecode {

/// Per-thread work measurements collected by a parallel region.
///
/// `work[t]` is an application-defined cost of everything thread t executed
/// (the treecode reports multipole terms evaluated + direct interactions;
/// that is the same proxy for serial computation time the paper uses).
/// `seconds[t]` is the wall time thread t spent inside the region.
struct WorkStats {
  std::vector<std::uint64_t> work;
  std::vector<double> seconds;

  /// Total work over all threads.
  [[nodiscard]] std::uint64_t total_work() const {
    std::uint64_t s = 0;
    for (auto w : work) s += w;
    return s;
  }

  /// Maximum per-thread work (the critical path under perfect overlap).
  [[nodiscard]] std::uint64_t max_work() const {
    std::uint64_t m = 0;
    for (auto w : work) m = m > w ? m : w;
    return m;
  }

  /// Load balance in (0, 1]: mean/max per-thread work. 1.0 = perfect.
  [[nodiscard]] double load_balance() const {
    if (work.empty() || max_work() == 0) return 1.0;
    return static_cast<double>(total_work()) /
           (static_cast<double>(work.size()) * static_cast<double>(max_work()));
  }

  /// Brent-style modeled speedup on `work.size()` processors: total work
  /// divided by the largest per-thread share actually measured. This is the
  /// quantity we report for the paper's Table 2 when the host machine has
  /// fewer physical cores than the Origin 2000's 32 (see DESIGN.md).
  [[nodiscard]] double modeled_speedup() const {
    if (max_work() == 0) return 1.0;
    return static_cast<double>(total_work()) / static_cast<double>(max_work());
  }
};

/// Cooperative cancellation flag shared between the caller and the workers
/// of a parallel region. Workers check it before claiming each block, so a
/// cancel (from outside, from a body, or automatically when a body throws)
/// stops the remaining sweep early instead of completing every block.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arm a token for reuse across successive parallel regions.
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Body signature: body(begin, end, thread_index) -> cost of the block.
using BlockedBody = std::function<std::uint64_t(std::size_t, std::size_t, unsigned)>;

/// Run `body` over [0, n) in blocks of `block_size`, dynamically scheduled
/// over the pool's workers. Returns per-thread WorkStats sized pool.width().
///
/// Failure semantics: if a body throws, the sweep is cancelled — no worker
/// claims another block — and the first exception is rethrown on the
/// calling thread once every worker has drained. An optional external
/// `cancel` token lets the caller (or the body itself) stop the sweep
/// early without an exception; blocks already running complete normally.
///
/// When phase tracing is active each worker's participation in the region
/// is recorded as one trace span named `trace_name` (string literal;
/// defaults to "parallel_for"), so Perfetto shows per-thread occupancy of
/// every parallel region.
WorkStats parallel_for_blocked(ThreadPool& pool, std::size_t n, std::size_t block_size,
                               const BlockedBody& body, CancellationToken* cancel = nullptr,
                               const char* trace_name = nullptr);

/// Convenience: parallel loop whose body has no interesting cost to report.
void parallel_for(ThreadPool& pool, std::size_t n, std::size_t block_size,
                  const std::function<void(std::size_t, std::size_t, unsigned)>& body,
                  CancellationToken* cancel = nullptr, const char* trace_name = nullptr);

}  // namespace treecode
