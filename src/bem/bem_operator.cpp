#include "bem/bem_operator.hpp"

#include <cmath>

#include "core/direct.hpp"
#include "util/timer.hpp"

namespace treecode {

namespace {

/// Build a ParticleSystem over the Gauss points with positive placeholder
/// charges (the quadrature weights). Geometry, centers, radii, and the
/// adaptive degree assignment derive from these — they are a faithful
/// stand-in for |density| mass since weights scale with element area.
ParticleSystem gauss_particles(const std::vector<MeshQuadPoint>& pts) {
  std::vector<Vec3> pos;
  std::vector<double> q;
  pos.reserve(pts.size());
  q.reserve(pts.size());
  for (const MeshQuadPoint& p : pts) {
    pos.push_back(p.position);
    q.push_back(p.weight);
  }
  return ParticleSystem(std::move(pos), std::move(q));
}

}  // namespace

SingleLayerOperator::SingleLayerOperator(const TriangleMesh& mesh, const Options& options)
    : mesh_(mesh),
      options_(options),
      quad_points_(quadrature_points(mesh, triangle_rule(options.gauss_points))),
      session_(Tree(gauss_particles(quad_points_), options.tree), options.eval),
      sorted_charges_(quad_points_.size(), 0.0) {}

void SingleLayerOperator::gather_sorted_charges(std::span<const double> x) const {
  // Charge at each Gauss point, scattered into the tree's sorted order.
  const auto& orig = session_.tree().original_index();
  for (std::size_t si = 0; si < sorted_charges_.size(); ++si) {
    const MeshQuadPoint& g = quad_points_[orig[si]];
    const Triangle& tri = mesh_.triangle(g.triangle);
    double q = 0.0;
    for (int k = 0; k < 3; ++k) {
      q += g.shape[static_cast<std::size_t>(k)] * x[tri.v[static_cast<std::size_t>(k)]];
    }
    sorted_charges_[si] = q * g.weight;
  }
}

void SingleLayerOperator::apply(std::span<const double> x, std::span<double> y) const {
  check_sizes(x, y);
  Timer timer;
  gather_sorted_charges(x);
  session_.update_charges_sorted(sorted_charges_);
  // First apply compiles the vertex plan; later applies hit the LRU cache
  // and replay the frozen lists against the refreshed multipoles.
  EvalResult r = session_.evaluate_at(mesh_.vertices());
  std::copy(r.potential.begin(), r.potential.end(), y.begin());
  last_stats_ = r.stats;
  last_stats_.eval_seconds = timer.seconds();
}

void SingleLayerOperator::apply_uncompiled(std::span<const double> x,
                                           std::span<double> y) const {
  check_sizes(x, y);
  Timer timer;
  gather_sorted_charges(x);
  ThreadPool& pool = session_.pool();
  const BarnesHutEvaluator eval(session_.tree(), options_.eval, &pool, sorted_charges_);
  EvalResult r = eval.evaluate_at(pool, mesh_.vertices());
  std::copy(r.potential.begin(), r.potential.end(), y.begin());
  last_stats_ = r.stats;
  last_stats_.eval_seconds = timer.seconds();
}

void SingleLayerOperator::apply_direct(std::span<const double> x, std::span<double> y) const {
  check_sizes(x, y);
  std::vector<Vec3> pos(quad_points_.size());
  std::vector<double> q(quad_points_.size());
  for (std::size_t g = 0; g < quad_points_.size(); ++g) {
    const MeshQuadPoint& p = quad_points_[g];
    const Triangle& tri = mesh_.triangle(p.triangle);
    pos[g] = p.position;
    double val = 0.0;
    for (int k = 0; k < 3; ++k) {
      val += p.shape[static_cast<std::size_t>(k)] * x[tri.v[static_cast<std::size_t>(k)]];
    }
    q[g] = val * p.weight;
  }
  const ParticleSystem ps(std::move(pos), std::move(q));
  const EvalResult r = evaluate_direct_at(ps, mesh_.vertices(), options_.eval.threads);
  std::copy(r.potential.begin(), r.potential.end(), y.begin());
}

DenseMatrix SingleLayerOperator::assemble_dense() const {
  DenseMatrix A(rows(), cols());
  for (std::size_t i = 0; i < mesh_.num_vertices(); ++i) {
    const Vec3& xi = mesh_.vertex(i);
    for (const MeshQuadPoint& g : quad_points_) {
      const double r = distance(xi, g.position);
      if (r == 0.0) continue;  // cannot happen for interior Gauss points
      const Triangle& tri = mesh_.triangle(g.triangle);
      const double f = g.weight / r;
      for (int k = 0; k < 3; ++k) {
        A.at(i, tri.v[static_cast<std::size_t>(k)]) +=
            g.shape[static_cast<std::size_t>(k)] * f;
      }
    }
  }
  return A;
}

std::vector<double> SingleLayerOperator::near_diagonal() const {
  std::vector<double> diag(mesh_.num_vertices(), 0.0);
  // One pass over all Gauss points: point g on triangle t contributes to
  // A_ii for each vertex i of t (N_i(g) w_g / |x_i - y_g|), which is
  // exactly the incident-triangle restriction of the diagonal.
  for (const MeshQuadPoint& g : quad_points_) {
    const Triangle& tri = mesh_.triangle(g.triangle);
    for (int k = 0; k < 3; ++k) {
      const std::size_t v = tri.v[static_cast<std::size_t>(k)];
      const double r = distance(mesh_.vertex(v), g.position);
      if (r > 0.0) {
        diag[v] += g.shape[static_cast<std::size_t>(k)] * g.weight / r;
      }
    }
  }
  return diag;
}

std::vector<double> SingleLayerOperator::point_charge_rhs(const Vec3& source,
                                                          double q) const {
  std::vector<double> f(mesh_.num_vertices());
  for (std::size_t i = 0; i < mesh_.num_vertices(); ++i) {
    const double r = distance(mesh_.vertex(i), source);
    f[i] = r > 0.0 ? q / r : 0.0;
  }
  return f;
}

}  // namespace treecode
