#pragma once

/// \file bem_operator.hpp
/// The treecode-accelerated single-layer boundary operator.
///
/// Discretization (mirroring the paper's setup): the surface is triangulated;
/// the unknown density sigma is piecewise linear with nodal values x_v; a
/// fixed Gaussian rule places quadrature points inside each element, which
/// are "inserted into the hierarchical domain representation" once. Each
/// matrix-vector product then
///   1. assigns charge q_g = w_g * sum_k N_k(g) x_{v_k} to every Gauss
///      point (w_g includes the element area),
///   2. evaluates the potential at all mesh vertices with the treecode,
/// which is exactly the action of the dense single-layer collocation matrix
///   A[i][v] = sum_g N_v(g) w_g / |x_i - y_g|.
///
/// The operator implements LinearOperator, so it plugs straight into
/// GMRES(10) as in the paper's Table 3 experiments.

#include <memory>

#include "bem/mesh.hpp"
#include "bem/quadrature.hpp"
#include "core/barnes_hut.hpp"
#include "engine/eval_session.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/operator.hpp"

namespace treecode {

/// Treecode-backed single-layer operator on mesh vertices.
class SingleLayerOperator final : public LinearOperator {
 public:
  struct Options {
    EvalConfig eval;        ///< treecode settings (alpha, degree, mode, threads)
    int gauss_points = 6;   ///< per-element rule (the paper uses 6)
    TreeConfig tree;        ///< octree settings over the Gauss points
  };

  SingleLayerOperator(const TriangleMesh& mesh, const Options& options);

  [[nodiscard]] std::size_t rows() const override { return mesh_.num_vertices(); }
  [[nodiscard]] std::size_t cols() const override { return mesh_.num_vertices(); }

  /// y = A x via the evaluation engine: the first apply compiles the
  /// interaction plan for the mesh vertices (one alpha-MAC traversal);
  /// every later apply is update_charges + plan replay with no tree walk
  /// and no per-apply multipole rebuild beyond the plan-referenced nodes.
  /// Thread-safe with respect to distinct operator instances; a single
  /// instance serializes its own applies.
  void apply(std::span<const double> x, std::span<double> y) const override;

  /// The pre-engine matvec path, kept as the comparison baseline: every
  /// call re-assigns degrees, rebuilds *all* node multipoles, and re-runs
  /// the full alpha-MAC traversal. Bitwise-identical results to apply();
  /// bench_engine_replay measures the gap.
  void apply_uncompiled(std::span<const double> x, std::span<double> y) const;

  /// Same product by O(nodes * gauss_points) direct summation — the exact
  /// reference ("the exact computation takes over 900 seconds" in the
  /// paper; here it is merely slow).
  void apply_direct(std::span<const double> x, std::span<double> y) const;

  /// Stats of the most recent apply() (terms, timings, degrees).
  [[nodiscard]] const EvalStats& last_stats() const noexcept { return last_stats_; }

  /// Number of Gauss points inserted into the tree.
  [[nodiscard]] std::size_t num_sources() const noexcept { return quad_points_.size(); }

  [[nodiscard]] const TriangleMesh& mesh() const noexcept { return mesh_; }
  [[nodiscard]] const Tree& tree() const noexcept { return session_.tree(); }

  /// The evaluation session backing apply() (plan cache stats, degrees).
  [[nodiscard]] const engine::EvalSession& session() const noexcept { return session_; }

  /// Assemble the dense collocation matrix explicitly (test-scale only:
  /// O(vertices * gauss points) memory/time).
  [[nodiscard]] DenseMatrix assemble_dense() const;

  /// Dirichlet data for a known exterior/interior point-charge solution:
  /// f_i = q / |vertex_i - source|. Solving A sigma = f then reproduces a
  /// harmonic field; used by the examples and convergence tests.
  [[nodiscard]] std::vector<double> point_charge_rhs(const Vec3& source, double q) const;

  /// Near-field approximation of the matrix diagonal: for each vertex i,
  /// the contribution of Gauss points on the triangles incident to i —
  /// the near-singular part that dominates A_ii and varies with the local
  /// element size. Feed it to jacobi_preconditioner() for the
  /// "preconditioned, multipole-accelerated" solver setup of the paper's
  /// BEM references (Nabors et al.). O(elements) to compute.
  [[nodiscard]] std::vector<double> near_diagonal() const;

 private:
  /// Gather nodal densities into Gauss-point charges, in tree-sorted order.
  void gather_sorted_charges(std::span<const double> x) const;

  const TriangleMesh& mesh_;
  Options options_;
  std::vector<MeshQuadPoint> quad_points_;
  /// Owns the Gauss-point tree, degree table, thread pool, and plan cache.
  /// mutable: apply() is const in the LinearOperator interface but replay
  /// refreshes session state (charges, multipoles, cached plans).
  mutable engine::EvalSession session_;
  mutable std::vector<double> sorted_charges_;
  mutable EvalStats last_stats_;
};

}  // namespace treecode
