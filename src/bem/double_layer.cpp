#include "bem/double_layer.hpp"

#include <cmath>

#include "multipole/operators.hpp"
#include "util/timer.hpp"

namespace treecode {

namespace {

/// Tree over the Gauss points; placeholder charges are the quadrature
/// weights so the adaptive degree assignment sees the dipole strength
/// distribution (|moment| <= |sigma| w_g).
ParticleSystem gauss_particles(const std::vector<MeshQuadPoint>& pts) {
  std::vector<Vec3> pos;
  std::vector<double> q;
  pos.reserve(pts.size());
  q.reserve(pts.size());
  for (const MeshQuadPoint& p : pts) {
    pos.push_back(p.position);
    q.push_back(p.weight);
  }
  return ParticleSystem(std::move(pos), std::move(q));
}

}  // namespace

DoubleLayerOperator::DoubleLayerOperator(const TriangleMesh& mesh, const Options& options)
    : mesh_(mesh),
      options_(options),
      quad_points_(quadrature_points(mesh, triangle_rule(options.gauss_points))),
      tree_(std::make_unique<Tree>(gauss_particles(quad_points_), options.tree)),
      pool_(options.eval.threads),
      sorted_moments_(quad_points_.size(), Vec3{}) {
  normals_.reserve(quad_points_.size());
  for (const MeshQuadPoint& g : quad_points_) {
    normals_.push_back(mesh_.normal(g.triangle));
  }
}

void DoubleLayerOperator::set_moments(std::span<const double> x) const {
  const auto& orig = tree_->original_index();
  for (std::size_t si = 0; si < sorted_moments_.size(); ++si) {
    const std::size_t gi = orig[si];
    const MeshQuadPoint& g = quad_points_[gi];
    const Triangle& tri = mesh_.triangle(g.triangle);
    double dens = 0.0;
    for (int k = 0; k < 3; ++k) {
      dens += g.shape[static_cast<std::size_t>(k)] * x[tri.v[static_cast<std::size_t>(k)]];
    }
    sorted_moments_[si] = normals_[gi] * (dens * g.weight);
  }
}

void DoubleLayerOperator::apply(std::span<const double> x, std::span<double> y) const {
  check_sizes(x, y);
  Timer timer;
  set_moments(x);
  const DipoleBarnesHutEvaluator eval(*tree_, options_.eval, sorted_moments_, &pool_);
  const EvalResult r = eval.evaluate_at(pool_, mesh_.vertices());
  std::copy(r.potential.begin(), r.potential.end(), y.begin());
  last_stats_ = r.stats;
  last_stats_.eval_seconds = timer.seconds();
}

void DoubleLayerOperator::apply_direct(std::span<const double> x, std::span<double> y) const {
  check_sizes(x, y);
  std::vector<Vec3> pos(quad_points_.size());
  std::vector<Vec3> mom(quad_points_.size());
  for (std::size_t g = 0; g < quad_points_.size(); ++g) {
    const MeshQuadPoint& p = quad_points_[g];
    const Triangle& tri = mesh_.triangle(p.triangle);
    double dens = 0.0;
    for (int k = 0; k < 3; ++k) {
      dens += p.shape[static_cast<std::size_t>(k)] * x[tri.v[static_cast<std::size_t>(k)]];
    }
    pos[g] = p.position;
    mom[g] = normals_[g] * (dens * p.weight);
  }
  for (std::size_t i = 0; i < mesh_.num_vertices(); ++i) {
    y[i] = p2p_dipole(mesh_.vertex(i), pos, mom);
  }
}

std::vector<double> DoubleLayerOperator::potential_at(std::span<const Vec3> points,
                                                      std::span<const double> sigma) const {
  set_moments(sigma);
  const DipoleBarnesHutEvaluator eval(*tree_, options_.eval, sorted_moments_, &pool_);
  return eval.evaluate_at(pool_, points).potential;
}

std::vector<double> DoubleLayerOperator::point_charge_rhs(const Vec3& source,
                                                          double q) const {
  std::vector<double> f(mesh_.num_vertices());
  for (std::size_t i = 0; i < mesh_.num_vertices(); ++i) {
    const double r = distance(mesh_.vertex(i), source);
    f[i] = r > 0.0 ? q / r : 0.0;
  }
  return f;
}

void SecondKindDirichletOperator::apply(std::span<const double> x,
                                        std::span<double> y) const {
  check_sizes(x, y);
  k_.apply(x, y);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] -= 2.0 * M_PI * x[i];
  }
}

}  // namespace treecode
