#pragma once

/// \file quadrature.hpp
/// Gaussian quadrature rules on triangles.
///
/// The paper: "Gaussian quadrature is used for integration over the
/// surface. Typically, a fixed number of Gauss-points are located inside
/// each element". The 6-point rule (degree 4) is what both Table 3
/// instances use; 1/3/4/7-point rules are provided for ablations and
/// convergence tests.
///
/// Points are expressed in barycentric coordinates (l0, l1, l2), weights
/// sum to 1 and are multiplied by the triangle area on use.

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "bem/mesh.hpp"

namespace treecode {

/// One quadrature node on the reference triangle.
struct TriQuadPoint {
  std::array<double, 3> bary{};  ///< barycentric coordinates, sum to 1
  double weight = 0.0;           ///< reference weight; sum over rule is 1
};

/// A quadrature rule: its nodes and polynomial exactness degree.
struct TriQuadRule {
  std::vector<TriQuadPoint> points;
  int exact_degree = 0;
};

/// Rule with `n` points; n must be one of 1, 3, 4, 6, 7.
/// Throws std::invalid_argument otherwise.
const TriQuadRule& triangle_rule(int n);

/// A quadrature point instantiated on a concrete mesh triangle.
struct MeshQuadPoint {
  Vec3 position;                  ///< world-space location
  std::size_t triangle = 0;       ///< owning triangle
  std::array<double, 3> shape{};  ///< vertex shape functions N_k at the point
  double weight = 0.0;            ///< quadrature weight * triangle area
};

/// Instantiate `rule` on every triangle of `mesh` (row-major: triangle 0's
/// points first).
std::vector<MeshQuadPoint> quadrature_points(const TriangleMesh& mesh,
                                             const TriQuadRule& rule);

/// Integrate a scalar field given by its values at the quadrature points:
/// sum of value * weight. (The weights already include triangle areas.)
double integrate(std::span<const MeshQuadPoint> points, std::span<const double> values);

}  // namespace treecode
