#include "bem/mesh_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace treecode {

namespace {

/// Parse an OBJ face index token like "3", "3/1", "3//2", "3/1/2".
/// Supports negative (relative) indices per the OBJ spec.
std::size_t parse_face_index(const std::string& token, std::size_t num_vertices) {
  const std::size_t slash = token.find('/');
  const std::string head = slash == std::string::npos ? token : token.substr(0, slash);
  long idx = 0;
  try {
    idx = std::stol(head);
  } catch (...) {
    throw std::runtime_error("obj: bad face index '" + token + "'");
  }
  if (idx < 0) idx = static_cast<long>(num_vertices) + idx + 1;
  if (idx < 1 || static_cast<std::size_t>(idx) > num_vertices) {
    throw std::runtime_error("obj: face index out of range: " + token);
  }
  return static_cast<std::size_t>(idx - 1);
}

}  // namespace

void save_obj(const TriangleMesh& mesh, std::ostream& os) {
  os << "# adaptive_treecode surface mesh: " << mesh.num_vertices() << " vertices, "
     << mesh.num_triangles() << " triangles\n";
  os.precision(17);
  for (const Vec3& v : mesh.vertices()) {
    os << "v " << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  for (const Triangle& t : mesh.triangles()) {
    os << "f " << t.v[0] + 1 << ' ' << t.v[1] + 1 << ' ' << t.v[2] + 1 << '\n';
  }
}

void save_obj(const TriangleMesh& mesh, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("obj: cannot open for writing: " + path);
  save_obj(mesh, os);
  if (!os) throw std::runtime_error("obj: write failed: " + path);
}

TriangleMesh load_obj(std::istream& is) {
  std::vector<Vec3> vertices;
  std::vector<Triangle> triangles;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;
    if (tag == "v") {
      Vec3 v;
      if (!(ls >> v.x >> v.y >> v.z)) {
        throw std::runtime_error("obj: bad vertex at line " + std::to_string(line_no));
      }
      vertices.push_back(v);
    } else if (tag == "f") {
      std::vector<std::size_t> idx;
      std::string token;
      while (ls >> token) idx.push_back(parse_face_index(token, vertices.size()));
      if (idx.size() < 3) {
        throw std::runtime_error("obj: face with <3 vertices at line " +
                                 std::to_string(line_no));
      }
      // Fan-triangulate polygons.
      for (std::size_t k = 1; k + 1 < idx.size(); ++k) {
        triangles.push_back(Triangle{{idx[0], idx[k], idx[k + 1]}});
      }
    }
    // Other tags (vn, vt, o, g, s, mtllib, usemtl, #) are ignored.
  }
  TriangleMesh mesh(std::move(vertices), std::move(triangles));
  mesh.validate();
  return mesh;
}

TriangleMesh load_obj(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("obj: cannot open: " + path);
  return load_obj(is);
}

}  // namespace treecode
