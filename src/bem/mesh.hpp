#pragma once

/// \file mesh.hpp
/// Triangle surface meshes for the boundary-element experiments.

#include <array>
#include <cstddef>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace treecode {

/// One triangle: indices into the mesh's vertex array.
struct Triangle {
  std::array<std::size_t, 3> v{};
};

/// An indexed triangle surface mesh.
///
/// The paper's problem instances are "highly unstructured... a bulk of the
/// volume is empty and the nodes are concentrated on the surface". All
/// BEM machinery (quadrature points, collocation at vertices) reads from
/// this structure.
class TriangleMesh {
 public:
  TriangleMesh() = default;
  TriangleMesh(std::vector<Vec3> vertices, std::vector<Triangle> triangles);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return vertices_.size(); }
  [[nodiscard]] std::size_t num_triangles() const noexcept { return triangles_.size(); }
  [[nodiscard]] const std::vector<Vec3>& vertices() const noexcept { return vertices_; }
  [[nodiscard]] const std::vector<Triangle>& triangles() const noexcept { return triangles_; }

  [[nodiscard]] const Vec3& vertex(std::size_t i) const noexcept { return vertices_[i]; }
  [[nodiscard]] const Triangle& triangle(std::size_t t) const noexcept { return triangles_[t]; }

  /// Area of triangle t.
  [[nodiscard]] double area(std::size_t t) const noexcept;

  /// Unit normal of triangle t (right-handed winding).
  [[nodiscard]] Vec3 normal(std::size_t t) const noexcept;

  /// Centroid of triangle t.
  [[nodiscard]] Vec3 centroid(std::size_t t) const noexcept;

  /// Total surface area.
  [[nodiscard]] double total_area() const noexcept;

  /// Signed enclosed volume by the divergence theorem
  /// (sum of v0 . (v1 x v2) / 6). Positive iff the winding is consistently
  /// outward — the orientation the double-layer operator requires; all
  /// procedural generators guarantee it.
  [[nodiscard]] double signed_volume() const noexcept;

  /// Bounding box of all vertices.
  [[nodiscard]] Aabb bounds() const noexcept;

  /// True if every edge is shared by exactly two triangles (closed,
  /// manifold surface) — the invariant the procedural generators promise.
  [[nodiscard]] bool is_watertight() const;

  /// Validity check: all indices in range, no degenerate (zero-area)
  /// triangles. Throws std::invalid_argument with a description if not.
  void validate() const;

 private:
  std::vector<Vec3> vertices_;
  std::vector<Triangle> triangles_;
};

}  // namespace treecode
