#pragma once

/// \file mesh_io.hpp
/// Wavefront OBJ import/export for triangle meshes.
///
/// Lets users bring their own surface discretizations (the paper's
/// propeller and gripper were industrial meshes) and inspect the procedural
/// generators' output in standard tooling. Only the OBJ subset relevant to
/// BEM is handled: `v` vertices and triangular `f` faces (polygon faces are
/// fan-triangulated; normals/texcoords in face indices are ignored).

#include <iosfwd>
#include <string>

#include "bem/mesh.hpp"

namespace treecode {

/// Write `mesh` in OBJ format.
void save_obj(const TriangleMesh& mesh, std::ostream& os);

/// Write `mesh` to a file; throws std::runtime_error if the file cannot be
/// opened.
void save_obj(const TriangleMesh& mesh, const std::string& path);

/// Parse an OBJ stream. Throws std::runtime_error on malformed input
/// (bad vertex counts, out-of-range indices). The result is validated.
TriangleMesh load_obj(std::istream& is);

/// Load an OBJ file; throws std::runtime_error if the file cannot be opened
/// or parsed.
TriangleMesh load_obj(const std::string& path);

}  // namespace treecode
