#include "bem/quadrature.hpp"

#include <cassert>
#include <stdexcept>

namespace treecode {

namespace {

TriQuadRule make_rule(int n) {
  TriQuadRule rule;
  switch (n) {
    case 1:
      rule.exact_degree = 1;
      rule.points = {{{1.0 / 3, 1.0 / 3, 1.0 / 3}, 1.0}};
      break;
    case 3:
      rule.exact_degree = 2;
      rule.points = {
          {{2.0 / 3, 1.0 / 6, 1.0 / 6}, 1.0 / 3},
          {{1.0 / 6, 2.0 / 3, 1.0 / 6}, 1.0 / 3},
          {{1.0 / 6, 1.0 / 6, 2.0 / 3}, 1.0 / 3},
      };
      break;
    case 4:
      rule.exact_degree = 3;
      rule.points = {
          {{1.0 / 3, 1.0 / 3, 1.0 / 3}, -27.0 / 48},
          {{0.6, 0.2, 0.2}, 25.0 / 48},
          {{0.2, 0.6, 0.2}, 25.0 / 48},
          {{0.2, 0.2, 0.6}, 25.0 / 48},
      };
      break;
    case 6: {
      rule.exact_degree = 4;
      const double a1 = 0.816847572980459;
      const double b1 = 0.091576213509771;
      const double w1 = 0.109951743655322;
      const double a2 = 0.108103018168070;
      const double b2 = 0.445948490915965;
      const double w2 = 0.223381589678011;
      rule.points = {
          {{a1, b1, b1}, w1}, {{b1, a1, b1}, w1}, {{b1, b1, a1}, w1},
          {{a2, b2, b2}, w2}, {{b2, a2, b2}, w2}, {{b2, b2, a2}, w2},
      };
      break;
    }
    case 7: {
      rule.exact_degree = 5;
      const double a1 = 0.797426985353087;
      const double b1 = 0.101286507323456;
      const double w1 = 0.125939180544827;
      const double a2 = 0.059715871789770;
      const double b2 = 0.470142064105115;
      const double w2 = 0.132394152788506;
      rule.points = {
          {{1.0 / 3, 1.0 / 3, 1.0 / 3}, 0.225},
          {{a1, b1, b1}, w1}, {{b1, a1, b1}, w1}, {{b1, b1, a1}, w1},
          {{a2, b2, b2}, w2}, {{b2, a2, b2}, w2}, {{b2, b2, a2}, w2},
      };
      break;
    }
    default:
      throw std::invalid_argument("triangle_rule: supported point counts are 1,3,4,6,7");
  }
  return rule;
}

}  // namespace

const TriQuadRule& triangle_rule(int n) {
  switch (n) {
    case 1: {
      static const TriQuadRule r = make_rule(1);
      return r;
    }
    case 3: {
      static const TriQuadRule r = make_rule(3);
      return r;
    }
    case 4: {
      static const TriQuadRule r = make_rule(4);
      return r;
    }
    case 6: {
      static const TriQuadRule r = make_rule(6);
      return r;
    }
    case 7: {
      static const TriQuadRule r = make_rule(7);
      return r;
    }
    default:
      throw std::invalid_argument("triangle_rule: supported point counts are 1,3,4,6,7");
  }
}

std::vector<MeshQuadPoint> quadrature_points(const TriangleMesh& mesh,
                                             const TriQuadRule& rule) {
  std::vector<MeshQuadPoint> out;
  out.reserve(mesh.num_triangles() * rule.points.size());
  for (std::size_t t = 0; t < mesh.num_triangles(); ++t) {
    const Triangle& tri = mesh.triangle(t);
    const Vec3& v0 = mesh.vertex(tri.v[0]);
    const Vec3& v1 = mesh.vertex(tri.v[1]);
    const Vec3& v2 = mesh.vertex(tri.v[2]);
    const double area = mesh.area(t);
    for (const TriQuadPoint& qp : rule.points) {
      MeshQuadPoint m;
      m.position = qp.bary[0] * v0 + qp.bary[1] * v1 + qp.bary[2] * v2;
      m.triangle = t;
      m.shape = qp.bary;  // linear elements: shape functions = barycentrics
      m.weight = qp.weight * area;
      out.push_back(m);
    }
  }
  return out;
}

double integrate(std::span<const MeshQuadPoint> points, std::span<const double> values) {
  assert(points.size() == values.size());
  double s = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) s += values[i] * points[i].weight;
  return s;
}

}  // namespace treecode
