#include "bem/mesh.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

namespace treecode {

TriangleMesh::TriangleMesh(std::vector<Vec3> vertices, std::vector<Triangle> triangles)
    : vertices_(std::move(vertices)), triangles_(std::move(triangles)) {}

double TriangleMesh::area(std::size_t t) const noexcept {
  const Triangle& tri = triangles_[t];
  const Vec3 e1 = vertices_[tri.v[1]] - vertices_[tri.v[0]];
  const Vec3 e2 = vertices_[tri.v[2]] - vertices_[tri.v[0]];
  return 0.5 * norm(cross(e1, e2));
}

Vec3 TriangleMesh::normal(std::size_t t) const noexcept {
  const Triangle& tri = triangles_[t];
  const Vec3 e1 = vertices_[tri.v[1]] - vertices_[tri.v[0]];
  const Vec3 e2 = vertices_[tri.v[2]] - vertices_[tri.v[0]];
  const Vec3 n = cross(e1, e2);
  const double len = norm(n);
  return len > 0.0 ? n / len : Vec3{};
}

Vec3 TriangleMesh::centroid(std::size_t t) const noexcept {
  const Triangle& tri = triangles_[t];
  return (vertices_[tri.v[0]] + vertices_[tri.v[1]] + vertices_[tri.v[2]]) / 3.0;
}

double TriangleMesh::total_area() const noexcept {
  double a = 0.0;
  for (std::size_t t = 0; t < triangles_.size(); ++t) a += area(t);
  return a;
}

double TriangleMesh::signed_volume() const noexcept {
  double v = 0.0;
  for (const Triangle& tri : triangles_) {
    v += dot(vertices_[tri.v[0]], cross(vertices_[tri.v[1]], vertices_[tri.v[2]]));
  }
  return v / 6.0;
}

Aabb TriangleMesh::bounds() const noexcept {
  return bounding_box(vertices_.begin(), vertices_.end());
}

bool TriangleMesh::is_watertight() const {
  std::map<std::pair<std::size_t, std::size_t>, int> edge_count;
  for (const Triangle& tri : triangles_) {
    for (int e = 0; e < 3; ++e) {
      std::size_t a = tri.v[static_cast<std::size_t>(e)];
      std::size_t b = tri.v[static_cast<std::size_t>((e + 1) % 3)];
      if (a > b) std::swap(a, b);
      ++edge_count[{a, b}];
    }
  }
  for (const auto& [edge, count] : edge_count) {
    if (count != 2) return false;
  }
  return true;
}

void TriangleMesh::validate() const {
  for (std::size_t t = 0; t < triangles_.size(); ++t) {
    for (std::size_t k = 0; k < 3; ++k) {
      if (triangles_[t].v[k] >= vertices_.size()) {
        throw std::invalid_argument("mesh: vertex index out of range in triangle " +
                                    std::to_string(t));
      }
    }
    if (area(t) <= 0.0) {
      throw std::invalid_argument("mesh: degenerate triangle " + std::to_string(t));
    }
  }
}

}  // namespace treecode
