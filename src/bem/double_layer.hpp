#pragma once

/// \file double_layer.hpp
/// The treecode-accelerated double-layer boundary operator and the
/// second-kind formulation of the Dirichlet problem.
///
/// The single-layer equation of bem_operator.hpp is a first-kind integral
/// equation (ill-conditioned: GMRES iteration counts grow under mesh
/// refinement). The classical remedy is the double-layer representation
///
///     u(x) = W[sigma](x) = int_Gamma sigma(y) d/dn_y (1/|x-y|) dS(y),
///
/// whose interior Dirichlet jump relation gives the *second-kind* equation
///
///     (-2 pi I + K) sigma = f      on Gamma,
///
/// with K the restriction of W to the boundary. Second-kind operators are
/// bounded perturbations of the identity, so GMRES converges in a
/// mesh-independent handful of iterations — the conditioning contrast is
/// measured in bench_table3_bem's solver section and tested in
/// tests/bem/test_double_layer.cpp.
///
/// Each matvec assigns every Gauss point the dipole moment
/// sigma(y_g) w_g n(y_g) and evaluates the resulting dipole field at the
/// collocation vertices with the dipole Barnes-Hut evaluator. Requires an
/// outward-oriented watertight mesh (all procedural generators qualify;
/// validated via TriangleMesh::signed_volume()).

#include <memory>

#include "bem/mesh.hpp"
#include "bem/quadrature.hpp"
#include "core/dipole_barnes_hut.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/operator.hpp"

namespace treecode {

/// Treecode-backed double-layer operator K on mesh vertices.
class DoubleLayerOperator final : public LinearOperator {
 public:
  struct Options {
    EvalConfig eval;
    int gauss_points = 6;
    TreeConfig tree;
  };

  DoubleLayerOperator(const TriangleMesh& mesh, const Options& options);

  [[nodiscard]] std::size_t rows() const override { return mesh_.num_vertices(); }
  [[nodiscard]] std::size_t cols() const override { return mesh_.num_vertices(); }

  /// y = K x via the dipole treecode.
  void apply(std::span<const double> x, std::span<double> y) const override;

  /// Exact O(vertices * gauss points) reference product.
  void apply_direct(std::span<const double> x, std::span<double> y) const;

  /// Evaluate the double-layer potential W[sigma] at arbitrary points
  /// (e.g. interior probes after a solve) with the treecode.
  [[nodiscard]] std::vector<double> potential_at(std::span<const Vec3> points,
                                                 std::span<const double> sigma) const;

  /// Dirichlet data from a point charge (same as the single-layer helper).
  [[nodiscard]] std::vector<double> point_charge_rhs(const Vec3& source, double q) const;

  [[nodiscard]] const TriangleMesh& mesh() const noexcept { return mesh_; }
  [[nodiscard]] std::size_t num_sources() const noexcept { return quad_points_.size(); }
  [[nodiscard]] const EvalStats& last_stats() const noexcept { return last_stats_; }

 private:
  /// Fill sorted_moments_ for density x and return an evaluator over them.
  void set_moments(std::span<const double> x) const;

  const TriangleMesh& mesh_;
  Options options_;
  std::vector<MeshQuadPoint> quad_points_;
  std::vector<Vec3> normals_;  ///< per quad point (owning triangle's normal)
  std::unique_ptr<Tree> tree_;
  mutable ThreadPool pool_;
  mutable std::vector<Vec3> sorted_moments_;
  mutable EvalStats last_stats_;
};

/// The second-kind interior Dirichlet operator (-2 pi I + K) as a
/// LinearOperator view over a DoubleLayerOperator (no copies).
class SecondKindDirichletOperator final : public LinearOperator {
 public:
  explicit SecondKindDirichletOperator(const DoubleLayerOperator& k) : k_(k) {}
  [[nodiscard]] std::size_t rows() const override { return k_.rows(); }
  [[nodiscard]] std::size_t cols() const override { return k_.cols(); }
  void apply(std::span<const double> x, std::span<double> y) const override;

 private:
  const DoubleLayerOperator& k_;
};

}  // namespace treecode
