#pragma once

/// \file meshgen.hpp
/// Procedural watertight triangle meshes.
///
/// The paper's BEM experiments use two industrial surface meshes we do not
/// have: an airplane "propeller" (140,800 elements / 70,439 nodes) and an
/// industrial "gripper" (185,856 elements / 92,918 nodes). What the
/// treecode experiments actually need from them is their *character*: a
/// closed 2-D surface embedded in mostly-empty 3-D volume, with strongly
/// non-uniform node density relative to an octree. These generators produce
/// watertight parametric stand-ins with the same character at any element
/// count (see DESIGN.md, substitutions table):
///
///  * make_sphere      — smooth convex baseline
///  * make_torus       — genus-1, non-star-shaped
///  * make_propeller   — a hub with `blades` twisted lobes (star-shaped
///                       radial deformation of a sphere)
///  * make_gripper     — a palm with two elongated finger lobes
///
/// All generators return validated, watertight meshes.

#include <cstddef>

#include "bem/mesh.hpp"

namespace treecode {

/// Latitude-longitude sphere of radius `radius` centered at `center`.
/// Triangles: 2 * n_lat * n_lon - 2 * n_lon (pole fans). n_lat >= 2,
/// n_lon >= 3.
TriangleMesh make_sphere(std::size_t n_lat, std::size_t n_lon, double radius = 1.0,
                         const Vec3& center = {0, 0, 0});

/// Torus with major radius R, minor radius r; (nu x nv) quad grid split
/// into 2*nu*nv triangles. nu, nv >= 3.
TriangleMesh make_torus(std::size_t nu, std::size_t nv, double R = 1.0, double r = 0.35,
                        const Vec3& center = {0, 0, 0});

/// Propeller-like closed surface: `blades` twisted lobes around the z axis
/// on a spherical hub. n_lat/n_lon control resolution as in make_sphere.
TriangleMesh make_propeller(std::size_t n_lat, std::size_t n_lon, int blades = 3);

/// Gripper-like closed surface: a flattened palm with two elongated finger
/// lobes extending in +z.
TriangleMesh make_gripper(std::size_t n_lat, std::size_t n_lon);

/// Pick (n_lat, n_lon) so a lat-lon generator yields approximately
/// `target_triangles` triangles with a 1:2 lat:lon aspect.
struct LatLonSize {
  std::size_t n_lat = 0;
  std::size_t n_lon = 0;
};
LatLonSize latlon_for_triangles(std::size_t target_triangles);

}  // namespace treecode
