#include "bem/meshgen.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace treecode {

namespace {

/// Build a closed lat-lon surface whose radius in direction (theta, phi)
/// is given by `radial`. Poles are single vertices; interior is a periodic
/// quad grid split into triangles. Watertight by construction.
TriangleMesh make_radial_surface(std::size_t n_lat, std::size_t n_lon,
                                 const std::function<double(double, double)>& radial,
                                 const Vec3& center) {
  if (n_lat < 2 || n_lon < 3) {
    throw std::invalid_argument("make_radial_surface: n_lat >= 2, n_lon >= 3 required");
  }
  std::vector<Vec3> verts;
  std::vector<Triangle> tris;
  auto point = [&](double theta, double phi) {
    const double r = radial(theta, phi);
    return center + Vec3{r * std::sin(theta) * std::cos(phi),
                         r * std::sin(theta) * std::sin(phi), r * std::cos(theta)};
  };
  // Pole vertices.
  const std::size_t north = 0;
  verts.push_back(point(0.0, 0.0));
  // Interior rings: i = 1..n_lat-1, j = 0..n_lon-1.
  for (std::size_t i = 1; i < n_lat; ++i) {
    const double theta = M_PI * static_cast<double>(i) / static_cast<double>(n_lat);
    for (std::size_t j = 0; j < n_lon; ++j) {
      const double phi = 2.0 * M_PI * static_cast<double>(j) / static_cast<double>(n_lon);
      verts.push_back(point(theta, phi));
    }
  }
  const std::size_t south = verts.size();
  verts.push_back(point(M_PI, 0.0));

  auto ring = [&](std::size_t i, std::size_t j) {
    return 1 + (i - 1) * n_lon + (j % n_lon);
  };
  // North fan.
  for (std::size_t j = 0; j < n_lon; ++j) {
    tris.push_back({{north, ring(1, j), ring(1, j + 1)}});
  }
  // Body quads.
  for (std::size_t i = 1; i + 1 < n_lat; ++i) {
    for (std::size_t j = 0; j < n_lon; ++j) {
      const std::size_t a = ring(i, j);
      const std::size_t b = ring(i, j + 1);
      const std::size_t c = ring(i + 1, j);
      const std::size_t d = ring(i + 1, j + 1);
      tris.push_back({{a, c, b}});
      tris.push_back({{b, c, d}});
    }
  }
  // South fan.
  for (std::size_t j = 0; j < n_lon; ++j) {
    tris.push_back({{south, ring(n_lat - 1, j + 1), ring(n_lat - 1, j)}});
  }
  TriangleMesh mesh(std::move(verts), std::move(tris));
  mesh.validate();
  return mesh;
}

}  // namespace

TriangleMesh make_sphere(std::size_t n_lat, std::size_t n_lon, double radius,
                         const Vec3& center) {
  return make_radial_surface(n_lat, n_lon, [radius](double, double) { return radius; },
                             center);
}

TriangleMesh make_torus(std::size_t nu, std::size_t nv, double R, double r,
                        const Vec3& center) {
  if (nu < 3 || nv < 3) throw std::invalid_argument("make_torus: nu, nv >= 3 required");
  std::vector<Vec3> verts;
  verts.reserve(nu * nv);
  for (std::size_t i = 0; i < nu; ++i) {
    const double u = 2.0 * M_PI * static_cast<double>(i) / static_cast<double>(nu);
    for (std::size_t j = 0; j < nv; ++j) {
      const double v = 2.0 * M_PI * static_cast<double>(j) / static_cast<double>(nv);
      verts.push_back(center + Vec3{(R + r * std::cos(v)) * std::cos(u),
                                    (R + r * std::cos(v)) * std::sin(u), r * std::sin(v)});
    }
  }
  std::vector<Triangle> tris;
  tris.reserve(2 * nu * nv);
  auto at = [&](std::size_t i, std::size_t j) { return (i % nu) * nv + (j % nv); };
  for (std::size_t i = 0; i < nu; ++i) {
    for (std::size_t j = 0; j < nv; ++j) {
      const std::size_t a = at(i, j);
      const std::size_t b = at(i + 1, j);
      const std::size_t c = at(i, j + 1);
      const std::size_t d = at(i + 1, j + 1);
      tris.push_back({{a, b, c}});
      tris.push_back({{c, b, d}});
    }
  }
  TriangleMesh mesh(std::move(verts), std::move(tris));
  mesh.validate();
  return mesh;
}

TriangleMesh make_propeller(std::size_t n_lat, std::size_t n_lon, int blades) {
  if (blades < 2) throw std::invalid_argument("make_propeller: blades >= 2 required");
  const double k = static_cast<double>(blades);
  return make_radial_surface(
      n_lat, n_lon,
      [k](double theta, double phi) {
        // Spherical hub of radius 0.25 plus `blades` lobes in the equator
        // plane, twisted in theta (blade pitch). The lobe amplitude decays
        // toward the poles, keeping the surface star-shaped.
        const double s = std::sin(theta);
        const double twist = 2.0 * (theta - M_PI / 2.0);  // blade pitch
        const double lobe = std::pow(std::abs(std::cos(0.5 * k * (phi + twist))), 6.0);
        return 0.25 + 0.75 * s * s * lobe;
      },
      {0, 0, 0});
}

TriangleMesh make_gripper(std::size_t n_lat, std::size_t n_lon) {
  return make_radial_surface(
      n_lat, n_lon,
      [](double theta, double phi) {
        // A flattened palm (oblate base) plus two finger lobes extending
        // toward +z at phi = 0 and phi = pi. Fingers are long and thin:
        // high radius near theta ~ pi/4 in two azimuthal windows.
        const double palm = 0.3 * (1.0 + 0.4 * std::cos(theta) * std::cos(theta));
        const double az = std::pow(std::cos(phi), 2.0);  // lobes at phi = 0, pi
        const double elev = std::exp(-8.0 * (theta - 0.6) * (theta - 0.6));
        const double fingers = 0.9 * az * elev;
        return palm + fingers;
      },
      {0, 0, 0});
}

LatLonSize latlon_for_triangles(std::size_t target_triangles) {
  // Triangles ~ 2 * n_lat * n_lon with n_lon = 2 n_lat: T = 4 n_lat^2.
  std::size_t n_lat = static_cast<std::size_t>(
      std::lround(std::sqrt(static_cast<double>(target_triangles) / 4.0)));
  if (n_lat < 2) n_lat = 2;
  return {n_lat, 2 * n_lat};
}

}  // namespace treecode
