#include "analysis/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "engine/eval_plan.hpp"
#include "multipole/error_bounds.hpp"
#include "obs/recorder.hpp"
#include "multipole/harmonics.hpp"
#include "multipole/operators.hpp"

namespace treecode::analysis {

namespace {

/// Relative tolerance for recomputed floating-point aggregates (charge
/// sums, radii). Aggregation order differs between the builder and the
/// checker, so exact equality is not expected; 1e-9 relative leaves three
/// orders of magnitude headroom over double summation error at n = 10^6
/// while still catching any genuine bookkeeping bug.
constexpr double kRelTol = 1e-9;

[[nodiscard]] bool close(double a, double b, double scale) noexcept {
  return std::abs(a - b) <= kRelTol * std::max({1.0, std::abs(scale), std::abs(a), std::abs(b)});
}

/// printf-style violation formatting keeps call sites one line each.
template <typename... Args>
void fail(InvariantReport& report, const char* fmt, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  report.add(buf);
}

[[nodiscard]] bool finite(const Vec3& v) noexcept {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

}  // namespace

std::string InvariantReport::summary() const {
  if (ok()) {
    return "invariants ok (" + std::to_string(nodes_checked) + " nodes, " +
           std::to_string(particles_checked) + " particles)";
  }
  std::string s = std::to_string(violations.size()) + " invariant violation(s):";
  const std::size_t shown = std::min<std::size_t>(violations.size(), 20);
  for (std::size_t i = 0; i < shown; ++i) s += "\n  " + violations[i];
  if (shown < violations.size()) {
    s += "\n  ... and " + std::to_string(violations.size() - shown) + " more";
  }
  return s;
}

InvariantError::InvariantError(const InvariantReport& report)
    : std::logic_error(report.summary()), report_(report) {}

void require(const InvariantReport& report, const char* context) {
  obs::recorder::record(obs::recorder::Category::kInvariant, context,
                        static_cast<double>(report.violations.size()));
  if (!report.ok()) {
    // Dump the flight record before the unwind destroys the evaluation
    // state the events describe.
    obs::recorder::trigger(std::string("invariant failure: ") + context);
    InvariantReport prefixed = report;
    for (auto& v : prefixed.violations) v = std::string(context) + ": " + v;
    throw InvariantError(prefixed);
  }
}

InvariantReport check_nodes(std::span<const TreeNode> nodes, std::span<const Vec3> positions,
                            std::span<const double> charges) {
  InvariantReport report;
  report.nodes_checked = nodes.size();
  report.particles_checked = positions.size();
  if (nodes.empty()) {
    report.add("tree has no nodes (even an empty tree has a root)");
    return report;
  }
  if (positions.size() != charges.size()) {
    fail(report, "positions/charges size mismatch: %zu vs %zu", positions.size(),
         charges.size());
    return report;
  }
  const std::size_t n = positions.size();
  const int num_nodes = static_cast<int>(nodes.size());

  const TreeNode& root = nodes.front();
  if (root.parent != -1) fail(report, "root has parent %d", root.parent);
  if (root.level != 0) fail(report, "root level is %d, want 0", root.level);
  if (root.begin != 0 || root.end != n) {
    fail(report, "root range [%zu, %zu) does not cover all %zu particles", root.begin,
         root.end, n);
  }

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& node = nodes[i];

    // ---- Index topology.
    if (node.begin > node.end || node.end > n) {
      fail(report, "node %zu: bad particle range [%zu, %zu) with n=%zu", i, node.begin,
           node.end, n);
      continue;  // downstream checks would read out of bounds
    }
    if (node.num_children < 0 || node.num_children > 8) {
      fail(report, "node %zu: num_children=%d outside [0, 8]", i, node.num_children);
      continue;
    }
    if (!node.is_leaf()) {
      if (node.first_child <= static_cast<int>(i) ||
          node.first_child + node.num_children > num_nodes) {
        fail(report, "node %zu: children [%d, %d) out of range (nodes=%d)", i,
             node.first_child, node.first_child + node.num_children, num_nodes);
        continue;
      }
      if (node.num_children == 0) {
        fail(report, "node %zu: first_child=%d set but num_children=0", i, node.first_child);
      }
      // Children partition the parent's particle range, in order, and sit
      // on a deeper level. (With chain collapsing levels may jump by more
      // than one; they must still strictly increase.)
      std::size_t cursor = node.begin;
      for (int c = 0; c < node.num_children; ++c) {
        const TreeNode& child = nodes[static_cast<std::size_t>(node.first_child + c)];
        if (child.parent != static_cast<int>(i)) {
          fail(report, "node %d: parent link is %d, want %zu", node.first_child + c,
               child.parent, i);
        }
        if (child.begin != cursor) {
          fail(report, "node %d: begins at %zu, expected %zu (children must partition)",
               node.first_child + c, child.begin, cursor);
        }
        if (child.level <= node.level) {
          fail(report, "node %d: level %d not deeper than parent level %d",
               node.first_child + c, child.level, node.level);
        }
        if (child.count() == 0) {
          fail(report, "node %d: empty child (splitter only materializes nonempty runs)",
               node.first_child + c);
        }
        cursor = child.end;
      }
      if (cursor != node.end) {
        fail(report, "node %zu: children end at %zu, parent ends at %zu", i, cursor,
             node.end);
      }
    }

    if (node.count() == 0) continue;  // geometric checks need members

    // ---- Charge conservation: A = sum |q|, Q = sum q over members.
    double abs_q = 0.0;
    double net_q = 0.0;
    for (std::size_t p = node.begin; p < node.end; ++p) {
      abs_q += std::abs(charges[p]);
      net_q += charges[p];
    }
    if (!close(node.abs_charge, abs_q, abs_q)) {
      fail(report, "node %zu: abs_charge %.17g != recomputed %.17g", i, node.abs_charge,
           abs_q);
    }
    if (!close(node.net_charge, net_q, abs_q)) {
      fail(report, "node %zu: net_charge %.17g != recomputed %.17g", i, node.net_charge,
           net_q);
    }
    // Children's aggregates must also sum to the parent's: catches a
    // builder that finalizes nodes from stale ranges even when each node
    // is internally consistent with its own (wrong) range.
    if (!node.is_leaf() && node.num_children > 0) {
      double child_abs = 0.0;
      double child_net = 0.0;
      for (int c = 0; c < node.num_children; ++c) {
        const TreeNode& child = nodes[static_cast<std::size_t>(node.first_child + c)];
        child_abs += child.abs_charge;
        child_net += child.net_charge;
      }
      if (!close(node.abs_charge, child_abs, abs_q)) {
        fail(report, "node %zu: children abs_charge sum %.17g != parent %.17g", i,
             child_abs, node.abs_charge);
      }
      if (!close(node.net_charge, child_net, abs_q)) {
        fail(report, "node %zu: children net_charge sum %.17g != parent %.17g", i,
             child_net, node.net_charge);
      }
    }

    // ---- Bounding-sphere containment (the MAC's load-bearing geometry).
    if (!finite(node.center) || !std::isfinite(node.radius) || node.radius < 0.0) {
      fail(report, "node %zu: non-finite or negative sphere (radius %.17g)", i, node.radius);
      continue;
    }
    const double diag = node.box.empty() ? 0.0 : norm(node.box.extents());
    double max_member_dist = 0.0;
    for (std::size_t p = node.begin; p < node.end; ++p) {
      max_member_dist = std::max(max_member_dist, distance(positions[p], node.center));
    }
    if (max_member_dist > node.radius * (1.0 + kRelTol) + kRelTol * diag) {
      fail(report, "node %zu: member at distance %.17g outside radius %.17g", i,
           max_member_dist, node.radius);
    }
    if (!close(node.radius, max_member_dist, diag)) {
      fail(report, "node %zu: radius %.17g != max member distance %.17g (sphere not tight)",
           i, node.radius, max_member_dist);
    }
    // The expansion center is a convex combination of member positions, so
    // it lies in the cell (up to tolerance) and within the cell diagonal of
    // any corner; the radius can never exceed the cell diagonal.
    if (node.radius > diag * (1.0 + kRelTol) && diag > 0.0) {
      fail(report, "node %zu: radius %.17g exceeds cell diagonal %.17g", i, node.radius,
           diag);
    }
    if (!node.box.empty()) {
      const Vec3 slack = node.box.extents() * kRelTol + Vec3{kRelTol, kRelTol, kRelTol};
      if (node.center.x < node.box.lo.x - slack.x || node.center.x > node.box.hi.x + slack.x ||
          node.center.y < node.box.lo.y - slack.y || node.center.y > node.box.hi.y + slack.y ||
          node.center.z < node.box.lo.z - slack.z || node.center.z > node.box.hi.z + slack.z) {
        fail(report, "node %zu: expansion center outside its cell", i);
      }
    }
    // Child center containment: a child's center is a convex combination
    // of a *subset* of this node's members, all within node.radius of
    // node.center, so it must lie inside this node's sphere.
    if (!node.is_leaf()) {
      for (int c = 0; c < node.num_children; ++c) {
        const TreeNode& child = nodes[static_cast<std::size_t>(node.first_child + c)];
        if (child.count() == 0) continue;
        const double d = distance(child.center, node.center);
        if (d > node.radius * (1.0 + kRelTol) + kRelTol * diag) {
          fail(report, "node %zu: child %d center at distance %.17g outside radius %.17g",
               i, node.first_child + c, d, node.radius);
        }
      }
    }
  }
  return report;
}

InvariantReport check_tree(const Tree& tree) {
  InvariantReport report = check_nodes(tree.nodes(), tree.positions(), tree.charges());

  // ---- Tree-level aggregates recomputed from the node array.
  int height = 0;
  for (const TreeNode& node : tree.nodes()) height = std::max(height, node.level + 1);
  if (height != tree.height()) {
    fail(report, "height %d != recomputed %d", tree.height(), height);
  }
  std::vector<std::size_t> level_counts(static_cast<std::size_t>(height), 0);
  double min_leaf = std::numeric_limits<double>::infinity();
  double min_density = std::numeric_limits<double>::infinity();
  for (const TreeNode& node : tree.nodes()) {
    if (node.level >= 0 && node.level < height) {
      ++level_counts[static_cast<std::size_t>(node.level)];
    }
    if (node.is_leaf() && node.count() > 0 && node.abs_charge > 0.0) {
      min_leaf = std::min(min_leaf, node.abs_charge);
      if (node.size() > 0.0) {
        min_density = std::min(min_density, node.abs_charge / node.size());
      }
    }
  }
  if (level_counts != tree.level_counts()) {
    fail(report, "level_counts disagree with a recount over %zu nodes", tree.num_nodes());
  }
  if (std::isfinite(min_leaf) && !close(tree.min_leaf_abs_charge(), min_leaf, min_leaf)) {
    fail(report, "min_leaf_abs_charge %.17g != recomputed %.17g", tree.min_leaf_abs_charge(),
         min_leaf);
  }
  if (std::isfinite(min_density) &&
      !close(tree.min_leaf_charge_density(), min_density, min_density)) {
    fail(report, "min_leaf_charge_density %.17g != recomputed %.17g",
         tree.min_leaf_charge_density(), min_density);
  }
  // Dropped + kept partitions the source system.
  if (tree.num_particles() + tree.dropped().size() != tree.source_size()) {
    fail(report, "kept %zu + dropped %zu != source size %zu", tree.num_particles(),
         tree.dropped().size(), tree.source_size());
  }
  // original_index must be a permutation of the kept caller indices.
  std::vector<char> seen(tree.source_size(), 0);
  for (std::size_t idx : tree.original_index()) {
    if (idx >= tree.source_size() || seen[idx] != 0) {
      fail(report, "original_index entry %zu repeated or out of range", idx);
      break;
    }
    seen[idx] = 1;
  }
  return report;
}

InvariantReport check_degrees(const Tree& tree, const DegreeAssignment& degrees,
                              const EvalConfig& config) {
  InvariantReport report;
  report.nodes_checked = tree.num_nodes();
  if (degrees.degree.size() != tree.num_nodes()) {
    fail(report, "degree table has %zu entries for %zu nodes", degrees.degree.size(),
         tree.num_nodes());
    return report;
  }
  // Independently re-derive the reference the assignment claims to use.
  if (config.mode == DegreeMode::kAdaptive &&
      config.reference != DegreeReference::kExplicit) {
    const bool density = config.law == DegreeLaw::kChargeOverSize;
    double expected_ref = 0.0;
    switch (config.reference) {
      case DegreeReference::kMinLeaf:
        expected_ref = density ? tree.min_leaf_charge_density() : tree.min_leaf_abs_charge();
        break;
      case DegreeReference::kMeanLeaf:
        expected_ref =
            density ? tree.mean_leaf_charge_density() : tree.mean_leaf_abs_charge();
        break;
      case DegreeReference::kExplicit:
        break;
    }
    if (!close(degrees.reference_charge, expected_ref, expected_ref)) {
      fail(report, "reference charge %.17g != tree's %.17g", degrees.reference_charge,
           expected_ref);
    }
  }
  int table_max = config.degree;
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const TreeNode& node = tree.node(i);
    const int p = degrees.degree[i];
    if (p < 0 || p > kMaxDegree) {
      fail(report, "node %zu: degree %d outside library range [0, %d]", i, p, kMaxDegree);
      continue;
    }
    table_max = std::max(table_max, p);
    int expected = config.degree;
    if (config.mode == DegreeMode::kAdaptive) {
      double metric = node.abs_charge;
      if (config.law == DegreeLaw::kChargeOverSize && node.size() > 0.0) {
        metric /= node.size();
      }
      expected = adaptive_degree(metric, degrees.reference_charge, config.alpha,
                                 config.degree, config.max_degree);
    }
    if (p != expected) {
      fail(report, "node %zu: degree %d != Theorem-3 law's %d", i, p, expected);
    }
    // Under the literal Theorem-3 law the metric A is monotone up the tree
    // (a parent aggregates its children's charge), so degrees must be too.
    if (config.mode == DegreeMode::kAdaptive && config.law == DegreeLaw::kCharge &&
        node.parent >= 0) {
      const int parent_p = degrees.degree[static_cast<std::size_t>(node.parent)];
      if (parent_p < p) {
        fail(report, "node %zu: degree %d exceeds parent's %d (A is monotone up the tree)",
             i, p, parent_p);
      }
    }
  }
  if (degrees.max_degree != table_max) {
    fail(report, "assignment max_degree %d != table max %d", degrees.max_degree, table_max);
  }
  if (degrees.min_degree < 0 || degrees.min_degree > degrees.max_degree) {
    fail(report, "assignment min_degree %d outside [0, %d]", degrees.min_degree,
         degrees.max_degree);
  }
  return report;
}

InvariantReport check_eval_result(const EvalResult& result, const EvalConfig& config,
                                  std::size_t expected_size,
                                  const DegreeAssignment* degrees) {
  InvariantReport report;
  report.particles_checked = result.potential.size();
  if (result.potential.size() != expected_size) {
    fail(report, "potential has %zu entries, want %zu", result.potential.size(),
         expected_size);
  }
  if (config.compute_gradient && result.gradient.size() != expected_size) {
    fail(report, "gradient has %zu entries, want %zu", result.gradient.size(),
         expected_size);
  }
  const bool want_bounds = config.track_error_bounds || config.enforce_budget;
  for (std::size_t i = 0; i < result.potential.size(); ++i) {
    if (!std::isfinite(result.potential[i])) {
      fail(report, "potential[%zu] is non-finite", i);
      break;  // one poisoned value implies a poisoned region; keep it short
    }
  }
  for (std::size_t i = 0; i < result.gradient.size(); ++i) {
    if (!finite(result.gradient[i])) {
      fail(report, "gradient[%zu] is non-finite", i);
      break;
    }
  }
  for (std::size_t i = 0; i < result.error_bound.size(); ++i) {
    const double b = result.error_bound[i];
    if (!std::isfinite(b) || b < 0.0) {
      fail(report, "error_bound[%zu] = %.17g is not a bound", i, b);
      break;
    }
    if (config.enforce_budget && b > config.error_budget * (1.0 + kRelTol)) {
      fail(report, "error_bound[%zu] = %.17g exceeds enforced budget %.17g", i, b,
           config.error_budget);
      break;
    }
  }
  if (want_bounds && result.error_bound.size() != expected_size) {
    fail(report, "error_bound has %zu entries, want %zu", result.error_bound.size(),
         expected_size);
  }
  if (degrees != nullptr && result.stats.max_degree_used > degrees->max_degree) {
    fail(report, "stats report degree %d used but the table max is %d",
         result.stats.max_degree_used, degrees->max_degree);
  }
  if (result.stats.min_degree_used > result.stats.max_degree_used) {
    fail(report, "stats degree range [%d, %d] is inverted", result.stats.min_degree_used,
         result.stats.max_degree_used);
  }
  return report;
}

InvariantReport check_plan(const engine::EvalPlan& plan, const Tree& tree,
                           const DegreeAssignment& degrees, const EvalConfig& config) {
  using engine::EvalPlan;
  InvariantReport report = check_degrees(tree, degrees, config);
  const std::size_t n = plan.num_targets();
  const std::size_t num_nodes = tree.num_nodes();
  const std::size_t num_particles = tree.num_particles();
  report.particles_checked = n;

  // ---- Schedule layout.
  if (plan.offsets.size() != n + 1) {
    fail(report, "offsets has %zu entries for %zu targets", plan.offsets.size(), n);
    return report;
  }
  if (n > 0 && plan.offsets.front() != 0) {
    fail(report, "offsets[0] = %llu, want 0",
         static_cast<unsigned long long>(plan.offsets.front()));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (plan.offsets[i] > plan.offsets[i + 1]) {
      fail(report, "offsets not monotone at target %zu", i);
      return report;
    }
  }
  if (!plan.offsets.empty() && plan.offsets.back() != plan.entries.size()) {
    fail(report, "offsets end at %llu but there are %zu entries",
         static_cast<unsigned long long>(plan.offsets.back()), plan.entries.size());
    return report;
  }
  const bool want_bounds = config.track_error_bounds || config.enforce_budget;
  if (want_bounds && plan.entry_bounds.size() != plan.entries.size()) {
    fail(report, "entry_bounds has %zu entries, want %zu", plan.entry_bounds.size(),
         plan.entries.size());
    return report;
  }
  if (plan.target_cost.size() != n) {
    fail(report, "target_cost has %zu entries for %zu targets", plan.target_cost.size(), n);
    return report;
  }
  if (!std::is_sorted(plan.m2p_nodes.begin(), plan.m2p_nodes.end()) ||
      std::adjacent_find(plan.m2p_nodes.begin(), plan.m2p_nodes.end()) !=
          plan.m2p_nodes.end()) {
    fail(report, "m2p_nodes is not sorted-unique");
  }
  std::vector<char> skipped(n, 0);
  for (const std::uint32_t s : plan.skipped_targets) {
    if (s >= n) {
      fail(report, "skipped target %u out of range (targets=%zu)", s, n);
      return report;
    }
    skipped[s] = 1;
  }
  const bool have_basis = !plan.basis_offset.empty();
  if (have_basis && plan.basis_offset.size() != plan.entries.size()) {
    fail(report, "basis_offset has %zu entries, want %zu", plan.basis_offset.size(),
         plan.entries.size());
    return report;
  }

  // ---- Per-entry and per-target checks.
  std::uint64_t m2p_count = 0;
  std::uint64_t p2p_pairs = 0;
  std::uint64_t terms = 0;
  std::vector<char> referenced(num_nodes, 0);
  std::vector<std::pair<std::size_t, std::size_t>> intervals;
  // Full basis recompute on every entry would triple the check's cost; the
  // layout and inv_r are verified everywhere, the harmonics on this stride.
  constexpr std::uint64_t kBasisSampleStride = 997;
  std::vector<double> basis_scratch;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t begin = plan.offsets[i];
    const std::uint64_t end = plan.offsets[i + 1];
    if (skipped[i] != 0 && begin != end) {
      fail(report, "skipped target %zu owns %llu entries, want 0", i,
           static_cast<unsigned long long>(end - begin));
      continue;
    }
    if (skipped[i] != 0) continue;
    const Vec3 x = plan.targets[i];
    double my_bound = 0.0;
    std::uint64_t cost = 0;
    intervals.clear();
    bool structural_failure = false;
    for (std::uint64_t idx = begin; idx < end && !structural_failure; ++idx) {
      const std::int32_t e = plan.entries[idx];
      const std::int32_t ni = EvalPlan::node_of(e);
      if (ni < 0 || static_cast<std::size_t>(ni) >= num_nodes) {
        fail(report, "target %zu: entry node %d out of range (nodes=%zu)", i, ni, num_nodes);
        structural_failure = true;
        break;
      }
      const TreeNode& node = tree.node(static_cast<std::size_t>(ni));
      if (node.count() == 0) {
        fail(report, "target %zu: entry references empty node %d", i, ni);
      }
      intervals.emplace_back(node.begin, node.end);
      if (EvalPlan::is_p2p(e)) {
        if (!node.is_leaf()) {
          fail(report, "target %zu: P2P entry on non-leaf node %d", i, ni);
        }
        if (have_basis && plan.basis_offset[idx] != EvalPlan::kNoBasis) {
          fail(report, "target %zu: P2P entry %llu carries a basis offset", i,
               static_cast<unsigned long long>(idx));
        }
        p2p_pairs += node.count();
        cost += node.count();
      } else {
        // Every accepted cluster must satisfy the alpha-MAC at this target.
        const double r = distance(x, node.center);
        if (!(r > 0.0) || node.radius > config.alpha * r * (1.0 + kRelTol)) {
          fail(report, "target %zu: M2P node %d violates the MAC (a=%.17g, r=%.17g)", i,
               ni, node.radius, r);
        }
        referenced[static_cast<std::size_t>(ni)] = 1;
        const auto p = static_cast<std::uint64_t>(degrees.degree[static_cast<std::size_t>(ni)]);
        terms += (p + 1) * (p + 1);
        cost += (p + 1) * (p + 1);
        ++m2p_count;
        if (want_bounds) my_bound += plan.entry_bounds[idx];
        if (have_basis && plan.basis_offset[idx] != EvalPlan::kNoBasis) {
          // The precomputed basis must be exactly what m2p would recompute:
          // right-sized, with 1/r stored bitwise (r is the same norm the MAC
          // check just evaluated). Full harmonics are recomputed on a sample.
          const std::uint64_t off = plan.basis_offset[idx];
          const std::size_t need = m2p_basis_size(static_cast<int>(p));
          if (off + need > plan.basis.size()) {
            fail(report, "target %zu: basis offset %llu overruns pool (%zu doubles)", i,
                 static_cast<unsigned long long>(off), plan.basis.size());
          } else {
            if (plan.basis[off] != 1.0 / r) {
              fail(report, "target %zu: basis inv_r %.17g != 1/r %.17g for node %d", i,
                   plan.basis[off], 1.0 / r, ni);
            }
            if (idx % kBasisSampleStride == 0) {
              basis_scratch.resize(need);
              m2p_basis(static_cast<int>(p), node.center, x, basis_scratch);
              if (std::memcmp(basis_scratch.data(), plan.basis.data() + off,
                              need * sizeof(double)) != 0) {
                fail(report, "target %zu: basis for node %d differs from recompute", i, ni);
              }
            }
          }
        }
      }
    }
    if (structural_failure) continue;
    if (config.enforce_budget && my_bound > config.error_budget * (1.0 + kRelTol)) {
      fail(report, "target %zu: accumulated bound %.17g exceeds budget %.17g", i, my_bound,
           config.error_budget);
    }
    if (cost != plan.target_cost[i]) {
      fail(report, "target %zu: cost %llu != recorded %llu", i,
           static_cast<unsigned long long>(cost),
           static_cast<unsigned long long>(plan.target_cost[i]));
    }
    // P2P union M2P must cover every source particle exactly once: the
    // entry intervals, sorted, form an exact partition of [0, n_src).
    std::sort(intervals.begin(), intervals.end());
    std::size_t cursor = 0;
    bool partition_ok = true;
    for (const auto& [b, e2] : intervals) {
      if (b != cursor) {
        partition_ok = false;
        break;
      }
      cursor = e2;
    }
    if (!partition_ok || cursor != num_particles) {
      fail(report,
           "target %zu: entries do not partition the %zu sources exactly once", i,
           num_particles);
    }
  }

  // ---- Refresh set: exactly the nodes M2P entries reference.
  for (const std::int32_t ni : plan.m2p_nodes) {
    if (ni < 0 || static_cast<std::size_t>(ni) >= num_nodes) {
      fail(report, "m2p_nodes entry %d out of range (nodes=%zu)", ni, num_nodes);
    } else if (referenced[static_cast<std::size_t>(ni)] == 0) {
      fail(report, "m2p_nodes lists node %d but no M2P entry references it", ni);
    } else {
      referenced[static_cast<std::size_t>(ni)] = 2;
    }
  }
  for (std::size_t ni = 0; ni < num_nodes; ++ni) {
    if (referenced[ni] == 1) {
      fail(report, "M2P entries reference node %zu but m2p_nodes omits it", ni);
    }
  }

  // ---- Cached statistics agree with the recount.
  if (plan.stats.m2p_count != m2p_count) {
    fail(report, "stats.m2p_count %llu != recount %llu",
         static_cast<unsigned long long>(plan.stats.m2p_count),
         static_cast<unsigned long long>(m2p_count));
  }
  if (plan.stats.p2p_pairs != p2p_pairs) {
    fail(report, "stats.p2p_pairs %llu != recount %llu",
         static_cast<unsigned long long>(plan.stats.p2p_pairs),
         static_cast<unsigned long long>(p2p_pairs));
  }
  if (plan.stats.multipole_terms != terms) {
    fail(report, "stats.multipole_terms %llu != recount %llu",
         static_cast<unsigned long long>(plan.stats.multipole_terms),
         static_cast<unsigned long long>(terms));
  }
  return report;
}

void assert_tree_invariants(const Tree& tree, const char* context) {
  require(check_tree(tree), context);
}

void assert_eval_invariants(const Tree& tree, const DegreeAssignment& degrees,
                            const EvalConfig& config, const EvalResult& result,
                            std::size_t expected_size, const char* context) {
  require(check_degrees(tree, degrees, config), context);
  require(check_eval_result(result, config, expected_size, &degrees), context);
}

void assert_plan_invariants(const engine::EvalPlan& plan, const Tree& tree,
                            const DegreeAssignment& degrees, const EvalConfig& config,
                            const char* context) {
  require(check_plan(plan, tree, degrees, config), context);
}

}  // namespace treecode::analysis
