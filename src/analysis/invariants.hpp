#pragma once

/// \file invariants.hpp
/// Debug-mode structural invariant checker for the octree and the
/// evaluators built on it.
///
/// The paper's adaptive-degree guarantee (Theorem 3) is only as good as the
/// cluster bookkeeping behind it: the degree law reads each node's
/// aggregate charge A and radius a, and the MAC reads the bounding-sphere
/// geometry. A silent aggregation bug — a node whose A no longer equals the
/// sum of its members' |q_i|, a "bounding" sphere that fails to bound —
/// does not crash; it quietly degrades accuracy in a way that is
/// indistinguishable from legitimate truncation error in benchmarks. This
/// module makes those bugs loud.
///
/// Three independent check families, each returning an InvariantReport:
///
///  * check_tree      — octree structure: parent/child index topology,
///    particle-range partitioning, per-cluster charge conservation
///    (A = sum |q_i|, Q = sum q_i, and children's aggregates summing to the
///    parent's), bounding-sphere containment of every member and of every
///    child's expansion center, MAC geometry consistency (radius bounded by
///    the cell diagonal, finite centers inside the cell);
///  * check_degrees   — the Theorem-3 degree table: every entry matches the
///    law recomputed from the node's metric, clamps respected, and (under
///    DegreeLaw::kCharge, where A is monotone up the tree) parent degree
///    >= child degree;
///  * check_eval_result — an evaluation's output: result vector sizes,
///    finiteness, error bounds within the enforced budget, degree-used
///    stats within the assignment's range;
///  * check_plan      — a compiled engine::EvalPlan: every M2P entry
///    satisfies the alpha-MAC at its target, every P2P entry is a leaf,
///    the per-target entry lists cover every source particle exactly once
///    (P2P union M2P is an exact partition), budget-bound accumulation
///    stays within the enforced budget, the M2P refresh set matches the
///    entries, and the plan's cached statistics agree with a recount. The
///    degree table itself is delegated to check_degrees.
///
/// Configure with -DTREECODE_CHECK_INVARIANTS=ON and the tree builder plus
/// all four evaluators (Barnes-Hut, dipole Barnes-Hut, FMM, direct) call
/// these automatically, throwing analysis::InvariantError on the first
/// violating walk. The functions are always compiled and callable — the
/// macro only controls the automatic wiring — so tests exercise them in
/// every build flavor.

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/degree_policy.hpp"
#include "tree/octree.hpp"

namespace treecode::engine {
struct EvalPlan;  // engine/eval_plan.hpp; forward-declared to avoid a cycle
}

namespace treecode::analysis {

/// Everything one invariant walk found. Empty `violations` means the
/// structure is sound.
struct InvariantReport {
  std::vector<std::string> violations;
  std::size_t nodes_checked = 0;
  std::size_t particles_checked = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }

  /// One line per violation (capped at 20 in the thrown message so a
  /// corrupted tree of a million nodes stays readable).
  [[nodiscard]] std::string summary() const;

  void add(std::string v) { violations.push_back(std::move(v)); }
};

/// Thrown by the assert_* entry points when a walk finds violations.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const InvariantReport& report);
  [[nodiscard]] const InvariantReport& report() const noexcept { return report_; }

 private:
  InvariantReport report_;
};

/// Octree structural walk over an explicit node array (the testable core:
/// tests corrupt copies of a real tree's nodes to prove detection).
/// `positions`/`charges` are in the tree's sorted particle order.
InvariantReport check_nodes(std::span<const TreeNode> nodes, std::span<const Vec3> positions,
                            std::span<const double> charges);

/// check_nodes over a built Tree, plus Tree-level aggregates (height,
/// level_counts, leaf charge statistics) recomputed and compared.
InvariantReport check_tree(const Tree& tree);

/// Degree-table consistency: every node's degree re-derived from the
/// Theorem-3 law under `config` must equal `degrees.degree[i]`; min/max
/// clamps respected; parent >= child monotonicity under DegreeLaw::kCharge.
InvariantReport check_degrees(const Tree& tree, const DegreeAssignment& degrees,
                              const EvalConfig& config);

/// Evaluation-output sanity: sizes match `expected_size`, potentials (and
/// gradients / error bounds when present) finite, error bounds within the
/// enforced budget, degree-used stats inside the assignment's range when a
/// table is given.
InvariantReport check_eval_result(const EvalResult& result, const EvalConfig& config,
                                  std::size_t expected_size,
                                  const DegreeAssignment* degrees = nullptr);

/// Compiled-plan soundness against the tree, degree table, and config the
/// plan was compiled under. Checks MAC acceptance of every M2P entry,
/// leaf-ness of every P2P entry, exact once-per-target source coverage
/// (skipped targets excepted — they must own zero entries), budget
/// feasibility of the recorded bound accumulation, refresh-set and
/// statistics consistency, precomputed-basis layout and values (1/r
/// everywhere, full harmonics on a sample), and delegates the degree law
/// to check_degrees.
InvariantReport check_plan(const engine::EvalPlan& plan, const Tree& tree,
                           const DegreeAssignment& degrees, const EvalConfig& config);

/// Throw InvariantError unless `report.ok()`. `context` prefixes the
/// message (e.g. "Tree::build", "BarnesHutEvaluator::evaluate").
void require(const InvariantReport& report, const char* context);

/// Convenience used by the TREECODE_CHECK_INVARIANTS wiring: full tree +
/// degree-table walk in one call.
void assert_tree_invariants(const Tree& tree, const char* context);
void assert_eval_invariants(const Tree& tree, const DegreeAssignment& degrees,
                            const EvalConfig& config, const EvalResult& result,
                            std::size_t expected_size, const char* context);
void assert_plan_invariants(const engine::EvalPlan& plan, const Tree& tree,
                            const DegreeAssignment& degrees, const EvalConfig& config,
                            const char* context);

}  // namespace treecode::analysis

/// Wiring macros: active only under -DTREECODE_CHECK_INVARIANTS so release
/// hot paths carry zero overhead. Call sites live in octree.cpp and the
/// four evaluators.
#if defined(TREECODE_CHECK_INVARIANTS)
#define TREECODE_ASSERT_TREE_INVARIANTS(tree, context) \
  ::treecode::analysis::assert_tree_invariants((tree), (context))
#define TREECODE_ASSERT_EVAL_INVARIANTS(tree, degrees, config, result, expected, context) \
  ::treecode::analysis::assert_eval_invariants((tree), (degrees), (config), (result),     \
                                               (expected), (context))
#define TREECODE_ASSERT_PLAN_INVARIANTS(plan, tree, degrees, config, context) \
  ::treecode::analysis::assert_plan_invariants((plan), (tree), (degrees), (config), (context))
#else
#define TREECODE_ASSERT_TREE_INVARIANTS(tree, context) ((void)0)
#define TREECODE_ASSERT_EVAL_INVARIANTS(tree, degrees, config, result, expected, context) \
  ((void)0)
#define TREECODE_ASSERT_PLAN_INVARIANTS(plan, tree, degrees, config, context) ((void)0)
#endif
