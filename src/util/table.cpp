#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace treecode {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      os << cell;
      if (c + 1 < headers_.size()) os << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, v);
  return buf;
}

std::string fmt_count(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int seen = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (seen && seen % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++seen;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_millions(long long v) {
  if (v < 1'000'000) return fmt_count(v);
  const double m = static_cast<double>(v) / 1e6;
  char buf[64];
  if (m < 100.0) {
    std::snprintf(buf, sizeof buf, "%.1f million", m);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f million", m);
  }
  return buf;
}

}  // namespace treecode
