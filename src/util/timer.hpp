#pragma once

/// \file timer.hpp
/// Wall-clock timing helpers for benchmarks and the parallel speedup model.

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/reqtrace.hpp"
#include "obs/trace.hpp"

namespace treecode {

/// A simple monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Time a callable and return the elapsed seconds.
template <typename F>
double time_seconds(F&& f) {
  Timer t;
  f();
  return t.seconds();
}

/// RAII phase timer wired into the observability layer: on destruction it
/// accumulates the elapsed nanoseconds into the obs counter
/// `<metric>_ns`, records a trace span named `metric` (when tracing is
/// active), joins the calling thread's active request trace as a phase
/// span (when one is installed — this is how engine replay phases appear
/// inside service batch traces), and optionally stores the elapsed seconds
/// for callers that keep their own bookkeeping (the evaluators' build/eval
/// seconds). `metric` must be a string literal or otherwise outlive the
/// timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* metric, double* out_seconds = nullptr) noexcept
      : metric_(metric), out_(out_seconds), span_(metric), req_span_(metric) {}

  ~ScopedTimer() {
    const double s = timer_.seconds();
    if (out_ != nullptr) *out_ = s;
    obs::registry()
        .counter(std::string(metric_) + "_ns")
        .add(static_cast<std::uint64_t>(s * 1e9));
    obs::recorder::record(obs::recorder::Category::kPhase, metric_, s);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far (the phase is still running).
  [[nodiscard]] double seconds() const { return timer_.seconds(); }

 private:
  Timer timer_;
  const char* metric_;
  double* out_;
  obs::TraceSpan span_;
  obs::reqtrace::PhaseSpan req_span_;
};

}  // namespace treecode
