#pragma once

/// \file timer.hpp
/// Wall-clock timing helpers for benchmarks and the parallel speedup model.

#include <chrono>

namespace treecode {

/// A simple monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Time a callable and return the elapsed seconds.
template <typename F>
double time_seconds(F&& f) {
  Timer t;
  f();
  return t.seconds();
}

}  // namespace treecode
