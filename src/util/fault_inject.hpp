#pragma once

/// \file fault_inject.hpp
/// Compile-time-gated deterministic fault-injection harness.
///
/// Every rung of the engine's degradation ladder exists for a failure mode
/// that is nearly impossible to reach organically in a unit test: the Nth
/// allocation being denied, a NaN slipping past validation, a cache hit
/// whose verification fails, a worker stalling past the deadline. This
/// harness plants named injection *sites* at those points; a test arms a
/// site with a counter-based plan and the failure fires deterministically —
/// same build, same arming, same serial call order, same fault — so the CI
/// `fault-inject` job exercises every degradation path on every commit.
///
/// Gating: all of this compiles to nothing unless the build defines
/// TREECODE_FAULT_INJECT (CMake option of the same name). In production
/// builds `fault::fire(site)` is an inline `return false` the optimizer
/// deletes, so sites cost literally zero. Never enable the option in a
/// build whose numbers you intend to keep.
///
/// Arming modes (per site, serial-phase call sites only — the counters are
/// atomics, but deterministic firing additionally requires the site to be
/// hit in a deterministic order, which holds for all current sites except
/// kSlowWorker, a level-triggered stall that needs no ordering):
///  * nth(n)    — fire exactly once, on the n-th hit (1-based);
///  * every()   — fire on every hit while armed (level-triggered);
///  * random(p) — fire with probability p per hit, decided by
///                splitmix64(seed ^ site ^ hit_counter): seeded and
///                counter-based, so a campaign replays exactly.
///
/// Every firing increments the `fault.injected` metrics counter and drops a
/// kCustom "fault.injected" event into the flight recorder, so a test (or a
/// post-mortem snapshot) can always reconstruct which faults actually fired.

#include <cstdint>

namespace treecode::fault {

/// Injection points planted in the engine. Keep in sync with site_name().
enum class Site : std::uint8_t {
  kEngineAlloc = 0,  ///< ResourceGovernor::try_reserve denies the reservation
  kNanCharge,        ///< update_charges poisons one accepted charge with NaN
  kCacheVerifyMiss,  ///< PlanCache::find discards a verified hit (forced recompile)
  kSlowWorker,       ///< engine replay workers stall ~2 ms per block while armed
};
inline constexpr std::size_t kNumSites = 4;

/// Stable name for a site ("engine_alloc", ...), for logs and recorder labels.
[[nodiscard]] const char* site_name(Site site) noexcept;

#ifdef TREECODE_FAULT_INJECT

inline constexpr bool kEnabled = true;

/// Seed for the random() mode's counter hash. Also recorded so a failing
/// CI campaign can be replayed bit-for-bit.
void set_seed(std::uint64_t seed) noexcept;
[[nodiscard]] std::uint64_t seed() noexcept;

/// Arm `site` to fire exactly once, on its `nth` hit from now (1-based;
/// the hit counter is NOT reset, so arming mid-run counts from the next hit).
void arm_nth(Site site, std::uint64_t nth) noexcept;
/// Arm `site` to fire on every hit until disarmed.
void arm_every(Site site) noexcept;
/// Arm `site` to fire with probability `probability` per hit (seeded,
/// counter-based — deterministic for a fixed seed and hit order).
void arm_random(Site site, double probability) noexcept;
void disarm(Site site) noexcept;
/// Disarm every site and zero all hit/fired counters (test setup).
void reset() noexcept;

/// Count a hit at `site` and report whether the armed plan fires. Records
/// the firing to metrics + flight recorder.
[[nodiscard]] bool fire(Site site) noexcept;

/// Hits (armed or not) and firings since the last reset().
[[nodiscard]] std::uint64_t hits(Site site) noexcept;
[[nodiscard]] std::uint64_t fired(Site site) noexcept;

#else  // !TREECODE_FAULT_INJECT — every call compiles to nothing.

inline constexpr bool kEnabled = false;

inline void set_seed(std::uint64_t) noexcept {}
[[nodiscard]] inline std::uint64_t seed() noexcept { return 0; }
inline void arm_nth(Site, std::uint64_t) noexcept {}
inline void arm_every(Site) noexcept {}
inline void arm_random(Site, double) noexcept {}
inline void disarm(Site) noexcept {}
inline void reset() noexcept {}
[[nodiscard]] inline bool fire(Site) noexcept { return false; }
[[nodiscard]] inline std::uint64_t hits(Site) noexcept { return 0; }
[[nodiscard]] inline std::uint64_t fired(Site) noexcept { return 0; }

#endif  // TREECODE_FAULT_INJECT

}  // namespace treecode::fault
