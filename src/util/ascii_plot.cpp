#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/table.hpp"

namespace treecode {

namespace {

double transform(double v, bool log_scale) { return log_scale ? std::log10(v) : v; }

}  // namespace

std::string render_plot(const std::vector<PlotSeries>& series, const PlotOptions& opts) {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  bool any = false;
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if (opts.log_x && s.x[i] <= 0.0) continue;
      if (opts.log_y && s.y[i] <= 0.0) continue;
      const double tx = transform(s.x[i], opts.log_x);
      const double ty = transform(s.y[i], opts.log_y);
      xmin = std::min(xmin, tx);
      xmax = std::max(xmax, tx);
      ymin = std::min(ymin, ty);
      ymax = std::max(ymax, ty);
      any = true;
    }
  }
  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << '\n';
  if (!any) {
    os << "(no plottable data)\n";
    return os.str();
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  const int w = std::max(opts.width, 10);
  const int h = std::max(opts.height, 5);
  std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));

  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      if (opts.log_x && s.x[i] <= 0.0) continue;
      if (opts.log_y && s.y[i] <= 0.0) continue;
      const double tx = transform(s.x[i], opts.log_x);
      const double ty = transform(s.y[i], opts.log_y);
      int cx = static_cast<int>(std::lround((tx - xmin) / (xmax - xmin) * (w - 1)));
      int cy = static_cast<int>(std::lround((ty - ymin) / (ymax - ymin) * (h - 1)));
      cx = std::clamp(cx, 0, w - 1);
      cy = std::clamp(cy, 0, h - 1);
      grid[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)] = s.marker;
    }
  }

  auto axis_value = [&](double t, bool log_scale) { return log_scale ? std::pow(10.0, t) : t; };
  if (!opts.y_label.empty()) os << opts.y_label << '\n';
  for (int row = 0; row < h; ++row) {
    std::string label;
    if (row == 0) {
      label = fmt_sci(axis_value(ymax, opts.log_y), 1);
    } else if (row == h - 1) {
      label = fmt_sci(axis_value(ymin, opts.log_y), 1);
    }
    os << (label.empty() ? std::string(9, ' ') : label);
    os << " |" << grid[static_cast<std::size_t>(row)] << '\n';
  }
  os << std::string(9, ' ') << " +" << std::string(static_cast<std::size_t>(w), '-') << '\n';
  os << std::string(11, ' ') << fmt_sci(axis_value(xmin, opts.log_x), 1)
     << std::string(static_cast<std::size_t>(std::max(1, w - 18)), ' ')
     << fmt_sci(axis_value(xmax, opts.log_x), 1) << '\n';
  if (!opts.x_label.empty()) os << std::string(11, ' ') << opts.x_label << '\n';
  os << "  legend:";
  for (const auto& s : series) os << "  '" << s.marker << "' = " << s.name;
  os << '\n';
  return os.str();
}

}  // namespace treecode
