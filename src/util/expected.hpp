#pragma once

/// \file expected.hpp
/// Structured error taxonomy for fallible engine entry points.
///
/// The evaluation engine sits on the service path of the ROADMAP's
/// multi-tenant north star, where callers must tell a malformed request
/// (kInvalidArgument) from a resource denial (kMemoryBudget, kDeadline)
/// from a numerical failure (kNonFinite): the first is the client's fault,
/// the second calls for retry/degradation, the third for quarantine of the
/// offending input. Ad-hoc `throw std::runtime_error` gives every caller
/// the same opaque string; `Expected<T>` gives them a typed `ErrorCode`
/// plus a human-readable message, without exceptions on the failure path.
///
/// Conventions:
///  * Engine entry points come in pairs: `try_foo()` returns Expected and
///    never throws taxonomy errors; the legacy `foo()` wrapper converts an
///    Error into an EngineError via throw_error() for callers that prefer
///    exceptions (examples, benches). scripts/treecode_lint.py (rule
///    `engine-returns-expected`) rejects raw `throw` statements inside
///    src/engine so new failure paths cannot bypass the taxonomy.
///  * Producing an Error is side-effect-free here; the engine records every
///    failure to the metrics registry and the flight recorder at the point
///    it constructs the Error (see eval_session.cpp fail()).

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace treecode {

/// Every way a fallible engine operation can fail. Codes are stable,
/// coarse-grained categories: the message carries the specifics.
enum class ErrorCode : std::uint8_t {
  kOk = 0,          ///< success sentinel (never carried by an Error in an Expected)
  kInvalidArgument, ///< malformed request: size mismatch, bad config, foreign plan
  kMemoryBudget,    ///< a ResourceGovernor byte reservation was denied
  kDeadline,        ///< EvalConfig::deadline_seconds elapsed mid-evaluation
  kCancelled,       ///< an external cancellation token stopped the sweep
  kFaultInjected,   ///< a TREECODE_FAULT_INJECT site fired (tests/CI only)
  kNonFinite,       ///< non-finite input or computed potential detected
  kInternal,        ///< invariant violation / should-not-happen
  kRejected,        ///< admission control refused the request (queue full,
                    ///< tenant quarantined, service shutting down)
};

/// Stable lower-case name for a code ("memory_budget", "deadline", ...).
/// Returns string literals, safe to hand to the flight recorder.
[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;

/// One failure: a taxonomy code plus a human-readable account.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Exception form of an Error, thrown by the legacy (non-try_) engine
/// wrappers via throw_error(). Carries the code so catch sites can still
/// branch on the taxonomy.
class EngineError : public std::runtime_error {
 public:
  EngineError(ErrorCode code, const std::string& message);
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Throw `error` as an EngineError. The single funnel from the Expected
/// world into the exception world — engine code never writes `throw`.
[[noreturn]] void throw_error(const Error& error);

/// A value of type T or an Error; the return type of every fallible engine
/// entry point. Minimal by design (no monadic combinators): callers check
/// ok() and branch.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}             // NOLINT(*-explicit-*)
  Expected(Error error) : error_(std::move(error)) {}         // NOLINT(*-explicit-*)

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// Precondition: ok().
  [[nodiscard]] T& value() & noexcept { return *value_; }
  [[nodiscard]] const T& value() const& noexcept { return *value_; }
  [[nodiscard]] T&& value() && noexcept { return *std::move(value_); }

  /// Precondition: !ok().
  [[nodiscard]] const Error& error() const noexcept { return error_; }

  /// Unwrap or convert the error into an EngineError (legacy-wrapper path).
  T value_or_throw() && {
    if (!ok()) throw_error(error_);
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Error error_{ErrorCode::kOk, {}};
};

/// Success-or-Error for operations with no payload (charge updates).
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() = default;
  Expected(Error error) : error_(std::move(error)) {}         // NOLINT(*-explicit-*)

  [[nodiscard]] bool ok() const noexcept { return error_.code == ErrorCode::kOk; }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const noexcept { return error_; }

  void value_or_throw() const {
    if (!ok()) throw_error(error_);
  }

 private:
  Error error_{ErrorCode::kOk, {}};
};

}  // namespace treecode
