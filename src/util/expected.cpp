#include "util/expected.hpp"

namespace treecode {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kMemoryBudget: return "memory_budget";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kFaultInjected: return "fault_injected";
    case ErrorCode::kNonFinite: return "non_finite";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kRejected: return "rejected";
  }
  return "unknown";
}

EngineError::EngineError(ErrorCode code, const std::string& message)
    : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
      code_(code) {}

void throw_error(const Error& error) { throw EngineError(error.code, error.message); }

}  // namespace treecode
