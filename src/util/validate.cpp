#include "util/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace treecode {

namespace {

bool finite(const Vec3& v) noexcept {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

}  // namespace

std::vector<std::size_t> ValidationReport::invalid_particles() const {
  std::vector<std::size_t> out;
  out.reserve(non_finite_positions.size() + non_finite_charges.size());
  out.insert(out.end(), non_finite_positions.begin(), non_finite_positions.end());
  out.insert(out.end(), non_finite_charges.begin(), non_finite_charges.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string ValidationReport::summary() const {
  if (clean()) return "ok";
  std::ostringstream os;
  const char* sep = "";
  if (!non_finite_positions.empty()) {
    os << non_finite_positions.size() << " non-finite position(s) (first at index "
       << non_finite_positions.front() << ")";
    sep = "; ";
  }
  if (!non_finite_charges.empty()) {
    os << sep << non_finite_charges.size() << " non-finite charge(s) (first at index "
       << non_finite_charges.front() << ")";
    sep = "; ";
  }
  if (empty_system) {
    os << sep << "empty particle system";
    sep = "; ";
  }
  if (coincident_particles > 0) {
    os << sep << coincident_particles
       << " particle(s) coincident with an earlier particle (mutual interactions are "
          "skipped)";
    sep = "; ";
  }
  if (zero_total_charge) {
    os << sep << "zero total absolute charge (all potentials will be zero)";
  }
  return os.str();
}

ValidationError::ValidationError(ValidationReport report)
    : std::invalid_argument("particle validation failed: " + report.summary()),
      report_(std::move(report)) {}

ValidationReport validate_particles(std::span<const Vec3> positions,
                                    std::span<const double> charges) {
  ValidationReport report;
  const std::size_t n = std::min(positions.size(), charges.size());
  report.particles_checked = n;
  report.empty_system = n == 0;
  if (n == 0) return report;

  double total_abs = 0.0;
  std::vector<std::size_t> finite_idx;
  finite_idx.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!finite(positions[i])) {
      report.non_finite_positions.push_back(i);
    } else {
      finite_idx.push_back(i);
    }
    if (!std::isfinite(charges[i])) {
      report.non_finite_charges.push_back(i);
    } else {
      total_abs += std::abs(charges[i]);
    }
  }
  report.zero_total_charge = total_abs == 0.0;

  // Coincidence scan over the finite positions only (NaN would break the
  // comparator's strict weak ordering). Lexicographic sort, then count
  // particles equal to their predecessor.
  std::sort(finite_idx.begin(), finite_idx.end(), [&](std::size_t a, std::size_t b) {
    const Vec3& pa = positions[a];
    const Vec3& pb = positions[b];
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return pa.z < pb.z;
  });
  for (std::size_t k = 1; k < finite_idx.size(); ++k) {
    const Vec3& a = positions[finite_idx[k - 1]];
    const Vec3& b = positions[finite_idx[k]];
    if (a.x == b.x && a.y == b.y && a.z == b.z) ++report.coincident_particles;
  }
  return report;
}

ValidationReport validate_targets(std::span<const Vec3> points) {
  ValidationReport report;
  report.particles_checked = points.size();
  report.empty_system = points.empty();
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!finite(points[i])) report.non_finite_positions.push_back(i);
  }
  return report;
}

void enforce_validation(const ValidationReport& report, ValidationPolicy policy,
                        const char* context) {
  switch (policy) {
    case ValidationPolicy::kThrow:
      if (report.has_errors()) throw ValidationError(report);
      break;
    case ValidationPolicy::kSanitize:
      break;
    case ValidationPolicy::kWarn:
      if (report.has_errors() || report.has_warnings()) {
        std::fprintf(stderr, "%s: %s\n", context, report.summary().c_str());
      }
      break;
  }
}

bool all_finite(std::span<const double> values) noexcept {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool all_finite(std::span<const Vec3> values) noexcept {
  for (const Vec3& v : values) {
    if (!finite(v)) return false;
  }
  return true;
}

}  // namespace treecode
