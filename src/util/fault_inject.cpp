#include "util/fault_inject.hpp"

namespace treecode::fault {

const char* site_name(Site site) noexcept {
  switch (site) {
    case Site::kEngineAlloc: return "engine_alloc";
    case Site::kNanCharge: return "nan_charge";
    case Site::kCacheVerifyMiss: return "cache_verify_miss";
    case Site::kSlowWorker: return "slow_worker";
  }
  return "unknown";
}

}  // namespace treecode::fault

#ifdef TREECODE_FAULT_INJECT

#include <array>
#include <atomic>
#include <cstddef>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace treecode::fault {

namespace {

enum class Mode : std::uint8_t { kOff = 0, kNth, kEvery, kRandom };

/// Per-site plan + counters. Atomics keep concurrent hits well-defined
/// (kSlowWorker is hit from workers); deterministic *firing* additionally
/// relies on serial hit order, which the serial-phase sites guarantee.
struct SiteState {
  std::atomic<std::uint8_t> mode{static_cast<std::uint8_t>(Mode::kOff)};
  std::atomic<std::uint64_t> fire_at{0};       ///< absolute hit ordinal for kNth
  std::atomic<std::uint64_t> threshold{0};     ///< kRandom: fire when hash < threshold
  std::atomic<std::uint64_t> hit_count{0};
  std::atomic<std::uint64_t> fired_count{0};
};

std::array<SiteState, kNumSites> g_sites;
std::atomic<std::uint64_t> g_seed{0};

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

SiteState& state(Site site) noexcept { return g_sites[static_cast<std::size_t>(site)]; }

}  // namespace

void set_seed(std::uint64_t seed_value) noexcept {
  g_seed.store(seed_value, std::memory_order_relaxed);
}

std::uint64_t seed() noexcept { return g_seed.load(std::memory_order_relaxed); }

void arm_nth(Site site, std::uint64_t nth) noexcept {
  SiteState& s = state(site);
  s.fire_at.store(s.hit_count.load(std::memory_order_relaxed) + (nth == 0 ? 1 : nth),
                  std::memory_order_relaxed);
  s.mode.store(static_cast<std::uint8_t>(Mode::kNth), std::memory_order_relaxed);
}

void arm_every(Site site) noexcept {
  state(site).mode.store(static_cast<std::uint8_t>(Mode::kEvery),
                         std::memory_order_relaxed);
}

void arm_random(Site site, double probability) noexcept {
  SiteState& s = state(site);
  if (probability <= 0.0) {
    s.threshold.store(0, std::memory_order_relaxed);
  } else if (probability >= 1.0) {
    s.threshold.store(~std::uint64_t{0}, std::memory_order_relaxed);
  } else {
    s.threshold.store(
        static_cast<std::uint64_t>(probability * 18446744073709551615.0),
        std::memory_order_relaxed);
  }
  s.mode.store(static_cast<std::uint8_t>(Mode::kRandom), std::memory_order_relaxed);
}

void disarm(Site site) noexcept {
  state(site).mode.store(static_cast<std::uint8_t>(Mode::kOff),
                         std::memory_order_relaxed);
}

void reset() noexcept {
  for (SiteState& s : g_sites) {
    s.mode.store(static_cast<std::uint8_t>(Mode::kOff), std::memory_order_relaxed);
    s.fire_at.store(0, std::memory_order_relaxed);
    s.threshold.store(0, std::memory_order_relaxed);
    s.hit_count.store(0, std::memory_order_relaxed);
    s.fired_count.store(0, std::memory_order_relaxed);
  }
  g_seed.store(0, std::memory_order_relaxed);
}

bool fire(Site site) noexcept {
  SiteState& s = state(site);
  const std::uint64_t hit =
      s.hit_count.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based ordinal
  bool fires = false;
  switch (static_cast<Mode>(s.mode.load(std::memory_order_relaxed))) {
    case Mode::kOff:
      break;
    case Mode::kNth:
      if (hit == s.fire_at.load(std::memory_order_relaxed)) {
        fires = true;
        s.mode.store(static_cast<std::uint8_t>(Mode::kOff),
                     std::memory_order_relaxed);  // one-shot
      }
      break;
    case Mode::kEvery:
      fires = true;
      break;
    case Mode::kRandom: {
      const std::uint64_t h = splitmix64(g_seed.load(std::memory_order_relaxed) ^
                                         (static_cast<std::uint64_t>(site) << 56) ^ hit);
      fires = h < s.threshold.load(std::memory_order_relaxed);
      break;
    }
  }
  if (fires) {
    s.fired_count.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter(obs::metric::kFaultInjected).add(1);
    obs::recorder::record(obs::recorder::Category::kCustom, site_name(site),
                          static_cast<double>(hit));
  }
  return fires;
}

std::uint64_t hits(Site site) noexcept {
  return state(site).hit_count.load(std::memory_order_relaxed);
}

std::uint64_t fired(Site site) noexcept {
  return state(site).fired_count.load(std::memory_order_relaxed);
}

}  // namespace treecode::fault

#endif  // TREECODE_FAULT_INJECT
