#pragma once

/// \file cli.hpp
/// Tiny command-line flag parser shared by examples and bench binaries.
///
/// Supports `--name value`, `--name=value`, and boolean `--name` flags.
/// Unknown flags are an error so typos in experiment scripts fail loudly.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace treecode {

/// Parsed command-line flags with typed, defaulted accessors.
class CliFlags {
 public:
  /// Parse argv. Throws std::invalid_argument on malformed input.
  /// `known` lists accepted flag names (without the leading "--"); pass an
  /// empty list to accept anything.
  CliFlags(int argc, const char* const* argv, std::vector<std::string> known = {});

  /// True if the flag was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// String value, or `def` if absent.
  [[nodiscard]] std::string get_string(const std::string& name, std::string def) const;

  /// Integer value, or `def` if absent. Accepts "40k"/"2m" suffixes.
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;

  /// Double value, or `def` if absent.
  [[nodiscard]] double get_double(const std::string& name, double def) const;

  /// Boolean: present with no value or with value "true"/"1" => true.
  [[nodiscard]] bool get_bool(const std::string& name, bool def = false) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Parse a human-friendly count ("40k", "2.5m", "1000"). Throws on garbage.
std::int64_t parse_count(const std::string& text);

}  // namespace treecode
