#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace treecode {

double norm_2(std::span<const double> a) {
  double s = 0.0;
  for (double v : a) s += v * v;
  return std::sqrt(s);
}

double relative_error_2norm(std::span<const double> a, std::span<const double> a_approx) {
  assert(a.size() == a_approx.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - a_approx[i];
    num += d * d;
    den += a[i] * a[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::sqrt(num / den);
}

double relative_error_maxnorm(std::span<const double> a, std::span<const double> a_approx) {
  assert(a.size() == a_approx.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num = std::max(num, std::abs(a[i] - a_approx[i]));
    den = std::max(den, std::abs(a[i]));
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return num / den;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

}  // namespace treecode
