#pragma once

/// \file stats.hpp
/// Error norms and summary statistics used by experiments and tests.

#include <cstddef>
#include <span>

namespace treecode {

/// The paper's error measure: relative 2-norm between an accurate vector `a`
/// and an approximation `a_approx`, i.e. ||a - a'||_2 / ||a||_2.
double relative_error_2norm(std::span<const double> a, std::span<const double> a_approx);

/// Relative max-norm: max_i |a_i - a'_i| / max_i |a_i|.
double relative_error_maxnorm(std::span<const double> a, std::span<const double> a_approx);

/// Max absolute componentwise difference.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// 2-norm of a vector.
double norm_2(std::span<const double> a);

/// Summary of a sample: min / max / mean / population stddev.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

/// Compute a Summary over the sample (empty input gives a zero Summary).
Summary summarize(std::span<const double> values);

}  // namespace treecode
