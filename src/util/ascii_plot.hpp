#pragma once

/// \file ascii_plot.hpp
/// Minimal ASCII line plots so bench binaries can render the paper's figures
/// (Figure 2: error-vs-n and cost-vs-n curves) directly in the terminal.

#include <string>
#include <vector>

namespace treecode {

/// One named series of (x, y) samples.
struct PlotSeries {
  std::string name;
  char marker = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// Options for render_plot.
struct PlotOptions {
  int width = 72;        ///< Plot area width in characters.
  int height = 20;       ///< Plot area height in characters.
  bool log_x = false;    ///< Logarithmic x axis (requires x > 0).
  bool log_y = false;    ///< Logarithmic y axis (requires y > 0).
  std::string title;     ///< Printed above the plot.
  std::string x_label;   ///< Printed below the x axis.
  std::string y_label;   ///< Printed beside the y axis.
};

/// Render series as a character-grid scatter/line plot with axis ranges and a
/// legend. Series points are plotted with each series' marker; where series
/// overlap, the later series wins.
std::string render_plot(const std::vector<PlotSeries>& series, const PlotOptions& opts);

}  // namespace treecode
