#include "util/resource_governor.hpp"

#include <chrono>
#include <limits>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/fault_inject.hpp"

namespace treecode {

namespace {

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::size_t ResourceGovernor::remaining() const noexcept {
  const std::size_t cap = budget();
  if (cap == 0) return std::numeric_limits<std::size_t>::max();
  const std::size_t in_use = used();
  return in_use >= cap ? 0 : cap - in_use;
}

bool ResourceGovernor::try_reserve(std::size_t bytes, const char* label) noexcept {
  reservations_.fetch_add(1, std::memory_order_relaxed);
  const bool injected = fault::fire(fault::Site::kEngineAlloc);
  const std::size_t cap = budget();
  bool denied = injected;
  if (!denied && cap != 0) {
    // CAS loop instead of fetch_add/rollback: a rollback window would let a
    // concurrent reserve observe phantom usage and deny spuriously.
    std::size_t cur = used_.load(std::memory_order_relaxed);
    for (;;) {
      if (bytes > cap || cur > cap - bytes) {
        denied = true;
        break;
      }
      if (used_.compare_exchange_weak(cur, cur + bytes, std::memory_order_relaxed)) {
        break;
      }
    }
  } else if (!denied) {
    used_.fetch_add(bytes, std::memory_order_relaxed);
  }
  if (denied) {
    denials_.fetch_add(1, std::memory_order_relaxed);
    last_denial_fault_.store(injected, std::memory_order_relaxed);
    obs::registry().counter(obs::metric::kGovernorDenials).add(1);
    obs::recorder::record(obs::recorder::Category::kCustom, label,
                          static_cast<double>(bytes));
    return false;
  }
  obs::registry().gauge(obs::metric::kGovernorUsedBytes).record_max(static_cast<double>(used()));
  return true;
}

bool ResourceGovernor::can_reserve(std::size_t bytes) const noexcept {
  const std::size_t cap = budget();
  if (cap == 0) return true;
  const std::size_t in_use = used();
  return bytes <= cap && in_use <= cap - bytes;
}

void ResourceGovernor::release(std::size_t bytes) noexcept {
  std::size_t cur = used_.load(std::memory_order_relaxed);
  for (;;) {
    const std::size_t next = cur >= bytes ? cur - bytes : 0;
    if (used_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) return;
  }
}

void ResourceGovernor::arm_deadline(double seconds) noexcept {
  if (seconds <= 0.0) {
    disarm_deadline();
    return;
  }
  const auto delta = static_cast<std::int64_t>(seconds * 1e9);
  deadline_ns_.store(steady_now_ns() + delta, std::memory_order_relaxed);
}

bool ResourceGovernor::deadline_expired() const noexcept {
  const std::int64_t at = deadline_ns_.load(std::memory_order_relaxed);
  return at != 0 && steady_now_ns() >= at;
}

}  // namespace treecode
