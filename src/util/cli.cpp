#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace treecode {

namespace {
bool is_known(const std::vector<std::string>& known, const std::string& name) {
  return known.empty() || std::find(known.begin(), known.end(), name) != known.end();
}
}  // namespace

CliFlags::CliFlags(int argc, const char* const* argv, std::vector<std::string> known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got: " + arg);
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // Look ahead: a following token that is not a flag is this flag's value.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!is_known(known, name)) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
    values_[name] = value;
  }
}

bool CliFlags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliFlags::get_string(const std::string& name, std::string def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : parse_count(it->second);
}

double CliFlags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("bad numeric value for --" + name + ": " + it->second);
  }
  return v;
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::int64_t parse_count(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("empty count");
  std::size_t pos = 0;
  const double v = std::stod(text, &pos);
  double mult = 1.0;
  if (pos < text.size()) {
    std::string suffix = text.substr(pos);
    std::transform(suffix.begin(), suffix.end(), suffix.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    if (suffix == "k") {
      mult = 1e3;
    } else if (suffix == "m") {
      mult = 1e6;
    } else if (suffix == "g" || suffix == "b") {
      mult = 1e9;
    } else {
      throw std::invalid_argument("bad count: " + text);
    }
  }
  return static_cast<std::int64_t>(v * mult);
}

}  // namespace treecode
