#pragma once

/// \file validate.hpp
/// Input validation for particle data: the defensive layer in front of
/// every evaluator.
///
/// The paper's error analysis (Theorems 1-3) presumes finite charges and
/// positions; a single NaN position poisons the SFC sort (NaN breaks the
/// comparator's strict weak ordering), the quantizer (float->int cast of
/// NaN is UB), and every potential downstream. Rather than trusting
/// callers, `validate_particles` produces a ValidationReport and a
/// ValidationPolicy decides what happens to it:
///
///  * kThrow    — error-severity issues raise ValidationError (default);
///  * kSanitize — invalid particles are dropped silently, the report is
///                kept for inspection;
///  * kWarn     — like kSanitize, but the report summary is printed to
///                stderr.
///
/// Warning-severity issues (empty system, coincident particles, zero
/// total charge) never throw: the evaluators handle them defensively, but
/// the report flags them so callers can tell a degenerate answer from a
/// meaningful one.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "geom/vec3.hpp"

namespace treecode {

/// What to do when validation finds error-severity issues.
enum class ValidationPolicy {
  kThrow,     ///< raise ValidationError (fail fast; the default)
  kSanitize,  ///< drop invalid particles, keep the report
  kWarn,      ///< drop invalid particles and print the summary to stderr
};

/// Everything validation found about one particle set.
///
/// Error severity (can trigger the policy): non-finite positions or
/// charges. Warning severity (always tolerated, only recorded): empty
/// system, coincident particles, zero total absolute charge.
struct ValidationReport {
  std::size_t particles_checked = 0;
  std::vector<std::size_t> non_finite_positions;  ///< caller indices
  std::vector<std::size_t> non_finite_charges;    ///< caller indices
  /// Particles sharing an exact position with an earlier particle. The
  /// P2P kernels skip r == 0 source-target pairs, so coincident particles
  /// silently *lose* their mutual interaction — worth knowing about.
  std::size_t coincident_particles = 0;
  bool empty_system = false;
  bool zero_total_charge = false;

  /// Any error-severity issue present?
  [[nodiscard]] bool has_errors() const noexcept {
    return !non_finite_positions.empty() || !non_finite_charges.empty();
  }

  /// Any warning-severity issue present?
  [[nodiscard]] bool has_warnings() const noexcept {
    return empty_system || coincident_particles > 0 || zero_total_charge;
  }

  [[nodiscard]] bool clean() const noexcept { return !has_errors() && !has_warnings(); }

  /// Sorted, de-duplicated union of the error-severity particle indices —
  /// exactly the set a sanitizing tree build drops.
  [[nodiscard]] std::vector<std::size_t> invalid_particles() const;

  /// One-line human-readable account of every issue found.
  [[nodiscard]] std::string summary() const;
};

/// Thrown by ValidationPolicy::kThrow; carries the full report.
class ValidationError : public std::invalid_argument {
 public:
  explicit ValidationError(ValidationReport report);
  [[nodiscard]] const ValidationReport& report() const noexcept { return report_; }

 private:
  ValidationReport report_;
};

/// Inspect one particle set (parallel position/charge arrays; sizes must
/// match). Pure check — never throws, never modifies.
ValidationReport validate_particles(std::span<const Vec3> positions,
                                    std::span<const double> charges);

/// Inspect a set of evaluation points (targets of an `evaluate_at` / plan
/// compile). Targets carry no charges, so only position finiteness is
/// checked; non-finite entries land in `non_finite_positions` (caller
/// indices). Under a sanitizing policy the evaluators leave the offending
/// targets' output slots at zero instead of dropping them — every caller
/// index keeps its result slot.
ValidationReport validate_targets(std::span<const Vec3> points);

/// Apply `policy` to `report`: throws ValidationError on errors under
/// kThrow, prints the summary to stderr under kWarn when anything was
/// found, does nothing under kSanitize. `context` prefixes the message.
void enforce_validation(const ValidationReport& report, ValidationPolicy policy,
                        const char* context);

/// True iff every component of every span element is finite. Used for the
/// cheap O(n) re-checks on charge/moment override spans that bypass tree
/// construction (the BEM operators swap charges every GMRES iteration).
[[nodiscard]] bool all_finite(std::span<const double> values) noexcept;
[[nodiscard]] bool all_finite(std::span<const Vec3> values) noexcept;

}  // namespace treecode
