#pragma once

/// \file resource_governor.hpp
/// Session-wide resource governance: byte accounting with a hard budget,
/// plus an armable evaluation deadline.
///
/// BENCH_engine.json puts the compiled-plan + basis footprint near 746 MB
/// for only 35k sources — an unguarded compile in a memory-constrained
/// deployment does not fail gracefully, it gets OOM-killed. The governor
/// turns "hope the allocator succeeds" into an explicit protocol: every
/// durable engine allocation (plan storage, evaluation bases, multipole
/// coefficients) first reserves its bytes here, and a denial surfaces as a
/// typed kMemoryBudget error that the degradation ladder (eval_session.hpp)
/// converts into a cheaper serving strategy instead of a dead process.
///
/// Accounting covers *durable* session footprint — storage that lives past
/// the call that allocates it. Transient compile scratch (per-target entry
/// vectors before the flatten) is of the same order as the plan itself and
/// is documented headroom, not tracked.
///
/// Determinism contract: reservation outcomes depend only on the byte
/// ledger and the (serial) reservation order — never on wall time or thread
/// scheduling — so every degradation decision derived from them is
/// bitwise-identical across thread counts, matching the TSan stress-suite
/// guarantee. The fault harness (fault_inject.hpp, site kEngineAlloc)
/// shares the reservation ordinal stream, which is what makes "fail the Nth
/// engine allocation" a meaningful, replayable instruction.
///
/// The deadline is the one wall-clock element: arm_deadline() stamps an
/// expiry; workers poll deadline_expired() between blocks (cooperative, via
/// CancellationToken). Deadline outcomes are *reported* deterministically
/// (kDeadline) but which block observes the expiry first is inherently
/// timing-dependent — which is why the ladder never chooses a rung based on
/// the deadline, only on the ledger.
///
/// Thread safety: reserve/release use relaxed atomics and may be called
/// from any thread; the ledger is exact. Arming (budget, deadline) is a
/// serial-phase operation by the owning session.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace treecode {

/// Byte-budget ledger + cooperative deadline for one engine session.
class ResourceGovernor {
 public:
  ResourceGovernor() = default;
  explicit ResourceGovernor(std::size_t budget_bytes) : budget_(budget_bytes) {}

  /// 0 = unlimited (every reservation succeeds; the ledger still counts).
  void set_budget(std::size_t bytes) noexcept {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t budget() const noexcept {
    return budget_.load(std::memory_order_relaxed);
  }
  /// Governing at all? (budget set). Disabled governors cost two relaxed
  /// loads per reservation and nothing per replay block.
  [[nodiscard]] bool enabled() const noexcept { return budget() != 0; }

  [[nodiscard]] std::size_t used() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }
  /// Bytes still reservable; SIZE_MAX when unlimited.
  [[nodiscard]] std::size_t remaining() const noexcept;

  /// Reserve `bytes` against the budget. False when the reservation would
  /// exceed it — or when fault site kEngineAlloc fires at this ordinal
  /// (then last_denial() reports kFaultInjected instead of kMemoryBudget).
  /// Counts one reservation ordinal either way. `label` names the
  /// allocation in the flight-recorder event a denial drops.
  [[nodiscard]] bool try_reserve(std::size_t bytes, const char* label) noexcept;

  /// Would try_reserve(bytes) succeed right now? No ledger change, no
  /// ordinal consumed, no fault-site hit — a pure pre-flight check.
  [[nodiscard]] bool can_reserve(std::size_t bytes) const noexcept;

  /// Return bytes to the ledger (clamped at zero against release-without-
  /// reserve bugs rather than wrapping).
  void release(std::size_t bytes) noexcept;

  /// RAII ownership of one reservation. The static analyzer
  /// (scripts/analyze, rule governor-raii) flags raw try_reserve/release
  /// pairs outside this file: between a manual reserve and its release,
  /// any throw leaks the bytes from the ledger for the session's lifetime.
  /// A Reservation returns them from whatever scope unwinds it.
  ///
  /// Move-only. An empty guard (default-constructed, denied, moved-from,
  /// or released) is falsy and owns nothing. `absorb()` merges another
  /// guard's bytes into this one for durable storage that grows in steps
  /// (the p2m basis pool) but is returned as one block.
  class [[nodiscard]] Reservation {
   public:
    Reservation() = default;
    Reservation(Reservation&& other) noexcept
        : governor_(other.governor_), bytes_(other.bytes_) {
      other.governor_ = nullptr;
      other.bytes_ = 0;
    }
    Reservation& operator=(Reservation&& other) noexcept {
      if (this != &other) {
        release();
        governor_ = other.governor_;
        bytes_ = other.bytes_;
        other.governor_ = nullptr;
        other.bytes_ = 0;
      }
      return *this;
    }
    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;
    ~Reservation() { release(); }

    /// Held bytes (0 when empty).
    [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
    /// Holding a successful reservation?
    explicit operator bool() const noexcept { return governor_ != nullptr; }

    /// Return the bytes to the ledger now (idempotent).
    void release() noexcept {
      if (governor_ != nullptr) {
        governor_->release(bytes_);
        governor_ = nullptr;
        bytes_ = 0;
      }
    }

    /// Take over `other`'s bytes, merging into this guard. Both must be
    /// against the same governor (or either may be empty).
    void absorb(Reservation&& other) noexcept {
      if (!other) {
        return;
      }
      if (governor_ == nullptr) {
        *this = static_cast<Reservation&&>(other);
        return;
      }
      bytes_ += other.bytes_;
      other.governor_ = nullptr;
      other.bytes_ = 0;
    }

   private:
    friend class ResourceGovernor;
    Reservation(ResourceGovernor* governor, std::size_t bytes) noexcept
        : governor_(governor), bytes_(bytes) {}

    ResourceGovernor* governor_ = nullptr;
    std::size_t bytes_ = 0;
  };

  /// try_reserve with RAII ownership: empty guard on denial (same ordinal
  /// accounting and fault-site semantics), owning guard on success.
  [[nodiscard]] Reservation reserve(std::size_t bytes,
                                    const char* label) noexcept {
    if (!try_reserve(bytes, label)) {
      return Reservation{};
    }
    return Reservation{this, bytes};
  }

  /// True when the last denial came from the fault harness, not the budget.
  [[nodiscard]] bool last_denial_was_fault() const noexcept {
    return last_denial_fault_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t reservations() const noexcept {
    return reservations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t denials() const noexcept {
    return denials_.load(std::memory_order_relaxed);
  }

  /// Arm a deadline `seconds` from now (<= 0 disarms). Serial-phase only.
  void arm_deadline(double seconds) noexcept;
  void disarm_deadline() noexcept { deadline_ns_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] bool deadline_armed() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }
  /// Cooperative poll: has the armed deadline passed? Safe from workers.
  [[nodiscard]] bool deadline_expired() const noexcept;

  /// One consistent-enough read of the whole ledger — what introspection
  /// snapshots (engine/introspect.hpp, treecode-inspect) report. Each field
  /// is an independent relaxed load; the ledger may move between them, which
  /// is fine for a diagnostic view.
  struct Snapshot {
    std::size_t budget = 0;
    std::size_t used = 0;
    std::size_t remaining = 0;
    std::uint64_t reservations = 0;
    std::uint64_t denials = 0;
    bool enabled = false;
    bool deadline_armed = false;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot s;
    s.budget = budget();
    s.used = used();
    s.remaining = remaining();
    s.reservations = reservations();
    s.denials = denials();
    s.enabled = enabled();
    s.deadline_armed = deadline_armed();
    return s;
  }

 private:
  std::atomic<std::size_t> budget_{0};
  std::atomic<std::size_t> used_{0};
  std::atomic<std::uint64_t> reservations_{0};
  std::atomic<std::uint64_t> denials_{0};
  std::atomic<bool> last_denial_fault_{false};
  /// steady_clock expiry in ns since epoch; 0 = disarmed.
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace treecode
