#pragma once

/// \file table.hpp
/// Plain-text table formatting for the benchmark harness.
///
/// Every bench binary reproduces one of the paper's tables/figures; this
/// helper renders aligned columns so the output reads like the paper's
/// tables and can also be dumped as CSV for postprocessing.

#include <cstddef>
#include <string>
#include <vector>

namespace treecode {

/// Column-aligned text table. Cells are strings; use the `fmt_*` helpers to
/// format numbers consistently.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append one row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns, a header underline, and 2-space gutters.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (no alignment, comma-separated, header first).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Column headers, as given to the constructor.
  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }

  /// All rows (each padded to the header width by add_row).
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double in fixed notation with `digits` decimals.
std::string fmt_fixed(double v, int digits);

/// Format a double in scientific notation with `digits` significant decimals.
std::string fmt_sci(double v, int digits);

/// Format an integer with thousands separators ("12,345,678").
std::string fmt_count(long long v);

/// Format a large count in the paper's style ("254 million", "12.4 million"),
/// falling back to fmt_count below one million.
std::string fmt_millions(long long v);

}  // namespace treecode
