#pragma once

/// \file eval_session.hpp
/// The evaluation engine: compile an interaction plan once, replay it for
/// every subsequent charge vector.
///
/// An EvalSession owns a built Tree plus everything derived from it that is
/// charge-independent: the Theorem-3 degree table, the thread pool, and an
/// LRU cache of compiled EvalPlans. The intended lifecycle, mirroring the
/// paper's GMRES-over-fixed-geometry application:
///
///     engine::EvalSession session(std::move(tree), config);
///     auto plan = session.compile(targets);     // one alpha-MAC traversal
///     for (each solver iteration) {
///       session.update_charges(q);              // geometry untouched
///       EvalResult r = session.evaluate(*plan); // list replay, no tree walk
///     }
///
/// Charge refresh is lazy and partial: update_charges only bumps an epoch;
/// the next evaluate rebuilds (P2M, from the node's own particles) exactly
/// the stale nodes the plan's M2P list references, reusing the allocated
/// coefficient storage. Nodes never referenced by any plan — typically the
/// top levels, which never pass the MAC for surface targets yet carry the
/// highest degrees and largest particle counts — are never built at all.
///
/// Plans stay valid as long as the session's tree and config live, i.e.
/// forever: geometry, degrees, and per-node |q| aggregates are frozen at
/// construction, and update_charges touches none of them. A different
/// particle set or config means a new session.
///
/// ## Failure taxonomy and the try_ API
///
/// Every fallible entry point comes in two forms: `try_foo()` returns
/// `Expected<...>` carrying a typed ErrorCode (util/expected.hpp) and never
/// throws; the legacy `foo()` wrapper unwraps via EngineError for callers
/// that prefer exceptions. Engine code itself contains no `throw` —
/// enforced by scripts/treecode_lint.py rule `engine-returns-expected`.
/// Every constructed Error increments `engine.errors` and arms the flight
/// recorder with the error-code name as the trigger reason.
///
/// ## Resource governance and the degradation ladder
///
/// When EvalConfig::memory_budget_bytes is set, every durable allocation —
/// compiled plan storage, the m2p evaluation basis, multipole coefficient
/// batches, the p2m refresh basis — is first reserved against the
/// session's ResourceGovernor. A denial does not fail the evaluation: the
/// session steps down a fixed ladder, reporting the serving rung in
/// EvalStats::served_rung:
///
///   rung 0  kBasisReplay  compiled plan + precomputed m2p basis
///   rung 1  kPlainReplay  compiled plan, full m2p kernels
///   rung 2  kTraversal    uncompiled alpha-MAC traversal (transient
///                         multipoles, nothing retained)
///   rung 3  kDirect       per-target exact P2P (no multipoles at all)
///
/// Rungs 0-2 produce bitwise-identical potentials and Theorem-1 bounds
/// (replay is entry-for-entry the fresh traversal; the basis is bitwise-
/// equal to the full kernel); rung 3 is exact summation with zero
/// truncation error. Rung choice depends only on the governor's byte
/// ledger and (serially ordered) injected faults — never wall time or
/// thread scheduling — so it is bitwise-deterministic across thread
/// counts. Governance covers the durable evaluation state; the tree,
/// charges, and transient compile scratch are documented headroom.
///
/// ## Deadlines
///
/// EvalConfig::deadline_seconds arms a wall-clock deadline per evaluation,
/// enforced cooperatively: replay and direct-summation workers poll
/// between blocks and cancel the sweep via a CancellationToken on expiry.
/// The outcome is kDeadline — a hard error by default, or a partial result
/// (EvalStats::targets_served valid targets) under deadline_partial. The
/// deadline never influences rung choice, only completion.
///
/// Determinism: a replay performs the identical kernel calls in the
/// identical order as a fresh traversal (see eval_plan.hpp), so potentials
/// — and tracked error bounds — are bitwise-equal to BarnesHutEvaluator
/// output at every thread count and block size.
///
/// Thread safety: the session parallelizes internally over its own pool
/// but external calls must be serialized — compile, update_charges, and
/// evaluate all mutate session state (cache, epochs, multipoles).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/degree_policy.hpp"
#include "engine/eval_plan.hpp"
#include "engine/plan_cache.hpp"
#include "multipole/expansion.hpp"
#include "parallel/thread_pool.hpp"
#include "tree/octree.hpp"
#include "util/expected.hpp"
#include "util/resource_governor.hpp"

namespace treecode::engine {

/// Compile-once / replay-many treecode evaluator over one tree + config.
class EvalSession {
 public:
  /// Session tuning knobs (none affect results — replay output is
  /// bitwise-identical to a fresh traversal regardless).
  struct Options {
    /// Compiled plans kept per session, evicted LRU.
    std::size_t plan_cache_capacity = 8;
    /// Byte bound on the *total* resident compiled plans (the cache evicts
    /// LRU past it, and declines to retain a single plan larger than it).
    /// 0 = count-bounded only.
    std::size_t plan_cache_byte_capacity = 0;
    /// Per-plan byte budget for the precomputed m2p evaluation basis (the
    /// charge-independent 1/r + Y_n^m factors; see eval_plan.hpp). Compile
    /// covers entries in schedule order until the budget is exhausted;
    /// uncovered entries replay through the full m2p kernel with identical
    /// results. 0 disables precomputation entirely.
    std::size_t basis_budget_bytes = std::size_t{512} << 20;
    /// Session-wide byte budget for the p2m refresh basis (per-particle rho
    /// powers and conjugated harmonics, shared across plans). Nodes are
    /// covered on first refresh until the budget is exhausted; uncovered
    /// nodes rebuild through the full p2m kernel with identical results.
    std::size_t refresh_basis_budget_bytes = std::size_t{512} << 20;
    /// Master switch for both basis precomputes (gradient plans never
    /// precompute the m2p side: m2p_grad has no basis form).
    bool precompute_basis = true;
  };

  /// Takes ownership of the tree; validates the config and assigns
  /// Theorem-3 degrees. No multipole is built yet — the first evaluate
  /// builds exactly what its plan references. The governor budget comes
  /// from EvalConfig::memory_budget_bytes.
  EvalSession(Tree tree, const EvalConfig& config, const Options& options);
  EvalSession(Tree tree, const EvalConfig& config, std::size_t plan_cache_capacity = 8)
      : EvalSession(std::move(tree), config,
                    Options{.plan_cache_capacity = plan_cache_capacity}) {}

  /// Compile (or fetch from the LRU cache) the interaction plan for
  /// arbitrary evaluation points. Target coordinates are validated under
  /// the tree's ValidationPolicy: kThrow yields kNonFinite on non-finite
  /// targets; kSanitize/kWarn keep the offending targets' output slots
  /// (zeroed) and record them in the plan's skipped_targets. A governor
  /// denial of the plan's bytes yields kMemoryBudget (the ladder in
  /// try_evaluate_at then serves without a plan); a denial of only the
  /// basis bytes silently yields a basis-free (rung-1) plan.
  [[nodiscard]] Expected<std::shared_ptr<const EvalPlan>> try_compile(
      std::span<const Vec3> targets);

  /// Plan for evaluating at the tree's own particles (self-interaction
  /// excluded by the P2P kernels' r == 0 skip, as in BarnesHutEvaluator).
  [[nodiscard]] Expected<std::shared_ptr<const EvalPlan>> try_compile_self();

  /// Replace the source charges, given in the *caller's original* particle
  /// order (size tree().source_size()). O(n) gather + epoch bump; the
  /// multipole refresh happens lazily in the next evaluate. Errors:
  /// kInvalidArgument on size mismatch, kNonFinite on non-finite values
  /// (the session's charges are left untouched — no poisoned basis pools).
  [[nodiscard]] Expected<void> try_update_charges(std::span<const double> charges);

  /// Same, but already in the tree's sorted order (size
  /// tree().num_particles()) — the BEM matvec hot path, which gathers
  /// through original_index() itself.
  [[nodiscard]] Expected<void> try_update_charges_sorted(
      std::span<const double> charges);

  /// Replay a compiled plan against the current charges: refresh stale
  /// plan-referenced multipoles, then accumulate the frozen interaction
  /// lists. No tree walk, no MAC tests, no degree decisions. The plan must
  /// come from this session (kInvalidArgument otherwise, shape-checked).
  /// A governor denial during refresh degrades to rungs 2-3 over the
  /// plan's own targets.
  [[nodiscard]] Expected<EvalResult> try_evaluate(const EvalPlan& plan);

  /// Multi-RHS batched replay: evaluate `plan` against k charge columns
  /// (each in the *caller's original* particle order, size
  /// tree().source_size()) in one walk of the frozen entry stream per
  /// column block (SoA blocks of up to 8 columns). Column c of the result
  /// is bitwise-identical to try_update_charges(charge_columns[c]) followed
  /// by try_evaluate(plan), at every thread count and batch width: the
  /// batch shares only charge-independent work (distances, the shared
  /// sqrt denominator, the streamed m2p/p2m bases) and performs each
  /// column's arithmetic on identical operands in identical order. The
  /// batched path leaves the session's own charges, epochs, and multipoles
  /// untouched. Gradient or audit configs — and a governor denial of the
  /// batch workspace (engine.batch_denied) — fall back to a sequential
  /// per-column replay (engine.batch_fallbacks), still bitwise-identical
  /// but leaving the session's charges at the last column. Errors:
  /// kInvalidArgument (no columns, size mismatch, foreign plan),
  /// kNonFinite (bad column input, or a non-finite computed potential —
  /// the message names the target and column), kDeadline.
  [[nodiscard]] Expected<std::vector<EvalResult>> try_evaluate_batch(
      const EvalPlan& plan,
      std::span<const std::span<const double>> charge_columns);

  /// Compile + evaluate with the full degradation ladder: warm calls with
  /// a cached plan skip straight to replay; a compile denied by the
  /// governor falls through to the uncompiled traversal or direct rungs.
  [[nodiscard]] Expected<EvalResult> try_evaluate_at(std::span<const Vec3> targets);

  /// Ladder evaluation at the tree's own particles, results in the
  /// caller's original particle order (validation-dropped slots stay zero).
  [[nodiscard]] Expected<EvalResult> try_evaluate();

  // Legacy exception wrappers: unwrap the Expected, converting an Error to
  // EngineError (a std::runtime_error carrying the ErrorCode).
  [[nodiscard]] std::shared_ptr<const EvalPlan> compile(std::span<const Vec3> targets) {
    return try_compile(targets).value_or_throw();
  }
  [[nodiscard]] std::shared_ptr<const EvalPlan> compile_self() {
    return try_compile_self().value_or_throw();
  }
  void update_charges(std::span<const double> charges) {
    try_update_charges(charges).value_or_throw();
  }
  void update_charges_sorted(std::span<const double> charges) {
    try_update_charges_sorted(charges).value_or_throw();
  }
  [[nodiscard]] EvalResult evaluate(const EvalPlan& plan) {
    return try_evaluate(plan).value_or_throw();
  }
  [[nodiscard]] EvalResult evaluate_at(std::span<const Vec3> targets) {
    return try_evaluate_at(targets).value_or_throw();
  }
  [[nodiscard]] EvalResult evaluate() { return try_evaluate().value_or_throw(); }

  [[nodiscard]] const Tree& tree() const noexcept { return tree_; }
  [[nodiscard]] const EvalConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DegreeAssignment& degrees() const noexcept { return degrees_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] const ThreadPool& pool() const noexcept { return pool_; }
  [[nodiscard]] const PlanCache& cache() const noexcept { return cache_; }
  [[nodiscard]] PlanCache& cache() noexcept { return cache_; }
  /// The session's byte ledger + deadline (budget from the config; tests
  /// may tighten it mid-session via set_budget).
  [[nodiscard]] ResourceGovernor& governor() noexcept { return governor_; }
  [[nodiscard]] const ResourceGovernor& governor() const noexcept { return governor_; }
  /// Current charges in tree-sorted order (what the next evaluate uses).
  [[nodiscard]] std::span<const double> sorted_charges() const noexcept {
    return sorted_charges_;
  }

 private:
  struct CompileAccumulator;

  // Entry-point bodies: each public try_* above is a thin wrapper that
  // times the call and emits one obs::telemetry RequestRecord at exit
  // (api, plan key, rung, outcome, wall seconds, resident bytes, deadline
  // slack, audit tightness) — success or failure.
  Expected<std::shared_ptr<const EvalPlan>> try_compile_impl(
      std::span<const Vec3> targets, bool self);
  Expected<void> try_update_charges_impl(std::span<const double> charges);
  Expected<void> try_update_charges_sorted_impl(std::span<const double> charges);
  Expected<EvalResult> try_evaluate_impl(const EvalPlan& plan);
  Expected<std::vector<EvalResult>> try_evaluate_batch_impl(
      const EvalPlan& plan, std::span<const std::span<const double>> charge_columns);
  /// Per-column single-RHS replay: the batch path for configs without a
  /// batched kernel form (gradients, audits) or when the workspace was
  /// denied. Mutates the session's charges (last column wins).
  Expected<std::vector<EvalResult>> evaluate_batch_sequential(
      const EvalPlan& plan, std::span<const std::span<const double>> charge_columns);
  /// Best-effort p2m-basis coverage of every node `plan` references
  /// (charge-independent, budget-gated, shared with the single-RHS refresh
  /// pool) so a batch can rebuild per-column multipoles through
  /// p2m_apply_basis. Never fails: uncovered nodes use the full kernel.
  void cover_p2m_basis(const EvalPlan& plan);
  /// Shared ladder body for try_evaluate_at / try_evaluate; `key_out`
  /// reports the compiled plan's cache key (0 if compile was denied).
  Expected<EvalResult> try_evaluate_at_impl(std::span<const Vec3> targets,
                                            bool self, std::uint64_t& key_out);
  /// Rungs 0-1: replay `plan` (refresh + frozen-list accumulation).
  Expected<EvalResult> replay(const EvalPlan& plan);
  /// Rebuild the plan-referenced multipoles whose epoch is stale,
  /// reserving first-build coefficient bytes against the governor.
  Expected<void> try_ensure_refreshed(const EvalPlan& plan);
  /// Rungs 2-3 over raw targets, entered when a plan cannot be afforded.
  Expected<EvalResult> serve_degraded(std::span<const Vec3> targets, bool self);
  /// Rung 2: transient BarnesHutEvaluator traversal.
  Expected<EvalResult> serve_traversal(std::span<const Vec3> targets, bool self);
  /// Rung 3: exact per-target P2P summation.
  Expected<EvalResult> serve_direct(std::span<const Vec3> targets, bool self);
  /// Transient multipole bytes a rung-2 traversal needs (all nodes at
  /// their assigned degrees); computed once, geometry is frozen.
  [[nodiscard]] std::size_t traversal_reserve_bytes();

  Tree tree_;
  EvalConfig config_;
  Options options_;
  DegreeAssignment degrees_;
  ThreadPool pool_;
  ResourceGovernor governor_;
  /// Active charges in tree-sorted order; starts as the tree's own.
  std::vector<double> sorted_charges_;
  /// Lazily built per-node expansions; entry i is valid iff
  /// node_epoch_[i] == charge_epoch_.
  std::vector<MultipoleExpansion> multipoles_;
  std::vector<std::uint64_t> node_epoch_;  ///< 0 = never built
  std::uint64_t charge_epoch_ = 1;
  std::vector<std::int32_t> stale_;  ///< refresh scratch, reused across evaluates
  /// Per-node offset into the pooled p2m refresh basis (EvalPlan::kNoBasis
  /// = not covered; assigned on first refresh, budget-gated, then frozen —
  /// the basis depends only on geometry and the node's frozen degree).
  std::vector<std::uint64_t> p2m_basis_offset_;
  std::vector<double> p2m_basis_pool_;
  /// Budget reservations backing the two durable session pools above
  /// (multipole coefficients, p2m refresh basis). Grown by absorb() on
  /// each governed expansion; the bytes return to the ledger when the
  /// session dies. Declared after governor_: destroyed first, releasing
  /// into a live ledger.
  ResourceGovernor::Reservation multipole_reservation_;
  ResourceGovernor::Reservation p2m_reservation_;
  std::size_t traversal_bytes_ = 0;  ///< lazy traversal_reserve_bytes() memo
  PlanCache cache_;
};

}  // namespace treecode::engine
