#pragma once

/// \file eval_session.hpp
/// The evaluation engine: compile an interaction plan once, replay it for
/// every subsequent charge vector.
///
/// An EvalSession owns a built Tree plus everything derived from it that is
/// charge-independent: the Theorem-3 degree table, the thread pool, and an
/// LRU cache of compiled EvalPlans. The intended lifecycle, mirroring the
/// paper's GMRES-over-fixed-geometry application:
///
///     engine::EvalSession session(std::move(tree), config);
///     auto plan = session.compile(targets);     // one alpha-MAC traversal
///     for (each solver iteration) {
///       session.update_charges(q);              // geometry untouched
///       EvalResult r = session.evaluate(*plan); // list replay, no tree walk
///     }
///
/// Charge refresh is lazy and partial: update_charges only bumps an epoch;
/// the next evaluate rebuilds (P2M, from the node's own particles) exactly
/// the stale nodes the plan's M2P list references, reusing the allocated
/// coefficient storage. Nodes never referenced by any plan — typically the
/// top levels, which never pass the MAC for surface targets yet carry the
/// highest degrees and largest particle counts — are never built at all.
///
/// Plans stay valid as long as the session's tree and config live, i.e.
/// forever: geometry, degrees, and per-node |q| aggregates are frozen at
/// construction, and update_charges touches none of them. A different
/// particle set or config means a new session.
///
/// Determinism: a replay performs the identical kernel calls in the
/// identical order as a fresh traversal (see eval_plan.hpp), so potentials
/// — and tracked error bounds — are bitwise-equal to BarnesHutEvaluator
/// output at every thread count and block size.
///
/// Thread safety: the session parallelizes internally over its own pool
/// but external calls must be serialized — compile, update_charges, and
/// evaluate all mutate session state (cache, epochs, multipoles).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/degree_policy.hpp"
#include "engine/eval_plan.hpp"
#include "engine/plan_cache.hpp"
#include "multipole/expansion.hpp"
#include "parallel/thread_pool.hpp"
#include "tree/octree.hpp"

namespace treecode::engine {

/// Compile-once / replay-many treecode evaluator over one tree + config.
class EvalSession {
 public:
  /// Session tuning knobs (none affect results — replay output is
  /// bitwise-identical to a fresh traversal regardless).
  struct Options {
    /// Compiled plans kept per session, evicted LRU.
    std::size_t plan_cache_capacity = 8;
    /// Per-plan byte budget for the precomputed m2p evaluation basis (the
    /// charge-independent 1/r + Y_n^m factors; see eval_plan.hpp). Compile
    /// covers entries in schedule order until the budget is exhausted;
    /// uncovered entries replay through the full m2p kernel with identical
    /// results. 0 disables precomputation entirely.
    std::size_t basis_budget_bytes = std::size_t{512} << 20;
    /// Session-wide byte budget for the p2m refresh basis (per-particle rho
    /// powers and conjugated harmonics, shared across plans). Nodes are
    /// covered on first refresh until the budget is exhausted; uncovered
    /// nodes rebuild through the full p2m kernel with identical results.
    std::size_t refresh_basis_budget_bytes = std::size_t{512} << 20;
    /// Master switch for both basis precomputes (gradient plans never
    /// precompute the m2p side: m2p_grad has no basis form).
    bool precompute_basis = true;
  };

  /// Takes ownership of the tree; validates the config and assigns
  /// Theorem-3 degrees. No multipole is built yet — the first evaluate
  /// builds exactly what its plan references.
  EvalSession(Tree tree, const EvalConfig& config, const Options& options);
  EvalSession(Tree tree, const EvalConfig& config, std::size_t plan_cache_capacity = 8)
      : EvalSession(std::move(tree), config,
                    Options{.plan_cache_capacity = plan_cache_capacity}) {}

  /// Compile (or fetch from the LRU cache) the interaction plan for
  /// arbitrary evaluation points. Target coordinates are validated under
  /// the tree's ValidationPolicy: kThrow raises on non-finite targets;
  /// kSanitize/kWarn keep the offending targets' output slots (zeroed) and
  /// record them in the plan's skipped_targets.
  [[nodiscard]] std::shared_ptr<const EvalPlan> compile(std::span<const Vec3> targets);

  /// Plan for evaluating at the tree's own particles (self-interaction
  /// excluded by the P2P kernels' r == 0 skip, as in BarnesHutEvaluator).
  [[nodiscard]] std::shared_ptr<const EvalPlan> compile_self();

  /// Replace the source charges, given in the *caller's original* particle
  /// order (size tree().source_size()). O(n) gather + epoch bump; the
  /// multipole refresh happens lazily in the next evaluate. Throws
  /// std::invalid_argument on size mismatch or non-finite values.
  void update_charges(std::span<const double> charges);

  /// Same, but already in the tree's sorted order (size
  /// tree().num_particles()) — the BEM matvec hot path, which gathers
  /// through original_index() itself.
  void update_charges_sorted(std::span<const double> charges);

  /// Replay a compiled plan against the current charges: refresh stale
  /// plan-referenced multipoles, then accumulate the frozen interaction
  /// lists. No tree walk, no MAC tests, no degree decisions. The plan must
  /// come from this session.
  [[nodiscard]] EvalResult evaluate(const EvalPlan& plan);

  /// Convenience: compile(targets) + evaluate. Warm calls with a cached
  /// plan skip straight to replay.
  [[nodiscard]] EvalResult evaluate_at(std::span<const Vec3> targets);

  /// Convenience: compile_self() + evaluate, results in the caller's
  /// original particle order (validation-dropped slots stay zero).
  [[nodiscard]] EvalResult evaluate();

  [[nodiscard]] const Tree& tree() const noexcept { return tree_; }
  [[nodiscard]] const EvalConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DegreeAssignment& degrees() const noexcept { return degrees_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] const PlanCache& cache() const noexcept { return cache_; }
  /// Current charges in tree-sorted order (what the next evaluate uses).
  [[nodiscard]] std::span<const double> sorted_charges() const noexcept {
    return sorted_charges_;
  }

 private:
  struct CompileAccumulator;

  std::shared_ptr<const EvalPlan> compile_impl(std::span<const Vec3> targets, bool self);
  /// Rebuild the plan-referenced multipoles whose epoch is stale.
  void ensure_refreshed(const EvalPlan& plan);

  Tree tree_;
  EvalConfig config_;
  Options options_;
  DegreeAssignment degrees_;
  ThreadPool pool_;
  /// Active charges in tree-sorted order; starts as the tree's own.
  std::vector<double> sorted_charges_;
  /// Lazily built per-node expansions; entry i is valid iff
  /// node_epoch_[i] == charge_epoch_.
  std::vector<MultipoleExpansion> multipoles_;
  std::vector<std::uint64_t> node_epoch_;  ///< 0 = never built
  std::uint64_t charge_epoch_ = 1;
  std::vector<std::int32_t> stale_;  ///< refresh scratch, reused across evaluates
  /// Per-node offset into the pooled p2m refresh basis (EvalPlan::kNoBasis
  /// = not covered; assigned on first refresh, budget-gated, then frozen —
  /// the basis depends only on geometry and the node's frozen degree).
  std::vector<std::uint64_t> p2m_basis_offset_;
  std::vector<double> p2m_basis_pool_;
  PlanCache cache_;
};

}  // namespace treecode::engine
