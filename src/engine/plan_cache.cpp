#include "engine/plan_cache.hpp"

#include <cstring>
#include <utility>

#include "obs/recorder.hpp"

namespace treecode::engine {

namespace {

/// Bytewise target-set equality. Vec3 is three doubles with no padding, so
/// memcmp compares exact bit patterns — sanitized target sets containing
/// NaNs still compare equal to themselves, keeping the cache warm under
/// ValidationPolicy::kSanitize.
bool same_targets(const EvalPlan& plan, std::span<const Vec3> targets, bool self) {
  static_assert(sizeof(Vec3) == 3 * sizeof(double), "Vec3 must be padding-free");
  if (plan.self != self || plan.targets.size() != targets.size()) return false;
  if (targets.empty()) return true;
  return std::memcmp(plan.targets.data(), targets.data(),
                     targets.size() * sizeof(Vec3)) == 0;
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const EvalPlan> PlanCache::find(std::uint64_t key,
                                                std::span<const Vec3> targets,
                                                bool self) {
  const auto it = by_key_.find(key);
  if (it == by_key_.end() || !same_targets(**it->second, targets, self)) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  plans_.splice(plans_.begin(), plans_, it->second);  // touch: move to MRU
  return *it->second;
}

void PlanCache::insert(std::shared_ptr<const EvalPlan> plan) {
  if (plan == nullptr) return;
  const std::uint64_t key = plan->key;
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    plans_.erase(it->second);
    by_key_.erase(it);
  }
  while (plans_.size() >= capacity_) {
    by_key_.erase(plans_.back()->key);
    obs::recorder::record(obs::recorder::Category::kEviction, "plan_cache.evict",
                          static_cast<double>(plans_.back()->memory_bytes()));
    plans_.pop_back();
    ++evictions_;
  }
  plans_.push_front(std::move(plan));
  by_key_[key] = plans_.begin();
}

void PlanCache::clear() {
  plans_.clear();
  by_key_.clear();
}

}  // namespace treecode::engine
