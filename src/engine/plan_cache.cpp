#include "engine/plan_cache.hpp"

#include <atomic>
#include <cstring>
#include <utility>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/fault_inject.hpp"
#include "util/resource_governor.hpp"

namespace treecode::engine {

namespace {

/// Bytewise target-set equality. Vec3 is three doubles with no padding, so
/// memcmp compares exact bit patterns — sanitized target sets containing
/// NaNs still compare equal to themselves, keeping the cache warm under
/// ValidationPolicy::kSanitize.
bool same_targets(const EvalPlan& plan, std::span<const Vec3> targets, bool self) {
  static_assert(sizeof(Vec3) == 3 * sizeof(double), "Vec3 must be padding-free");
  if (plan.self != self || plan.targets.size() != targets.size()) return false;
  if (targets.empty()) return true;
  return std::memcmp(plan.targets.data(), targets.data(),
                     targets.size() * sizeof(Vec3)) == 0;
}

std::size_t plan_basis_bytes(const EvalPlan& plan) noexcept {
  return plan.basis.size() * sizeof(double);
}

/// Process-wide resident totals across every live PlanCache. The
/// engine.plan_bytes / engine.basis_bytes gauges publish these aggregates:
/// with one cache per tenant session, a per-cache gauge `set` would let
/// caches overwrite each other's totals and leave a destroyed tenant's
/// bytes on the series forever. Instead each cache contributes a delta on
/// every mutation and withdraws its whole contribution on destruction, so
/// the gauges track exactly the plans that are still resident somewhere.
std::atomic<long long> g_plan_bytes_total{0};
std::atomic<long long> g_basis_bytes_total{0};

}  // namespace

PlanCache::PlanCache(std::size_t capacity, std::size_t byte_capacity)
    : capacity_(capacity == 0 ? 1 : capacity), byte_capacity_(byte_capacity) {}

PlanCache::~PlanCache() {
  const std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();  // each ~Entry returns its reservation to the governor
  by_key_.clear();
  bytes_ = 0;
  basis_bytes_ = 0;
  publish_gauges_locked();  // withdraw this cache's share from the gauges
}

std::shared_ptr<const EvalPlan> PlanCache::find(std::uint64_t key,
                                                std::span<const Vec3> targets,
                                                bool self) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_key_.find(key);
  if (it == by_key_.end() || !same_targets(*it->second->plan, targets, self)) {
    ++misses_;
    return nullptr;
  }
  if (fault::fire(fault::Site::kCacheVerifyMiss)) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  plans_.splice(plans_.begin(), plans_, it->second);  // touch: move to MRU
  return it->second->plan;
}

void PlanCache::evict_lru_locked() {
  const Entry& victim = plans_.back();
  const std::size_t victim_bytes = victim.plan->memory_bytes();
  by_key_.erase(victim.plan->key);
  obs::recorder::record(obs::recorder::Category::kEviction, "plan_cache.evict",
                        static_cast<double>(victim_bytes));
  bytes_ -= victim_bytes;
  basis_bytes_ -= plan_basis_bytes(*victim.plan);
  plans_.pop_back();  // ~Entry returns the reservation to the budget
  ++evictions_;
}

void PlanCache::publish_gauges_locked() {
  const long long plan_delta = static_cast<long long>(bytes_) -
                               static_cast<long long>(published_bytes_);
  const long long basis_delta = static_cast<long long>(basis_bytes_) -
                                static_cast<long long>(published_basis_bytes_);
  const long long plan_total =
      g_plan_bytes_total.fetch_add(plan_delta, std::memory_order_relaxed) +
      plan_delta;
  const long long basis_total =
      g_basis_bytes_total.fetch_add(basis_delta, std::memory_order_relaxed) +
      basis_delta;
  published_bytes_ = bytes_;
  published_basis_bytes_ = basis_bytes_;
  obs::Registry& reg = obs::registry();
  reg.gauge(obs::metric::kEnginePlanBytes).set(static_cast<double>(plan_total));
  reg.gauge(obs::metric::kEngineBasisBytes).set(static_cast<double>(basis_total));
}

bool PlanCache::insert(std::shared_ptr<const EvalPlan> plan,
                       ResourceGovernor::Reservation reservation) {
  if (plan == nullptr) return false;
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t key = plan->key;
  const std::size_t new_bytes = plan->memory_bytes();
  if (const auto it = by_key_.find(key); it != by_key_.end()) {
    bytes_ -= it->second->plan->memory_bytes();
    basis_bytes_ -= plan_basis_bytes(*it->second->plan);
    plans_.erase(it->second);  // ~Entry releases the replaced reservation
    by_key_.erase(it);
  }
  if (byte_capacity_ != 0 && new_bytes > byte_capacity_) {
    // The plan alone busts the byte capacity: caching it would immediately
    // evict everything else and still sit over budget. Serve it transient;
    // `reservation` returns the bytes on the way out.
    obs::recorder::record(obs::recorder::Category::kEviction,
                          "plan_cache.uncacheable", static_cast<double>(new_bytes));
    publish_gauges_locked();
    return false;
  }
  while (!plans_.empty() &&
         (plans_.size() >= capacity_ ||
          (byte_capacity_ != 0 && bytes_ + new_bytes > byte_capacity_))) {
    evict_lru_locked();
  }
  bytes_ += new_bytes;
  basis_bytes_ += plan_basis_bytes(*plan);
  plans_.push_front(Entry{std::move(plan), std::move(reservation)});
  by_key_[key] = plans_.begin();
  publish_gauges_locked();
  return true;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();  // each ~Entry returns its reservation
  by_key_.clear();
  bytes_ = 0;
  basis_bytes_ = 0;
  publish_gauges_locked();
}

std::size_t PlanCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

std::size_t PlanCache::capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::size_t PlanCache::byte_capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return byte_capacity_;
}

std::size_t PlanCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t PlanCache::basis_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return basis_bytes_;
}

std::uint64_t PlanCache::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t PlanCache::evictions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::vector<PlanCache::PlanInfo> PlanCache::contents() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<PlanInfo> out;
  out.reserve(plans_.size());
  for (const auto& entry : plans_) {  // MRU first: list order is recency
    const EvalPlan& plan = *entry.plan;
    PlanInfo info;
    info.key = plan.key;
    info.self = plan.self;
    info.num_targets = plan.num_targets();
    info.num_entries = plan.entries.size();
    info.bytes = plan.memory_bytes();
    info.basis_bytes = plan_basis_bytes(plan);
    out.push_back(info);
  }
  return out;
}

}  // namespace treecode::engine
