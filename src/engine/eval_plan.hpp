#pragma once

/// \file eval_plan.hpp
/// A compiled traversal plan: the frozen output of one alpha-MAC tree walk.
///
/// The paper's BEM application applies the same treecode operator dozens of
/// times per GMRES solve over fixed geometry — only the charges change per
/// iteration. Every decision the traversal makes (MAC acceptance, Theorem-3
/// degree, budget demotion) depends only on geometry, the degree table, and
/// the per-cluster aggregate |q| frozen at tree build, so the interaction
/// lists can be compiled once and replayed for every subsequent charge
/// vector. EvalPlan is that compiled artifact; EvalSession produces and
/// replays it.
///
/// Layout: one flat entry stream, partitioned per target by `offsets`.
/// Entries preserve the exact DFS order of the fresh traversal — M2P and
/// P2P contributions interleave exactly as the tree walk produced them —
/// so a replay accumulates potentials in the identical floating-point
/// order and is bitwise-equal to a fresh traversal. Each entry packs a
/// node id and an interaction kind into one int32: `(node << 1) | is_p2p`.
///
/// Everything else in the plan is charge-independent bookkeeping computed
/// at compile time so the replay hot loop carries none of it: per-entry
/// Theorem-1 bounds (for budget/error-bound replay), per-target work costs
/// (for load-balanced scheduling stats), the schedule's EvalStats, and the
/// level/degree histograms the observability layer flushes per run.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "geom/vec3.hpp"
#include "obs/instrument.hpp"

namespace treecode::engine {

/// Frozen per-target interaction lists plus their replay schedule.
/// Immutable once compiled; shared between the session's LRU cache and any
/// callers holding the shared_ptr.
struct EvalPlan {
  /// Pack a node id and interaction kind into one entry.
  static constexpr std::int32_t make_entry(std::int32_t node, bool p2p) noexcept {
    return static_cast<std::int32_t>((static_cast<std::uint32_t>(node) << 1u) |
                                     (p2p ? 1u : 0u));
  }
  static constexpr std::int32_t node_of(std::int32_t entry) noexcept {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(entry) >> 1u);
  }
  static constexpr bool is_p2p(std::int32_t entry) noexcept { return (entry & 1) != 0; }

  /// Evaluation points, in the caller's order (a private copy: the cache
  /// verifies full target equality on every key hit, and replays must not
  /// depend on the caller keeping its span alive).
  std::vector<Vec3> targets;
  /// True when the targets are the tree's own sorted particles; replay then
  /// scatters results back to the caller's original particle order.
  bool self = false;
  /// Cache key: hash of the target set plus every decision-relevant
  /// EvalConfig field (alpha, degrees, mode/law/reference, budget, ...).
  std::uint64_t key = 0;

  /// Entry stream partition: target i owns entries [offsets[i], offsets[i+1]).
  std::vector<std::uint64_t> offsets;
  /// Interaction entries in exact fresh-traversal DFS order.
  std::vector<std::int32_t> entries;
  /// Theorem-1 bound of each M2P entry (0 for P2P slots), aligned with
  /// `entries`. Empty unless the config tracks bounds or enforces a budget;
  /// the bound depends only on frozen geometry (|q| aggregates are fixed at
  /// tree build), so replaying these reproduces error_bound bitwise.
  std::vector<double> entry_bounds;
  /// Per-target work proxy (multipole terms + P2P pairs), the same cost
  /// measure the fresh traversal reports per block to parallel_for_blocked.
  std::vector<std::uint64_t> target_cost;
  /// Sorted, de-duplicated node ids referenced by at least one M2P entry —
  /// the only nodes whose multipole expansions a replay ever reads, and
  /// therefore the only ones a charge refresh must rebuild. For surface
  /// targets this typically excludes the top tree levels (they never pass
  /// the MAC), which carry the highest degrees and largest particle counts.
  std::vector<std::int32_t> m2p_nodes;
  /// Targets dropped by a sanitizing validation policy (non-finite
  /// coordinates). They keep their (zero) output slot and own no entries.
  std::vector<std::uint32_t> skipped_targets;

  /// Absent-basis sentinel for `basis_offset`.
  static constexpr std::uint64_t kNoBasis = ~std::uint64_t{0};
  /// Per-entry offset into `basis` (kNoBasis for P2P entries and for M2P
  /// entries left to on-the-fly evaluation). Empty when no entry has a
  /// precomputed basis (gradient configs, basis budget exhausted or zero).
  std::vector<std::uint64_t> basis_offset;
  /// Pooled m2p evaluation basis: for each covered M2P entry,
  /// m2p_basis_size(degree) doubles (1/r plus the Y_n^m harmonics of the
  /// target direction — see m2p_basis() in multipole/operators.hpp). These
  /// are the exact doubles the fresh kernel would recompute per apply, so
  /// replaying them through m2p_apply_basis() is bitwise-identical while
  /// skipping the transcendentals and recurrences — the dominant m2p cost.
  /// The trade is memory ~ O(plan entries * terms), bounded by the
  /// session's basis budget; entries past the budget fall back to m2p().
  std::vector<double> basis;

  /// Charge-independent schedule statistics: interaction counts, budget
  /// demotions, degree range, max Theorem-2 bound. A replay copies these
  /// into its EvalResult and adds the run-dependent timings/work.
  EvalStats stats;
  obs::LevelCounts m2p_by_level{};
  obs::LevelCounts p2p_by_level{};
  obs::DegreeCounts degree_used{};
  double compile_seconds = 0.0;

  [[nodiscard]] std::size_t num_targets() const noexcept { return targets.size(); }
  [[nodiscard]] std::uint64_t num_entries() const noexcept { return entries.size(); }

  /// Approximate heap footprint of the compiled schedule.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return targets.size() * sizeof(Vec3) + offsets.size() * sizeof(std::uint64_t) +
           entries.size() * sizeof(std::int32_t) + entry_bounds.size() * sizeof(double) +
           target_cost.size() * sizeof(std::uint64_t) +
           m2p_nodes.size() * sizeof(std::int32_t) +
           skipped_targets.size() * sizeof(std::uint32_t) +
           basis_offset.size() * sizeof(std::uint64_t) + basis.size() * sizeof(double);
  }
};

}  // namespace treecode::engine
