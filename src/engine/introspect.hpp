#pragma once

/// \file introspect.hpp
/// One-call engine state snapshot: everything an operator asks "what is
/// this session doing right now?" — metrics, the governor's byte ledger,
/// the plan cache's resident plans, recent telemetry records, the flight
/// recorder ring, and pending warnings — as a single JSON document.
///
/// This is the read-only diagnostic surface of the future evaluation
/// service: the `treecode-inspect` CLI (tools/treecode_inspect.cpp) prints
/// exactly this document, and the SLO watchdog's status block can be
/// attached by the caller (the watchdog is owned by the monitoring loop,
/// not the session). Schema `treecode-inspect/v1`:
///
///   {"schema": "treecode-inspect/v1", "provenance": {...},
///    "session": {...}, "governor": {...}, "plan_cache":
///    {..., "plans": [...]}, "telemetry": {..., "records": [...]},
///    "flight_recorder": {...}, "metrics": {...}, "warnings": [...]}
///
/// Snapshotting is read-only but not atomic: each block reads its
/// subsystem independently, so counts across blocks may disagree by
/// in-flight requests. That is inherent to a diagnostic view of a live
/// process and fine for its purpose.

#include "engine/eval_session.hpp"
#include "obs/json.hpp"

namespace treecode::engine {

/// The governor block: budget/used/remaining bytes, reservation and denial
/// counts, whether governance and a deadline are armed.
[[nodiscard]] obs::Json governor_json(const ResourceGovernor& governor);

/// The plan-cache block: capacities, ledgers, hit/miss/eviction counts,
/// and one entry per resident plan (key, self, targets, entries, bytes).
[[nodiscard]] obs::Json plan_cache_json(const PlanCache& cache);

/// The full inspect document for one session. `session` may be null: the
/// process-wide blocks (metrics, telemetry, flight recorder, warnings) are
/// still emitted, with the session/governor/plan_cache blocks omitted.
[[nodiscard]] obs::Json inspect_json(const EvalSession* session);

}  // namespace treecode::engine
