#include "engine/introspect.hpp"

#include <cstdio>

#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"

namespace treecode::engine {

namespace {

obs::Json key_hex(std::uint64_t key) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(key));
  return {buf};
}

obs::Json session_json(const EvalSession& session) {
  obs::Json s = obs::Json::object();
  s["num_particles"] = static_cast<std::uint64_t>(session.tree().num_particles());
  s["num_nodes"] = static_cast<std::uint64_t>(session.tree().nodes().size());
  s["threads"] = static_cast<std::uint64_t>(session.pool().width());
  const EvalConfig& config = session.config();
  s["alpha"] = config.alpha;
  s["degree"] = config.degree;
  s["memory_budget_bytes"] = static_cast<std::uint64_t>(config.memory_budget_bytes);
  s["deadline_seconds"] = config.deadline_seconds;
  s["audit_samples"] = static_cast<std::uint64_t>(config.audit_samples);
  return s;
}

obs::Json telemetry_json() {
  namespace tel = obs::telemetry;
  obs::Json t = obs::Json::object();
  t["enabled"] = tel::enabled();
  t["emitted"] = tel::emitted_count();
  obs::Json records = obs::Json::array();
  for (const tel::RequestRecord& record : tel::records()) {
    records.push_back(tel::to_json(record));
  }
  t["records"] = std::move(records);
  return t;
}

}  // namespace

obs::Json governor_json(const ResourceGovernor& governor) {
  const ResourceGovernor::Snapshot s = governor.snapshot();
  obs::Json g = obs::Json::object();
  g["enabled"] = s.enabled;
  g["budget_bytes"] = static_cast<std::uint64_t>(s.budget);
  g["used_bytes"] = static_cast<std::uint64_t>(s.used);
  // SIZE_MAX (unlimited) would round through double; report null instead.
  if (s.enabled) {
    g["remaining_bytes"] = static_cast<std::uint64_t>(s.remaining);
  } else {
    g["remaining_bytes"] = obs::Json();
  }
  g["reservations"] = s.reservations;
  g["denials"] = s.denials;
  g["deadline_armed"] = s.deadline_armed;
  return g;
}

obs::Json plan_cache_json(const PlanCache& cache) {
  obs::Json c = obs::Json::object();
  c["size"] = static_cast<std::uint64_t>(cache.size());
  c["capacity"] = static_cast<std::uint64_t>(cache.capacity());
  c["byte_capacity"] = static_cast<std::uint64_t>(cache.byte_capacity());
  c["bytes"] = static_cast<std::uint64_t>(cache.bytes());
  c["basis_bytes"] = static_cast<std::uint64_t>(cache.basis_bytes());
  c["hits"] = cache.hits();
  c["misses"] = cache.misses();
  c["evictions"] = cache.evictions();
  obs::Json plans = obs::Json::array();
  for (const PlanCache::PlanInfo& info : cache.contents()) {
    obs::Json p = obs::Json::object();
    p["key"] = key_hex(info.key);
    p["self"] = info.self;
    p["num_targets"] = static_cast<std::uint64_t>(info.num_targets);
    p["num_entries"] = static_cast<std::uint64_t>(info.num_entries);
    p["bytes"] = static_cast<std::uint64_t>(info.bytes);
    p["basis_bytes"] = static_cast<std::uint64_t>(info.basis_bytes);
    plans.push_back(std::move(p));
  }
  c["plans"] = std::move(plans);
  return c;
}

obs::Json inspect_json(const EvalSession* session) {
  obs::Json doc = obs::Json::object();
  doc["schema"] = "treecode-inspect/v1";
  doc["provenance"] = obs::provenance_json();
  if (session != nullptr) {
    doc["session"] = session_json(*session);
    doc["governor"] = governor_json(session->governor());
    doc["plan_cache"] = plan_cache_json(session->cache());
  }
  doc["telemetry"] = telemetry_json();
  doc["flight_recorder"] = obs::recorder::to_json("inspect");
  doc["metrics"] = obs::metrics_json(obs::registry().snapshot());
  obs::Json warnings = obs::Json::array();
  for (const std::string& w : obs::warnings()) warnings.push_back(w);
  doc["warnings"] = std::move(warnings);
  return doc;
}

}  // namespace treecode::engine
