#pragma once

/// \file plan_cache.hpp
/// LRU cache of compiled EvalPlans, keyed by EvalPlan::key.
///
/// A GMRES solve alternates between at most a couple of target sets (the
/// mesh vertices for the matvec, occasionally the particles themselves for
/// diagnostics), so a small LRU suffices to make every apply after the
/// first a pure replay. Keys are hashes; because a 64-bit hash can collide,
/// `find` verifies full target equality (bytewise, so NaN-bearing sanitized
/// target sets still match themselves) before returning a hit — a
/// collision is treated as a miss and recompiled, never served wrong.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>

#include "engine/eval_plan.hpp"

namespace treecode::engine {

/// Fixed-capacity least-recently-used plan store. Not thread-safe: the
/// owning EvalSession serializes compiles and evaluations.
class PlanCache {
 public:
  /// Capacity is clamped to at least 1 (a zero-capacity cache would turn
  /// every warm apply back into a cold compile, silently).
  explicit PlanCache(std::size_t capacity = 8);

  /// Look up `key`; on a hash hit, verify the stored plan was compiled for
  /// exactly these targets (and the same self flag) before returning it.
  /// A verified hit moves the plan to most-recently-used.
  [[nodiscard]] std::shared_ptr<const EvalPlan> find(std::uint64_t key,
                                                     std::span<const Vec3> targets,
                                                     bool self);

  /// Insert a freshly compiled plan under plan->key, evicting the
  /// least-recently-used plan when full. Replaces any existing plan with
  /// the same key.
  void insert(std::shared_ptr<const EvalPlan> plan);

  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return plans_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  std::size_t capacity_;
  /// Most-recently-used at the front.
  std::list<std::shared_ptr<const EvalPlan>> plans_;
  std::unordered_map<std::uint64_t, std::list<std::shared_ptr<const EvalPlan>>::iterator>
      by_key_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace treecode::engine
