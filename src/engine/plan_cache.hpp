#pragma once

/// \file plan_cache.hpp
/// LRU cache of compiled EvalPlans, keyed by EvalPlan::key.
///
/// A GMRES solve alternates between at most a couple of target sets (the
/// mesh vertices for the matvec, occasionally the particles themselves for
/// diagnostics), so a small LRU suffices to make every apply after the
/// first a pure replay. Keys are hashes; because a 64-bit hash can collide,
/// `find` verifies full target equality (bytewise, so NaN-bearing sanitized
/// target sets still match themselves) before returning a hit — a
/// collision is treated as a miss and recompiled, never served wrong.
///
/// The cache is the ledger of the session's *durable plan footprint*:
/// it tracks resident bytes (bytes()/basis_bytes()), evicts by total bytes
/// as well as by count, publishes the totals to the `engine.plan_bytes` /
/// `engine.basis_bytes` gauges on every mutation, and holds each resident
/// plan's ResourceGovernor::Reservation alongside the plan itself —
/// eviction, replacement, clear, or cache destruction returns the bytes to
/// the budget through the guard's destructor, so no path (including an
/// exceptional one) can strand them. A caller still holding a shared_ptr
/// to an evicted plan keeps the memory alive past its accounting; that
/// window is transient (the duration of one evaluate) and documented
/// rather than tracked.
///
/// Under TREECODE_FAULT_INJECT, fault site kCacheVerifyMiss can discard a
/// verified hit — the caller sees a miss and recompiles, exercising the
/// recompile-under-pressure path deterministically.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "engine/eval_plan.hpp"
#include "util/resource_governor.hpp"

namespace treecode::engine {

/// Fixed-capacity least-recently-used plan store with byte accounting.
/// Thread-safe: every operation (including the accessors) takes the cache
/// mutex, so concurrent find/insert/clear — e.g. a diagnostics thread
/// clearing while a serve thread compiles — stay well-defined. The owning
/// EvalSession still serializes its own compile/evaluate sequence.
class PlanCache {
 public:
  /// `capacity` is clamped to at least 1 (a zero-capacity cache would turn
  /// every warm apply back into a cold compile, silently).
  /// `byte_capacity` bounds the *total resident plan bytes*; 0 = unbounded.
  explicit PlanCache(std::size_t capacity = 8, std::size_t byte_capacity = 0);

  /// Releases every resident plan's reservation and withdraws this cache's
  /// contribution from the process-wide engine.plan_bytes /
  /// engine.basis_bytes gauges — a destroyed session (an unregistered
  /// tenant) must not leave its bytes on the shared series.
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Look up `key`; on a hash hit, verify the stored plan was compiled for
  /// exactly these targets (and the same self flag) before returning it.
  /// A verified hit moves the plan to most-recently-used.
  [[nodiscard]] std::shared_ptr<const EvalPlan> find(std::uint64_t key,
                                                     std::span<const Vec3> targets,
                                                     bool self);

  /// Insert a freshly compiled plan under plan->key together with the
  /// governor reservation backing its bytes, evicting LRU plans while over
  /// the count or byte capacity. Replaces any existing plan with the same
  /// key (the replaced plan's reservation is released). Returns false when
  /// the plan alone exceeds the byte capacity and was not retained — its
  /// reservation is released immediately; the caller's shared_ptr stays
  /// usable but the plan is transient.
  bool insert(std::shared_ptr<const EvalPlan> plan,
              ResourceGovernor::Reservation reservation);
  /// Insert without a reservation (ungoverned sessions and unit tests).
  bool insert(std::shared_ptr<const EvalPlan> plan) {
    return insert(std::move(plan), ResourceGovernor::Reservation{});
  }

  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::size_t byte_capacity() const;
  /// Total memory_bytes() of resident plans / their basis-vector subset.
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::size_t basis_bytes() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

  /// One resident plan's accounting — what introspection snapshots
  /// (engine/introspect.hpp, treecode-inspect) report per cached plan.
  struct PlanInfo {
    std::uint64_t key = 0;
    bool self = false;
    std::size_t num_targets = 0;
    std::size_t num_entries = 0;
    std::size_t bytes = 0;        ///< EvalPlan::memory_bytes()
    std::size_t basis_bytes = 0;  ///< m2p basis subset of `bytes`
  };
  /// Snapshot of every resident plan, most-recently-used first.
  [[nodiscard]] std::vector<PlanInfo> contents() const;

 private:
  /// One resident plan plus the budget reservation that backs it; the
  /// reservation releases itself whenever the entry leaves the list.
  struct Entry {
    std::shared_ptr<const EvalPlan> plan;
    ResourceGovernor::Reservation reservation;
  };

  /// Pop the LRU plan (releasing its reservation), update the ledgers.
  /// Caller holds mu_.
  void evict_lru_locked();
  /// Push this cache's resident-byte delta into the process-wide totals and
  /// set the engine.plan_bytes / engine.basis_bytes gauges from the
  /// aggregate (value, not max — compile keeps the per-plan peak
  /// separately). Every mutation and the destructor go through here, so the
  /// gauges always sum the bytes of the caches that are actually alive.
  void publish_gauges_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t byte_capacity_;
  std::size_t bytes_ = 0;
  std::size_t basis_bytes_ = 0;
  /// What this cache last contributed to the process-wide gauge totals;
  /// publish_gauges_locked() applies bytes_ - published_bytes_ as a delta.
  std::size_t published_bytes_ = 0;
  std::size_t published_basis_bytes_ = 0;
  /// Most-recently-used at the front.
  std::list<Entry> plans_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> by_key_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace treecode::engine
