#include "engine/eval_session.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "analysis/invariants.hpp"
#include "core/barnes_hut.hpp"
#include "multipole/error_bounds.hpp"
#include "multipole/operators.hpp"
#include "obs/audit.hpp"
#include "obs/instrument.hpp"
#include "obs/metric_names.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/reqtrace.hpp"
#include "obs/telemetry.hpp"
#include "util/timer.hpp"
#include "obs/spans.hpp"
#include "util/fault_inject.hpp"
#include "util/validate.hpp"

namespace treecode::engine {

namespace {

/// The alpha-criterion, identical to the Barnes-Hut traversal's: accept the
/// cluster when its radius-to-distance ratio is at most alpha.
inline bool mac_accepts(const TreeNode& node, const Vec3& point, double alpha,
                        double& r_out) noexcept {
  const double r = distance(point, node.center);
  r_out = r;
  return r > 0.0 && node.radius <= alpha * r;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void fnv_mix(std::uint64_t& h, const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

template <typename T>
inline void fnv_mix_value(std::uint64_t& h, const T& value) noexcept {
  fnv_mix(h, &value, sizeof(T));
}

/// Hash of the target set plus every EvalConfig field that influences a
/// traversal decision (MAC acceptance, degree law, budget demotion) or the
/// shape of the compiled schedule (bounds, gradients). Fields that only
/// affect execution (threads, block_size, memory budget, deadline) are
/// deliberately excluded so the same plan replays at any parallelism.
std::uint64_t plan_key(std::span<const Vec3> targets, bool self, const EvalConfig& c) {
  std::uint64_t h = kFnvOffset;
  fnv_mix_value(h, self);
  fnv_mix_value(h, c.alpha);
  fnv_mix_value(h, c.degree);
  fnv_mix_value(h, c.max_degree);
  fnv_mix_value(h, static_cast<int>(c.mode));
  fnv_mix_value(h, static_cast<int>(c.law));
  fnv_mix_value(h, static_cast<int>(c.reference));
  fnv_mix_value(h, c.reference_charge);
  fnv_mix_value(h, c.error_budget);
  fnv_mix_value(h, c.enforce_budget);
  fnv_mix_value(h, c.track_error_bounds);
  fnv_mix_value(h, c.compute_gradient);
  fnv_mix_value(h, c.softening);
  if (!targets.empty()) fnv_mix(h, targets.data(), targets.size() * sizeof(Vec3));
  return h;
}

/// Construct an Error, counting it and arming the flight recorder — every
/// engine failure leaves a metrics + recorder trail regardless of whether
/// the ladder absorbs it or the caller sees it.
Error engine_error(ErrorCode code, std::string message) {
  obs::registry().counter(obs::metric::kEngineErrors).add(1);
  obs::recorder::record(obs::recorder::Category::kCustom, error_code_name(code), 0.0);
  obs::recorder::trigger(error_code_name(code));
  return Error{code, std::move(message)};
}

/// Errors the degradation ladder absorbs by stepping down a rung; every
/// other code (bad input, NaN, deadline) propagates — no rung fixes those.
bool memory_class(ErrorCode code) noexcept {
  return code == ErrorCode::kMemoryBudget || code == ErrorCode::kFaultInjected;
}

ErrorCode denial_code(const ResourceGovernor& governor) noexcept {
  return governor.last_denial_was_fault() ? ErrorCode::kFaultInjected
                                          : ErrorCode::kMemoryBudget;
}

/// Arm the session deadline for the dynamic extent of one public
/// evaluation, unless an outer scope already did (evaluate_at -> evaluate
/// must not re-arm and extend the window).
class DeadlineScope {
 public:
  DeadlineScope(ResourceGovernor& governor, double seconds)
      : governor_(governor), armed_here_(seconds > 0.0 && !governor.deadline_armed()) {
    if (armed_here_) governor_.arm_deadline(seconds);
  }
  ~DeadlineScope() {
    if (armed_here_) governor_.disarm_deadline();
  }
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  ResourceGovernor& governor_;
  bool armed_here_;
};

/// Emit one telemetry RequestRecord at a public entry point's exit — the
/// per-request tuple (plan, rung, outcome, wall, bytes, deadline slack,
/// audit tightness) the serving layer records; see obs/telemetry.hpp.
/// One relaxed load and a branch while telemetry is disabled.
void emit_request(obs::telemetry::Api api, std::uint64_t key, double wall,
                  bool ok, ErrorCode code, const EvalStats* stats,
                  const PlanCache& cache, const EvalConfig& config,
                  unsigned threads, obs::reqtrace::RequestScope& scope,
                  std::uint32_t batch_width = 0) {
  // Counted before the telemetry-enabled gate: engine.requests is the SLO
  // error-rate denominator (obs/slo.cpp) and must cover every entry-point
  // call, with or without a telemetry session.
  obs::registry().counter(obs::metric::kEngineRequests).add(1);
  // Finish the request trace before the telemetry gate, so every exit path
  // records its span and runs the tail decision even with telemetry off.
  obs::reqtrace::Verdict verdict;
  verdict.ok = ok;
  verdict.error_code = static_cast<std::uint8_t>(code);
  if (stats != nullptr) {
    verdict.rung = static_cast<std::int8_t>(stats->served_rung);
  }
  verdict.deadline_missed = code == ErrorCode::kDeadline;
  verdict.wall_seconds = wall;
  scope.finish(verdict);
  if (!obs::telemetry::enabled()) return;
  obs::telemetry::RequestRecord r;
  r.api = api;
  r.plan_key = key;
  if (stats != nullptr) {
    r.rung = static_cast<std::int8_t>(stats->served_rung);
    r.targets = stats->targets_served;
    r.audit_max_tightness = stats->audit_max_tightness;
  }
  r.outcome = static_cast<std::uint8_t>(code);
  r.outcome_name = error_code_name(code);
  r.ok = ok;
  r.wall_seconds = wall;
  r.plan_bytes = cache.bytes();
  r.basis_bytes = cache.basis_bytes();
  r.deadline_slack_seconds = config.deadline_seconds > 0.0
                                 ? config.deadline_seconds - wall
                                 : std::numeric_limits<double>::quiet_NaN();
  r.threads = threads;
  r.batch_width = batch_width;
  r.trace_hi = scope.context().trace_hi;
  r.trace_lo = scope.context().trace_lo;
  obs::telemetry::emit(r);
}

}  // namespace

/// Per-thread compile statistics, merged in thread order after the sweep —
/// the same shape (and merge order) as the fresh traversal's accumulator so
/// plan stats match BarnesHutEvaluator stats exactly.
struct EvalSession::CompileAccumulator {
  std::uint64_t terms = 0;
  std::uint64_t m2p = 0;
  std::uint64_t p2p = 0;
  std::uint64_t budget_refine = 0;
  std::uint64_t budget_refine_leaf = 0;
  double max_bound = 0.0;
  int min_deg = std::numeric_limits<int>::max();
  int max_deg = -1;
  obs::LevelCounts m2p_by_level{};
  obs::LevelCounts p2p_by_level{};
  obs::DegreeCounts degree_used{};
};

EvalSession::EvalSession(Tree tree, const EvalConfig& config, const Options& options)
    : tree_(std::move(tree)),
      config_(config),
      options_(options),
      degrees_(assign_degrees(tree_, config_)),  // validates config
      pool_(config.threads),
      governor_(config.memory_budget_bytes),
      sorted_charges_(tree_.charges().begin(), tree_.charges().end()),
      multipoles_(tree_.nodes().size()),
      node_epoch_(tree_.nodes().size(), 0),
      cache_(options.plan_cache_capacity, options.plan_cache_byte_capacity) {}

Expected<std::shared_ptr<const EvalPlan>> EvalSession::try_compile(
    std::span<const Vec3> targets) {
  const Timer timer;
  obs::reqtrace::RequestScope rscope(obs::span::kReqEngineCompile);
  Expected<std::shared_ptr<const EvalPlan>> plan =
      try_compile_impl(targets, /*self=*/false);
  emit_request(obs::telemetry::Api::kCompile,
               plan.ok() ? plan.value()->key : 0, timer.seconds(), plan.ok(),
               plan.ok() ? ErrorCode::kOk : plan.error().code,
               /*stats=*/nullptr, cache_, config_, pool_.width(), rscope);
  return plan;
}

Expected<std::shared_ptr<const EvalPlan>> EvalSession::try_compile_self() {
  const Timer timer;
  obs::reqtrace::RequestScope rscope(obs::span::kReqEngineCompileSelf);
  Expected<std::shared_ptr<const EvalPlan>> plan =
      try_compile_impl(tree_.positions(), /*self=*/true);
  emit_request(obs::telemetry::Api::kCompileSelf,
               plan.ok() ? plan.value()->key : 0, timer.seconds(), plan.ok(),
               plan.ok() ? ErrorCode::kOk : plan.error().code,
               /*stats=*/nullptr, cache_, config_, pool_.width(), rscope);
  return plan;
}

Expected<void> EvalSession::try_update_charges(std::span<const double> charges) {
  const Timer timer;
  obs::reqtrace::RequestScope rscope(obs::span::kReqEngineUpdateCharges);
  Expected<void> result = try_update_charges_impl(charges);
  emit_request(obs::telemetry::Api::kUpdateCharges, 0, timer.seconds(),
               result.ok(), result.ok() ? ErrorCode::kOk : result.error().code,
               /*stats=*/nullptr, cache_, config_, pool_.width(), rscope);
  return result;
}

Expected<void> EvalSession::try_update_charges_impl(std::span<const double> charges) {
  if (charges.size() != tree_.source_size()) {
    return engine_error(ErrorCode::kInvalidArgument,
                        "EvalSession: charge vector size mismatch");
  }
  if (!all_finite(charges)) {
    return engine_error(ErrorCode::kNonFinite,
                        "EvalSession: charge vector has non-finite values");
  }
  const auto& orig = tree_.original_index();
  for (std::size_t si = 0; si < orig.size(); ++si) {
    sorted_charges_[si] = charges[orig[si]];
  }
  if (fault::fire(fault::Site::kNanCharge) && !sorted_charges_.empty()) {
    // Simulate a corruption that slipped past input validation; the replay's
    // non-finite detector must catch it downstream (kNonFinite).
    sorted_charges_[0] = std::numeric_limits<double>::quiet_NaN();
  }
  ++charge_epoch_;
  return {};
}

Expected<void> EvalSession::try_update_charges_sorted(std::span<const double> charges) {
  const Timer timer;
  obs::reqtrace::RequestScope rscope(obs::span::kReqEngineUpdateChargesSorted);
  Expected<void> result = try_update_charges_sorted_impl(charges);
  emit_request(obs::telemetry::Api::kUpdateChargesSorted, 0, timer.seconds(),
               result.ok(), result.ok() ? ErrorCode::kOk : result.error().code,
               /*stats=*/nullptr, cache_, config_, pool_.width(), rscope);
  return result;
}

Expected<void> EvalSession::try_update_charges_sorted_impl(
    std::span<const double> charges) {
  if (charges.size() != tree_.num_particles()) {
    return engine_error(ErrorCode::kInvalidArgument,
                        "EvalSession: sorted charge vector size mismatch");
  }
  if (!all_finite(charges)) {
    return engine_error(ErrorCode::kNonFinite,
                        "EvalSession: sorted charge vector has non-finite values");
  }
  std::copy(charges.begin(), charges.end(), sorted_charges_.begin());
  if (fault::fire(fault::Site::kNanCharge) && !sorted_charges_.empty()) {
    sorted_charges_[0] = std::numeric_limits<double>::quiet_NaN();
  }
  ++charge_epoch_;
  return {};
}

Expected<std::shared_ptr<const EvalPlan>> EvalSession::try_compile_impl(
    std::span<const Vec3> targets, bool self) {
  // Self targets are the tree's own particles, validated at tree build;
  // external targets get the same policy treatment as source particles.
  ValidationReport report;
  const ValidationPolicy policy = tree_.config().validation;
  if (!self) {
    report = validate_targets(targets);
    // Under kThrow policy enforce_validation throws ValidationError;
    // convert at this edge so the entry point keeps its typed-Expected
    // contract (kWarn/kSanitize pass straight through).
    try {
      enforce_validation(report, policy, "EvalSession::compile");
    } catch (const ValidationError&) {
      return engine_error(ErrorCode::kNonFinite,
                          "EvalSession::compile: " + report.summary());
    }
  }

  const std::uint64_t key = plan_key(targets, self, config_);
  obs::Registry& reg = obs::registry();
  if (auto hit = cache_.find(key, targets, self)) {
    reg.counter(obs::metric::kEnginePlanCacheHits).add(1);
    return hit;
  }
  reg.counter(obs::metric::kEnginePlanCacheMisses).add(1);

  auto plan = std::make_shared<EvalPlan>();
  plan->targets.assign(targets.begin(), targets.end());
  plan->self = self;
  plan->key = key;
  for (const std::size_t idx : report.non_finite_positions) {
    plan->skipped_targets.push_back(static_cast<std::uint32_t>(idx));
  }

  const ScopedTimer phase_timer(obs::span::kEngineCompile, &plan->compile_seconds);

  const std::size_t n = targets.size();
  const auto& nodes = tree_.nodes();
  const bool enforce = config_.enforce_budget;
  const double budget = config_.error_budget;
  const bool want_bounds = config_.track_error_bounds || enforce;
  const double alpha = config_.alpha;

  std::vector<char> skip(n, 0);
  for (const std::uint32_t idx : plan->skipped_targets) skip[idx] = 1;

  // One alpha-MAC traversal per target, parallel over target blocks. The
  // DFS below mirrors BarnesHutEvaluator::run decision-for-decision
  // (including the budget bound-accumulation order) so a replay of the
  // recorded entries is bitwise-identical to a fresh traversal.
  std::vector<std::vector<std::int32_t>> per_entries(n);
  std::vector<std::vector<double>> per_bounds(want_bounds ? n : 0);
  std::vector<CompileAccumulator> acc(pool_.width());

  // The runtime rethrows a worker's exception on this thread (a traversal
  // worker can only hit bad_alloc growing its per-target entry vectors);
  // each fan-out edge converts it to a typed error.
  if (n > 0 && tree_.num_particles() > 0) try {
    parallel_for_blocked(
        pool_, n, config_.block_size,
        [&](std::size_t block_begin, std::size_t block_end, unsigned t) -> std::uint64_t {
          CompileAccumulator& a = acc[t];
          const std::uint64_t terms_before = a.terms + a.p2p;
          std::vector<int> stack;
          stack.reserve(64);
          for (std::size_t i = block_begin; i < block_end; ++i) {
            if (skip[i] != 0) continue;
            const Vec3 x = targets[i];
            std::vector<std::int32_t>& ent = per_entries[i];
            double my_bound = 0.0;
            stack.clear();
            stack.push_back(0);
            while (!stack.empty()) {
              const int ni = stack.back();
              stack.pop_back();
              const auto nu = static_cast<std::size_t>(ni);
              const TreeNode& node = nodes[nu];
              if (node.count() == 0) continue;
              double r = 0.0;
              bool approximate = mac_accepts(node, x, alpha, r);
              double thm1 = 0.0;
              if (approximate && want_bounds) {
                thm1 = multipole_error_bound(node.abs_charge, node.radius, r,
                                             degrees_.degree[nu]);
                if (enforce && my_bound + thm1 > budget) {
                  approximate = false;
                  ++a.budget_refine;
                  if (node.is_leaf()) ++a.budget_refine_leaf;
                }
              }
              if (approximate) {
                const int deg = degrees_.degree[nu];
                ent.push_back(EvalPlan::make_entry(ni, /*p2p=*/false));
                if (want_bounds) per_bounds[i].push_back(thm1);
                a.terms += static_cast<std::uint64_t>(deg + 1) *
                           static_cast<std::uint64_t>(deg + 1);
                ++a.m2p;
                a.min_deg = std::min(a.min_deg, deg);
                a.max_deg = std::max(a.max_deg, deg);
                obs::count_slot(a.degree_used, deg);
                obs::count_slot(a.m2p_by_level, node.level);
                const double thm2 = mac_error_bound(node.abs_charge, r, alpha, deg);
                a.max_bound = std::max(a.max_bound, thm2);
                my_bound += thm1;
              } else if (node.is_leaf()) {
                ent.push_back(EvalPlan::make_entry(ni, /*p2p=*/true));
                if (want_bounds) per_bounds[i].push_back(0.0);
                a.p2p += node.count();
                obs::count_slot(a.p2p_by_level, node.level, node.count());
              } else {
                for (int c = 0; c < node.num_children; ++c) {
                  stack.push_back(node.first_child + c);
                }
              }
            }
          }
          return (a.terms + a.p2p) - terms_before;
        },
        nullptr, obs::span::kEngineCompileWorker);
  } catch (const std::exception& e) {
    return engine_error(ErrorCode::kInternal,
                        std::string("EvalSession::compile: worker exception: ") +
                            e.what());
  }

  // Serial flatten into the plan's replay layout.
  plan->offsets.resize(n + 1);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    plan->offsets[i] = total;
    total += per_entries[i].size();
  }
  plan->offsets[n] = total;
  plan->entries.reserve(total);
  if (want_bounds) plan->entry_bounds.reserve(total);
  plan->target_cost.resize(n, 0);
  std::vector<char> referenced(nodes.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t cost = 0;
    for (std::size_t k = 0; k < per_entries[i].size(); ++k) {
      const std::int32_t e = per_entries[i][k];
      plan->entries.push_back(e);
      if (want_bounds) plan->entry_bounds.push_back(per_bounds[i][k]);
      const auto nu = static_cast<std::size_t>(EvalPlan::node_of(e));
      if (EvalPlan::is_p2p(e)) {
        cost += nodes[nu].count();
      } else {
        referenced[nu] = 1;
        const auto deg = static_cast<std::uint64_t>(degrees_.degree[nu]);
        cost += (deg + 1) * (deg + 1);
      }
    }
    plan->target_cost[i] = cost;
  }
  for (std::size_t nu = 0; nu < referenced.size(); ++nu) {
    if (referenced[nu] != 0) plan->m2p_nodes.push_back(static_cast<std::int32_t>(nu));
  }

  // Governed commit of the plan's durable core (everything but the basis).
  // A denial discards the compiled schedule; the ladder serves rung 2/3.
  // The RAII reservation travels with cache residency: released on
  // eviction, replacement, clear — or right here if anything below throws
  // before the insert.
  const std::size_t plan_core_bytes = plan->memory_bytes();
  ResourceGovernor::Reservation plan_reservation =
      governor_.reserve(plan_core_bytes, "engine.plan");
  if (!plan_reservation) {
    reg.counter(obs::metric::kEnginePlanDenied).add(1);
    return engine_error(denial_code(governor_),
                        "EvalSession::compile: plan storage denied (" +
                            std::to_string(plan_core_bytes) + " bytes)");
  }

  // Precompute the charge-independent m2p evaluation basis (1/r and the
  // Y_n^m harmonics per entry). Replay then pays only the coefficient dot
  // product — the transcendentals and recurrences, the bulk of the kernel,
  // move into compile. Offsets are laid out serially (budget-gated, in
  // schedule order); the fill itself is parallel over target blocks.
  // m2p_grad has no basis form, so gradient plans skip the whole pass.
  // The basis budget is clamped to the governor's remaining bytes, so a
  // tight session budget yields a thinner basis (or none: rung 1), never a
  // failed compile.
  if (options_.precompute_basis && options_.basis_budget_bytes > 0 &&
      !config_.compute_gradient && total > 0) {
    plan->basis_offset.assign(total, EvalPlan::kNoBasis);
    std::uint64_t budget_bytes = options_.basis_budget_bytes;
    if (governor_.enabled()) {
      const std::size_t offsets_bytes = static_cast<std::size_t>(total) *
                                        sizeof(std::uint64_t);
      const std::size_t rem = governor_.remaining();
      budget_bytes = std::min<std::uint64_t>(
          budget_bytes, rem > offsets_bytes ? rem - offsets_bytes : 0);
    }
    const std::uint64_t budget_doubles = budget_bytes / sizeof(double);
    std::uint64_t basis_total = 0;
    bool any = false;
    for (std::uint64_t idx = 0; idx < total; ++idx) {
      const std::int32_t e = plan->entries[idx];
      if (EvalPlan::is_p2p(e)) continue;
      const auto nu = static_cast<std::size_t>(EvalPlan::node_of(e));
      const auto need =
          static_cast<std::uint64_t>(m2p_basis_size(degrees_.degree[nu]));
      if (basis_total + need > budget_doubles) break;
      plan->basis_offset[idx] = basis_total;
      basis_total += need;
      any = true;
    }
    if (any) {
      plan->basis.resize(basis_total);
      const std::size_t basis_delta = plan->memory_bytes() - plan_core_bytes;
      ResourceGovernor::Reservation basis_reservation =
          governor_.reserve(basis_delta, "engine.basis");
      if (!basis_reservation) {
        // Basis denied (budget raced tighter, or an injected fault): keep
        // the plan, drop the basis — a rung-1 plan with identical results.
        reg.counter(obs::metric::kEngineBasisDenied).add(1);
        std::vector<std::uint64_t>().swap(plan->basis_offset);
        std::vector<double>().swap(plan->basis);
      } else try {
        plan_reservation.absorb(std::move(basis_reservation));
        parallel_for_blocked(
            pool_, n, config_.block_size,
            [&](std::size_t block_begin, std::size_t block_end,
                unsigned) -> std::uint64_t {
              std::uint64_t filled = 0;
              for (std::size_t i = block_begin; i < block_end; ++i) {
                const Vec3 x = targets[i];
                for (std::uint64_t idx = plan->offsets[i]; idx < plan->offsets[i + 1];
                     ++idx) {
                  const std::uint64_t off = plan->basis_offset[idx];
                  if (off == EvalPlan::kNoBasis) continue;
                  const auto nu =
                      static_cast<std::size_t>(EvalPlan::node_of(plan->entries[idx]));
                  const int deg = degrees_.degree[nu];
                  m2p_basis(deg, nodes[nu].center, x,
                            std::span<double>(plan->basis.data() + off,
                                              m2p_basis_size(deg)));
                  ++filled;
                }
              }
              return filled;
            },
            nullptr, obs::span::kEngineCompileWorker);
      } catch (const std::exception& e) {
        return engine_error(
            ErrorCode::kInternal,
            std::string("EvalSession::compile: basis worker exception: ") +
                e.what());
      }
    } else {
      plan->basis_offset.clear();
    }
  }

  // Merge per-thread statistics in thread order (same as the fresh run).
  int min_deg = std::numeric_limits<int>::max();
  int max_deg = -1;
  for (const CompileAccumulator& a : acc) {
    plan->stats.multipole_terms += a.terms;
    plan->stats.m2p_count += a.m2p;
    plan->stats.p2p_pairs += a.p2p;
    plan->stats.budget_refinements += a.budget_refine;
    plan->stats.budget_refinements_leaf += a.budget_refine_leaf;
    plan->stats.max_interaction_bound =
        std::max(plan->stats.max_interaction_bound, a.max_bound);
    min_deg = std::min(min_deg, a.min_deg);
    max_deg = std::max(max_deg, a.max_deg);
    for (std::size_t i = 0; i < plan->m2p_by_level.size(); ++i) {
      plan->m2p_by_level[i] += a.m2p_by_level[i];
      plan->p2p_by_level[i] += a.p2p_by_level[i];
    }
    for (std::size_t i = 0; i < plan->degree_used.size(); ++i) {
      plan->degree_used[i] += a.degree_used[i];
    }
  }
  plan->stats.min_degree_used = max_deg >= 0 ? min_deg : 0;
  plan->stats.max_degree_used = max_deg >= 0 ? max_deg : 0;
  plan->stats.reference_charge = degrees_.reference_charge;

  reg.counter(obs::metric::kEnginePlanCompiles).add(1);
  reg.gauge(obs::metric::kEnginePlanEntries).record_max(static_cast<double>(total));
  reg.gauge(obs::metric::kEnginePlanBytes).record_max(static_cast<double>(plan->memory_bytes()));
  reg.gauge(obs::metric::kEngineBasisBytes)
      .record_max(static_cast<double>(plan->basis.size() * sizeof(double)));

  TREECODE_ASSERT_PLAN_INVARIANTS(*plan, tree_, degrees_, config_,
                                  "EvalSession::compile");
  cache_.insert(plan, std::move(plan_reservation));
  return std::shared_ptr<const EvalPlan>(plan);
}

Expected<void> EvalSession::try_ensure_refreshed(const EvalPlan& plan) {
  stale_.clear();
  for (const std::int32_t ni : plan.m2p_nodes) {
    if (node_epoch_[static_cast<std::size_t>(ni)] != charge_epoch_) stale_.push_back(ni);
  }
  if (stale_.empty()) return {};
  const auto& nodes = tree_.nodes();
  const auto& pos = tree_.positions();
  const auto& q = sorted_charges_;

  // Governed batch reservation for first-build multipole coefficients —
  // session-durable storage (reused across every later refresh), reserved
  // once, serially, before the parallel rebuild so the decision is
  // identical at every thread count.
  std::size_t first_build_bytes = 0;
  for (const std::int32_t ni : stale_) {
    const auto nu = static_cast<std::size_t>(ni);
    if (node_epoch_[nu] == 0) {
      first_build_bytes += tri_size(degrees_.degree[nu]) * sizeof(Complex);
    }
  }
  if (first_build_bytes > 0) {
    ResourceGovernor::Reservation r =
        governor_.reserve(first_build_bytes, "engine.multipoles");
    if (!r) {
      obs::registry().counter(obs::metric::kEngineRefreshDenied).add(1);
      return engine_error(denial_code(governor_),
                          "EvalSession: multipole refresh denied (" +
                              std::to_string(first_build_bytes) + " bytes)");
    }
    multipole_reservation_.absorb(std::move(r));
  }

  // Cover newly-seen nodes with a p2m basis while the budget lasts: offsets
  // assigned serially (the pool layout must not depend on thread timing),
  // the basis itself filled inside the parallel refresh below. Geometry and
  // degrees are frozen, so a node's basis is computed exactly once. A
  // governor denial of the pool growth rolls the coverage back — the full
  // p2m kernel produces identical coefficients, just slower.
  std::vector<char> fill(stale_.size(), 0);
  if (options_.precompute_basis && options_.refresh_basis_budget_bytes > 0) {
    if (p2m_basis_offset_.empty()) {
      p2m_basis_offset_.assign(nodes.size(), EvalPlan::kNoBasis);
    }
    const std::uint64_t budget_doubles =
        options_.refresh_basis_budget_bytes / sizeof(double);
    const std::uint64_t old_pool = p2m_basis_pool_.size();
    std::uint64_t pool_size = old_pool;
    for (std::size_t k = 0; k < stale_.size(); ++k) {
      const auto nu = static_cast<std::size_t>(stale_[k]);
      if (p2m_basis_offset_[nu] != EvalPlan::kNoBasis) continue;
      const auto need = static_cast<std::uint64_t>(
          p2m_basis_size(degrees_.degree[nu], nodes[nu].count()));
      if (pool_size + need > budget_doubles) continue;
      p2m_basis_offset_[nu] = pool_size;
      pool_size += need;
      fill[k] = 1;
    }
    if (pool_size > old_pool) {
      const std::size_t growth_bytes =
          static_cast<std::size_t>(pool_size - old_pool) * sizeof(double);
      if (ResourceGovernor::Reservation growth =
              governor_.reserve(growth_bytes, "engine.p2m_basis")) {
        p2m_basis_pool_.resize(pool_size);
        p2m_reservation_.absorb(std::move(growth));
        obs::registry()
            .gauge(obs::metric::kEngineRefreshBasisBytes)
            .record_max(static_cast<double>(pool_size * sizeof(double)));
      } else {
        obs::registry().counter(obs::metric::kEngineP2mBasisDenied).add(1);
        for (std::size_t k = 0; k < stale_.size(); ++k) {
          if (fill[k] != 0) {
            p2m_basis_offset_[static_cast<std::size_t>(stale_[k])] = EvalPlan::kNoBasis;
            fill[k] = 0;
          }
        }
      }
    }
  }

  auto refresh_node = [&](std::size_t k) {
    const auto nu = static_cast<std::size_t>(stale_[k]);
    const TreeNode& node = nodes[nu];
    MultipoleExpansion& m = multipoles_[nu];
    // First build allocates to the node's assigned degree; later refreshes
    // reuse the storage (the degree table is frozen for the session).
    if (node_epoch_[nu] == 0) {
      m.reset(degrees_.degree[nu]);
    } else {
      m.clear();
    }
    const std::span<const Vec3> ppos(pos.data() + node.begin, node.count());
    const std::span<const double> pq(q.data() + node.begin, node.count());
    const std::uint64_t off =
        p2m_basis_offset_.empty() ? EvalPlan::kNoBasis : p2m_basis_offset_[nu];
    if (off != EvalPlan::kNoBasis) {
      if (fill[k] != 0) {
        p2m_basis(degrees_.degree[nu], node.center, ppos,
                  std::span<double>(p2m_basis_pool_.data() + off,
                                    p2m_basis_size(degrees_.degree[nu], node.count())));
      }
      p2m_apply_basis(pq, p2m_basis_pool_.data() + off, m);
    } else {
      p2m(node.center, ppos, pq, m);
    }
    node_epoch_[nu] = charge_epoch_;
  };
  if (pool_.width() > 1) try {
    parallel_for(
        pool_, stale_.size(), 8,
        [&](std::size_t b, std::size_t e, unsigned) {
          for (std::size_t k = b; k < e; ++k) refresh_node(k);
        },
        nullptr, obs::span::kEngineRefreshWorker);
  } catch (const std::exception& e) {
    return engine_error(ErrorCode::kInternal,
                        std::string("EvalSession: refresh worker exception: ") +
                            e.what());
  } else {
    for (std::size_t k = 0; k < stale_.size(); ++k) refresh_node(k);
  }
  obs::registry().counter(obs::metric::kEngineNodesRefreshed).add(stale_.size());
  return {};
}

Expected<EvalResult> EvalSession::replay(const EvalPlan& plan) {
  const std::size_t n = plan.num_targets();
  EvalResult result;
  result.stats = plan.stats;  // charge-independent schedule statistics
  result.stats.build_seconds = 0.0;
  result.stats.eval_seconds = 0.0;
  result.stats.work = WorkStats{};
  result.stats.served_rung =
      plan.basis_offset.empty() ? ServeRung::kPlainReplay : ServeRung::kBasisReplay;
  result.stats.outcome = ErrorCode::kOk;
  result.stats.targets_served = static_cast<std::uint64_t>(n);
  const std::size_t out_n = plan.self ? tree_.source_size() : n;
  const bool want_grad = config_.compute_gradient;
  const bool want_bounds = config_.track_error_bounds || config_.enforce_budget;
  result.potential.assign(out_n, 0.0);
  if (want_grad) result.gradient.assign(out_n, Vec3{});
  if (want_bounds) result.error_bound.assign(out_n, 0.0);
  if (n == 0 || tree_.num_particles() == 0) return result;

  {
    const ScopedTimer refresh_timer(obs::span::kEngineRefresh, &result.stats.build_seconds);
    Expected<void> refreshed = try_ensure_refreshed(plan);
    if (!refreshed.ok()) return refreshed.error();
  }

  const auto& nodes = tree_.nodes();
  const auto& pos = tree_.positions();
  const auto& q = sorted_charges_;
  const double softening2 = config_.softening * config_.softening;
  const bool have_basis = !plan.basis_offset.empty();
  // Replay audits mirror the fresh traversal exactly: M2P entries appear in
  // the plan in per-target DFS acceptance order, so the (target, ordinal)
  // sampling keys — and therefore the audited interactions and their
  // bitwise contributions — match a fresh evaluation over the same targets.
  const bool auditing = config_.audit_samples > 0;
  const bool have_entry_bounds = !plan.entry_bounds.empty();

  std::vector<double> phi(n, 0.0);
  std::vector<Vec3> grad(want_grad ? n : 0, Vec3{});
  std::vector<double> bound(want_bounds ? n : 0, 0.0);
  std::vector<obs::audit::Reservoir> reservoirs(auditing ? pool_.width() : 0);
  for (auto& r : reservoirs) r.set_capacity(config_.audit_samples);

  // Failure channels out of the parallel region: a detected non-finite
  // potential or an expired deadline cancels the sweep cooperatively
  // (blocks already running complete; unclaimed blocks are skipped).
  CancellationToken cancel;
  std::atomic<bool> deadline_hit{false};
  std::atomic<std::int64_t> nonfinite_at{-1};
  const bool deadline_active = governor_.deadline_armed();
  std::vector<char> done(deadline_active ? n : 0, 0);

  try {
    const ScopedTimer phase_timer(obs::span::kEngineReplay, &result.stats.eval_seconds);
    result.stats.work = parallel_for_blocked(
        pool_, n, config_.block_size,
        [&](std::size_t block_begin, std::size_t block_end, unsigned t) -> std::uint64_t {
          if (deadline_active && governor_.deadline_expired()) {
            deadline_hit.store(true, std::memory_order_relaxed);
            cancel.cancel();
            return 0;
          }
          if constexpr (fault::kEnabled) {
            if (fault::fire(fault::Site::kSlowWorker)) {
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
          }
          std::uint64_t cost = 0;
          for (std::size_t i = block_begin; i < block_end; ++i) {
            const Vec3 x = plan.targets[i];
            double my_phi = 0.0;
            double my_bound = 0.0;
            Vec3 my_grad{};
            std::uint64_t audit_ord = 0;
            const std::uint64_t begin = plan.offsets[i];
            const std::uint64_t end = plan.offsets[i + 1];
            for (std::uint64_t idx = begin; idx < end; ++idx) {
              const std::int32_t e = plan.entries[idx];
              const auto nu = static_cast<std::size_t>(EvalPlan::node_of(e));
              const TreeNode& node = nodes[nu];
              if (EvalPlan::is_p2p(e)) {
                const std::span<const Vec3> ppos(pos.data() + node.begin, node.count());
                const std::span<const double> pq(q.data() + node.begin, node.count());
                if (want_grad) {
                  const PotentialGrad pg = p2p_grad(x, ppos, pq, softening2);
                  my_phi += pg.potential;
                  my_grad += pg.gradient;
                } else {
                  my_phi += p2p(x, ppos, pq, softening2);
                }
              } else {
                const MultipoleExpansion& m = multipoles_[nu];
                double contribution;
                if (want_grad) {
                  const PotentialGrad pg = m2p_grad(m, node.center, x);
                  contribution = pg.potential;
                  my_grad += pg.gradient;
                } else {
                  const std::uint64_t off =
                      have_basis ? plan.basis_offset[idx] : EvalPlan::kNoBasis;
                  contribution = off != EvalPlan::kNoBasis
                                     ? m2p_apply_basis(m, plan.basis.data() + off)
                                     : m2p(m, node.center, x);
                }
                my_phi += contribution;
                if (want_bounds) my_bound += plan.entry_bounds[idx];
                if (auditing) {
                  obs::audit::Sample s;
                  s.key = obs::audit::sample_key(config_.audit_seed, i, audit_ord);
                  s.target = i;
                  s.node = EvalPlan::node_of(e);
                  s.level = node.level;
                  s.degree = m.degree();
                  s.abs_charge = node.abs_charge;
                  s.approx = contribution;
                  // Plans compiled without bound tracking carry no per-entry
                  // bounds; recompute Theorem 1 with the same arguments the
                  // fresh traversal uses so audits stay bitwise comparable.
                  const double r_audit = distance(x, node.center);
                  s.bound = have_entry_bounds
                                ? plan.entry_bounds[idx]
                                : multipole_error_bound(node.abs_charge, node.radius,
                                                        r_audit, degrees_.degree[nu]);
                  s.noise_scale = r_audit > node.radius
                                      ? node.abs_charge / (r_audit - node.radius)
                                      : 0.0;
                  reservoirs[t].offer(s);
                }
                ++audit_ord;
              }
            }
            if (!std::isfinite(my_phi)) {
              obs::recorder::record(obs::recorder::Category::kNonFinite,
                                    "engine.nonfinite_potential",
                                    static_cast<double>(i));
              std::int64_t expected_idx = -1;
              nonfinite_at.compare_exchange_strong(expected_idx,
                                                   static_cast<std::int64_t>(i),
                                                   std::memory_order_relaxed);
              cancel.cancel();
              return cost;
            }
            phi[i] = my_phi;
            if (want_grad) grad[i] = my_grad;
            if (want_bounds) bound[i] = my_bound;
            if (deadline_active) done[i] = 1;
            cost += plan.target_cost[i];
          }
          return cost;
        },
        &cancel, obs::span::kEngineReplayWorker);
  } catch (const std::exception& e) {
    return engine_error(ErrorCode::kInternal,
                        std::string("EvalSession: replay worker exception: ") +
                            e.what());
  }

  const std::int64_t bad_target = nonfinite_at.load(std::memory_order_relaxed);
  if (bad_target >= 0) {
    return engine_error(ErrorCode::kNonFinite,
                        "EvalSession: non-finite potential at evaluation point " +
                            std::to_string(bad_target));
  }
  if (deadline_hit.load(std::memory_order_relaxed)) {
    obs::registry().counter(obs::metric::kEngineDeadlineExpirations).add(1);
    if (!config_.deadline_partial) {
      return engine_error(ErrorCode::kDeadline,
                          "EvalSession: deadline expired during replay");
    }
    result.stats.outcome = ErrorCode::kDeadline;
    std::uint64_t served = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i] != 0) {
        ++served;
      } else {
        phi[i] = 0.0;
        if (want_grad) grad[i] = Vec3{};
        if (want_bounds) bound[i] = 0.0;
      }
    }
    result.stats.targets_served = served;
  }

  if (auditing) {
    const std::vector<obs::audit::Sample> winners =
        obs::audit::merge(reservoirs, config_.audit_samples);
    const obs::audit::Summary summary = obs::audit::finalize(
        winners, [&](const obs::audit::Sample& s) {
          const TreeNode& node = nodes[static_cast<std::size_t>(s.node)];
          return p2p(plan.targets[s.target],
                     std::span<const Vec3>(pos.data() + node.begin, node.count()),
                     std::span<const double>(q.data() + node.begin, node.count()),
                     /*softening2=*/0.0);
        });
    result.stats.audit_samples = summary.samples;
    result.stats.audit_bound_violations = summary.bound_violations;
    result.stats.audit_max_tightness = summary.max_tightness;
    result.stats.audit_mean_tightness = summary.mean_tightness;
  }

  obs::Registry& reg = obs::registry();
  reg.counter(obs::metric::kEngineReplays).add(1);
  reg.counter(result.stats.served_rung == ServeRung::kBasisReplay
                  ? obs::metric::kEngineServeBasisReplay
                  : obs::metric::kEngineServePlainReplay)
      .add(1);
  reg.counter(obs::metric::kEngineMultipoleTerms).add(result.stats.multipole_terms);
  reg.counter(obs::metric::kEngineM2pCount).add(result.stats.m2p_count);
  reg.counter(obs::metric::kEngineP2pPairs).add(result.stats.p2p_pairs);
  obs::flush_counts(obs::metric::kEngineM2pPerLevel, plan.m2p_by_level);
  obs::flush_counts(obs::metric::kEngineP2pPerLevel, plan.p2p_by_level);
  obs::flush_counts(obs::metric::kEngineDegreeUsed, plan.degree_used);

  if (plan.self) {
    const auto& orig = tree_.original_index();
    for (std::size_t i = 0; i < n; ++i) {
      result.potential[orig[i]] = phi[i];
      if (want_grad) result.gradient[orig[i]] = grad[i];
      if (want_bounds) result.error_bound[orig[i]] = bound[i];
    }
  } else {
    result.potential = std::move(phi);
    if (want_grad) result.gradient = std::move(grad);
    if (want_bounds) result.error_bound = std::move(bound);
  }
  TREECODE_ASSERT_EVAL_INVARIANTS(tree_, degrees_, config_, result, out_n,
                                  "EvalSession::evaluate");
  return result;
}

std::size_t EvalSession::traversal_reserve_bytes() {
  if (traversal_bytes_ == 0) {
    std::size_t total = 0;
    const std::size_t num_nodes = tree_.nodes().size();
    for (std::size_t nu = 0; nu < num_nodes; ++nu) {
      total += tri_size(degrees_.degree[nu]) * sizeof(Complex);
    }
    traversal_bytes_ = total;
  }
  return traversal_bytes_;
}

Expected<EvalResult> EvalSession::serve_degraded(std::span<const Vec3> targets,
                                                 bool self) {
  obs::registry().counter(obs::metric::kEngineDegradedServes).add(1);
  // Rung 2 needs transient multipoles for the whole tree; reserve them for
  // the duration of the traversal so a concurrent-session budget still
  // holds, then hand the bytes back.
  const std::size_t traversal_bytes = traversal_reserve_bytes();
  if (ResourceGovernor::Reservation traversal =
          governor_.reserve(traversal_bytes, "engine.traversal")) {
    // Held for the dynamic extent of the traversal; returned on any exit.
    return serve_traversal(targets, self);
  }
  return serve_direct(targets, self);
}

Expected<EvalResult> EvalSession::serve_traversal(std::span<const Vec3> targets,
                                                  bool self) {
  if (governor_.deadline_expired() && !config_.deadline_partial) {
    return engine_error(ErrorCode::kDeadline,
                        "EvalSession: deadline expired before traversal fallback");
  }
  // The fresh evaluator re-runs validation, degree assignment, and the full
  // upward pass — this is the degraded path; nothing durable is kept.
  try {
    const BarnesHutEvaluator fresh(tree_, config_, &pool_, sorted_charges_);
    EvalResult result = self ? fresh.evaluate(pool_) : fresh.evaluate_at(pool_, targets);
    result.stats.served_rung = ServeRung::kTraversal;
    result.stats.outcome = ErrorCode::kOk;
    result.stats.targets_served = static_cast<std::uint64_t>(targets.size());
    obs::registry().counter(obs::metric::kEngineServeTraversal).add(1);
    return result;
  } catch (const std::invalid_argument& e) {
    return engine_error(ErrorCode::kInvalidArgument, e.what());
  } catch (const std::exception& e) {
    const std::string what = e.what();
    const ErrorCode code = what.find("non-finite") != std::string::npos
                               ? ErrorCode::kNonFinite
                               : ErrorCode::kInternal;
    return engine_error(code, what);
  }
}

Expected<EvalResult> EvalSession::serve_direct(std::span<const Vec3> targets, bool self) {
  const std::size_t n = targets.size();
  EvalResult result;
  result.stats.served_rung = ServeRung::kDirect;
  result.stats.outcome = ErrorCode::kOk;
  result.stats.targets_served = static_cast<std::uint64_t>(n);
  const std::size_t out_n = self ? tree_.source_size() : n;
  const bool want_grad = config_.compute_gradient;
  const bool want_bounds = config_.track_error_bounds || config_.enforce_budget;
  result.potential.assign(out_n, 0.0);
  if (want_grad) result.gradient.assign(out_n, Vec3{});
  // Direct summation is exact: the Theorem-1 truncation error of every
  // interaction is zero, so the a-posteriori bound vector is identically
  // zero and trivially within any error budget.
  if (want_bounds) result.error_bound.assign(out_n, 0.0);
  obs::registry().counter(obs::metric::kEngineServeDirect).add(1);
  if (n == 0 || tree_.num_particles() == 0) return result;

  std::vector<char> skip(n, 0);
  if (!self) {
    const ValidationReport report = validate_targets(targets);
    if (tree_.config().validation == ValidationPolicy::kThrow && report.has_errors()) {
      return engine_error(ErrorCode::kNonFinite,
                          "EvalSession::direct: " + report.summary());
    }
    for (const std::size_t idx : report.non_finite_positions) skip[idx] = 1;
  }

  const auto& pos = tree_.positions();
  const auto& q = sorted_charges_;
  const std::span<const Vec3> sources(pos.data(), tree_.num_particles());
  const std::span<const double> charges(q.data(), tree_.num_particles());
  const double softening2 = config_.softening * config_.softening;
  const auto pairs_per_target = static_cast<std::uint64_t>(tree_.num_particles());

  CancellationToken cancel;
  std::atomic<bool> deadline_hit{false};
  std::atomic<std::int64_t> nonfinite_at{-1};
  const bool deadline_active = governor_.deadline_armed();
  std::vector<char> done(deadline_active ? n : 0, 0);
  std::vector<double> phi(n, 0.0);
  std::vector<Vec3> grad(want_grad ? n : 0, Vec3{});

  try {
    const ScopedTimer phase_timer(obs::span::kEngineDirect, &result.stats.eval_seconds);
    result.stats.work = parallel_for_blocked(
        pool_, n, config_.block_size,
        [&](std::size_t block_begin, std::size_t block_end, unsigned) -> std::uint64_t {
          if (deadline_active && governor_.deadline_expired()) {
            deadline_hit.store(true, std::memory_order_relaxed);
            cancel.cancel();
            return 0;
          }
          if constexpr (fault::kEnabled) {
            if (fault::fire(fault::Site::kSlowWorker)) {
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
          }
          std::uint64_t cost = 0;
          for (std::size_t i = block_begin; i < block_end; ++i) {
            if (skip[i] != 0) {
              if (deadline_active) done[i] = 1;
              continue;
            }
            const Vec3 x = targets[i];
            double my_phi;
            if (want_grad) {
              const PotentialGrad pg = p2p_grad(x, sources, charges, softening2);
              my_phi = pg.potential;
              grad[i] = pg.gradient;
            } else {
              my_phi = p2p(x, sources, charges, softening2);
            }
            if (!std::isfinite(my_phi)) {
              obs::recorder::record(obs::recorder::Category::kNonFinite,
                                    "engine.nonfinite_potential",
                                    static_cast<double>(i));
              std::int64_t expected_idx = -1;
              nonfinite_at.compare_exchange_strong(expected_idx,
                                                   static_cast<std::int64_t>(i),
                                                   std::memory_order_relaxed);
              cancel.cancel();
              return cost;
            }
            phi[i] = my_phi;
            if (deadline_active) done[i] = 1;
            cost += pairs_per_target;
          }
          return cost;
        },
        &cancel, obs::span::kEngineDirectWorker);
  } catch (const std::exception& e) {
    return engine_error(ErrorCode::kInternal,
                        std::string("EvalSession: direct worker exception: ") +
                            e.what());
  }

  const std::int64_t bad_target = nonfinite_at.load(std::memory_order_relaxed);
  if (bad_target >= 0) {
    return engine_error(ErrorCode::kNonFinite,
                        "EvalSession: non-finite potential at evaluation point " +
                            std::to_string(bad_target));
  }
  if (deadline_hit.load(std::memory_order_relaxed)) {
    obs::registry().counter(obs::metric::kEngineDeadlineExpirations).add(1);
    if (!config_.deadline_partial) {
      return engine_error(ErrorCode::kDeadline,
                          "EvalSession: deadline expired during direct fallback");
    }
    result.stats.outcome = ErrorCode::kDeadline;
    std::uint64_t served = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i] != 0) {
        ++served;
      } else {
        phi[i] = 0.0;
        if (want_grad) grad[i] = Vec3{};
      }
    }
    result.stats.targets_served = served;
  }
  result.stats.p2p_pairs = result.stats.work.total_work();

  if (self) {
    const auto& orig = tree_.original_index();
    for (std::size_t i = 0; i < n; ++i) {
      result.potential[orig[i]] = phi[i];
      if (want_grad) result.gradient[orig[i]] = grad[i];
    }
  } else {
    result.potential = std::move(phi);
    if (want_grad) result.gradient = std::move(grad);
  }
  return result;
}

Expected<EvalResult> EvalSession::try_evaluate(const EvalPlan& plan) {
  const Timer timer;
  obs::reqtrace::RequestScope rscope(obs::span::kReqEngineEvaluatePlan);
  Expected<EvalResult> served = try_evaluate_impl(plan);
  emit_request(obs::telemetry::Api::kEvaluatePlan, plan.key, timer.seconds(),
               served.ok(), served.ok() ? served.value().stats.outcome
                                        : served.error().code,
               served.ok() ? &served.value().stats : nullptr, cache_, config_,
               pool_.width(), rscope);
  return served;
}

Expected<EvalResult> EvalSession::try_evaluate_impl(const EvalPlan& plan) {
  const DeadlineScope deadline(governor_, config_.deadline_seconds);
  if (plan.offsets.size() != plan.num_targets() + 1) {
    return engine_error(ErrorCode::kInvalidArgument,
                        "EvalSession: plan offsets inconsistent with targets");
  }
  Expected<EvalResult> served = replay(plan);
  if (served.ok() || !memory_class(served.error().code)) return served;
  return serve_degraded(plan.targets, plan.self);
}

Expected<std::vector<EvalResult>> EvalSession::try_evaluate_batch(
    const EvalPlan& plan, std::span<const std::span<const double>> charge_columns) {
  const Timer timer;
  obs::reqtrace::RequestScope rscope(obs::span::kReqEngineEvaluateBatch);
  Expected<std::vector<EvalResult>> served =
      try_evaluate_batch_impl(plan, charge_columns);
  const EvalStats* stats =
      served.ok() && !served.value().empty() ? &served.value().front().stats : nullptr;
  emit_request(obs::telemetry::Api::kEvaluateBatch, plan.key, timer.seconds(),
               served.ok(),
               served.ok() ? (stats != nullptr ? stats->outcome : ErrorCode::kOk)
                           : served.error().code,
               stats, cache_, config_, pool_.width(), rscope,
               static_cast<std::uint32_t>(charge_columns.size()));
  return served;
}

void EvalSession::cover_p2m_basis(const EvalPlan& plan) {
  if (!options_.precompute_basis || options_.refresh_basis_budget_bytes == 0) return;
  const auto& nodes = tree_.nodes();
  const auto& pos = tree_.positions();
  if (p2m_basis_offset_.empty()) {
    p2m_basis_offset_.assign(nodes.size(), EvalPlan::kNoBasis);
  }
  // Offsets assigned serially (the pool layout must not depend on thread
  // timing), exactly like try_ensure_refreshed — the two paths share the
  // pool, the budget rule, and the per-node layout, so whichever runs first
  // covers a node and the other reuses it.
  const std::uint64_t budget_doubles =
      options_.refresh_basis_budget_bytes / sizeof(double);
  const std::uint64_t old_pool = p2m_basis_pool_.size();
  std::uint64_t pool_size = old_pool;
  std::vector<std::int32_t> fresh;
  for (const std::int32_t ni : plan.m2p_nodes) {
    const auto nu = static_cast<std::size_t>(ni);
    if (p2m_basis_offset_[nu] != EvalPlan::kNoBasis) continue;
    const auto need = static_cast<std::uint64_t>(
        p2m_basis_size(degrees_.degree[nu], nodes[nu].count()));
    if (pool_size + need > budget_doubles) continue;
    p2m_basis_offset_[nu] = pool_size;
    pool_size += need;
    fresh.push_back(ni);
  }
  if (pool_size == old_pool) return;
  const std::size_t growth_bytes =
      static_cast<std::size_t>(pool_size - old_pool) * sizeof(double);
  ResourceGovernor::Reservation growth =
      governor_.reserve(growth_bytes, "engine.p2m_basis");
  if (!growth) {
    obs::registry().counter(obs::metric::kEngineP2mBasisDenied).add(1);
    for (const std::int32_t ni : fresh) {
      p2m_basis_offset_[static_cast<std::size_t>(ni)] = EvalPlan::kNoBasis;
    }
    return;
  }
  auto fill_node = [&](std::size_t j) {
    const auto nu = static_cast<std::size_t>(fresh[j]);
    const TreeNode& node = nodes[nu];
    const int deg = degrees_.degree[nu];
    p2m_basis(deg, node.center,
              std::span<const Vec3>(pos.data() + node.begin, node.count()),
              std::span<double>(p2m_basis_pool_.data() + p2m_basis_offset_[nu],
                                p2m_basis_size(deg, node.count())));
  };
  try {
    p2m_basis_pool_.resize(pool_size);
    p2m_reservation_.absorb(std::move(growth));
    if (pool_.width() > 1) {
      parallel_for(
          pool_, fresh.size(), 8,
          [&](std::size_t b, std::size_t e, unsigned) {
            for (std::size_t j = b; j < e; ++j) fill_node(j);
          },
          nullptr, obs::span::kEngineRefreshWorker);
    } else {
      for (std::size_t j = 0; j < fresh.size(); ++j) fill_node(j);
    }
    obs::registry()
        .gauge(obs::metric::kEngineRefreshBasisBytes)
        .record_max(static_cast<double>(pool_size * sizeof(double)));
  } catch (const std::exception&) {
    // Allocation or worker failure: roll the coverage back so no node
    // points at unfilled pool storage; the full p2m kernel serves instead.
    for (const std::int32_t ni : fresh) {
      p2m_basis_offset_[static_cast<std::size_t>(ni)] = EvalPlan::kNoBasis;
    }
  }
}

Expected<std::vector<EvalResult>> EvalSession::evaluate_batch_sequential(
    const EvalPlan& plan, std::span<const std::span<const double>> charge_columns) {
  obs::registry().counter(obs::metric::kEngineBatchFallbacks).add(1);
  std::vector<EvalResult> results;
  results.reserve(charge_columns.size());
  for (std::size_t c = 0; c < charge_columns.size(); ++c) {
    Expected<void> updated = try_update_charges_impl(charge_columns[c]);
    if (!updated.ok()) return updated.error();
    Expected<EvalResult> served = try_evaluate_impl(plan);
    if (!served.ok()) return served.error();
    results.push_back(std::move(served).value());
  }
  return results;
}

Expected<std::vector<EvalResult>> EvalSession::try_evaluate_batch_impl(
    const EvalPlan& plan, std::span<const std::span<const double>> charge_columns) {
  const DeadlineScope deadline(governor_, config_.deadline_seconds);
  if (plan.offsets.size() != plan.num_targets() + 1) {
    return engine_error(ErrorCode::kInvalidArgument,
                        "EvalSession: plan offsets inconsistent with targets");
  }
  const std::size_t k = charge_columns.size();
  if (k == 0) {
    return engine_error(ErrorCode::kInvalidArgument,
                        "EvalSession: batch has no charge columns");
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (charge_columns[c].size() != tree_.source_size()) {
      return engine_error(ErrorCode::kInvalidArgument,
                          "EvalSession: batch column " + std::to_string(c) +
                              " size mismatch");
    }
    if (!all_finite(charge_columns[c])) {
      return engine_error(ErrorCode::kNonFinite,
                          "EvalSession: batch column " + std::to_string(c) +
                              " has non-finite values");
    }
  }
  obs::Registry& reg = obs::registry();
  reg.counter(obs::metric::kEngineBatchColumns).add(k);

  // Gradient and audit evaluations have no batched kernel form (m2p_grad
  // carries no basis; audit reservoirs key on a single charge vector) —
  // serve them column-by-column through the single-RHS path, which is
  // trivially bitwise-identical.
  if (config_.compute_gradient || config_.audit_samples > 0) {
    return evaluate_batch_sequential(plan, charge_columns);
  }

  const std::size_t n = plan.num_targets();
  const std::size_t np = tree_.num_particles();
  const std::size_t out_n = plan.self ? tree_.source_size() : n;
  const bool want_bounds = config_.track_error_bounds || config_.enforce_budget;
  const bool have_basis = !plan.basis_offset.empty();
  const ServeRung rung =
      have_basis ? ServeRung::kBasisReplay : ServeRung::kPlainReplay;

  std::vector<EvalResult> results(k);
  for (EvalResult& r : results) {
    r.stats = plan.stats;
    r.stats.build_seconds = 0.0;
    r.stats.eval_seconds = 0.0;
    r.stats.work = WorkStats{};
    r.stats.served_rung = rung;
    r.stats.outcome = ErrorCode::kOk;
    r.stats.targets_served = static_cast<std::uint64_t>(n);
    r.potential.assign(out_n, 0.0);
    if (want_bounds) r.error_bound.assign(out_n, 0.0);
  }
  if (n == 0 || np == 0) return results;

  // Governed batch workspace: k per-column copies of every plan-referenced
  // multipole, the k sorted charge columns, and the k potential rows.
  // Reserved before any allocation; a denial falls back to the sequential
  // path rather than failing the batch.
  std::size_t coeff_bytes = 0;
  const auto& nodes = tree_.nodes();
  for (const std::int32_t ni : plan.m2p_nodes) {
    coeff_bytes +=
        tri_size(degrees_.degree[static_cast<std::size_t>(ni)]) * sizeof(Complex);
  }
  const std::size_t workspace_bytes =
      coeff_bytes * k + k * np * sizeof(double) + k * n * sizeof(double);
  ResourceGovernor::Reservation workspace =
      governor_.reserve(workspace_bytes, "engine.batch");
  if (!workspace) {
    reg.counter(obs::metric::kEngineBatchDenied).add(1);
    return evaluate_batch_sequential(plan, charge_columns);
  }

  double refresh_seconds = 0.0;
  double eval_seconds = 0.0;

  // Gather each column into tree-sorted order — the identical permutation
  // try_update_charges performs (a pure copy, no arithmetic).
  std::vector<double> sorted(k * np);
  {
    const ScopedTimer refresh_timer(obs::span::kEngineRefresh, &refresh_seconds);
    const auto& orig = tree_.original_index();
    for (std::size_t c = 0; c < k; ++c) {
      double* col = sorted.data() + c * np;
      const std::span<const double> src = charge_columns[c];
      for (std::size_t si = 0; si < orig.size(); ++si) col[si] = src[orig[si]];
    }

    // Per-column multipoles for every node the plan references, rebuilt from
    // the column's charges exactly as the single-RHS refresh would: reset to
    // the node's frozen degree, then p2m through the shared basis pool when
    // covered (bitwise-equal to the full kernel) or the full p2m otherwise.
    cover_p2m_basis(plan);
  }

  const std::size_t num_m2p = plan.m2p_nodes.size();
  std::vector<MultipoleExpansion> batch_m(num_m2p * k);
  const auto& pos = tree_.positions();
  auto build_node = [&](std::size_t j) {
    const auto nu = static_cast<std::size_t>(plan.m2p_nodes[j]);
    const TreeNode& node = nodes[nu];
    const int deg = degrees_.degree[nu];
    const std::span<const Vec3> ppos(pos.data() + node.begin, node.count());
    const std::uint64_t off =
        p2m_basis_offset_.empty() ? EvalPlan::kNoBasis : p2m_basis_offset_[nu];
    for (std::size_t c = 0; c < k; ++c) {
      MultipoleExpansion& m = batch_m[j * k + c];
      m.reset(deg);
      const std::span<const double> pq(sorted.data() + c * np + node.begin,
                                       node.count());
      if (off != EvalPlan::kNoBasis) {
        p2m_apply_basis(pq, p2m_basis_pool_.data() + off, m);
      } else {
        p2m(node.center, ppos, pq, m);
      }
    }
  };
  try {
    const ScopedTimer refresh_timer(obs::span::kEngineRefresh, &refresh_seconds);
    if (pool_.width() > 1) {
      parallel_for(
          pool_, num_m2p, 8,
          [&](std::size_t b, std::size_t e, unsigned) {
            for (std::size_t j = b; j < e; ++j) build_node(j);
          },
          nullptr, obs::span::kEngineRefreshWorker);
    } else {
      for (std::size_t j = 0; j < num_m2p; ++j) build_node(j);
    }
  } catch (const std::exception& e) {
    return engine_error(ErrorCode::kInternal,
                        std::string("EvalSession: batch refresh worker exception: ") +
                            e.what());
  }
  // Node index -> batch slot for the walk below.
  std::vector<std::int32_t> m2p_slot(nodes.size(), -1);
  for (std::size_t j = 0; j < num_m2p; ++j) {
    m2p_slot[static_cast<std::size_t>(plan.m2p_nodes[j])] =
        static_cast<std::int32_t>(j);
  }

  const double softening2 = config_.softening * config_.softening;
  constexpr std::size_t kMaxWidth = 8;  // SoA column block held in registers

  std::vector<double> phi(k * n, 0.0);  // phi[c * n + i]
  std::vector<double> bound(want_bounds ? n : 0, 0.0);  // charge-independent

  CancellationToken cancel;
  std::atomic<bool> deadline_hit{false};
  // Packed (target * k + column) of the first non-finite potential seen.
  std::atomic<std::int64_t> nonfinite_at{-1};
  const bool deadline_active = governor_.deadline_armed();
  std::vector<char> done(deadline_active ? n : 0, 0);
  WorkStats work;

  try {
    const ScopedTimer phase_timer(obs::span::kEngineReplay, &eval_seconds);
    work = parallel_for_blocked(
        pool_, n, config_.block_size,
        [&](std::size_t block_begin, std::size_t block_end, unsigned) -> std::uint64_t {
          if (deadline_active && governor_.deadline_expired()) {
            deadline_hit.store(true, std::memory_order_relaxed);
            cancel.cancel();
            return 0;
          }
          if constexpr (fault::kEnabled) {
            if (fault::fire(fault::Site::kSlowWorker)) {
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
          }
          std::uint64_t cost = 0;
          for (std::size_t i = block_begin; i < block_end; ++i) {
            const Vec3 x = plan.targets[i];
            double my_bound = 0.0;
            const std::uint64_t begin = plan.offsets[i];
            const std::uint64_t end = plan.offsets[i + 1];
            // One entry-stream walk per column block: the plan entries, the
            // m2p basis pool, and the leaf positions stream from memory once
            // for up to kMaxWidth columns, while each column's accumulator
            // stays in a register. Per column the kernel calls, operands,
            // and accumulation order are exactly the single-RHS replay's.
            for (std::size_t c0 = 0; c0 < k; c0 += kMaxWidth) {
              const std::size_t width = std::min(kMaxWidth, k - c0);
              double acc[kMaxWidth] = {0.0};
              double p2p_out[kMaxWidth];
              std::span<const double> cq[kMaxWidth];
              for (std::uint64_t idx = begin; idx < end; ++idx) {
                const std::int32_t e = plan.entries[idx];
                const auto nu = static_cast<std::size_t>(EvalPlan::node_of(e));
                const TreeNode& node = nodes[nu];
                if (EvalPlan::is_p2p(e)) {
                  const std::span<const Vec3> ppos(pos.data() + node.begin,
                                                   node.count());
                  for (std::size_t w = 0; w < width; ++w) {
                    cq[w] = std::span<const double>(
                        sorted.data() + (c0 + w) * np + node.begin, node.count());
                  }
                  p2p_batch(x, ppos,
                            std::span<const std::span<const double>>(cq, width),
                            softening2, std::span<double>(p2p_out, width));
                  for (std::size_t w = 0; w < width; ++w) acc[w] += p2p_out[w];
                } else {
                  const std::int32_t j = m2p_slot[nu];
                  const std::uint64_t off =
                      have_basis ? plan.basis_offset[idx] : EvalPlan::kNoBasis;
                  for (std::size_t w = 0; w < width; ++w) {
                    const MultipoleExpansion& m =
                        batch_m[static_cast<std::size_t>(j) * k + c0 + w];
                    acc[w] += off != EvalPlan::kNoBasis
                                  ? m2p_apply_basis(m, plan.basis.data() + off)
                                  : m2p(m, node.center, x);
                  }
                  if (c0 == 0 && want_bounds) my_bound += plan.entry_bounds[idx];
                }
              }
              for (std::size_t w = 0; w < width; ++w) {
                if (!std::isfinite(acc[w])) {
                  obs::recorder::record(obs::recorder::Category::kNonFinite,
                                        "engine.nonfinite_potential",
                                        static_cast<double>(i));
                  std::int64_t expected_idx = -1;
                  nonfinite_at.compare_exchange_strong(
                      expected_idx,
                      static_cast<std::int64_t>(i * k + c0 + w),
                      std::memory_order_relaxed);
                  cancel.cancel();
                  return cost;
                }
                phi[(c0 + w) * n + i] = acc[w];
              }
            }
            if (want_bounds) bound[i] = my_bound;
            if (deadline_active) done[i] = 1;
            cost += plan.target_cost[i] * k;
          }
          return cost;
        },
        &cancel, obs::span::kEngineReplayWorker);
  } catch (const std::exception& e) {
    return engine_error(ErrorCode::kInternal,
                        std::string("EvalSession: batch replay worker exception: ") +
                            e.what());
  }

  const std::int64_t bad = nonfinite_at.load(std::memory_order_relaxed);
  if (bad >= 0) {
    return engine_error(
        ErrorCode::kNonFinite,
        "EvalSession: non-finite potential at evaluation point " +
            std::to_string(bad / static_cast<std::int64_t>(k)) + " in batch column " +
            std::to_string(bad % static_cast<std::int64_t>(k)));
  }
  std::uint64_t served = static_cast<std::uint64_t>(n);
  if (deadline_hit.load(std::memory_order_relaxed)) {
    reg.counter(obs::metric::kEngineDeadlineExpirations).add(1);
    if (!config_.deadline_partial) {
      return engine_error(ErrorCode::kDeadline,
                          "EvalSession: deadline expired during batch replay");
    }
    served = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i] != 0) {
        ++served;
      } else {
        for (std::size_t c = 0; c < k; ++c) phi[c * n + i] = 0.0;
        if (want_bounds) bound[i] = 0.0;
      }
    }
  }

  reg.counter(obs::metric::kEngineBatchReplays).add(1);
  reg.counter(rung == ServeRung::kBasisReplay
                  ? obs::metric::kEngineServeBasisReplay
                  : obs::metric::kEngineServePlainReplay)
      .add(1);
  reg.counter(obs::metric::kEngineMultipoleTerms).add(plan.stats.multipole_terms * k);
  reg.counter(obs::metric::kEngineM2pCount).add(plan.stats.m2p_count * k);
  reg.counter(obs::metric::kEngineP2pPairs).add(plan.stats.p2p_pairs * k);

  for (std::size_t c = 0; c < k; ++c) {
    EvalResult& r = results[c];
    r.stats.build_seconds = refresh_seconds;
    r.stats.eval_seconds = eval_seconds;
    r.stats.work = work;
    r.stats.targets_served = served;
    if (served != static_cast<std::uint64_t>(n)) r.stats.outcome = ErrorCode::kDeadline;
    const double* row = phi.data() + c * n;
    if (plan.self) {
      const auto& orig = tree_.original_index();
      for (std::size_t i = 0; i < n; ++i) {
        r.potential[orig[i]] = row[i];
        if (want_bounds) r.error_bound[orig[i]] = bound[i];
      }
    } else {
      std::copy(row, row + n, r.potential.begin());
      if (want_bounds) {
        std::copy(bound.begin(), bound.end(), r.error_bound.begin());
      }
    }
    TREECODE_ASSERT_EVAL_INVARIANTS(tree_, degrees_, config_, r, out_n,
                                    "EvalSession::evaluate_batch");
  }
  return results;
}

Expected<EvalResult> EvalSession::try_evaluate_at(std::span<const Vec3> targets) {
  const Timer timer;
  obs::reqtrace::RequestScope rscope(obs::span::kReqEngineEvaluateAt);
  std::uint64_t key = 0;
  Expected<EvalResult> served = try_evaluate_at_impl(targets, /*self=*/false, key);
  emit_request(obs::telemetry::Api::kEvaluateAt, key, timer.seconds(),
               served.ok(), served.ok() ? served.value().stats.outcome
                                        : served.error().code,
               served.ok() ? &served.value().stats : nullptr, cache_, config_,
               pool_.width(), rscope);
  return served;
}

Expected<EvalResult> EvalSession::try_evaluate() {
  const Timer timer;
  obs::reqtrace::RequestScope rscope(obs::span::kReqEngineEvaluateSelf);
  std::uint64_t key = 0;
  Expected<EvalResult> served =
      try_evaluate_at_impl(tree_.positions(), /*self=*/true, key);
  emit_request(obs::telemetry::Api::kEvaluateSelf, key, timer.seconds(),
               served.ok(), served.ok() ? served.value().stats.outcome
                                        : served.error().code,
               served.ok() ? &served.value().stats : nullptr, cache_, config_,
               pool_.width(), rscope);
  return served;
}

Expected<EvalResult> EvalSession::try_evaluate_at_impl(std::span<const Vec3> targets,
                                                       bool self,
                                                       std::uint64_t& key_out) {
  const DeadlineScope deadline(governor_, config_.deadline_seconds);
  Expected<std::shared_ptr<const EvalPlan>> plan = try_compile_impl(targets, self);
  if (plan.ok()) {
    key_out = plan.value()->key;
    Expected<EvalResult> served = replay(*plan.value());
    if (served.ok() || !memory_class(served.error().code)) return served;
  } else if (!memory_class(plan.error().code)) {
    return plan.error();
  }
  return serve_degraded(targets, self);
}

}  // namespace treecode::engine
