#include "engine/eval_session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/invariants.hpp"
#include "multipole/error_bounds.hpp"
#include "multipole/operators.hpp"
#include "obs/audit.hpp"
#include "obs/instrument.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "util/timer.hpp"
#include "obs/spans.hpp"
#include "util/validate.hpp"

namespace treecode::engine {

namespace {

/// The alpha-criterion, identical to the Barnes-Hut traversal's: accept the
/// cluster when its radius-to-distance ratio is at most alpha.
inline bool mac_accepts(const TreeNode& node, const Vec3& point, double alpha,
                        double& r_out) noexcept {
  const double r = distance(point, node.center);
  r_out = r;
  return r > 0.0 && node.radius <= alpha * r;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void fnv_mix(std::uint64_t& h, const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

template <typename T>
inline void fnv_mix_value(std::uint64_t& h, const T& value) noexcept {
  fnv_mix(h, &value, sizeof(T));
}

/// Hash of the target set plus every EvalConfig field that influences a
/// traversal decision (MAC acceptance, degree law, budget demotion) or the
/// shape of the compiled schedule (bounds, gradients). Fields that only
/// affect execution (threads, block_size) are deliberately excluded so the
/// same plan replays at any parallelism.
std::uint64_t plan_key(std::span<const Vec3> targets, bool self, const EvalConfig& c) {
  std::uint64_t h = kFnvOffset;
  fnv_mix_value(h, self);
  fnv_mix_value(h, c.alpha);
  fnv_mix_value(h, c.degree);
  fnv_mix_value(h, c.max_degree);
  fnv_mix_value(h, static_cast<int>(c.mode));
  fnv_mix_value(h, static_cast<int>(c.law));
  fnv_mix_value(h, static_cast<int>(c.reference));
  fnv_mix_value(h, c.reference_charge);
  fnv_mix_value(h, c.error_budget);
  fnv_mix_value(h, c.enforce_budget);
  fnv_mix_value(h, c.track_error_bounds);
  fnv_mix_value(h, c.compute_gradient);
  fnv_mix_value(h, c.softening);
  if (!targets.empty()) fnv_mix(h, targets.data(), targets.size() * sizeof(Vec3));
  return h;
}

}  // namespace

/// Per-thread compile statistics, merged in thread order after the sweep —
/// the same shape (and merge order) as the fresh traversal's accumulator so
/// plan stats match BarnesHutEvaluator stats exactly.
struct EvalSession::CompileAccumulator {
  std::uint64_t terms = 0;
  std::uint64_t m2p = 0;
  std::uint64_t p2p = 0;
  std::uint64_t budget_refine = 0;
  std::uint64_t budget_refine_leaf = 0;
  double max_bound = 0.0;
  int min_deg = std::numeric_limits<int>::max();
  int max_deg = -1;
  obs::LevelCounts m2p_by_level{};
  obs::LevelCounts p2p_by_level{};
  obs::DegreeCounts degree_used{};
};

EvalSession::EvalSession(Tree tree, const EvalConfig& config, const Options& options)
    : tree_(std::move(tree)),
      config_(config),
      options_(options),
      degrees_(assign_degrees(tree_, config_)),  // validates config
      pool_(config.threads),
      sorted_charges_(tree_.charges().begin(), tree_.charges().end()),
      multipoles_(tree_.nodes().size()),
      node_epoch_(tree_.nodes().size(), 0),
      cache_(options.plan_cache_capacity) {}

std::shared_ptr<const EvalPlan> EvalSession::compile(std::span<const Vec3> targets) {
  return compile_impl(targets, /*self=*/false);
}

std::shared_ptr<const EvalPlan> EvalSession::compile_self() {
  return compile_impl(tree_.positions(), /*self=*/true);
}

void EvalSession::update_charges(std::span<const double> charges) {
  if (charges.size() != tree_.source_size()) {
    throw std::invalid_argument("EvalSession: charge vector size mismatch");
  }
  if (!all_finite(charges)) {
    throw std::invalid_argument("EvalSession: charge vector has non-finite values");
  }
  const auto& orig = tree_.original_index();
  for (std::size_t si = 0; si < orig.size(); ++si) {
    sorted_charges_[si] = charges[orig[si]];
  }
  ++charge_epoch_;
}

void EvalSession::update_charges_sorted(std::span<const double> charges) {
  if (charges.size() != tree_.num_particles()) {
    throw std::invalid_argument("EvalSession: sorted charge vector size mismatch");
  }
  if (!all_finite(charges)) {
    throw std::invalid_argument("EvalSession: sorted charge vector has non-finite values");
  }
  std::copy(charges.begin(), charges.end(), sorted_charges_.begin());
  ++charge_epoch_;
}

std::shared_ptr<const EvalPlan> EvalSession::compile_impl(std::span<const Vec3> targets,
                                                          bool self) {
  // Self targets are the tree's own particles, validated at tree build;
  // external targets get the same policy treatment as source particles.
  ValidationReport report;
  const ValidationPolicy policy = tree_.config().validation;
  if (!self) {
    report = validate_targets(targets);
    enforce_validation(report, policy, "EvalSession::compile");
  }

  const std::uint64_t key = plan_key(targets, self, config_);
  obs::Registry& reg = obs::registry();
  if (auto hit = cache_.find(key, targets, self)) {
    reg.counter("engine.plan_cache_hits").add(1);
    return hit;
  }
  reg.counter("engine.plan_cache_misses").add(1);

  auto plan = std::make_shared<EvalPlan>();
  plan->targets.assign(targets.begin(), targets.end());
  plan->self = self;
  plan->key = key;
  for (const std::size_t idx : report.non_finite_positions) {
    plan->skipped_targets.push_back(static_cast<std::uint32_t>(idx));
  }

  const ScopedTimer phase_timer(obs::span::kEngineCompile, &plan->compile_seconds);

  const std::size_t n = targets.size();
  const auto& nodes = tree_.nodes();
  const bool enforce = config_.enforce_budget;
  const double budget = config_.error_budget;
  const bool want_bounds = config_.track_error_bounds || enforce;
  const double alpha = config_.alpha;

  std::vector<char> skip(n, 0);
  for (const std::uint32_t idx : plan->skipped_targets) skip[idx] = 1;

  // One alpha-MAC traversal per target, parallel over target blocks. The
  // DFS below mirrors BarnesHutEvaluator::run decision-for-decision
  // (including the budget bound-accumulation order) so a replay of the
  // recorded entries is bitwise-identical to a fresh traversal.
  std::vector<std::vector<std::int32_t>> per_entries(n);
  std::vector<std::vector<double>> per_bounds(want_bounds ? n : 0);
  std::vector<CompileAccumulator> acc(pool_.width());

  if (n > 0 && tree_.num_particles() > 0) {
    parallel_for_blocked(
        pool_, n, config_.block_size,
        [&](std::size_t block_begin, std::size_t block_end, unsigned t) -> std::uint64_t {
          CompileAccumulator& a = acc[t];
          const std::uint64_t terms_before = a.terms + a.p2p;
          std::vector<int> stack;
          stack.reserve(64);
          for (std::size_t i = block_begin; i < block_end; ++i) {
            if (skip[i] != 0) continue;
            const Vec3 x = targets[i];
            std::vector<std::int32_t>& ent = per_entries[i];
            double my_bound = 0.0;
            stack.clear();
            stack.push_back(0);
            while (!stack.empty()) {
              const int ni = stack.back();
              stack.pop_back();
              const auto nu = static_cast<std::size_t>(ni);
              const TreeNode& node = nodes[nu];
              if (node.count() == 0) continue;
              double r = 0.0;
              bool approximate = mac_accepts(node, x, alpha, r);
              double thm1 = 0.0;
              if (approximate && want_bounds) {
                thm1 = multipole_error_bound(node.abs_charge, node.radius, r,
                                             degrees_.degree[nu]);
                if (enforce && my_bound + thm1 > budget) {
                  approximate = false;
                  ++a.budget_refine;
                  if (node.is_leaf()) ++a.budget_refine_leaf;
                }
              }
              if (approximate) {
                const int deg = degrees_.degree[nu];
                ent.push_back(EvalPlan::make_entry(ni, /*p2p=*/false));
                if (want_bounds) per_bounds[i].push_back(thm1);
                a.terms += static_cast<std::uint64_t>(deg + 1) *
                           static_cast<std::uint64_t>(deg + 1);
                ++a.m2p;
                a.min_deg = std::min(a.min_deg, deg);
                a.max_deg = std::max(a.max_deg, deg);
                obs::count_slot(a.degree_used, deg);
                obs::count_slot(a.m2p_by_level, node.level);
                const double thm2 = mac_error_bound(node.abs_charge, r, alpha, deg);
                a.max_bound = std::max(a.max_bound, thm2);
                my_bound += thm1;
              } else if (node.is_leaf()) {
                ent.push_back(EvalPlan::make_entry(ni, /*p2p=*/true));
                if (want_bounds) per_bounds[i].push_back(0.0);
                a.p2p += node.count();
                obs::count_slot(a.p2p_by_level, node.level, node.count());
              } else {
                for (int c = 0; c < node.num_children; ++c) {
                  stack.push_back(node.first_child + c);
                }
              }
            }
          }
          return (a.terms + a.p2p) - terms_before;
        },
        nullptr, obs::span::kEngineCompileWorker);
  }

  // Serial flatten into the plan's replay layout.
  plan->offsets.resize(n + 1);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    plan->offsets[i] = total;
    total += per_entries[i].size();
  }
  plan->offsets[n] = total;
  plan->entries.reserve(total);
  if (want_bounds) plan->entry_bounds.reserve(total);
  plan->target_cost.resize(n, 0);
  std::vector<char> referenced(nodes.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t cost = 0;
    for (std::size_t k = 0; k < per_entries[i].size(); ++k) {
      const std::int32_t e = per_entries[i][k];
      plan->entries.push_back(e);
      if (want_bounds) plan->entry_bounds.push_back(per_bounds[i][k]);
      const auto nu = static_cast<std::size_t>(EvalPlan::node_of(e));
      if (EvalPlan::is_p2p(e)) {
        cost += nodes[nu].count();
      } else {
        referenced[nu] = 1;
        const auto deg = static_cast<std::uint64_t>(degrees_.degree[nu]);
        cost += (deg + 1) * (deg + 1);
      }
    }
    plan->target_cost[i] = cost;
  }
  for (std::size_t nu = 0; nu < referenced.size(); ++nu) {
    if (referenced[nu] != 0) plan->m2p_nodes.push_back(static_cast<std::int32_t>(nu));
  }

  // Precompute the charge-independent m2p evaluation basis (1/r and the
  // Y_n^m harmonics per entry). Replay then pays only the coefficient dot
  // product — the transcendentals and recurrences, the bulk of the kernel,
  // move into compile. Offsets are laid out serially (budget-gated, in
  // schedule order); the fill itself is parallel over target blocks.
  // m2p_grad has no basis form, so gradient plans skip the whole pass.
  if (options_.precompute_basis && options_.basis_budget_bytes > 0 &&
      !config_.compute_gradient && total > 0) {
    plan->basis_offset.assign(total, EvalPlan::kNoBasis);
    const std::uint64_t budget_doubles = options_.basis_budget_bytes / sizeof(double);
    std::uint64_t basis_total = 0;
    bool any = false;
    for (std::uint64_t idx = 0; idx < total; ++idx) {
      const std::int32_t e = plan->entries[idx];
      if (EvalPlan::is_p2p(e)) continue;
      const auto nu = static_cast<std::size_t>(EvalPlan::node_of(e));
      const auto need =
          static_cast<std::uint64_t>(m2p_basis_size(degrees_.degree[nu]));
      if (basis_total + need > budget_doubles) break;
      plan->basis_offset[idx] = basis_total;
      basis_total += need;
      any = true;
    }
    if (any) {
      plan->basis.resize(basis_total);
      parallel_for_blocked(
          pool_, n, config_.block_size,
          [&](std::size_t block_begin, std::size_t block_end, unsigned) -> std::uint64_t {
            std::uint64_t filled = 0;
            for (std::size_t i = block_begin; i < block_end; ++i) {
              const Vec3 x = targets[i];
              for (std::uint64_t idx = plan->offsets[i]; idx < plan->offsets[i + 1];
                   ++idx) {
                const std::uint64_t off = plan->basis_offset[idx];
                if (off == EvalPlan::kNoBasis) continue;
                const auto nu =
                    static_cast<std::size_t>(EvalPlan::node_of(plan->entries[idx]));
                const int deg = degrees_.degree[nu];
                m2p_basis(deg, nodes[nu].center, x,
                          std::span<double>(plan->basis.data() + off,
                                            m2p_basis_size(deg)));
                ++filled;
              }
            }
            return filled;
          },
          nullptr, obs::span::kEngineCompileWorker);
    } else {
      plan->basis_offset.clear();
    }
  }

  // Merge per-thread statistics in thread order (same as the fresh run).
  int min_deg = std::numeric_limits<int>::max();
  int max_deg = -1;
  for (const CompileAccumulator& a : acc) {
    plan->stats.multipole_terms += a.terms;
    plan->stats.m2p_count += a.m2p;
    plan->stats.p2p_pairs += a.p2p;
    plan->stats.budget_refinements += a.budget_refine;
    plan->stats.budget_refinements_leaf += a.budget_refine_leaf;
    plan->stats.max_interaction_bound =
        std::max(plan->stats.max_interaction_bound, a.max_bound);
    min_deg = std::min(min_deg, a.min_deg);
    max_deg = std::max(max_deg, a.max_deg);
    for (std::size_t i = 0; i < plan->m2p_by_level.size(); ++i) {
      plan->m2p_by_level[i] += a.m2p_by_level[i];
      plan->p2p_by_level[i] += a.p2p_by_level[i];
    }
    for (std::size_t i = 0; i < plan->degree_used.size(); ++i) {
      plan->degree_used[i] += a.degree_used[i];
    }
  }
  plan->stats.min_degree_used = max_deg >= 0 ? min_deg : 0;
  plan->stats.max_degree_used = max_deg >= 0 ? max_deg : 0;
  plan->stats.reference_charge = degrees_.reference_charge;

  reg.counter("engine.plan_compiles").add(1);
  reg.gauge("engine.plan_entries").record_max(static_cast<double>(total));
  reg.gauge("engine.plan_bytes").record_max(static_cast<double>(plan->memory_bytes()));
  reg.gauge("engine.basis_bytes")
      .record_max(static_cast<double>(plan->basis.size() * sizeof(double)));

  TREECODE_ASSERT_PLAN_INVARIANTS(*plan, tree_, degrees_, config_,
                                  "EvalSession::compile");
  cache_.insert(plan);
  return plan;
}

void EvalSession::ensure_refreshed(const EvalPlan& plan) {
  stale_.clear();
  for (const std::int32_t ni : plan.m2p_nodes) {
    if (node_epoch_[static_cast<std::size_t>(ni)] != charge_epoch_) stale_.push_back(ni);
  }
  if (stale_.empty()) return;
  const auto& nodes = tree_.nodes();
  const auto& pos = tree_.positions();
  const auto& q = sorted_charges_;

  // Cover newly-seen nodes with a p2m basis while the budget lasts: offsets
  // assigned serially (the pool layout must not depend on thread timing),
  // the basis itself filled inside the parallel refresh below. Geometry and
  // degrees are frozen, so a node's basis is computed exactly once.
  std::vector<char> fill(stale_.size(), 0);
  if (options_.precompute_basis && options_.refresh_basis_budget_bytes > 0) {
    if (p2m_basis_offset_.empty()) {
      p2m_basis_offset_.assign(nodes.size(), EvalPlan::kNoBasis);
    }
    const std::uint64_t budget_doubles =
        options_.refresh_basis_budget_bytes / sizeof(double);
    std::uint64_t pool_size = p2m_basis_pool_.size();
    for (std::size_t k = 0; k < stale_.size(); ++k) {
      const auto nu = static_cast<std::size_t>(stale_[k]);
      if (p2m_basis_offset_[nu] != EvalPlan::kNoBasis) continue;
      const auto need = static_cast<std::uint64_t>(
          p2m_basis_size(degrees_.degree[nu], nodes[nu].count()));
      if (pool_size + need > budget_doubles) continue;
      p2m_basis_offset_[nu] = pool_size;
      pool_size += need;
      fill[k] = 1;
    }
    if (pool_size > p2m_basis_pool_.size()) {
      p2m_basis_pool_.resize(pool_size);
      obs::registry()
          .gauge("engine.refresh_basis_bytes")
          .record_max(static_cast<double>(pool_size * sizeof(double)));
    }
  }

  auto refresh_node = [&](std::size_t k) {
    const auto nu = static_cast<std::size_t>(stale_[k]);
    const TreeNode& node = nodes[nu];
    MultipoleExpansion& m = multipoles_[nu];
    // First build allocates to the node's assigned degree; later refreshes
    // reuse the storage (the degree table is frozen for the session).
    if (node_epoch_[nu] == 0) {
      m.reset(degrees_.degree[nu]);
    } else {
      m.clear();
    }
    const std::span<const Vec3> ppos(pos.data() + node.begin, node.count());
    const std::span<const double> pq(q.data() + node.begin, node.count());
    const std::uint64_t off =
        p2m_basis_offset_.empty() ? EvalPlan::kNoBasis : p2m_basis_offset_[nu];
    if (off != EvalPlan::kNoBasis) {
      if (fill[k] != 0) {
        p2m_basis(degrees_.degree[nu], node.center, ppos,
                  std::span<double>(p2m_basis_pool_.data() + off,
                                    p2m_basis_size(degrees_.degree[nu], node.count())));
      }
      p2m_apply_basis(pq, p2m_basis_pool_.data() + off, m);
    } else {
      p2m(node.center, ppos, pq, m);
    }
    node_epoch_[nu] = charge_epoch_;
  };
  if (pool_.width() > 1) {
    parallel_for(
        pool_, stale_.size(), 8,
        [&](std::size_t b, std::size_t e, unsigned) {
          for (std::size_t k = b; k < e; ++k) refresh_node(k);
        },
        nullptr, obs::span::kEngineRefreshWorker);
  } else {
    for (std::size_t k = 0; k < stale_.size(); ++k) refresh_node(k);
  }
  obs::registry().counter("engine.nodes_refreshed").add(stale_.size());
}

EvalResult EvalSession::evaluate(const EvalPlan& plan) {
  const std::size_t n = plan.num_targets();
  if (plan.offsets.size() != n + 1) {
    throw std::invalid_argument("EvalSession: plan offsets inconsistent with targets");
  }
  EvalResult result;
  result.stats = plan.stats;  // charge-independent schedule statistics
  result.stats.build_seconds = 0.0;
  result.stats.eval_seconds = 0.0;
  result.stats.work = WorkStats{};
  const std::size_t out_n = plan.self ? tree_.source_size() : n;
  const bool want_grad = config_.compute_gradient;
  const bool want_bounds = config_.track_error_bounds || config_.enforce_budget;
  result.potential.assign(out_n, 0.0);
  if (want_grad) result.gradient.assign(out_n, Vec3{});
  if (want_bounds) result.error_bound.assign(out_n, 0.0);
  if (n == 0 || tree_.num_particles() == 0) return result;

  {
    const ScopedTimer refresh_timer(obs::span::kEngineRefresh, &result.stats.build_seconds);
    ensure_refreshed(plan);
  }

  const auto& nodes = tree_.nodes();
  const auto& pos = tree_.positions();
  const auto& q = sorted_charges_;
  const double softening2 = config_.softening * config_.softening;
  const bool have_basis = !plan.basis_offset.empty();
  // Replay audits mirror the fresh traversal exactly: M2P entries appear in
  // the plan in per-target DFS acceptance order, so the (target, ordinal)
  // sampling keys — and therefore the audited interactions and their
  // bitwise contributions — match a fresh evaluation over the same targets.
  const bool auditing = config_.audit_samples > 0;
  const bool have_entry_bounds = !plan.entry_bounds.empty();

  std::vector<double> phi(n, 0.0);
  std::vector<Vec3> grad(want_grad ? n : 0, Vec3{});
  std::vector<double> bound(want_bounds ? n : 0, 0.0);
  std::vector<obs::audit::Reservoir> reservoirs(auditing ? pool_.width() : 0);
  for (auto& r : reservoirs) r.set_capacity(config_.audit_samples);

  {
    const ScopedTimer phase_timer(obs::span::kEngineReplay, &result.stats.eval_seconds);
    result.stats.work = parallel_for_blocked(
        pool_, n, config_.block_size,
        [&](std::size_t block_begin, std::size_t block_end, unsigned t) -> std::uint64_t {
          std::uint64_t cost = 0;
          for (std::size_t i = block_begin; i < block_end; ++i) {
            const Vec3 x = plan.targets[i];
            double my_phi = 0.0;
            double my_bound = 0.0;
            Vec3 my_grad{};
            std::uint64_t audit_ord = 0;
            const std::uint64_t begin = plan.offsets[i];
            const std::uint64_t end = plan.offsets[i + 1];
            for (std::uint64_t idx = begin; idx < end; ++idx) {
              const std::int32_t e = plan.entries[idx];
              const auto nu = static_cast<std::size_t>(EvalPlan::node_of(e));
              const TreeNode& node = nodes[nu];
              if (EvalPlan::is_p2p(e)) {
                const std::span<const Vec3> ppos(pos.data() + node.begin, node.count());
                const std::span<const double> pq(q.data() + node.begin, node.count());
                if (want_grad) {
                  const PotentialGrad pg = p2p_grad(x, ppos, pq, softening2);
                  my_phi += pg.potential;
                  my_grad += pg.gradient;
                } else {
                  my_phi += p2p(x, ppos, pq, softening2);
                }
              } else {
                const MultipoleExpansion& m = multipoles_[nu];
                double contribution;
                if (want_grad) {
                  const PotentialGrad pg = m2p_grad(m, node.center, x);
                  contribution = pg.potential;
                  my_grad += pg.gradient;
                } else {
                  const std::uint64_t off =
                      have_basis ? plan.basis_offset[idx] : EvalPlan::kNoBasis;
                  contribution = off != EvalPlan::kNoBasis
                                     ? m2p_apply_basis(m, plan.basis.data() + off)
                                     : m2p(m, node.center, x);
                }
                my_phi += contribution;
                if (want_bounds) my_bound += plan.entry_bounds[idx];
                if (auditing) {
                  obs::audit::Sample s;
                  s.key = obs::audit::sample_key(config_.audit_seed, i, audit_ord);
                  s.target = i;
                  s.node = EvalPlan::node_of(e);
                  s.level = node.level;
                  s.degree = m.degree();
                  s.abs_charge = node.abs_charge;
                  s.approx = contribution;
                  // Plans compiled without bound tracking carry no per-entry
                  // bounds; recompute Theorem 1 with the same arguments the
                  // fresh traversal uses so audits stay bitwise comparable.
                  const double r_audit = distance(x, node.center);
                  s.bound = have_entry_bounds
                                ? plan.entry_bounds[idx]
                                : multipole_error_bound(node.abs_charge, node.radius,
                                                        r_audit, degrees_.degree[nu]);
                  s.noise_scale = r_audit > node.radius
                                      ? node.abs_charge / (r_audit - node.radius)
                                      : 0.0;
                  reservoirs[t].offer(s);
                }
                ++audit_ord;
              }
            }
            if (!std::isfinite(my_phi)) {
              obs::recorder::record(obs::recorder::Category::kNonFinite,
                                    "engine.nonfinite_potential",
                                    static_cast<double>(i));
              obs::recorder::trigger("engine: non-finite potential");
              throw std::runtime_error(
                  "EvalSession: non-finite potential at evaluation point " +
                  std::to_string(i));
            }
            phi[i] = my_phi;
            if (want_grad) grad[i] = my_grad;
            if (want_bounds) bound[i] = my_bound;
            cost += plan.target_cost[i];
          }
          return cost;
        },
        nullptr, obs::span::kEngineReplayWorker);
  }

  if (auditing) {
    const std::vector<obs::audit::Sample> winners =
        obs::audit::merge(reservoirs, config_.audit_samples);
    const obs::audit::Summary summary = obs::audit::finalize(
        winners, [&](const obs::audit::Sample& s) {
          const TreeNode& node = nodes[static_cast<std::size_t>(s.node)];
          return p2p(plan.targets[s.target],
                     std::span<const Vec3>(pos.data() + node.begin, node.count()),
                     std::span<const double>(q.data() + node.begin, node.count()),
                     /*softening2=*/0.0);
        });
    result.stats.audit_samples = summary.samples;
    result.stats.audit_bound_violations = summary.bound_violations;
    result.stats.audit_max_tightness = summary.max_tightness;
    result.stats.audit_mean_tightness = summary.mean_tightness;
  }

  obs::Registry& reg = obs::registry();
  reg.counter("engine.replays").add(1);
  reg.counter("engine.multipole_terms").add(result.stats.multipole_terms);
  reg.counter("engine.m2p_count").add(result.stats.m2p_count);
  reg.counter("engine.p2p_pairs").add(result.stats.p2p_pairs);
  obs::flush_counts("engine.m2p_per_level", plan.m2p_by_level);
  obs::flush_counts("engine.p2p_per_level", plan.p2p_by_level);
  obs::flush_counts("engine.degree_used", plan.degree_used);

  if (plan.self) {
    const auto& orig = tree_.original_index();
    for (std::size_t i = 0; i < n; ++i) {
      result.potential[orig[i]] = phi[i];
      if (want_grad) result.gradient[orig[i]] = grad[i];
      if (want_bounds) result.error_bound[orig[i]] = bound[i];
    }
  } else {
    result.potential = std::move(phi);
    if (want_grad) result.gradient = std::move(grad);
    if (want_bounds) result.error_bound = std::move(bound);
  }
  TREECODE_ASSERT_EVAL_INVARIANTS(tree_, degrees_, config_, result, out_n,
                                  "EvalSession::evaluate");
  return result;
}

EvalResult EvalSession::evaluate_at(std::span<const Vec3> targets) {
  return evaluate(*compile(targets));
}

EvalResult EvalSession::evaluate() { return evaluate(*compile_self()); }

}  // namespace treecode::engine
