#include "core/dipole_barnes_hut.hpp"

#include <algorithm>
#include <stdexcept>

#include <limits>

#include "analysis/invariants.hpp"
#include "multipole/operators.hpp"
#include "obs/instrument.hpp"
#include "obs/metric_names.hpp"
#include "parallel/parallel_for.hpp"
#include "util/timer.hpp"
#include "obs/spans.hpp"
#include "util/validate.hpp"

namespace treecode {

DipoleBarnesHutEvaluator::DipoleBarnesHutEvaluator(const Tree& tree, const EvalConfig& config,
                                                   std::span<const Vec3> sorted_moments,
                                                   ThreadPool* pool)
    : tree_(tree),
      config_(config),
      degrees_(assign_degrees(tree, config)),
      moments_(sorted_moments) {
  if (moments_.size() != tree.num_particles()) {
    throw std::invalid_argument("DipoleBarnesHutEvaluator: moment count mismatch");
  }
  // Moments bypass the tree's input validation; one NaN moment would
  // poison every expansion, so re-check the span here.
  if (!all_finite(moments_)) {
    throw std::invalid_argument("DipoleBarnesHutEvaluator: non-finite dipole moment");
  }
  const ScopedTimer build_phase(obs::span::kDipoleBhP2m);
  const auto& nodes = tree_.nodes();
  multipoles_.resize(nodes.size());
  const auto& pos = tree_.positions();
  auto build_node = [&](std::size_t i) {
    const TreeNode& node = nodes[i];
    if (node.count() == 0) return;
    multipoles_[i].reset(degrees_.degree[i]);
    p2m_dipole(node.center,
               std::span<const Vec3>(pos.data() + node.begin, node.count()),
               moments_.subspan(node.begin, node.count()), multipoles_[i]);
  };
  if (pool != nullptr && pool->width() > 1) {
    parallel_for(*pool, nodes.size(), 8,
                 [&](std::size_t b, std::size_t e, unsigned) {
                   for (std::size_t i = b; i < e; ++i) build_node(i);
                 },
                 nullptr, obs::span::kDipoleBhP2mWorker);
  } else {
    for (std::size_t i = 0; i < nodes.size(); ++i) build_node(i);
  }
}

EvalResult DipoleBarnesHutEvaluator::evaluate_at(ThreadPool& pool,
                                                 std::span<const Vec3> points) const {
  // Same target policy as BarnesHutEvaluator::evaluate_at: throw under
  // kThrow, otherwise skip non-finite targets leaving their slots zero.
  enforce_validation(validate_targets(points), tree_.config().validation,
                     "DipoleBarnesHutEvaluator::evaluate_at");
  EvalResult result;
  const std::size_t n = points.size();
  result.potential.assign(n, 0.0);
  if (n == 0 || tree_.num_particles() == 0) return result;

  const auto& nodes = tree_.nodes();
  const auto& pos = tree_.positions();
  const double alpha = config_.alpha;
  std::vector<std::uint64_t> terms(pool.width(), 0);
  std::vector<std::uint64_t> p2p_count(pool.width(), 0);
  std::vector<int> min_deg(pool.width(), std::numeric_limits<int>::max());
  std::vector<int> max_deg(pool.width(), -1);

  {
  const ScopedTimer eval_phase(obs::span::kDipoleBhTraverse, &result.stats.eval_seconds);
  result.stats.work = parallel_for_blocked(
      pool, n, config_.block_size,
      [&](std::size_t block_begin, std::size_t block_end, unsigned t) -> std::uint64_t {
        std::uint64_t cost = 0;
        std::vector<int> stack;
        stack.reserve(64);
        for (std::size_t i = block_begin; i < block_end; ++i) {
          const Vec3 x = points[i];
          if (!std::isfinite(x.x) || !std::isfinite(x.y) || !std::isfinite(x.z)) continue;
          double my_phi = 0.0;
          stack.clear();
          stack.push_back(0);
          while (!stack.empty()) {
            const int ni = stack.back();
            stack.pop_back();
            const TreeNode& node = nodes[static_cast<std::size_t>(ni)];
            if (node.count() == 0) continue;
            const double r = distance(x, node.center);
            if (r > 0.0 && node.radius <= alpha * r) {
              const MultipoleExpansion& m = multipoles_[static_cast<std::size_t>(ni)];
              my_phi += m2p(m, node.center, x);
              terms[t] += static_cast<std::uint64_t>(m.term_count());
              cost += static_cast<std::uint64_t>(m.term_count());
              min_deg[t] = std::min(min_deg[t], m.degree());
              max_deg[t] = std::max(max_deg[t], m.degree());
            } else if (node.is_leaf()) {
              my_phi += p2p_dipole(x,
                                   std::span<const Vec3>(pos.data() + node.begin, node.count()),
                                   moments_.subspan(node.begin, node.count()));
              p2p_count[t] += node.count();
              cost += node.count();
            } else {
              for (int c = 0; c < node.num_children; ++c) stack.push_back(node.first_child + c);
            }
          }
          result.potential[i] = my_phi;
        }
        return cost;
      },
      nullptr, obs::span::kDipoleBhTraverseWorker);
  }
  int used_min = std::numeric_limits<int>::max();
  int used_max = -1;
  for (unsigned t = 0; t < pool.width(); ++t) {
    result.stats.multipole_terms += terms[t];
    result.stats.p2p_pairs += p2p_count[t];
    used_min = std::min(used_min, min_deg[t]);
    used_max = std::max(used_max, max_deg[t]);
  }
  // Degrees actually evaluated, mirroring BarnesHutEvaluator::run.
  result.stats.min_degree_used = used_max >= 0 ? used_min : 0;
  result.stats.max_degree_used = used_max >= 0 ? used_max : 0;
  obs::Registry& reg = obs::registry();
  reg.counter(obs::metric::kDipoleBhMultipoleTerms).add(result.stats.multipole_terms);
  reg.counter(obs::metric::kDipoleBhP2pPairs).add(result.stats.p2p_pairs);
#if defined(TREECODE_CHECK_INVARIANTS)
  // The dipole evaluator produces potentials only; check against a config
  // copy with the unproduced outputs switched off.
  EvalConfig checked = config_;
  checked.compute_gradient = false;
  checked.track_error_bounds = false;
  checked.enforce_budget = false;
  TREECODE_ASSERT_EVAL_INVARIANTS(tree_, degrees_, checked, result, n,
                                  "DipoleBarnesHutEvaluator::evaluate_at");
#endif
  return result;
}

}  // namespace treecode
