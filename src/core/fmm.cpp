#include "core/fmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "analysis/invariants.hpp"
#include "multipole/error_bounds.hpp"
#include "multipole/operators.hpp"
#include "multipole/rotation.hpp"
#include "obs/instrument.hpp"
#include "obs/metric_names.hpp"
#include "parallel/parallel_for.hpp"
#include "util/timer.hpp"
#include "obs/spans.hpp"

namespace treecode {

namespace {

/// Interaction lists produced by the dual-tree traversal. Grouping by
/// *target* makes the expensive phases race-free under parallelism: each
/// target node's local expansion (and each target leaf's outputs) is
/// written by exactly one task.
struct InteractionLists {
  std::vector<std::vector<int>> m2l_sources;  ///< per target node
  std::vector<std::vector<int>> p2p_sources;  ///< per target leaf node
  std::vector<int> m2l_targets;               ///< nodes with nonempty m2l list
  std::vector<int> p2p_targets;               ///< leaves with nonempty p2p list
};

struct Traversal {
  const Tree* tree = nullptr;
  double alpha = 0.5;
  InteractionLists lists;

  [[nodiscard]] const TreeNode& node(int i) const {
    return tree->node(static_cast<std::size_t>(i));
  }

  void add_m2l(int target, int source) {
    auto& v = lists.m2l_sources[static_cast<std::size_t>(target)];
    if (v.empty()) lists.m2l_targets.push_back(target);
    v.push_back(source);
  }

  void add_p2p(int target, int source) {
    auto& v = lists.p2p_sources[static_cast<std::size_t>(target)];
    if (v.empty()) lists.p2p_targets.push_back(target);
    v.push_back(source);
  }

  /// Dual-tree traversal with the two-sided alpha criterion.
  void traverse(int a, int b) {
    const TreeNode& ta = node(a);
    const TreeNode& tb = node(b);
    if (ta.count() == 0 || tb.count() == 0) return;
    const double d = distance(ta.center, tb.center);
    if (d > 0.0 && ta.radius + tb.radius <= alpha * d) {
      add_m2l(a, b);
      return;
    }
    if (ta.is_leaf() && tb.is_leaf()) {
      add_p2p(a, b);
      return;
    }
    const bool split_a = !ta.is_leaf() && (tb.is_leaf() || ta.radius >= tb.radius);
    if (split_a) {
      for (int c = 0; c < ta.num_children; ++c) traverse(ta.first_child + c, b);
    } else {
      for (int c = 0; c < tb.num_children; ++c) traverse(a, tb.first_child + c);
    }
  }
};

struct ThreadStats {
  std::uint64_t terms = 0;
  std::uint64_t m2l = 0;
  std::uint64_t p2p = 0;
  double max_bound = 0.0;
  /// Expansion degrees actually evaluated (M2L sources/targets and L2P),
  /// mirroring the Barnes-Hut "degree actually used" bookkeeping.
  int min_deg = std::numeric_limits<int>::max();
  int max_deg = -1;
  obs::LevelCounts m2l_by_level{};
  obs::LevelCounts p2p_by_level{};
  obs::DegreeCounts degree_used{};
};

}  // namespace

EvalResult evaluate_fmm(const Tree& tree, const EvalConfig& config) {
  EvalResult result;
  const std::size_t n = tree.num_particles();
  // Caller-order results are indexed by the source system (validation may
  // have dropped particles; their slots stay zero).
  result.potential.assign(tree.source_size(), 0.0);
  if (config.compute_gradient) result.gradient.assign(tree.source_size(), Vec3{});
  if (n == 0) return result;

  const DegreeAssignment degrees = assign_degrees(tree, config);
  ThreadPool pool(config.threads);
  const auto& pos = tree.positions();
  const auto& q = tree.charges();
  const bool want_grad = config.compute_gradient;

  // ---- Upward pass: per-node P2M (see barnes_hut.hpp for why not M2M).
  std::vector<MultipoleExpansion> multipole(tree.num_nodes());
  {
    const ScopedTimer phase(obs::span::kFmmP2m, &result.stats.build_seconds);
    parallel_for(pool, tree.num_nodes(), 8,
                 [&](std::size_t b, std::size_t e, unsigned) {
                   for (std::size_t i = b; i < e; ++i) {
                     const TreeNode& node = tree.node(i);
                     if (node.count() == 0) continue;
                     multipole[i].reset(degrees.degree[i]);
                     p2m(node.center,
                         std::span<const Vec3>(pos.data() + node.begin, node.count()),
                         std::span<const double>(q.data() + node.begin, node.count()),
                         multipole[i]);
                   }
                 },
                 nullptr, obs::span::kFmmP2mWorker);
  }

  Timer eval_timer;
  // ---- Dual-tree traversal (serial; cheap relative to the math phases).
  Traversal trav;
  trav.tree = &tree;
  trav.alpha = config.alpha;
  trav.lists.m2l_sources.resize(tree.num_nodes());
  trav.lists.p2p_sources.resize(tree.num_nodes());
  {
    const ScopedTimer phase(obs::span::kFmmTraverse);
    trav.traverse(0, 0);
  }

  // ---- M2L phase: parallel over target nodes.
  std::vector<LocalExpansion> local(tree.num_nodes());
  std::vector<char> has_local(tree.num_nodes(), 0);
  std::vector<ThreadStats> tstats(pool.width());
  const auto& m2l_targets = trav.lists.m2l_targets;
  {
    const ScopedTimer phase(obs::span::kFmmM2l);
    parallel_for(pool, m2l_targets.size(), 1,
                 [&](std::size_t b, std::size_t e, unsigned t) {
      for (std::size_t k = b; k < e; ++k) {
        const int a = m2l_targets[k];
        const TreeNode& ta = tree.node(static_cast<std::size_t>(a));
        LocalExpansion& l = local[static_cast<std::size_t>(a)];
        l.reset(degrees.degree[static_cast<std::size_t>(a)]);
        has_local[static_cast<std::size_t>(a)] = 1;
        for (int src : trav.lists.m2l_sources[static_cast<std::size_t>(a)]) {
          const TreeNode& tb = tree.node(static_cast<std::size_t>(src));
          if (config.use_rotation_translations) {
            m2l_rotated(multipole[static_cast<std::size_t>(src)], tb.center, l, ta.center);
          } else {
            m2l(multipole[static_cast<std::size_t>(src)], tb.center, l, ta.center);
          }
          const int pb = multipole[static_cast<std::size_t>(src)].degree();
          const int pl = l.degree();
          ThreadStats& s = tstats[t];
          ++s.m2l;
          // M2L is an O(p^4) dense translation: count
          // (p_src+1)^2 (p_dst+1)^2 term-operations so costs are comparable
          // with Barnes-Hut's M2P count.
          s.terms += static_cast<std::uint64_t>(pb + 1) * (pb + 1) *
                     static_cast<std::uint64_t>(pl + 1) * (pl + 1);
          s.min_deg = std::min(s.min_deg, std::min(pb, pl));
          s.max_deg = std::max(s.max_deg, std::max(pb, pl));
          obs::count_slot(s.degree_used, pb);
          obs::count_slot(s.degree_used, pl);
          obs::count_slot(s.m2l_by_level, ta.level);
          const double d = distance(ta.center, tb.center);
          s.max_bound =
              std::max(s.max_bound, mac_error_bound(tb.abs_charge, d, config.alpha, pb));
        }
      }
    },
                 nullptr, obs::span::kFmmM2lWorker);
  }

  // ---- Downward pass: L2L level by level (parents of level L-1 are final
  // before level L starts), leaves evaluated with L2P. Parallel within a
  // level; each node only writes its own local / its own particle range.
  std::vector<double> phi(n, 0.0);
  std::vector<Vec3> grad(want_grad ? n : 0, Vec3{});
  std::vector<std::vector<int>> by_level(static_cast<std::size_t>(tree.height()));
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    by_level[static_cast<std::size_t>(tree.node(i).level)].push_back(static_cast<int>(i));
  }
  {
  const ScopedTimer downward_phase(obs::span::kFmmDownward);
  for (const auto& level_nodes : by_level) {
    parallel_for(pool, level_nodes.size(), 4, [&](std::size_t b, std::size_t e, unsigned t) {
      for (std::size_t k = b; k < e; ++k) {
        const int i = level_nodes[k];
        const TreeNode& node = tree.node(static_cast<std::size_t>(i));
        if (node.count() == 0) continue;
        // Pull the parent's finalized local down into this node.
        if (node.parent >= 0 && has_local[static_cast<std::size_t>(node.parent)]) {
          LocalExpansion& l = local[static_cast<std::size_t>(i)];
          if (!has_local[static_cast<std::size_t>(i)]) {
            l.reset(degrees.degree[static_cast<std::size_t>(i)]);
            has_local[static_cast<std::size_t>(i)] = 1;
          }
          if (config.use_rotation_translations) {
            l2l_rotated(local[static_cast<std::size_t>(node.parent)],
                        tree.node(static_cast<std::size_t>(node.parent)).center, l,
                        node.center);
          } else {
            l2l(local[static_cast<std::size_t>(node.parent)],
                tree.node(static_cast<std::size_t>(node.parent)).center, l, node.center);
          }
        }
        if (node.is_leaf() && has_local[static_cast<std::size_t>(i)]) {
          const LocalExpansion& l = local[static_cast<std::size_t>(i)];
          ThreadStats& s = tstats[t];
          for (std::size_t pi = node.begin; pi < node.end; ++pi) {
            if (want_grad) {
              const PotentialGrad pg = l2p_grad(l, node.center, pos[pi]);
              phi[pi] += pg.potential;
              grad[pi] += pg.gradient;
            } else {
              phi[pi] += l2p(l, node.center, pos[pi]);
            }
            const int ld = l.degree();
            s.terms += static_cast<std::uint64_t>(ld + 1) * (ld + 1);
            s.min_deg = std::min(s.min_deg, ld);
            s.max_deg = std::max(s.max_deg, ld);
            obs::count_slot(s.degree_used, ld);
          }
        }
      }
    }, nullptr, obs::span::kFmmDownwardWorker);
  }
  }

  // ---- P2P phase: parallel over target leaves.
  const auto& p2p_targets = trav.lists.p2p_targets;
  {
  const ScopedTimer p2p_phase(obs::span::kFmmP2p);
  parallel_for(pool, p2p_targets.size(), 1, [&](std::size_t b, std::size_t e, unsigned t) {
    for (std::size_t k = b; k < e; ++k) {
      const int a = p2p_targets[k];
      const TreeNode& ta = tree.node(static_cast<std::size_t>(a));
      ThreadStats& s = tstats[t];
      for (int src : trav.lists.p2p_sources[static_cast<std::size_t>(a)]) {
        const TreeNode& tb = tree.node(static_cast<std::size_t>(src));
        const std::span<const Vec3> bpos(pos.data() + tb.begin, tb.count());
        const std::span<const double> bq(q.data() + tb.begin, tb.count());
        for (std::size_t pi = ta.begin; pi < ta.end; ++pi) {
          if (want_grad) {
            const PotentialGrad pg = p2p_grad(pos[pi], bpos, bq);
            phi[pi] += pg.potential;
            grad[pi] += pg.gradient;
          } else {
            phi[pi] += p2p(pos[pi], bpos, bq);
          }
        }
        const std::uint64_t pairs = static_cast<std::uint64_t>(ta.count()) * tb.count();
        s.p2p += pairs;
        obs::count_slot(s.p2p_by_level, ta.level, pairs);
      }
    }
  }, nullptr, obs::span::kFmmP2pWorker);
  }
  result.stats.eval_seconds = eval_timer.seconds();

  int min_deg = std::numeric_limits<int>::max();
  int max_deg = -1;
  obs::LevelCounts m2l_by_level{};
  obs::LevelCounts p2p_by_level{};
  obs::DegreeCounts degree_used{};
  for (const ThreadStats& s : tstats) {
    result.stats.multipole_terms += s.terms;
    result.stats.m2l_count += s.m2l;
    result.stats.p2p_pairs += s.p2p;
    result.stats.max_interaction_bound =
        std::max(result.stats.max_interaction_bound, s.max_bound);
    min_deg = std::min(min_deg, s.min_deg);
    max_deg = std::max(max_deg, s.max_deg);
    for (std::size_t i = 0; i < m2l_by_level.size(); ++i) {
      m2l_by_level[i] += s.m2l_by_level[i];
      p2p_by_level[i] += s.p2p_by_level[i];
    }
    for (std::size_t i = 0; i < degree_used.size(); ++i) degree_used[i] += s.degree_used[i];
  }
  // Degrees *actually used* in M2L/L2P (0/0 when everything went P2P),
  // mirroring the Barnes-Hut reduction.
  result.stats.min_degree_used = max_deg >= 0 ? min_deg : 0;
  result.stats.max_degree_used = max_deg >= 0 ? max_deg : 0;
  result.stats.reference_charge = degrees.reference_charge;

  obs::Registry& reg = obs::registry();
  reg.counter(obs::metric::kFmmMultipoleTerms).add(result.stats.multipole_terms);
  reg.counter(obs::metric::kFmmM2lCount).add(result.stats.m2l_count);
  reg.counter(obs::metric::kFmmP2pPairs).add(result.stats.p2p_pairs);
  reg.gauge(obs::metric::kFmmMaxInteractionBound).record_max(result.stats.max_interaction_bound);
  obs::flush_counts(obs::metric::kFmmM2lPerLevel, m2l_by_level);
  obs::flush_counts(obs::metric::kFmmP2pPerLevel, p2p_by_level);
  obs::flush_counts(obs::metric::kFmmDegreeUsed, degree_used);

  // Scatter to the caller's particle order.
  const auto& orig = tree.original_index();
  for (std::size_t i = 0; i < n; ++i) {
    result.potential[orig[i]] = phi[i];
    if (want_grad) result.gradient[orig[i]] = grad[i];
  }
  TREECODE_ASSERT_EVAL_INVARIANTS(tree, degrees, config, result, tree.source_size(),
                                  "evaluate_fmm");
  return result;
}

}  // namespace treecode
