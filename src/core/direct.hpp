#pragma once

/// \file direct.hpp
/// Threaded O(n^2) direct summation — the "accurate potentials" reference
/// the paper measures every treecode error against.

#include <span>

#include "core/config.hpp"
#include "dist/particle_system.hpp"

namespace treecode {

/// Exact potentials (and optionally gradients) at every particle of `ps`
/// by direct summation, skipping self-interactions. Parallelized over
/// `threads` workers (0/1 = serial). Results in the caller's order.
EvalResult evaluate_direct(const ParticleSystem& ps, unsigned threads = 0,
                           bool compute_gradient = false, double softening = 0.0);

/// Exact potentials at arbitrary `points` due to the particles of `ps`
/// (no self-skip unless a point coincides with a source).
EvalResult evaluate_direct_at(const ParticleSystem& ps, std::span<const Vec3> points,
                              unsigned threads = 0, bool compute_gradient = false);

}  // namespace treecode
