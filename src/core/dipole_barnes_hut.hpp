#pragma once

/// \file dipole_barnes_hut.hpp
/// Barnes-Hut evaluation of *dipole* source fields.
///
/// Same traversal and MAC as the monopole evaluator, but node expansions
/// are built with p2m_dipole and the near field uses the exact dipole
/// kernel d . (x - y)/|x - y|^3. This powers the double-layer boundary
/// operator (bem/double_layer.hpp), whose sources are oriented surface
/// elements rather than charges.
///
/// The tree is built once over the source *positions* (use |moment|-sized
/// placeholder charges so the adaptive degree assignment sees the source
/// strength distribution); moments may change per evaluation, mirroring
/// the monopole evaluator's charge-override mechanism.

#include "core/config.hpp"
#include "core/degree_policy.hpp"
#include "multipole/expansion.hpp"
#include "parallel/thread_pool.hpp"
#include "tree/octree.hpp"

namespace treecode {

/// Reusable dipole-field Barnes-Hut operator over one tree + config.
class DipoleBarnesHutEvaluator {
 public:
  /// `sorted_moments` must be in the tree's sorted particle order (map the
  /// caller order through tree.original_index()) and outlive the evaluator.
  DipoleBarnesHutEvaluator(const Tree& tree, const EvalConfig& config,
                           std::span<const Vec3> sorted_moments, ThreadPool* pool = nullptr);

  /// Potentials of the dipole field at arbitrary points.
  [[nodiscard]] EvalResult evaluate_at(ThreadPool& pool, std::span<const Vec3> points) const;

  [[nodiscard]] const DegreeAssignment& degrees() const noexcept { return degrees_; }

 private:
  const Tree& tree_;
  EvalConfig config_;
  DegreeAssignment degrees_;
  std::span<const Vec3> moments_;
  std::vector<MultipoleExpansion> multipoles_;
};

}  // namespace treecode
