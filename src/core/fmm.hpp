#pragma once

/// \file fmm.hpp
/// Fast Multipole Method evaluator via dual-tree traversal.
///
/// The paper closes with "The results presented in this paper can easily be
/// extended to the Fast Multipole Method as well. We are currently exploring
/// this". This module implements that extension: cluster-cluster (M2L)
/// interactions under a dual MAC, local expansions propagated down the tree
/// (L2L) and evaluated at the leaves (L2P), with the same per-node adaptive
/// degree assignment as the Barnes-Hut evaluator.
///
/// A dual-tree traversal (rather than the classic uniform-grid interaction
/// lists) is used because the octree is adaptive: node pairs are accepted
/// when (a_src + a_tgt) <= alpha * d — the natural two-sided generalization
/// of the paper's alpha-criterion — otherwise the pair with the larger
/// radius is split; mutually-leaf pairs fall back to P2P.

#include "core/config.hpp"
#include "core/degree_policy.hpp"
#include "multipole/expansion.hpp"
#include "tree/octree.hpp"

namespace treecode {

/// One-shot FMM evaluation of potentials at all particles of the tree.
/// (Gradients are supported through config.compute_gradient.)
EvalResult evaluate_fmm(const Tree& tree, const EvalConfig& config);

}  // namespace treecode
