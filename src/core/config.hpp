#pragma once

/// \file config.hpp
/// Evaluator configuration and result types shared by all treecode
/// evaluation methods (Barnes-Hut fixed degree, Barnes-Hut adaptive degree,
/// FMM, direct summation).

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "geom/vec3.hpp"
#include "parallel/parallel_for.hpp"
#include "util/expected.hpp"

namespace treecode {

/// Fixed ("original method") vs per-cluster adaptive ("new method")
/// multipole degree selection.
enum class DegreeMode {
  kFixed,     ///< every interaction uses `degree` terms (classic Barnes-Hut)
  kAdaptive,  ///< per-cluster degree from Theorem 3
};

/// Which reference value anchors the adaptive degree law. For
/// DegreeLaw::kCharge the reference is a cluster charge A_ref; for
/// kChargeOverSize it is a charge density A_ref / d_ref.
enum class DegreeReference {
  kMinLeaf,   ///< smallest nonzero leaf value (the paper's choice)
  kMeanLeaf,  ///< mean leaf value (practical threshold variant)
  kExplicit,  ///< caller-provided `reference_charge`
};

/// Which cluster metric the Theorem-3 equalization uses.
enum class DegreeLaw {
  /// Equalize A alpha^(p+1): the literal statement of Theorem 3. Degrees
  /// grow ~3 log2(1/alpha)^-1 per level for uniform density (A ~ volume).
  kCharge,
  /// Equalize (A/d) alpha^(p+1): folds in Lemma 1's observation that
  /// interactions with size-d clusters happen at distance r = Theta(d), so
  /// the *actual Theorem-2 bound* A/r alpha^(p+1) is what gets equalized.
  /// Degrees grow ~2 log2(1/alpha)^-1 per level; this is the default and
  /// what keeps the extra cost within the paper's small constant.
  kChargeOverSize,
};

/// All knobs of a treecode evaluation.
struct EvalConfig {
  /// MAC opening parameter: a cluster is accepted when a / r <= alpha,
  /// where a is the cluster radius about its center of charge and r the
  /// distance from the evaluation point to that center. Must be in (0, 1).
  double alpha = 0.5;

  /// Fixed degree (kFixed) or base/minimum degree p (kAdaptive).
  int degree = 4;

  /// Clamp for the adaptive law (keeps unstructured domains from demanding
  /// "very large degree multipoles", the difficulty the paper notes).
  int max_degree = 30;

  DegreeMode mode = DegreeMode::kFixed;
  DegreeLaw law = DegreeLaw::kChargeOverSize;
  DegreeReference reference = DegreeReference::kMeanLeaf;
  /// Reference value when reference == kExplicit; ignored otherwise.
  /// Interpreted as a charge (kCharge) or a charge density (kChargeOverSize).
  double reference_charge = 0.0;

  /// Worker threads; 0 or 1 runs inline on the caller (true serial).
  unsigned threads = 0;

  /// The paper's aggregation factor w: particles per unit of thread work.
  std::size_t block_size = 64;

  /// Use the rotation-accelerated O(p^3) translations (rotation.hpp)
  /// instead of the dense O(p^4) ones where the evaluator translates
  /// expansions (currently the FMM's M2L/L2L phases). Numerically
  /// equivalent to rounding; pays off as the adaptive method pushes
  /// degrees up. The Barnes-Hut evaluator performs no translations, so
  /// this flag does not affect it.
  bool use_rotation_translations = false;

  /// Plummer softening length epsilon applied to *direct* (P2P)
  /// interactions: kernel q / sqrt(r^2 + eps^2). Multipole-approximated
  /// interactions stay unsoftened, which is the standard treecode practice
  /// and accurate when eps is far below the MAC-separated distances (i.e.
  /// eps much smaller than a leaf cell). Used by n-body integrations to
  /// bound close-encounter forces; 0 (default) is the exact kernel the
  /// error analysis assumes.
  double softening = 0.0;

  /// Also compute grad Phi per particle (forces = -q grad Phi).
  bool compute_gradient = false;

  /// Also accumulate, per evaluation point, the sum of Theorem-1 truncation
  /// bounds over its accepted interactions — a rigorous a-posteriori bound
  /// on |Phi_exact - Phi_treecode| at that point (direct interactions
  /// contribute no error). Fills EvalResult::error_bound.
  bool track_error_bounds = false;

  /// Per-target absolute error budget for Barnes-Hut traversal, in the
  /// units of the potential. Only meaningful with enforce_budget.
  double error_budget = 0.0;

  /// Runtime error-budget enforcement: during traversal, a MAC-accepted
  /// interaction whose Theorem-1 bound would push the target's accumulated
  /// a-posteriori bound past `error_budget` is *not* approximated —
  /// the traversal recurses into the cluster's children instead, falling
  /// back to exact P2P at leaves. On exit every target i then satisfies
  ///   |Phi_exact(i) - Phi_treecode(i)| <= error_bound[i] <= error_budget.
  /// Implies error-bound tracking; EvalResult::error_bound is filled.
  bool enforce_budget = false;

  /// Audit sampling: when > 0, deterministically sample this many accepted
  /// M2P interactions per evaluation, recompute each sampled cluster's
  /// exact P2P partial sum, and record observed-error / Theorem-1-bound
  /// tightness ratios into the metrics registry (see obs/audit.hpp). The
  /// sample set is bitwise identical across thread counts and block sizes.
  /// Supported by the Barnes-Hut evaluator and EvalSession replay; the FMM
  /// ignores it (M2L error is not attributable to single particle-cluster
  /// interactions). 0 (default) compiles down to a predicted branch.
  std::size_t audit_samples = 0;

  /// Seed for the audit's counter-based sampling keys. Two runs with the
  /// same seed audit the same interactions; vary it to sample fresh ones.
  std::uint64_t audit_seed = 0;

  /// Hard session-wide byte budget for the engine's durable evaluation
  /// state (compiled plans, evaluation bases, multipole coefficients),
  /// enforced by the session's ResourceGovernor. A denied reservation never
  /// fails the evaluation outright: the engine steps down its degradation
  /// ladder (basis replay -> plain replay -> uncompiled traversal ->
  /// direct P2P) and reports the serving rung in EvalStats::served_rung.
  /// 0 (default) = unlimited; the ladder never engages on memory grounds.
  std::size_t memory_budget_bytes = 0;

  /// Wall-clock deadline per engine evaluation, in seconds, enforced
  /// cooperatively (workers poll between blocks). 0 (default) = none.
  /// Expiry behavior is governed by `deadline_partial`. The deadline never
  /// influences *which* ladder rung serves — rung choice stays
  /// bitwise-deterministic across thread counts; only completion does.
  double deadline_seconds = 0.0;

  /// What an expired deadline yields: false (default) fails the evaluation
  /// with ErrorCode::kDeadline; true returns the targets computed so far
  /// (unserved slots zero), with EvalStats::outcome == kDeadline and
  /// EvalStats::targets_served saying how many are valid.
  bool deadline_partial = false;

  /// Sanity-check the configuration; throws std::invalid_argument on the
  /// first violated invariant. Called by the evaluators on entry so a bad
  /// alpha or budget fails loudly instead of producing silent garbage.
  void validate() const {
    if (!(alpha > 0.0) || !(alpha < 1.0)) {
      throw std::invalid_argument("EvalConfig: alpha must be in (0, 1)");
    }
    if (degree < 0) throw std::invalid_argument("EvalConfig: degree must be >= 0");
    if (max_degree < degree) {
      throw std::invalid_argument("EvalConfig: max_degree must be >= degree");
    }
    if (!std::isfinite(softening) || softening < 0.0) {
      throw std::invalid_argument("EvalConfig: softening must be finite and >= 0");
    }
    if (!std::isfinite(error_budget) || error_budget < 0.0) {
      throw std::invalid_argument("EvalConfig: error_budget must be finite and >= 0");
    }
    if (enforce_budget && error_budget <= 0.0) {
      throw std::invalid_argument(
          "EvalConfig: enforce_budget requires a positive error_budget");
    }
    if (reference == DegreeReference::kExplicit && !std::isfinite(reference_charge)) {
      throw std::invalid_argument("EvalConfig: explicit reference_charge must be finite");
    }
    if (!std::isfinite(deadline_seconds) || deadline_seconds < 0.0) {
      throw std::invalid_argument("EvalConfig: deadline_seconds must be finite and >= 0");
    }
  }
};

/// The engine's degradation ladder (engine/eval_session.hpp). Rung choice
/// is driven only by the resource-governor ledger (and injected faults) —
/// never wall time — so it is bitwise-identical across thread counts.
/// Rungs 0-2 produce bitwise-identical potentials and Theorem-1 bounds;
/// rung 3 is exact summation (zero truncation error), so every rung
/// preserves the error guarantee of the rung above it.
enum class ServeRung : int {
  kBasisReplay = 0,  ///< compiled plan + precomputed m2p evaluation basis
  kPlainReplay = 1,  ///< compiled plan, full m2p kernels (no basis kept)
  kTraversal = 2,    ///< uncompiled alpha-MAC traversal (no plan kept)
  kDirect = 3,       ///< per-target direct P2P summation (no multipoles)
};

/// Instrumentation of one evaluation. `multipole_terms` is the paper's
/// serial-cost measure: for every particle-cluster interaction of degree p
/// it adds (p+1)^2 (the number of (n, m) terms evaluated).
struct EvalStats {
  std::uint64_t multipole_terms = 0;  ///< sum over M2P/M2L/L2P of (p+1)^2
  std::uint64_t m2p_count = 0;        ///< accepted particle-cluster interactions
  std::uint64_t p2p_pairs = 0;        ///< direct particle-particle interactions
  std::uint64_t m2l_count = 0;        ///< FMM cluster-cluster conversions
  /// MAC-accepted interactions the error budget demoted to refinement or
  /// P2P (0 unless EvalConfig::enforce_budget).
  std::uint64_t budget_refinements = 0;
  /// Subset of budget_refinements that hit a *leaf* and fell back to exact
  /// P2P (the remainder recursed into children for tighter bounds). A high
  /// leaf share means the budget is forcing the traversal all the way to
  /// direct summation.
  std::uint64_t budget_refinements_leaf = 0;
  double max_interaction_bound = 0.0; ///< max Theorem-2 bound among accepted
  double build_seconds = 0.0;         ///< upward pass (P2M) time
  double eval_seconds = 0.0;          ///< traversal + evaluation time
  /// Smallest/largest expansion degree *actually evaluated* (M2P for
  /// Barnes-Hut; M2L/L2P for the FMM) during this run — not the degree
  /// table's range, which over-reports when budget enforcement demotes
  /// interactions or a degree is assigned but never interacted with.
  /// Both 0 when no multipole interaction happened (e.g. everything P2P).
  int min_degree_used = 0;
  int max_degree_used = 0;
  double reference_charge = 0.0;      ///< the A_ref actually used
  /// Audit outcome (all 0 unless EvalConfig::audit_samples > 0): sampled
  /// interaction count, Theorem-1 violations among them, and the largest /
  /// mean observed-error-to-bound tightness ratio (finite ratios only).
  std::uint64_t audit_samples = 0;
  std::uint64_t audit_bound_violations = 0;
  double audit_max_tightness = 0.0;
  double audit_mean_tightness = 0.0;
  /// Degradation-ladder rung that served the evaluation. Always
  /// kBasisReplay for evaluators outside the engine's ladder (fresh
  /// Barnes-Hut, FMM, direct): the field is engine-specific reporting.
  ServeRung served_rung = ServeRung::kBasisReplay;
  /// kOk, or kDeadline when EvalConfig::deadline_partial returned a
  /// partial result. Hard failures are reported as errors, not here.
  ErrorCode outcome = ErrorCode::kOk;
  /// Engine evaluations: targets with valid output — the target count
  /// except under a deadline_partial expiry. (Validation-skipped targets
  /// count as served: their zero slots are the policy's defined answer.)
  /// 0 from evaluators that do not fill it (fresh Barnes-Hut, FMM).
  std::uint64_t targets_served = 0;
  WorkStats work;                     ///< per-thread work for speedup models
};

/// Result of an evaluation, in the *caller's* particle order.
struct EvalResult {
  std::vector<double> potential;
  std::vector<Vec3> gradient;      ///< empty unless compute_gradient
  std::vector<double> error_bound; ///< empty unless track_error_bounds
  EvalStats stats;
};

}  // namespace treecode
