#include "core/treecode.hpp"

namespace treecode {

EvalResult evaluate_potentials(const Tree& tree, const EvalConfig& config, Method method) {
  switch (method) {
    case Method::kBarnesHut:
      return evaluate_barnes_hut(tree, config);
    case Method::kFmm:
      return evaluate_fmm(tree, config);
    case Method::kDirect: {
      // Reconstruct a ParticleSystem view in the tree's original order.
      const auto& orig = tree.original_index();
      std::vector<Vec3> pos(tree.num_particles());
      std::vector<double> q(tree.num_particles());
      for (std::size_t i = 0; i < tree.num_particles(); ++i) {
        pos[orig[i]] = tree.positions()[i];
        q[orig[i]] = tree.charges()[i];
      }
      ParticleSystem ps(std::move(pos), std::move(q));
      return evaluate_direct(ps, config.threads, config.compute_gradient, config.softening);
    }
  }
  return {};
}

}  // namespace treecode
