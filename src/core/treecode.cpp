#include "core/treecode.hpp"

namespace treecode {

EvalResult evaluate_potentials(const Tree& tree, const EvalConfig& config, Method method) {
  // Fail fast on a bad configuration for every method, including kDirect
  // (which otherwise ignores MAC/degree settings).
  config.validate();
  switch (method) {
    case Method::kBarnesHut:
      return evaluate_barnes_hut(tree, config);
    case Method::kFmm:
      return evaluate_fmm(tree, config);
    case Method::kDirect: {
      // Reconstruct a ParticleSystem view in the tree's original order.
      // Slots of validation-dropped particles become zero charges at the
      // origin: they contribute nothing to other particles, and their own
      // (meaningless) results are zeroed after the evaluation.
      const auto& orig = tree.original_index();
      std::vector<Vec3> pos(tree.source_size());
      std::vector<double> q(tree.source_size(), 0.0);
      for (std::size_t i = 0; i < tree.num_particles(); ++i) {
        pos[orig[i]] = tree.positions()[i];
        q[orig[i]] = tree.charges()[i];
      }
      ParticleSystem ps(std::move(pos), std::move(q));
      EvalResult result =
          evaluate_direct(ps, config.threads, config.compute_gradient, config.softening);
      for (std::size_t i : tree.dropped()) {
        result.potential[i] = 0.0;
        if (config.compute_gradient) result.gradient[i] = Vec3{};
      }
      return result;
    }
  }
  return {};
}

}  // namespace treecode
