#pragma once

/// \file barnes_hut.hpp
/// The Barnes-Hut evaluator, covering both the paper's "original method"
/// (DegreeMode::kFixed) and its "new method" (DegreeMode::kAdaptive).
///
/// Pipeline:
///  1. degree assignment (degree_policy.hpp) — per node, a priori;
///  2. upward pass: each node's multipole expansion is built *directly from
///     its own particles* (P2M) to exactly its assigned degree. Building
///     from particles rather than child M2M keeps every node's expansion
///     exact to its truncation degree even when children carry lower
///     degrees (translation of a lower-degree child would silently drop the
///     orders the parent needs);
///  3. per-particle traversal with the alpha-MAC, parallelized over blocks
///     of `block_size` consecutive Hilbert-ordered particles (the paper's
///     w-aggregation) with dynamic scheduling.
///
/// The evaluator can be reused: construct once (builds the multipoles) and
/// call evaluate() with different thread pools — that is how the parallel
/// benchmark measures serial and threaded runs of the same operator.

#include <memory>

#include "core/config.hpp"
#include "core/degree_policy.hpp"
#include "multipole/expansion.hpp"
#include "parallel/thread_pool.hpp"
#include "tree/octree.hpp"

namespace treecode {

/// Reusable Barnes-Hut operator over one tree + config.
class BarnesHutEvaluator {
 public:
  /// Assigns degrees and builds all node multipoles (parallelized over
  /// nodes using `pool` if provided, else serial).
  ///
  /// `sorted_charges` optionally overrides the tree's charge values (it
  /// must be in the tree's *sorted* particle order and outlive the
  /// evaluator). This is how the BEM operator reuses one tree across GMRES
  /// iterations: the quadrature-point geometry — and therefore centers,
  /// radii, and degree assignment — is fixed at tree build, while the
  /// density values change every matrix-vector product.
  BarnesHutEvaluator(const Tree& tree, const EvalConfig& config, ThreadPool* pool = nullptr,
                     std::span<const double> sorted_charges = {});

  /// Evaluate potentials (and gradients if configured) at every particle,
  /// writing results in the original particle order (vectors sized
  /// tree.source_size(); slots of validation-dropped particles stay zero).
  /// The traversal runs on `pool`; per-thread work statistics land in the
  /// result's stats. With EvalConfig::enforce_budget the traversal demotes
  /// any MAC-accepted interaction that would push a target's accumulated
  /// Theorem-1 bound past error_budget, recursing deeper (or using exact
  /// P2P at leaves) so that on return
  ///   |Phi_exact(i) - Phi(i)| <= error_bound[i] <= error_budget.
  [[nodiscard]] EvalResult evaluate(ThreadPool& pool) const;

  /// Evaluate at arbitrary points instead of the source particles
  /// (used by the BEM operator: charges at Gauss points, potentials at
  /// collocation nodes). Results indexed like `points`.
  [[nodiscard]] EvalResult evaluate_at(ThreadPool& pool, std::span<const Vec3> points) const;

  [[nodiscard]] const Tree& tree() const noexcept { return tree_; }
  [[nodiscard]] const EvalConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DegreeAssignment& degrees() const noexcept { return degrees_; }
  [[nodiscard]] double build_seconds() const noexcept { return build_seconds_; }

  /// Total multipole coefficients stored, a memory-cost measure for the
  /// adaptive-vs-fixed comparison.
  [[nodiscard]] std::uint64_t stored_coefficients() const noexcept;

 private:
  struct ThreadAccumulator;

  /// Shared traversal core: evaluates at `points[i]`; `self` indicates the
  /// points are the tree's own (sorted) particles, enabling exact
  /// self-skip semantics in P2P.
  EvalResult run(ThreadPool& pool, std::span<const Vec3> points, bool self) const;

  const Tree& tree_;
  EvalConfig config_;
  DegreeAssignment degrees_;
  std::span<const double> charges_;  ///< sorted order; tree's or override
  std::vector<MultipoleExpansion> multipoles_;
  double build_seconds_ = 0.0;
};

/// One-shot convenience: build + evaluate with a private thread pool.
EvalResult evaluate_barnes_hut(const Tree& tree, const EvalConfig& config);

}  // namespace treecode
