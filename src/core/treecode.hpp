#pragma once

/// \file treecode.hpp
/// Facade header: the library's high-level public API.
///
/// Typical use:
///
///   using namespace treecode;
///   ParticleSystem ps = dist::uniform_cube(40'000, /*seed=*/1);
///   Tree tree(ps, TreeConfig{.leaf_capacity = 8});
///   EvalConfig cfg;
///   cfg.alpha = 0.5;
///   cfg.degree = 4;
///   cfg.mode = DegreeMode::kAdaptive;   // the paper's improved method
///   cfg.threads = 8;
///   EvalResult r = evaluate_potentials(tree, cfg);
///   // r.potential[i] is the potential at ps particle i; r.stats has costs.

#include "core/barnes_hut.hpp"
#include "core/config.hpp"
#include "core/degree_policy.hpp"
#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "tree/octree.hpp"

namespace treecode {

/// Which evaluation engine to run.
enum class Method {
  kBarnesHut,  ///< particle-cluster interactions (the paper's treecode)
  kFmm,        ///< cluster-cluster interactions (the FMM extension)
  kDirect,     ///< O(n^2) reference (ignores MAC/degree settings)
};

/// Evaluate potentials at every particle of the tree with the configured
/// method; results in the original particle order of the ParticleSystem the
/// tree was built from.
EvalResult evaluate_potentials(const Tree& tree, const EvalConfig& config,
                               Method method = Method::kBarnesHut);

}  // namespace treecode
