#include "core/degree_policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "multipole/error_bounds.hpp"
#include "multipole/harmonics.hpp"

namespace treecode {

double resolve_reference_charge(const Tree& tree, const EvalConfig& config) {
  const bool density = config.law == DegreeLaw::kChargeOverSize;
  switch (config.reference) {
    case DegreeReference::kMinLeaf:
      return density ? tree.min_leaf_charge_density() : tree.min_leaf_abs_charge();
    case DegreeReference::kMeanLeaf:
      return density ? tree.mean_leaf_charge_density() : tree.mean_leaf_abs_charge();
    case DegreeReference::kExplicit:
      return config.reference_charge;
  }
  return 0.0;
}

DegreeAssignment assign_degrees(const Tree& tree, const EvalConfig& config) {
  // Full config sanity check: assign_degrees is the common entry point of
  // every expansion-based evaluator, so a bad alpha/budget/softening fails
  // here once instead of in each caller.
  config.validate();
  if (config.max_degree > kMaxDegree) {
    throw std::invalid_argument("EvalConfig.max_degree exceeds library limit");
  }
  DegreeAssignment out;
  out.degree.resize(tree.num_nodes(), config.degree);
  out.min_degree = config.degree;
  out.max_degree = config.degree;
  if (config.mode == DegreeMode::kFixed) {
    out.reference_charge = 0.0;
    return out;
  }
  const double ref = resolve_reference_charge(tree, config);
  out.reference_charge = ref;
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const TreeNode& node = tree.node(i);
    double metric = node.abs_charge;
    if (config.law == DegreeLaw::kChargeOverSize && node.size() > 0.0) {
      metric /= node.size();
    }
    const int p =
        adaptive_degree(metric, ref, config.alpha, config.degree, config.max_degree);
    out.degree[i] = p;
    out.max_degree = std::max(out.max_degree, p);
  }
  return out;
}

}  // namespace treecode
