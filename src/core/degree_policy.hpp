#pragma once

/// \file degree_policy.hpp
/// Per-node multipole degree assignment — the paper's central mechanism.
///
/// In the original Barnes-Hut method every cluster uses the same degree p,
/// so the Theorem-2 interaction error grows linearly with the cluster's
/// aggregate charge A. Theorem 3 instead prescribes, per cluster,
///
///     p(A) = p_min + ceil( log(A / A_ref) / log(1 / alpha) ),
///
/// which pins every interaction's error bound to that of the reference
/// cluster. Degrees depend only on quantities known at tree-construction
/// time (A per node, alpha), so — as the paper notes — "the multipole
/// series are computed a-priori to the maximum required degree".

#include <vector>

#include "core/config.hpp"
#include "tree/octree.hpp"

namespace treecode {

/// Degrees selected for every tree node plus the reference charge used.
struct DegreeAssignment {
  std::vector<int> degree;  ///< indexed by node id
  double reference_charge = 0.0;
  int min_degree = 0;
  int max_degree = 0;
};

/// Resolve the A_ref the config asks for against a built tree.
double resolve_reference_charge(const Tree& tree, const EvalConfig& config);

/// Assign a degree to every node of `tree` under `config`.
/// kFixed assigns config.degree everywhere; kAdaptive applies Theorem 3.
DegreeAssignment assign_degrees(const Tree& tree, const EvalConfig& config);

}  // namespace treecode
