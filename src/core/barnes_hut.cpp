#include "core/barnes_hut.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "multipole/error_bounds.hpp"
#include "multipole/operators.hpp"
#include "util/timer.hpp"
#include "util/validate.hpp"

namespace treecode {

namespace {

/// The alpha-criterion. Accept the cluster when its radius-to-distance
/// ratio is at most alpha (and the point is strictly outside the cluster
/// sphere, which alpha < 1 implies for r > 0).
inline bool mac_accepts(const TreeNode& node, const Vec3& point, double alpha,
                        double& r_out) noexcept {
  const double r = distance(point, node.center);
  r_out = r;
  return r > 0.0 && node.radius <= alpha * r;
}

}  // namespace

struct BarnesHutEvaluator::ThreadAccumulator {
  std::uint64_t terms = 0;
  std::uint64_t m2p = 0;
  std::uint64_t p2p = 0;
  std::uint64_t budget_refine = 0;
  double max_bound = 0.0;
};

BarnesHutEvaluator::BarnesHutEvaluator(const Tree& tree, const EvalConfig& config,
                                       ThreadPool* pool, std::span<const double> sorted_charges)
    : tree_(tree), config_(config), degrees_(assign_degrees(tree, config)) {
  if (!sorted_charges.empty() && sorted_charges.size() != tree.num_particles()) {
    throw std::invalid_argument("BarnesHutEvaluator: charge override size mismatch");
  }
  // Override charges bypass the tree's input validation (the BEM operator
  // swaps densities every GMRES iteration); re-check them here so one NaN
  // density fails loudly instead of poisoning every multipole.
  if (!all_finite(sorted_charges)) {
    throw std::invalid_argument("BarnesHutEvaluator: charge override has non-finite values");
  }
  charges_ = sorted_charges.empty() ? std::span<const double>(tree_.charges())
                                    : sorted_charges;
  Timer timer;
  const auto& nodes = tree_.nodes();
  multipoles_.resize(nodes.size());
  const auto& pos = tree_.positions();
  const auto& q = charges_;
  auto build_node = [&](std::size_t i) {
    const TreeNode& node = nodes[i];
    if (node.count() == 0) return;
    multipoles_[i].reset(degrees_.degree[i]);
    p2m(node.center,
        std::span<const Vec3>(pos.data() + node.begin, node.count()),
        std::span<const double>(q.data() + node.begin, node.count()), multipoles_[i]);
  };
  if (pool != nullptr && pool->width() > 1) {
    parallel_for(*pool, nodes.size(), 8,
                 [&](std::size_t b, std::size_t e, unsigned) {
                   for (std::size_t i = b; i < e; ++i) build_node(i);
                 });
  } else {
    for (std::size_t i = 0; i < nodes.size(); ++i) build_node(i);
  }
  build_seconds_ = timer.seconds();
}

std::uint64_t BarnesHutEvaluator::stored_coefficients() const noexcept {
  std::uint64_t total = 0;
  for (const auto& m : multipoles_) total += m.size();
  return total;
}

EvalResult BarnesHutEvaluator::evaluate(ThreadPool& pool) const {
  return run(pool, tree_.positions(), /*self=*/true);
}

EvalResult BarnesHutEvaluator::evaluate_at(ThreadPool& pool,
                                           std::span<const Vec3> points) const {
  return run(pool, points, /*self=*/false);
}

EvalResult BarnesHutEvaluator::run(ThreadPool& pool, std::span<const Vec3> points,
                                   bool self) const {
  EvalResult result;
  const std::size_t n = points.size();
  // In self mode results are scattered into the caller's particle order,
  // which is indexed by the *source* system (validation may have dropped
  // particles, leaving zero-filled slots).
  const std::size_t out_n = self ? tree_.source_size() : n;
  const bool enforce = config_.enforce_budget;
  const double budget = config_.error_budget;
  const bool want_grad = config_.compute_gradient;
  const bool want_bounds = config_.track_error_bounds || enforce;
  result.potential.assign(out_n, 0.0);
  if (want_grad) result.gradient.assign(out_n, Vec3{});
  if (want_bounds) result.error_bound.assign(out_n, 0.0);
  result.stats.min_degree_used = degrees_.min_degree;
  result.stats.max_degree_used = degrees_.max_degree;
  result.stats.reference_charge = degrees_.reference_charge;
  result.stats.build_seconds = build_seconds_;
  if (n == 0 || tree_.num_particles() == 0) return result;

  const auto& nodes = tree_.nodes();
  const auto& pos = tree_.positions();
  const auto& q = charges_;
  const double alpha = config_.alpha;
  const double softening2 = config_.softening * config_.softening;

  // Results are computed into sorted-order slots, then scattered to the
  // caller's order at the end (self mode only; external points are already
  // in caller order).
  std::vector<double> phi(n, 0.0);
  std::vector<Vec3> grad(want_grad ? n : 0, Vec3{});
  std::vector<double> bound(want_bounds ? n : 0, 0.0);
  std::vector<ThreadAccumulator> acc(pool.width());

  Timer timer;
  result.stats.work = parallel_for_blocked(
      pool, n, config_.block_size,
      [&](std::size_t block_begin, std::size_t block_end, unsigned t) -> std::uint64_t {
        ThreadAccumulator& a = acc[t];
        const std::uint64_t terms_before = a.terms + a.p2p;
        std::vector<int> stack;
        stack.reserve(64);
        for (std::size_t i = block_begin; i < block_end; ++i) {
          const Vec3 x = points[i];
          double my_phi = 0.0;
          double my_bound = 0.0;
          Vec3 my_grad{};
          stack.clear();
          stack.push_back(0);
          while (!stack.empty()) {
            const int ni = stack.back();
            stack.pop_back();
            const TreeNode& node = nodes[static_cast<std::size_t>(ni)];
            if (node.count() == 0) continue;
            double r = 0.0;
            bool approximate = mac_accepts(node, x, alpha, r);
            // Theorem 1 with the actual cluster radius and distance —
            // rigorous and tighter than the alpha-form of Theorem 2.
            double thm1 = 0.0;
            if (approximate && want_bounds) {
              thm1 = multipole_error_bound(node.abs_charge, node.radius, r,
                                           degrees_.degree[static_cast<std::size_t>(ni)]);
              // Budget enforcement: if approximating this cluster would
              // blow the target's budget, degrade gracefully — recurse
              // into the children (tighter bounds) or, at a leaf, fall
              // back to exact P2P (zero error contribution).
              if (enforce && my_bound + thm1 > budget) {
                approximate = false;
                ++a.budget_refine;
              }
            }
            if (approximate) {
              const MultipoleExpansion& m = multipoles_[static_cast<std::size_t>(ni)];
              if (want_grad) {
                const PotentialGrad pg = m2p_grad(m, node.center, x);
                my_phi += pg.potential;
                my_grad += pg.gradient;
              } else {
                my_phi += m2p(m, node.center, x);
              }
              a.terms += static_cast<std::uint64_t>(m.term_count());
              ++a.m2p;
              const double thm2 = mac_error_bound(node.abs_charge, r, alpha, m.degree());
              a.max_bound = std::max(a.max_bound, thm2);
              my_bound += thm1;
            } else if (node.is_leaf()) {
              const std::span<const Vec3> ppos(pos.data() + node.begin, node.count());
              const std::span<const double> pq(q.data() + node.begin, node.count());
              if (want_grad) {
                const PotentialGrad pg = p2p_grad(x, ppos, pq, softening2);
                my_phi += pg.potential;
                my_grad += pg.gradient;
              } else {
                my_phi += p2p(x, ppos, pq, softening2);
              }
              a.p2p += node.count();
            } else {
              for (int c = 0; c < node.num_children; ++c) {
                stack.push_back(node.first_child + c);
              }
            }
          }
          // Inputs are validated at tree build, but override charges,
          // softening underflow, or an evaluation point sitting exactly on
          // an expansion center can still poison a potential; fail loudly
          // (parallel_for cancels the remaining blocks) instead of
          // returning garbage.
          if (!std::isfinite(my_phi)) {
            throw std::runtime_error(
                "BarnesHutEvaluator: non-finite potential at evaluation point " +
                std::to_string(i));
          }
          phi[i] = my_phi;
          if (want_grad) grad[i] = my_grad;
          if (want_bounds) bound[i] = my_bound;
        }
        return (a.terms + a.p2p) - terms_before;  // cost of this block
      });
  result.stats.eval_seconds = timer.seconds();

  for (const auto& a : acc) {
    result.stats.multipole_terms += a.terms;
    result.stats.m2p_count += a.m2p;
    result.stats.p2p_pairs += a.p2p;
    result.stats.budget_refinements += a.budget_refine;
    result.stats.max_interaction_bound =
        std::max(result.stats.max_interaction_bound, a.max_bound);
  }

  if (self) {
    // Scatter from sorted order back to the caller's particle order.
    const auto& orig = tree_.original_index();
    for (std::size_t i = 0; i < n; ++i) {
      result.potential[orig[i]] = phi[i];
      if (want_grad) result.gradient[orig[i]] = grad[i];
      if (want_bounds) result.error_bound[orig[i]] = bound[i];
    }
  } else {
    result.potential = std::move(phi);
    if (want_grad) result.gradient = std::move(grad);
    if (want_bounds) result.error_bound = std::move(bound);
  }
  return result;
}

EvalResult evaluate_barnes_hut(const Tree& tree, const EvalConfig& config) {
  ThreadPool pool(config.threads);
  BarnesHutEvaluator eval(tree, config, &pool);
  return eval.evaluate(pool);
}

}  // namespace treecode
