#include "core/barnes_hut.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

#include "analysis/invariants.hpp"
#include "multipole/error_bounds.hpp"
#include "multipole/operators.hpp"
#include "obs/audit.hpp"
#include "obs/instrument.hpp"
#include "obs/metric_names.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "util/timer.hpp"
#include "obs/spans.hpp"
#include "util/validate.hpp"

namespace treecode {

namespace {

/// The alpha-criterion. Accept the cluster when its radius-to-distance
/// ratio is at most alpha (and the point is strictly outside the cluster
/// sphere, which alpha < 1 implies for r > 0).
inline bool mac_accepts(const TreeNode& node, const Vec3& point, double alpha,
                        double& r_out) noexcept {
  const double r = distance(point, node.center);
  r_out = r;
  return r > 0.0 && node.radius <= alpha * r;
}

}  // namespace

struct BarnesHutEvaluator::ThreadAccumulator {
  std::uint64_t terms = 0;
  std::uint64_t m2p = 0;
  std::uint64_t p2p = 0;
  std::uint64_t budget_refine = 0;
  std::uint64_t budget_refine_leaf = 0;
  double max_bound = 0.0;
  /// Expansion degrees actually evaluated (M2P) — not the degree table's
  /// range, which over-reports when budget enforcement demotes clusters.
  int min_deg = std::numeric_limits<int>::max();
  int max_deg = -1;
  obs::LevelCounts m2p_by_level{};
  obs::LevelCounts p2p_by_level{};
  obs::DegreeCounts degree_used{};
  /// Thread-private top-K audit reservoir (capacity 0 unless auditing).
  obs::audit::Reservoir audit;
};

BarnesHutEvaluator::BarnesHutEvaluator(const Tree& tree, const EvalConfig& config,
                                       ThreadPool* pool, std::span<const double> sorted_charges)
    : tree_(tree), config_(config), degrees_(assign_degrees(tree, config)) {
  if (!sorted_charges.empty() && sorted_charges.size() != tree.num_particles()) {
    throw std::invalid_argument("BarnesHutEvaluator: charge override size mismatch");
  }
  // Override charges bypass the tree's input validation (the BEM operator
  // swaps densities every GMRES iteration); re-check them here so one NaN
  // density fails loudly instead of poisoning every multipole.
  if (!all_finite(sorted_charges)) {
    throw std::invalid_argument("BarnesHutEvaluator: charge override has non-finite values");
  }
  charges_ = sorted_charges.empty() ? std::span<const double>(tree_.charges())
                                    : sorted_charges;
  const ScopedTimer phase_timer(obs::span::kBhP2m, &build_seconds_);
  const auto& nodes = tree_.nodes();
  multipoles_.resize(nodes.size());
  const auto& pos = tree_.positions();
  const auto& q = charges_;
  auto build_node = [&](std::size_t i) {
    const TreeNode& node = nodes[i];
    if (node.count() == 0) return;
    multipoles_[i].reset(degrees_.degree[i]);
    p2m(node.center,
        std::span<const Vec3>(pos.data() + node.begin, node.count()),
        std::span<const double>(q.data() + node.begin, node.count()), multipoles_[i]);
  };
  if (pool != nullptr && pool->width() > 1) {
    parallel_for(*pool, nodes.size(), 8,
                 [&](std::size_t b, std::size_t e, unsigned) {
                   for (std::size_t i = b; i < e; ++i) build_node(i);
                 },
                 nullptr, obs::span::kBhP2mWorker);
  } else {
    for (std::size_t i = 0; i < nodes.size(); ++i) build_node(i);
  }
}

std::uint64_t BarnesHutEvaluator::stored_coefficients() const noexcept {
  std::uint64_t total = 0;
  for (const auto& m : multipoles_) total += m.size();
  return total;
}

EvalResult BarnesHutEvaluator::evaluate(ThreadPool& pool) const {
  return run(pool, tree_.positions(), /*self=*/true);
}

EvalResult BarnesHutEvaluator::evaluate_at(ThreadPool& pool,
                                           std::span<const Vec3> points) const {
  // External targets get the same policy treatment as source particles:
  // kThrow fails fast on non-finite coordinates; kSanitize/kWarn keep the
  // offending targets' output slots zeroed (run() skips them) so result
  // indexing still matches `points`.
  enforce_validation(validate_targets(points), tree_.config().validation,
                     "BarnesHutEvaluator::evaluate_at");
  return run(pool, points, /*self=*/false);
}

EvalResult BarnesHutEvaluator::run(ThreadPool& pool, std::span<const Vec3> points,
                                   bool self) const {
  EvalResult result;
  const std::size_t n = points.size();
  // In self mode results are scattered into the caller's particle order,
  // which is indexed by the *source* system (validation may have dropped
  // particles, leaving zero-filled slots).
  const std::size_t out_n = self ? tree_.source_size() : n;
  const bool enforce = config_.enforce_budget;
  const double budget = config_.error_budget;
  const bool want_grad = config_.compute_gradient;
  const bool want_bounds = config_.track_error_bounds || enforce;
  // Audit target indices are sorted-order point indices in both self and
  // external mode, so a self evaluation and an evaluate_at over the sorted
  // positions audit identical interactions.
  const bool auditing = config_.audit_samples > 0;
  const bool want_thm1 = want_bounds || auditing;
  result.potential.assign(out_n, 0.0);
  if (want_grad) result.gradient.assign(out_n, Vec3{});
  if (want_bounds) result.error_bound.assign(out_n, 0.0);
  result.stats.reference_charge = degrees_.reference_charge;
  result.stats.build_seconds = build_seconds_;
  if (n == 0 || tree_.num_particles() == 0) return result;

  const auto& nodes = tree_.nodes();
  const auto& pos = tree_.positions();
  const auto& q = charges_;
  const double alpha = config_.alpha;
  const double softening2 = config_.softening * config_.softening;

  // Results are computed into sorted-order slots, then scattered to the
  // caller's order at the end (self mode only; external points are already
  // in caller order).
  std::vector<double> phi(n, 0.0);
  std::vector<Vec3> grad(want_grad ? n : 0, Vec3{});
  std::vector<double> bound(want_bounds ? n : 0, 0.0);
  std::vector<ThreadAccumulator> acc(pool.width());
  if (auditing) {
    for (auto& a : acc) a.audit.set_capacity(config_.audit_samples);
  }

  {
    const ScopedTimer phase_timer(obs::span::kBhTraverse, &result.stats.eval_seconds);
    result.stats.work = parallel_for_blocked(
      pool, n, config_.block_size,
      [&](std::size_t block_begin, std::size_t block_end, unsigned t) -> std::uint64_t {
        ThreadAccumulator& a = acc[t];
        const std::uint64_t terms_before = a.terms + a.p2p;
        std::vector<int> stack;
        stack.reserve(64);
        for (std::size_t i = block_begin; i < block_end; ++i) {
          const Vec3 x = points[i];
          // Sanitized non-finite targets keep a zero output slot; a NaN
          // coordinate fails every MAC test and would otherwise degrade to
          // an all-P2P sweep that still produces NaN.
          if (!std::isfinite(x.x) || !std::isfinite(x.y) || !std::isfinite(x.z)) continue;
          double my_phi = 0.0;
          double my_bound = 0.0;
          Vec3 my_grad{};
          // Per-target acceptance ordinal: combined with the target index it
          // keys the audit sampling, and both are schedule-independent (the
          // DFS visit order per target is fixed), so the sampled set is
          // bitwise identical across thread counts and block sizes.
          std::uint64_t audit_ord = 0;
          stack.clear();
          stack.push_back(0);
          while (!stack.empty()) {
            const int ni = stack.back();
            stack.pop_back();
            const TreeNode& node = nodes[static_cast<std::size_t>(ni)];
            if (node.count() == 0) continue;
            double r = 0.0;
            bool approximate = mac_accepts(node, x, alpha, r);
            // Theorem 1 with the actual cluster radius and distance —
            // rigorous and tighter than the alpha-form of Theorem 2.
            double thm1 = 0.0;
            if (approximate && want_thm1) {
              thm1 = multipole_error_bound(node.abs_charge, node.radius, r,
                                           degrees_.degree[static_cast<std::size_t>(ni)]);
              // Budget enforcement: if approximating this cluster would
              // blow the target's budget, degrade gracefully — recurse
              // into the children (tighter bounds) or, at a leaf, fall
              // back to exact P2P (zero error contribution).
              if (enforce && my_bound + thm1 > budget) {
                approximate = false;
                ++a.budget_refine;
                if (node.is_leaf()) ++a.budget_refine_leaf;
              }
            }
            if (approximate) {
              const MultipoleExpansion& m = multipoles_[static_cast<std::size_t>(ni)];
              double contribution;
              if (want_grad) {
                const PotentialGrad pg = m2p_grad(m, node.center, x);
                contribution = pg.potential;
                my_grad += pg.gradient;
              } else {
                contribution = m2p(m, node.center, x);
              }
              my_phi += contribution;
              a.terms += static_cast<std::uint64_t>(m.term_count());
              ++a.m2p;
              const int deg = m.degree();
              if (auditing) {
                obs::audit::Sample s;
                s.key = obs::audit::sample_key(config_.audit_seed, i, audit_ord);
                s.target = i;
                s.node = ni;
                s.level = node.level;
                s.degree = deg;
                s.abs_charge = node.abs_charge;
                s.approx = contribution;
                s.bound = thm1;
                // Scale of the cluster's potential at x, for the rounding
                // floor that separates truncation error from FP noise.
                s.noise_scale =
                    r > node.radius ? node.abs_charge / (r - node.radius) : 0.0;
                a.audit.offer(s);
              }
              ++audit_ord;
              a.min_deg = std::min(a.min_deg, deg);
              a.max_deg = std::max(a.max_deg, deg);
              obs::count_slot(a.degree_used, deg);
              obs::count_slot(a.m2p_by_level, node.level);
              const double thm2 = mac_error_bound(node.abs_charge, r, alpha, m.degree());
              a.max_bound = std::max(a.max_bound, thm2);
              my_bound += thm1;
            } else if (node.is_leaf()) {
              const std::span<const Vec3> ppos(pos.data() + node.begin, node.count());
              const std::span<const double> pq(q.data() + node.begin, node.count());
              if (want_grad) {
                const PotentialGrad pg = p2p_grad(x, ppos, pq, softening2);
                my_phi += pg.potential;
                my_grad += pg.gradient;
              } else {
                my_phi += p2p(x, ppos, pq, softening2);
              }
              a.p2p += node.count();
              obs::count_slot(a.p2p_by_level, node.level, node.count());
            } else {
              for (int c = 0; c < node.num_children; ++c) {
                stack.push_back(node.first_child + c);
              }
            }
          }
          // Inputs are validated at tree build, but override charges,
          // softening underflow, or an evaluation point sitting exactly on
          // an expansion center can still poison a potential; fail loudly
          // (parallel_for cancels the remaining blocks) instead of
          // returning garbage.
          if (!std::isfinite(my_phi)) {
            obs::recorder::record(obs::recorder::Category::kNonFinite,
                                  "bh.nonfinite_potential", static_cast<double>(i));
            obs::recorder::trigger("bh: non-finite potential");
            throw std::runtime_error(
                "BarnesHutEvaluator: non-finite potential at evaluation point " +
                std::to_string(i));
          }
          phi[i] = my_phi;
          if (want_grad) grad[i] = my_grad;
          if (want_bounds) bound[i] = my_bound;
        }
        return (a.terms + a.p2p) - terms_before;  // cost of this block
      },
      nullptr, obs::span::kBhTraverseWorker);
  }

  // Merge per-thread accumulators into the result stats and flush the
  // batched tallies into the metrics registry.
  int min_deg = std::numeric_limits<int>::max();
  int max_deg = -1;
  obs::LevelCounts m2p_by_level{};
  obs::LevelCounts p2p_by_level{};
  obs::DegreeCounts degree_used{};
  for (const auto& a : acc) {
    result.stats.multipole_terms += a.terms;
    result.stats.m2p_count += a.m2p;
    result.stats.p2p_pairs += a.p2p;
    result.stats.budget_refinements += a.budget_refine;
    result.stats.budget_refinements_leaf += a.budget_refine_leaf;
    result.stats.max_interaction_bound =
        std::max(result.stats.max_interaction_bound, a.max_bound);
    min_deg = std::min(min_deg, a.min_deg);
    max_deg = std::max(max_deg, a.max_deg);
    for (std::size_t i = 0; i < m2p_by_level.size(); ++i) {
      m2p_by_level[i] += a.m2p_by_level[i];
      p2p_by_level[i] += a.p2p_by_level[i];
    }
    for (std::size_t i = 0; i < degree_used.size(); ++i) degree_used[i] += a.degree_used[i];
  }
  if (max_deg >= 0) {
    result.stats.min_degree_used = min_deg;
    result.stats.max_degree_used = max_deg;
  } else {
    // No multipole interaction was actually evaluated (tiny system, or the
    // budget demoted everything to P2P): no degree was used.
    result.stats.min_degree_used = 0;
    result.stats.max_degree_used = 0;
  }

  if (auditing) {
    // Gather the thread-private reservoirs (thread order is irrelevant:
    // merge() selects and sorts by the samples alone) and audit the global
    // K winners against exact P2P partial sums. Multipole-approximated
    // interactions are unsoftened, so the exact comparator is too.
    std::vector<obs::audit::Reservoir> reservoirs;
    reservoirs.reserve(acc.size());
    for (auto& a : acc) reservoirs.push_back(std::move(a.audit));
    const std::vector<obs::audit::Sample> winners =
        obs::audit::merge(reservoirs, config_.audit_samples);
    const obs::audit::Summary summary = obs::audit::finalize(
        winners, [&](const obs::audit::Sample& s) {
          const TreeNode& node = nodes[static_cast<std::size_t>(s.node)];
          return p2p(points[s.target],
                     std::span<const Vec3>(pos.data() + node.begin, node.count()),
                     std::span<const double>(q.data() + node.begin, node.count()),
                     /*softening2=*/0.0);
        });
    result.stats.audit_samples = summary.samples;
    result.stats.audit_bound_violations = summary.bound_violations;
    result.stats.audit_max_tightness = summary.max_tightness;
    result.stats.audit_mean_tightness = summary.mean_tightness;
  }
  if (result.stats.budget_refinements > 0) {
    obs::recorder::record(obs::recorder::Category::kBudget, "bh.budget_refinements",
                          static_cast<double>(result.stats.budget_refinements));
  }

  obs::Registry& reg = obs::registry();
  reg.counter(obs::metric::kBhMultipoleTerms).add(result.stats.multipole_terms);
  reg.counter(obs::metric::kBhM2pCount).add(result.stats.m2p_count);
  reg.counter(obs::metric::kBhP2pPairs).add(result.stats.p2p_pairs);
  reg.counter(obs::metric::kBhBudgetRefinements).add(result.stats.budget_refinements);
  reg.counter(obs::metric::kBhBudgetRefinementsLeaf).add(result.stats.budget_refinements_leaf);
  reg.gauge(obs::metric::kBhMaxInteractionBound).record_max(result.stats.max_interaction_bound);
  obs::flush_counts(obs::metric::kBhM2pPerLevel, m2p_by_level);
  obs::flush_counts(obs::metric::kBhP2pPerLevel, p2p_by_level);
  obs::flush_counts(obs::metric::kBhDegreeUsed, degree_used);

  // A budget that demotes most MAC-accepted interactions is unachievably
  // tight: the traversal is quietly degenerating toward direct summation.
  const std::uint64_t mac_accepted =
      result.stats.m2p_count + result.stats.budget_refinements;
  if (enforce && mac_accepted > 0 &&
      result.stats.budget_refinements * 2 > mac_accepted) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "bh: error budget %.3g demoted %.0f%% of MAC-accepted interactions; "
                  "the budget is likely unachievably tight",
                  budget,
                  100.0 * static_cast<double>(result.stats.budget_refinements) /
                      static_cast<double>(mac_accepted));
    obs::warn(msg);
  }

  if (self) {
    // Scatter from sorted order back to the caller's particle order.
    const auto& orig = tree_.original_index();
    for (std::size_t i = 0; i < n; ++i) {
      result.potential[orig[i]] = phi[i];
      if (want_grad) result.gradient[orig[i]] = grad[i];
      if (want_bounds) result.error_bound[orig[i]] = bound[i];
    }
  } else {
    result.potential = std::move(phi);
    if (want_grad) result.gradient = std::move(grad);
    if (want_bounds) result.error_bound = std::move(bound);
  }
  TREECODE_ASSERT_EVAL_INVARIANTS(tree_, degrees_, config_, result, out_n,
                                  "BarnesHutEvaluator::run");
  return result;
}

EvalResult evaluate_barnes_hut(const Tree& tree, const EvalConfig& config) {
  ThreadPool pool(config.threads);
  BarnesHutEvaluator eval(tree, config, &pool);
  return eval.evaluate(pool);
}

}  // namespace treecode
