#include "core/direct.hpp"

#include "analysis/invariants.hpp"
#include "multipole/operators.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "util/timer.hpp"
#include "obs/spans.hpp"
#include "util/validate.hpp"

namespace treecode {

namespace {

EvalResult direct_impl(const ParticleSystem& ps, std::span<const Vec3> points,
                       unsigned threads, bool compute_gradient, double softening = 0.0) {
  // Direct summation has no Tree in front of it to validate the input, so
  // one NaN charge would silently poison every potential; fail fast like
  // the tree-based evaluators do.
  enforce_validation(validate_particles(ps.positions(), ps.charges()),
                     ValidationPolicy::kThrow, "evaluate_direct");
  EvalResult result;
  const std::size_t n = points.size();
  result.potential.assign(n, 0.0);
  if (compute_gradient) result.gradient.assign(n, Vec3{});
  if (n == 0 || ps.empty()) return result;

  ThreadPool pool(threads);
  const std::span<const Vec3> src_pos(ps.positions());
  const std::span<const double> src_q(ps.charges());
  {
    const ScopedTimer eval_phase(obs::span::kDirectEval, &result.stats.eval_seconds);
    result.stats.work = parallel_for_blocked(
        pool, n, 128,
        [&](std::size_t b, std::size_t e, unsigned) -> std::uint64_t {
          const double softening2 = softening * softening;
          for (std::size_t i = b; i < e; ++i) {
            if (compute_gradient) {
              const PotentialGrad pg = p2p_grad(points[i], src_pos, src_q, softening2);
              result.potential[i] = pg.potential;
              result.gradient[i] = pg.gradient;
            } else {
              result.potential[i] = p2p(points[i], src_pos, src_q, softening2);
            }
          }
          return (e - b) * ps.size();
        },
        nullptr, obs::span::kDirectEvalWorker);
  }
  result.stats.p2p_pairs = static_cast<std::uint64_t>(n) * ps.size();
  obs::registry().counter(obs::metric::kDirectP2pPairs).add(result.stats.p2p_pairs);
#if defined(TREECODE_CHECK_INVARIANTS)
  EvalConfig checked;
  checked.compute_gradient = compute_gradient;
  analysis::require(analysis::check_eval_result(result, checked, n), "evaluate_direct");
#endif
  return result;
}

}  // namespace

EvalResult evaluate_direct(const ParticleSystem& ps, unsigned threads, bool compute_gradient,
                           double softening) {
  return direct_impl(ps, ps.positions(), threads, compute_gradient, softening);
}

EvalResult evaluate_direct_at(const ParticleSystem& ps, std::span<const Vec3> points,
                              unsigned threads, bool compute_gradient) {
  // External evaluation points bypass the source validation above; a NaN
  // target would quietly produce a NaN potential in its own slot.
  enforce_validation(validate_targets(points), ValidationPolicy::kThrow,
                     "evaluate_direct_at");
  return direct_impl(ps, points, threads, compute_gradient);
}

}  // namespace treecode
