#pragma once

/// \file aabb.hpp
/// Axis-aligned bounding boxes used by the octree and the MAC.

#include <limits>

#include "geom/vec3.hpp"

namespace treecode {

/// An axis-aligned bounding box, stored as (lo, hi) corners.
///
/// A default-constructed box is *empty*: `lo` is +inf and `hi` is -inf in
/// every component, so `expand` works without special cases and `empty()`
/// is true.
struct Aabb {
  Vec3 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec3 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  /// True if no point has been added.
  [[nodiscard]] bool empty() const noexcept { return lo.x > hi.x; }

  /// Grow the box to contain point `p`.
  void expand(const Vec3& p) noexcept {
    lo = min(lo, p);
    hi = max(hi, p);
  }

  /// Grow the box to contain another box.
  void merge(const Aabb& b) noexcept {
    lo = min(lo, b.lo);
    hi = max(hi, b.hi);
  }

  /// Geometric center. Precondition: not empty.
  [[nodiscard]] Vec3 center() const noexcept { return 0.5 * (lo + hi); }

  /// Edge lengths. Precondition: not empty.
  [[nodiscard]] Vec3 extents() const noexcept { return hi - lo; }

  /// Longest edge length ("dimension of the box enclosing the cluster" in
  /// the paper's MAC). Precondition: not empty.
  [[nodiscard]] double max_extent() const noexcept {
    const Vec3 e = extents();
    return e.x > e.y ? (e.x > e.z ? e.x : e.z) : (e.y > e.z ? e.y : e.z);
  }

  /// Half of the diagonal: radius of the smallest sphere centered at
  /// `center()` that contains the whole box.
  [[nodiscard]] double bounding_radius() const noexcept { return 0.5 * norm(extents()); }

  /// True if `p` lies inside or on the boundary.
  [[nodiscard]] bool contains(const Vec3& p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z &&
           p.z <= hi.z;
  }

  /// The smallest *cube* that contains this box and shares its center.
  /// Octree construction starts from a cubic root so that child cells stay
  /// cubic and the level -> cell-size relationship of the paper's analysis
  /// holds exactly.
  [[nodiscard]] Aabb bounding_cube() const noexcept {
    const Vec3 c = center();
    const double h = 0.5 * max_extent();
    Aabb cube;
    cube.lo = c - Vec3{h, h, h};
    cube.hi = c + Vec3{h, h, h};
    return cube;
  }
};

/// Bounding box of a range of points.
template <typename Iter>
Aabb bounding_box(Iter first, Iter last) {
  Aabb box;
  for (; first != last; ++first) box.expand(*first);
  return box;
}

}  // namespace treecode
