#pragma once

/// \file hilbert.hpp
/// 3-D Peano-Hilbert curve keys.
///
/// The paper sorts particles "in a proximity-preserving order (a
/// Peano-Hilbert ordering)" before aggregating blocks of w particles into
/// threads; the Hilbert curve's guarantee that consecutive keys are grid
/// neighbors gives better block compactness (and hence cache behavior and
/// load balance) than Morton order.
///
/// The implementation uses John Skilling's transpose-form algorithm
/// ("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004): axes are
/// converted in place to the transposed Hilbert index with O(bits) bit
/// manipulation, then the transpose is interleaved into a single 63-bit key.

#include <cstdint>

#include "geom/aabb.hpp"
#include "geom/morton.hpp"
#include "geom/vec3.hpp"

namespace treecode {

/// Convert integer grid coordinates (each < 2^kSfcBitsPerAxis) to a Hilbert
/// curve index in [0, 2^63). Consecutive indices are face-adjacent cells.
std::uint64_t hilbert_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) noexcept;

/// Inverse of hilbert_encode.
GridCoord hilbert_decode(std::uint64_t key) noexcept;

/// Hilbert key of a point within a bounding box (quantized like morton_key).
std::uint64_t hilbert_key(const Vec3& p, const Aabb& box) noexcept;

}  // namespace treecode
