#pragma once

/// \file morton.hpp
/// 3-D Morton (Z-order) codes.
///
/// Morton codes are the simpler of the two proximity-preserving orderings the
/// library offers (the other is the Peano-Hilbert curve in hilbert.hpp, which
/// the paper uses). They are kept as an ablation alternative and as a cheap
/// way to bucket points during octree construction.

#include <cstdint>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace treecode {

/// Number of bits of resolution per axis used by 64-bit Morton/Hilbert keys.
/// 21 bits x 3 axes = 63 bits, the most that fit in a u64.
inline constexpr int kSfcBitsPerAxis = 21;

/// Interleave the low 21 bits of `v` with two zero bits between each
/// (the classic "part by 2" bit trick).
constexpr std::uint64_t morton_part_bits(std::uint64_t v) noexcept {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

/// Inverse of morton_part_bits: extract every third bit.
constexpr std::uint64_t morton_compact_bits(std::uint64_t v) noexcept {
  v &= 0x1249249249249249ULL;
  v = (v | (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v | (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v | (v >> 16)) & 0x1f00000000ffffULL;
  v = (v | (v >> 32)) & 0x1fffff;
  return v;
}

/// Morton key of integer grid coordinates (x, y, z), each in [0, 2^21).
constexpr std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y,
                                      std::uint32_t z) noexcept {
  return morton_part_bits(x) | (morton_part_bits(y) << 1) | (morton_part_bits(z) << 2);
}

/// Decoded integer grid coordinates of a Morton key.
struct GridCoord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;
  friend constexpr bool operator==(const GridCoord&, const GridCoord&) = default;
};

/// Inverse of morton_encode.
constexpr GridCoord morton_decode(std::uint64_t key) noexcept {
  return {static_cast<std::uint32_t>(morton_compact_bits(key)),
          static_cast<std::uint32_t>(morton_compact_bits(key >> 1)),
          static_cast<std::uint32_t>(morton_compact_bits(key >> 2))};
}

/// Quantize a point inside `box` onto the 2^21-cell-per-axis integer grid.
/// Points exactly on the upper face map to the last cell.
GridCoord quantize(const Vec3& p, const Aabb& box) noexcept;

/// Morton key of a point within a bounding box.
std::uint64_t morton_key(const Vec3& p, const Aabb& box) noexcept;

}  // namespace treecode
