#include "geom/hilbert.hpp"

namespace treecode {
namespace {

constexpr int kBits = kSfcBitsPerAxis;
constexpr int kDims = 3;

/// Skilling: transform axes -> transposed Hilbert index, in place.
/// X[i] holds axis i; on return, bit b of X[i] is bit (b*kDims + i) of the
/// Hilbert index, counting from the most significant bit.
void axes_to_transpose(std::uint32_t x[kDims]) noexcept {
  std::uint32_t m = 1u << (kBits - 1);
  // Inverse undo
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < kDims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {      // exchange
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode
  for (int i = 1; i < kDims; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[kDims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < kDims; ++i) x[i] ^= t;
}

/// Skilling: transform transposed Hilbert index -> axes, in place.
void transpose_to_axes(std::uint32_t x[kDims]) noexcept {
  const std::uint32_t n = 1u << kBits;
  // Gray decode by H ^ (H/2)
  std::uint32_t t = x[kDims - 1] >> 1;
  for (int i = kDims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work
  for (std::uint32_t q = 2; q != n; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = kDims - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t tt = (x[0] ^ x[i]) & p;
        x[0] ^= tt;
        x[i] ^= tt;
      }
    }
  }
}

/// Interleave the transpose into a single key, MSB-first:
/// key bit (b*3 + i) (from the top) is bit b (from the top) of X[i].
std::uint64_t interleave_transpose(const std::uint32_t x[kDims]) noexcept {
  std::uint64_t key = 0;
  for (int b = kBits - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      key = (key << 1) | ((x[i] >> b) & 1u);
    }
  }
  return key;
}

void deinterleave_transpose(std::uint64_t key, std::uint32_t x[kDims]) noexcept {
  x[0] = x[1] = x[2] = 0;
  for (int b = kBits - 1; b >= 0; --b) {
    for (int i = 0; i < kDims; ++i) {
      const int shift = b * kDims + (kDims - 1 - i);
      x[i] = (x[i] << 1) | static_cast<std::uint32_t>((key >> shift) & 1u);
    }
  }
}

}  // namespace

std::uint64_t hilbert_encode(std::uint32_t xi, std::uint32_t yi, std::uint32_t zi) noexcept {
  std::uint32_t x[kDims] = {xi, yi, zi};
  axes_to_transpose(x);
  return interleave_transpose(x);
}

GridCoord hilbert_decode(std::uint64_t key) noexcept {
  std::uint32_t x[kDims];
  deinterleave_transpose(key, x);
  transpose_to_axes(x);
  return {x[0], x[1], x[2]};
}

std::uint64_t hilbert_key(const Vec3& p, const Aabb& box) noexcept {
  const GridCoord g = quantize(p, box);
  return hilbert_encode(g.x, g.y, g.z);
}

}  // namespace treecode
