#include "geom/morton.hpp"

namespace treecode {

GridCoord quantize(const Vec3& p, const Aabb& box) noexcept {
  constexpr double kCells = static_cast<double>(1u << kSfcBitsPerAxis);
  constexpr std::uint32_t kMax = (1u << kSfcBitsPerAxis) - 1;
  const Vec3 e = box.extents();
  auto axis = [&](double v, double lo, double len) -> std::uint32_t {
    if (len <= 0.0) return 0;
    double t = (v - lo) / len * kCells;
    if (t < 0.0) t = 0.0;
    auto cell = static_cast<std::uint32_t>(t);
    return cell > kMax ? kMax : cell;
  };
  return {axis(p.x, box.lo.x, e.x), axis(p.y, box.lo.y, e.y), axis(p.z, box.lo.z, e.z)};
}

std::uint64_t morton_key(const Vec3& p, const Aabb& box) noexcept {
  const GridCoord g = quantize(p, box);
  return morton_encode(g.x, g.y, g.z);
}

}  // namespace treecode
