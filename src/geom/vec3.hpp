#pragma once

/// \file vec3.hpp
/// Minimal 3-D vector type used throughout the treecode library.
///
/// The library deliberately avoids pulling in a full linear-algebra package
/// for particle geometry: every hot loop (P2P kernels, tree traversal, MAC
/// tests) works on this POD-like value type, which the compiler can keep in
/// registers and vectorize.

#include <array>
#include <cmath>
#include <iosfwd>

namespace treecode {

/// A 3-component double-precision vector with value semantics.
///
/// All arithmetic operators are componentwise; `dot`, `cross`, `norm` and
/// friends provide the usual Euclidean operations. The type is an aggregate
/// so brace-initialization (`Vec3{x, y, z}`) works everywhere.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) noexcept {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) noexcept { return *this *= (1.0 / s); }

  constexpr double operator[](int i) const noexcept {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) noexcept { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) noexcept { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) noexcept { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) noexcept { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) noexcept { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) noexcept { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) noexcept {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

/// Euclidean dot product.
constexpr double dot(const Vec3& a, const Vec3& b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

/// Cross product (right-handed).
constexpr Vec3 cross(const Vec3& a, const Vec3& b) noexcept {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

/// Squared Euclidean norm; cheaper than `norm` when only comparisons matter.
constexpr double norm2(const Vec3& a) noexcept { return dot(a, a); }

/// Euclidean norm.
inline double norm(const Vec3& a) noexcept { return std::sqrt(norm2(a)); }

/// Euclidean distance between two points.
inline double distance(const Vec3& a, const Vec3& b) noexcept { return norm(a - b); }

/// Squared Euclidean distance between two points.
constexpr double distance2(const Vec3& a, const Vec3& b) noexcept { return norm2(a - b); }

/// Unit vector in the direction of `a`. Precondition: `norm(a) > 0`.
inline Vec3 normalized(const Vec3& a) noexcept { return a / norm(a); }

/// Componentwise minimum.
constexpr Vec3 min(const Vec3& a, const Vec3& b) noexcept {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}

/// Componentwise maximum.
constexpr Vec3 max(const Vec3& a, const Vec3& b) noexcept {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}

/// Stream output in the form `(x, y, z)`; declared here, defined in vec3.cpp
/// to keep <ostream> out of hot translation units.
std::ostream& operator<<(std::ostream& os, const Vec3& v);

/// Spherical coordinates (r, theta, phi) of a point relative to the origin.
///
/// Conventions match the multipole library: `theta` is the polar angle
/// measured from the +z axis in [0, pi]; `phi` is the azimuthal angle in
/// (-pi, pi]. At the origin all angles are defined as zero.
struct Spherical {
  double r = 0.0;
  double theta = 0.0;
  double phi = 0.0;
};

/// Convert a Cartesian offset vector to spherical coordinates.
inline Spherical to_spherical(const Vec3& v) noexcept {
  Spherical s;
  s.r = norm(v);
  if (s.r == 0.0) return s;
  // Clamp to dodge rounding outside [-1, 1] for points on the z axis.
  double ct = v.z / s.r;
  if (ct > 1.0) ct = 1.0;
  if (ct < -1.0) ct = -1.0;
  s.theta = std::acos(ct);
  s.phi = std::atan2(v.y, v.x);
  return s;
}

}  // namespace treecode
