#include <gtest/gtest.h>

#include <cmath>

#include "bem/bem_operator.hpp"
#include "bem/double_layer.hpp"
#include "bem/meshgen.hpp"
#include "linalg/gmres.hpp"
#include "util/stats.hpp"

namespace treecode {
namespace {

DoubleLayerOperator::Options dl_options(int degree = 8, double alpha = 0.5) {
  DoubleLayerOperator::Options opt;
  opt.eval.alpha = alpha;
  opt.eval.degree = degree;
  opt.gauss_points = 6;
  return opt;
}

TEST(MeshOrientation, GeneratorsAreOutward) {
  EXPECT_NEAR(make_sphere(24, 48).signed_volume(), 4.0 * M_PI / 3.0,
              0.05 * 4.0 * M_PI / 3.0);
  EXPECT_NEAR(make_torus(48, 32, 1.0, 0.35).signed_volume(),
              2.0 * M_PI * M_PI * 1.0 * 0.35 * 0.35,
              0.05 * 2.0 * M_PI * M_PI * 0.35 * 0.35);
  EXPECT_GT(make_propeller(20, 40).signed_volume(), 0.0);
  EXPECT_GT(make_gripper(20, 40).signed_volume(), 0.0);
}

TEST(DoubleLayer, GaussFluxIdentity) {
  // W[1](x) = -4 pi inside, ~0 outside a closed outward-oriented surface.
  for (const auto make : {+[] { return make_sphere(20, 40); },
                          +[] { return make_propeller(24, 48); }}) {
    const TriangleMesh mesh = make();
    const DoubleLayerOperator K(mesh, dl_options(10, 0.4));
    const std::vector<double> ones(K.cols(), 1.0);
    const std::vector<Vec3> probes{{0, 0, 0.05}, {0.05, 0.02, 0.0},   // inside
                                   {5, 5, 5}, {-4, 0, 0}};            // outside
    const std::vector<double> w = K.potential_at(probes, ones);
    EXPECT_NEAR(w[0], -4.0 * M_PI, 0.05 * 4.0 * M_PI);
    EXPECT_NEAR(w[1], -4.0 * M_PI, 0.05 * 4.0 * M_PI);
    EXPECT_NEAR(w[2], 0.0, 0.05);
    EXPECT_NEAR(w[3], 0.0, 0.05);
  }
}

TEST(DoubleLayer, TreecodeMatchesDirect) {
  const TriangleMesh mesh = make_gripper(12, 24);
  const DoubleLayerOperator K(mesh, dl_options(10, 0.4));
  std::vector<double> x(K.cols());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0 + std::sin(0.4 * static_cast<double>(i));
  std::vector<double> y_tree(K.rows()), y_direct(K.rows());
  K.apply(x, y_tree);
  K.apply_direct(x, y_direct);
  EXPECT_LT(relative_error_2norm(y_direct, y_tree), 1e-4);
}

TEST(DoubleLayer, SecondKindSolveReproducesInteriorField) {
  // Interior Dirichlet via (-2 pi I + K) sigma = f with f the trace of an
  // exterior point charge; W[sigma] inside must reproduce that field.
  const TriangleMesh mesh = make_sphere(16, 32);
  const DoubleLayerOperator K(mesh, dl_options(10, 0.4));
  const SecondKindDirichletOperator A(K);
  const Vec3 source{3.0, 0.5, -0.2};
  const std::vector<double> f = K.point_charge_rhs(source, 1.0);
  std::vector<double> sigma(A.cols(), 0.0);
  GmresOptions opt;
  opt.restart = 10;
  opt.tolerance = 1e-9;
  opt.max_iterations = 200;
  const GmresResult r = gmres(A, f, sigma, opt);
  ASSERT_TRUE(r.converged);
  const std::vector<Vec3> probes{{0, 0, 0}, {0.2, -0.3, 0.1}};
  const std::vector<double> u = K.potential_at(probes, sigma);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const double expected = 1.0 / distance(probes[i], source);
    // Accuracy here is limited by the plain-Gauss treatment of the weakly
    // singular kernel on collocation rows (a discretization property, not
    // a treecode one); it tightens under mesh refinement.
    EXPECT_NEAR(u[i], expected, 0.08 * expected) << i;
  }
}

TEST(DoubleLayer, SecondKindConvergesFasterThanFirstKind) {
  // The conditioning claim: on the same mesh and data, GMRES(10) needs far
  // fewer iterations for (-2 pi I + K) than for the first-kind single-layer
  // operator.
  const TriangleMesh mesh = make_propeller(16, 32);
  const Vec3 source{3.0, 1.0, 2.0};

  DoubleLayerOperator::Options dopt = dl_options(6, 0.5);
  const DoubleLayerOperator K(mesh, dopt);
  const SecondKindDirichletOperator A2(K);

  SingleLayerOperator::Options sopt;
  sopt.eval.alpha = 0.5;
  sopt.eval.degree = 6;
  sopt.gauss_points = 6;
  const SingleLayerOperator A1(mesh, sopt);

  GmresOptions opt;
  opt.restart = 10;
  opt.tolerance = 1e-8;
  opt.max_iterations = 500;

  std::vector<double> s1(A1.cols(), 0.0), s2(A2.cols(), 0.0);
  const std::vector<double> f = A1.point_charge_rhs(source, 1.0);
  const GmresResult r1 = gmres(A1, f, s1, opt);
  const GmresResult r2 = gmres(A2, f, s2, opt);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations / 2)
      << "second-kind " << r2.iterations << " vs first-kind " << r1.iterations;
  EXPECT_LT(r2.iterations, 40);
}

TEST(DoubleLayer, ConstantDensityOnSurfaceGivesMinusTwoPi) {
  // The jump relation's on-surface value: K[1](x_i) ~ -2 pi at (smooth)
  // collocation points. Quadrature is only approximate for the weakly
  // singular kernel, so allow a generous band away from the poles.
  const TriangleMesh mesh = make_sphere(24, 48);
  const DoubleLayerOperator K(mesh, dl_options(10, 0.4));
  const std::vector<double> ones(K.cols(), 1.0);
  std::vector<double> y(K.rows());
  K.apply(ones, y);
  std::size_t close = 0;
  for (double v : y) {
    if (std::abs(v + 2.0 * M_PI) < 0.15 * 2.0 * M_PI) ++close;
  }
  EXPECT_GT(close, y.size() * 8 / 10);
}

}  // namespace
}  // namespace treecode
