#include <gtest/gtest.h>

#include <cmath>

#include "bem/meshgen.hpp"

namespace treecode {
namespace {

TEST(Mesh, TriangleGeometry) {
  const TriangleMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}, {Triangle{{0, 1, 2}}});
  EXPECT_DOUBLE_EQ(m.area(0), 0.5);
  EXPECT_EQ(m.normal(0), (Vec3{0, 0, 1}));
  const Vec3 c = m.centroid(0);
  EXPECT_NEAR(c.x, 1.0 / 3, 1e-15);
  EXPECT_NEAR(c.y, 1.0 / 3, 1e-15);
}

TEST(Mesh, ValidateCatchesBadIndex) {
  const TriangleMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}, {Triangle{{0, 1, 7}}});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Mesh, ValidateCatchesDegenerate) {
  const TriangleMesh m({{0, 0, 0}, {1, 0, 0}, {2, 0, 0}}, {Triangle{{0, 1, 2}}});
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(MeshGen, SphereAreaConvergesToAnalytic) {
  // Surface of a unit sphere = 4 pi; refined lat-lon meshes approach it.
  double prev_err = 1e9;
  for (std::size_t n : {8u, 16u, 32u}) {
    const TriangleMesh m = make_sphere(n, 2 * n, 1.0);
    const double err = std::abs(m.total_area() - 4.0 * M_PI);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err / (4.0 * M_PI), 0.01);
}

TEST(MeshGen, SphereIsWatertight) {
  EXPECT_TRUE(make_sphere(6, 10).is_watertight());
  EXPECT_TRUE(make_sphere(2, 3).is_watertight());  // minimal
}

TEST(MeshGen, TorusAreaMatchesAnalytic) {
  // Torus area = 4 pi^2 R r.
  const double R = 1.0;
  const double r = 0.35;
  const TriangleMesh m = make_torus(64, 48, R, r);
  EXPECT_NEAR(m.total_area(), 4.0 * M_PI * M_PI * R * r, 0.02 * 4.0 * M_PI * M_PI * R * r);
}

TEST(MeshGen, TorusIsWatertight) {
  EXPECT_TRUE(make_torus(8, 6).is_watertight());
}

TEST(MeshGen, PropellerIsWatertightAndNonConvex) {
  const TriangleMesh m = make_propeller(24, 48, 3);
  EXPECT_TRUE(m.is_watertight());
  EXPECT_NO_THROW(m.validate());
  // Blades: vertex radii span a wide range (hub 0.25 to tip ~1).
  double rmin = 1e9;
  double rmax = 0.0;
  for (const Vec3& v : m.vertices()) {
    const double r = norm(v);
    rmin = std::min(rmin, r);
    rmax = std::max(rmax, r);
  }
  EXPECT_LT(rmin, 0.3);
  EXPECT_GT(rmax, 0.8);
}

TEST(MeshGen, GripperIsWatertight) {
  const TriangleMesh m = make_gripper(24, 48);
  EXPECT_TRUE(m.is_watertight());
  EXPECT_NO_THROW(m.validate());
}

TEST(MeshGen, VertexAndTriangleCountsScale) {
  const TriangleMesh m = make_sphere(10, 20);
  // lat-lon: (n_lat - 1) * n_lon + 2 vertices; 2 * n_lon * (n_lat - 1) tris.
  EXPECT_EQ(m.num_vertices(), 9u * 20u + 2u);
  EXPECT_EQ(m.num_triangles(), 2u * 20u * 9u);
}

TEST(MeshGen, LatLonForTriangles) {
  const LatLonSize s = latlon_for_triangles(40'000);
  EXPECT_GE(s.n_lat, 2u);
  EXPECT_EQ(s.n_lon, 2 * s.n_lat);
  const TriangleMesh m = make_propeller(s.n_lat, s.n_lon);
  const double got = static_cast<double>(m.num_triangles());
  EXPECT_NEAR(got, 40'000.0, 0.15 * 40'000.0);
}

TEST(MeshGen, InvalidParamsThrow) {
  EXPECT_THROW(make_sphere(1, 10), std::invalid_argument);
  EXPECT_THROW(make_sphere(5, 2), std::invalid_argument);
  EXPECT_THROW(make_torus(2, 8), std::invalid_argument);
  EXPECT_THROW(make_propeller(10, 20, 1), std::invalid_argument);
}

}  // namespace
}  // namespace treecode
