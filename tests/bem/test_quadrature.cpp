#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "bem/meshgen.hpp"
#include "bem/quadrature.hpp"

namespace treecode {
namespace {

/// Integrate f over the reference triangle (0,0)-(1,0)-(0,1) using `rule`.
double integrate_reference(const TriQuadRule& rule,
                           const std::function<double(double, double)>& f) {
  // Barycentric (l0, l1, l2) on vertices (0,0), (1,0), (0,1):
  // (x, y) = (l1, l2); reference area is 1/2.
  double s = 0.0;
  for (const TriQuadPoint& p : rule.points) {
    s += p.weight * f(p.bary[1], p.bary[2]);
  }
  return s * 0.5;
}

/// Exact integral of x^a y^b over the reference triangle:
/// a! b! / (a + b + 2)!.
double monomial_exact(int a, int b) {
  auto fact = [](int k) {
    double r = 1.0;
    for (int i = 2; i <= k; ++i) r *= i;
    return r;
  };
  return fact(a) * fact(b) / fact(a + b + 2);
}

class QuadratureRule : public ::testing::TestWithParam<int> {};

TEST_P(QuadratureRule, WeightsSumToOne) {
  const TriQuadRule& rule = triangle_rule(GetParam());
  double w = 0.0;
  for (const auto& p : rule.points) w += p.weight;
  EXPECT_NEAR(w, 1.0, 1e-12);
}

TEST_P(QuadratureRule, BarycentricsSumToOne) {
  const TriQuadRule& rule = triangle_rule(GetParam());
  for (const auto& p : rule.points) {
    EXPECT_NEAR(p.bary[0] + p.bary[1] + p.bary[2], 1.0, 1e-12);
    for (double l : p.bary) {
      EXPECT_GE(l, 0.0);
      EXPECT_LE(l, 1.0);
    }
  }
}

TEST_P(QuadratureRule, ExactForStatedDegree) {
  const TriQuadRule& rule = triangle_rule(GetParam());
  for (int a = 0; a <= rule.exact_degree; ++a) {
    for (int b = 0; a + b <= rule.exact_degree; ++b) {
      const double approx =
          integrate_reference(rule, [a, b](double x, double y) {
            return std::pow(x, a) * std::pow(y, b);
          });
      EXPECT_NEAR(approx, monomial_exact(a, b), 1e-12)
          << "rule " << GetParam() << " monomial x^" << a << " y^" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRules, QuadratureRule, ::testing::Values(1, 3, 4, 6, 7));

TEST(Quadrature, UnsupportedCountThrows) {
  EXPECT_THROW(triangle_rule(2), std::invalid_argument);
  EXPECT_THROW(triangle_rule(12), std::invalid_argument);
}

TEST(Quadrature, MeshPointsCountAndWeights) {
  const TriangleMesh m = make_sphere(6, 10);
  const auto pts = quadrature_points(m, triangle_rule(6));
  EXPECT_EQ(pts.size(), 6 * m.num_triangles());
  // Sum of weights = total surface area.
  double w = 0.0;
  for (const auto& p : pts) w += p.weight;
  EXPECT_NEAR(w, m.total_area(), 1e-9 * m.total_area());
}

TEST(Quadrature, IntegrateConstantGivesArea) {
  const TriangleMesh m = make_sphere(8, 14);
  const auto pts = quadrature_points(m, triangle_rule(3));
  const std::vector<double> ones(pts.size(), 1.0);
  EXPECT_NEAR(integrate(pts, ones), m.total_area(), 1e-9 * m.total_area());
}

TEST(Quadrature, SphereSurfaceIntegralOfZSquared) {
  // On the unit sphere, integral of z^2 dS = 4 pi / 3. Mesh + 6-pt rule
  // should approach it as the mesh refines.
  const TriangleMesh m = make_sphere(48, 96);
  const auto pts = quadrature_points(m, triangle_rule(6));
  std::vector<double> vals(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    vals[i] = pts[i].position.z * pts[i].position.z;
  }
  EXPECT_NEAR(integrate(pts, vals), 4.0 * M_PI / 3.0, 0.01 * 4.0 * M_PI / 3.0);
}

TEST(Quadrature, PointsLieInsideTriangles) {
  const TriangleMesh m = make_propeller(10, 20);
  const auto pts = quadrature_points(m, triangle_rule(4));
  for (const auto& p : pts) {
    // Reconstruct the point from shape functions and vertices; must match
    // the stored position (interior combination).
    const Triangle& tri = m.triangle(p.triangle);
    const Vec3 rec = p.shape[0] * m.vertex(tri.v[0]) + p.shape[1] * m.vertex(tri.v[1]) +
                     p.shape[2] * m.vertex(tri.v[2]);
    EXPECT_LT(distance(rec, p.position), 1e-12);
  }
}

}  // namespace
}  // namespace treecode
