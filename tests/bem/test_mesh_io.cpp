#include <gtest/gtest.h>

#include <sstream>

#include "bem/mesh_io.hpp"
#include "bem/meshgen.hpp"

namespace treecode {
namespace {

TEST(MeshIo, RoundTripPreservesGeometry) {
  const TriangleMesh original = make_propeller(10, 20);
  std::stringstream ss;
  save_obj(original, ss);
  const TriangleMesh loaded = load_obj(ss);
  ASSERT_EQ(loaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(loaded.num_triangles(), original.num_triangles());
  for (std::size_t i = 0; i < original.num_vertices(); ++i) {
    EXPECT_EQ(loaded.vertex(i), original.vertex(i));
  }
  for (std::size_t t = 0; t < original.num_triangles(); ++t) {
    EXPECT_EQ(loaded.triangle(t).v, original.triangle(t).v);
  }
  EXPECT_TRUE(loaded.is_watertight());
}

TEST(MeshIo, ParsesFaceIndexVariants) {
  std::stringstream ss(
      "v 0 0 0\nv 1 0 0\nv 0 1 0\nv 0 0 1\n"
      "f 1/2/3 2//1 3/4\n"   // slash-forms
      "f -4 -3 -2\n");       // negative (relative) indices
  const TriangleMesh m = load_obj(ss);
  EXPECT_EQ(m.num_vertices(), 4u);
  EXPECT_EQ(m.num_triangles(), 2u);
  EXPECT_EQ(m.triangle(0).v, (std::array<std::size_t, 3>{0, 1, 2}));
  EXPECT_EQ(m.triangle(1).v, (std::array<std::size_t, 3>{0, 1, 2}));
}

TEST(MeshIo, FanTriangulatesPolygons) {
  std::stringstream ss(
      "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\n"
      "f 1 2 3 4\n");
  const TriangleMesh m = load_obj(ss);
  EXPECT_EQ(m.num_triangles(), 2u);
}

TEST(MeshIo, IgnoresCommentsAndOtherTags) {
  std::stringstream ss(
      "# comment\no thing\ns off\nvn 0 0 1\nvt 0.5 0.5\n"
      "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n");
  const TriangleMesh m = load_obj(ss);
  EXPECT_EQ(m.num_triangles(), 1u);
}

TEST(MeshIo, RejectsBadInput) {
  {
    std::stringstream ss("v 0 0\n");  // short vertex
    EXPECT_THROW(load_obj(ss), std::runtime_error);
  }
  {
    std::stringstream ss("v 0 0 0\nf 1 2 3\n");  // index out of range
    EXPECT_THROW(load_obj(ss), std::runtime_error);
  }
  {
    std::stringstream ss("v 0 0 0\nv 1 0 0\nf 1 2\n");  // degenerate face
    EXPECT_THROW(load_obj(ss), std::runtime_error);
  }
  {
    std::stringstream ss("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 x 3\n");  // garbage index
    EXPECT_THROW(load_obj(ss), std::runtime_error);
  }
}

TEST(MeshIo, FileRoundTrip) {
  const TriangleMesh original = make_sphere(4, 6);
  const std::string path = ::testing::TempDir() + "/treecode_mesh_io_test.obj";
  save_obj(original, path);
  const TriangleMesh loaded = load_obj(path);
  EXPECT_EQ(loaded.num_triangles(), original.num_triangles());
}

TEST(MeshIo, MissingFileThrows) {
  EXPECT_THROW(load_obj(std::string("/nonexistent/dir/mesh.obj")), std::runtime_error);
}

}  // namespace
}  // namespace treecode
