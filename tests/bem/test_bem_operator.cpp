#include <gtest/gtest.h>

#include <cmath>

#include "bem/bem_operator.hpp"
#include "bem/meshgen.hpp"
#include "linalg/gmres.hpp"
#include "util/stats.hpp"

namespace treecode {
namespace {

SingleLayerOperator::Options accurate_options(int degree = 8, double alpha = 0.5) {
  SingleLayerOperator::Options opt;
  opt.eval.alpha = alpha;
  opt.eval.degree = degree;
  opt.gauss_points = 6;
  return opt;
}

TEST(BemOperator, TreecodeMatvecMatchesDenseAssembly) {
  const TriangleMesh mesh = make_sphere(10, 18);
  const SingleLayerOperator A(mesh, accurate_options(10, 0.4));
  const DenseMatrix dense = A.assemble_dense();
  std::vector<double> x(A.cols());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(0.37 * static_cast<double>(i));
  std::vector<double> y_tree(A.rows()), y_dense(A.rows());
  A.apply(x, y_tree);
  dense.apply(x, y_dense);
  EXPECT_LT(relative_error_2norm(y_dense, y_tree), 1e-4);
}

TEST(BemOperator, DirectApplyMatchesDenseExactly) {
  const TriangleMesh mesh = make_sphere(8, 14);
  const SingleLayerOperator A(mesh, accurate_options());
  const DenseMatrix dense = A.assemble_dense();
  std::vector<double> x(A.cols(), 1.0);
  std::vector<double> y_direct(A.rows()), y_dense(A.rows());
  A.apply_direct(x, y_direct);
  dense.apply(x, y_dense);
  EXPECT_LT(relative_error_2norm(y_dense, y_direct), 1e-12);
}

TEST(BemOperator, HigherDegreeReducesMatvecError) {
  const TriangleMesh mesh = make_propeller(12, 24);
  std::vector<double> x(0);
  double prev = 1e9;
  // Reference: direct product.
  const SingleLayerOperator ref_op(mesh, accurate_options());
  x.assign(ref_op.cols(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0 + std::cos(0.21 * static_cast<double>(i));
  std::vector<double> y_ref(ref_op.rows());
  ref_op.apply_direct(x, y_ref);
  for (int degree : {2, 4, 8}) {
    const SingleLayerOperator A(mesh, accurate_options(degree, 0.6));
    std::vector<double> y(A.rows());
    A.apply(x, y);
    const double err = relative_error_2norm(y_ref, y);
    EXPECT_LT(err, prev * 1.5) << "degree " << degree;
    prev = err;
  }
  EXPECT_LT(prev, 1e-4);
}

TEST(BemOperator, AdaptiveBeatsFixedAtSameBaseDegree) {
  const TriangleMesh mesh = make_gripper(14, 28);
  SingleLayerOperator::Options fixed = accurate_options(3, 0.6);
  SingleLayerOperator::Options adaptive = fixed;
  adaptive.eval.mode = DegreeMode::kAdaptive;
  const SingleLayerOperator a_fixed(mesh, fixed);
  const SingleLayerOperator a_adapt(mesh, adaptive);
  std::vector<double> x(a_fixed.cols());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0 + 0.3 * std::sin(static_cast<double>(i));
  std::vector<double> y_ref(a_fixed.rows()), y_f(a_fixed.rows()), y_a(a_fixed.rows());
  a_fixed.apply_direct(x, y_ref);
  a_fixed.apply(x, y_f);
  a_adapt.apply(x, y_a);
  EXPECT_LT(relative_error_2norm(y_ref, y_a), relative_error_2norm(y_ref, y_f));
}

TEST(BemOperator, GmresSolveMatchesDenseSolve) {
  // Solve the Dirichlet problem for an exterior point charge on a small
  // sphere; compare the GMRES+treecode solution against the dense solve.
  const TriangleMesh mesh = make_sphere(8, 14);
  const SingleLayerOperator A(mesh, accurate_options(10, 0.4));
  const std::vector<double> f = A.point_charge_rhs({3.0, 0.5, 0.2}, 1.0);
  std::vector<double> sigma(A.cols(), 0.0);
  GmresOptions opt;
  opt.restart = 10;
  opt.tolerance = 1e-10;
  opt.max_iterations = 600;
  const GmresResult r = gmres(A, f, sigma, opt);
  EXPECT_TRUE(r.converged) << "residual " << r.relative_residual;

  const DenseMatrix dense = A.assemble_dense();
  const std::vector<double> sigma_dense = dense.solve(f);
  EXPECT_LT(relative_error_2norm(sigma_dense, sigma), 1e-3);
}

TEST(BemOperator, SolvedDensityReproducesHarmonicField) {
  // After solving A sigma = f for the potential of an exterior charge on
  // the sphere boundary, the single-layer potential evaluated *inside*
  // must match the charge's potential (uniqueness of the interior
  // Dirichlet problem).
  const TriangleMesh mesh = make_sphere(14, 26);
  const SingleLayerOperator A(mesh, accurate_options(10, 0.4));
  const Vec3 src{2.5, 0.0, 0.0};  // outside the unit sphere
  const std::vector<double> f = A.point_charge_rhs(src, 1.0);
  std::vector<double> sigma(A.cols(), 0.0);
  GmresOptions opt;
  opt.restart = 10;
  opt.tolerance = 1e-10;
  opt.max_iterations = 800;
  ASSERT_TRUE(gmres(A, f, sigma, opt).converged);

  // Evaluate the single-layer potential at interior probe points directly
  // from the quadrature representation.
  const auto pts = quadrature_points(mesh, triangle_rule(6));
  for (const Vec3 probe : {Vec3{0.0, 0.0, 0.0}, Vec3{0.3, -0.2, 0.1}}) {
    double phi = 0.0;
    for (const auto& g : pts) {
      const Triangle& tri = mesh.triangle(g.triangle);
      double dens = 0.0;
      for (int k = 0; k < 3; ++k) {
        dens += g.shape[static_cast<std::size_t>(k)] * sigma[tri.v[static_cast<std::size_t>(k)]];
      }
      phi += dens * g.weight / distance(probe, g.position);
    }
    const double expected = 1.0 / distance(probe, src);
    EXPECT_NEAR(phi, expected, 0.02 * expected) << "probe " << probe.x;
  }
}

TEST(BemOperator, NearDiagonalApproximatesTrueDiagonal) {
  const TriangleMesh mesh = make_propeller(10, 20);
  const SingleLayerOperator A(mesh, accurate_options());
  const std::vector<double> near = A.near_diagonal();
  const std::vector<double> full = A.assemble_dense().diagonal();
  ASSERT_EQ(near.size(), full.size());
  for (std::size_t i = 0; i < near.size(); ++i) {
    EXPECT_GT(near[i], 0.0);
    // The near part is a subset of the positive-sum diagonal...
    EXPECT_LE(near[i], full[i] * (1 + 1e-12));
    // ...and carries a nontrivial share of it (the near-singular part).
    EXPECT_GT(near[i], 0.05 * full[i]) << i;
  }
}

TEST(BemOperator, NearDiagonalJacobiPreconditionerConverges) {
  const TriangleMesh mesh = make_gripper(12, 24);
  const SingleLayerOperator A(mesh, accurate_options(4, 0.5));
  const std::vector<double> f = A.point_charge_rhs({3.0, 1.0, 2.0}, 1.0);
  GmresOptions opt;
  opt.restart = 10;
  opt.tolerance = 1e-8;
  opt.max_iterations = 500;
  std::vector<double> x_plain(A.cols(), 0.0);
  std::vector<double> x_pre(A.cols(), 0.0);
  const GmresResult plain = gmres(A, f, x_plain, opt);
  const GmresResult pre = gmres(A, f, x_pre, opt, jacobi_preconditioner(A.near_diagonal()));
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  // Same solution either way.
  EXPECT_LT(relative_error_2norm(x_plain, x_pre), 1e-5);
  // And no pathological slowdown from preconditioning.
  EXPECT_LE(pre.iterations, plain.iterations * 2);
}

TEST(BemOperator, StatsPopulatedAfterApply) {
  const TriangleMesh mesh = make_sphere(8, 14);
  const SingleLayerOperator A(mesh, accurate_options(4, 0.6));
  std::vector<double> x(A.cols(), 1.0), y(A.rows());
  A.apply(x, y);
  EXPECT_GT(A.last_stats().multipole_terms + A.last_stats().p2p_pairs, 0u);
  EXPECT_GT(A.last_stats().eval_seconds, 0.0);
  EXPECT_EQ(A.num_sources(), 6 * mesh.num_triangles());
}

}  // namespace
}  // namespace treecode
