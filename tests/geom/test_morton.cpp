#include <gtest/gtest.h>

#include <random>

#include "geom/morton.hpp"

namespace treecode {
namespace {

TEST(Morton, EncodeDecodeRoundTrip) {
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::uint32_t> u(0, (1u << kSfcBitsPerAxis) - 1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t x = u(rng);
    const std::uint32_t y = u(rng);
    const std::uint32_t z = u(rng);
    const GridCoord g = morton_decode(morton_encode(x, y, z));
    EXPECT_EQ(g, (GridCoord{x, y, z}));
  }
}

TEST(Morton, KnownSmallValues) {
  EXPECT_EQ(morton_encode(0, 0, 0), 0u);
  EXPECT_EQ(morton_encode(1, 0, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1, 0), 2u);
  EXPECT_EQ(morton_encode(0, 0, 1), 4u);
  EXPECT_EQ(morton_encode(1, 1, 1), 7u);
  EXPECT_EQ(morton_encode(2, 0, 0), 8u);
}

TEST(Morton, OrderRefinesOctants) {
  // All keys in the low octant (coords < 2^20) are below all keys with any
  // top bit set: Morton order respects octree hierarchy.
  const std::uint32_t half = 1u << (kSfcBitsPerAxis - 1);
  EXPECT_LT(morton_encode(half - 1, half - 1, half - 1), morton_encode(0, 0, half));
}

TEST(Quantize, MapsCornersAndCenter) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  const std::uint32_t last = (1u << kSfcBitsPerAxis) - 1;
  EXPECT_EQ(quantize({0, 0, 0}, box), (GridCoord{0, 0, 0}));
  EXPECT_EQ(quantize({1, 1, 1}, box), (GridCoord{last, last, last}));
  const GridCoord mid = quantize({0.5, 0.5, 0.5}, box);
  EXPECT_EQ(mid.x, 1u << (kSfcBitsPerAxis - 1));
}

TEST(Quantize, DegenerateBoxIsSafe) {
  Aabb box;
  box.expand({0.5, 0.5, 0.5});  // zero-extent box
  EXPECT_EQ(quantize({0.5, 0.5, 0.5}, box), (GridCoord{0, 0, 0}));
}

TEST(MortonKey, MonotoneAlongDiagonal) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  std::uint64_t prev = 0;
  for (int i = 1; i < 16; ++i) {
    const double t = i / 16.0;
    const std::uint64_t k = morton_key({t, t, t}, box);
    EXPECT_GT(k, prev);
    prev = k;
  }
}

}  // namespace
}  // namespace treecode
