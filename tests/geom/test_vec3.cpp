#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "geom/vec3.hpp"

namespace treecode {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, -5, 6};
  EXPECT_EQ(a + b, (Vec3{5, -3, 9}));
  EXPECT_EQ(a - b, (Vec3{-3, 7, -3}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3, DotCrossNorm) {
  const Vec3 a{1, 0, 0};
  const Vec3 b{0, 1, 0};
  EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
  EXPECT_EQ(cross(a, b), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
  EXPECT_DOUBLE_EQ(norm2(Vec3{3, 4, 0}), 25.0);
  EXPECT_DOUBLE_EQ(distance(Vec3{1, 1, 1}, Vec3{1, 1, 4}), 3.0);
}

TEST(Vec3, Normalized) {
  const Vec3 v = normalized({0, 0, 5});
  EXPECT_DOUBLE_EQ(v.z, 1.0);
  EXPECT_DOUBLE_EQ(norm(v), 1.0);
}

TEST(Vec3, MinMaxComponentwise) {
  const Vec3 a{1, 5, -2};
  const Vec3 b{3, 2, -7};
  EXPECT_EQ(min(a, b), (Vec3{1, 2, -7}));
  EXPECT_EQ(max(a, b), (Vec3{3, 5, -2}));
}

TEST(Vec3, IndexOperator) {
  const Vec3 a{7, 8, 9};
  EXPECT_DOUBLE_EQ(a[0], 7);
  EXPECT_DOUBLE_EQ(a[1], 8);
  EXPECT_DOUBLE_EQ(a[2], 9);
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3{1, 2, 3};
  EXPECT_EQ(os.str(), "(1, 2, 3)");
}

TEST(Spherical, RoundTripAxes) {
  // +z axis: theta = 0
  Spherical s = to_spherical({0, 0, 2});
  EXPECT_DOUBLE_EQ(s.r, 2.0);
  EXPECT_DOUBLE_EQ(s.theta, 0.0);
  // -z axis: theta = pi
  s = to_spherical({0, 0, -2});
  EXPECT_DOUBLE_EQ(s.theta, M_PI);
  // +x axis: theta = pi/2, phi = 0
  s = to_spherical({3, 0, 0});
  EXPECT_DOUBLE_EQ(s.theta, M_PI / 2);
  EXPECT_DOUBLE_EQ(s.phi, 0.0);
  // +y axis: phi = pi/2
  s = to_spherical({0, 3, 0});
  EXPECT_DOUBLE_EQ(s.phi, M_PI / 2);
}

TEST(Spherical, OriginIsAllZero) {
  const Spherical s = to_spherical({0, 0, 0});
  EXPECT_DOUBLE_EQ(s.r, 0.0);
  EXPECT_DOUBLE_EQ(s.theta, 0.0);
  EXPECT_DOUBLE_EQ(s.phi, 0.0);
}

TEST(Spherical, ReconstructsCartesian) {
  const Vec3 v{0.3, -1.2, 0.7};
  const Spherical s = to_spherical(v);
  EXPECT_NEAR(s.r * std::sin(s.theta) * std::cos(s.phi), v.x, 1e-14);
  EXPECT_NEAR(s.r * std::sin(s.theta) * std::sin(s.phi), v.y, 1e-14);
  EXPECT_NEAR(s.r * std::cos(s.theta), v.z, 1e-14);
}

}  // namespace
}  // namespace treecode
