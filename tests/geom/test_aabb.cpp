#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/aabb.hpp"

namespace treecode {
namespace {

TEST(Aabb, DefaultIsEmpty) {
  const Aabb b;
  EXPECT_TRUE(b.empty());
}

TEST(Aabb, ExpandPoints) {
  Aabb b;
  b.expand({1, 2, 3});
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.lo, (Vec3{1, 2, 3}));
  EXPECT_EQ(b.hi, (Vec3{1, 2, 3}));
  b.expand({-1, 5, 0});
  EXPECT_EQ(b.lo, (Vec3{-1, 2, 0}));
  EXPECT_EQ(b.hi, (Vec3{1, 5, 3}));
}

TEST(Aabb, CenterExtents) {
  Aabb b;
  b.expand({0, 0, 0});
  b.expand({2, 4, 6});
  EXPECT_EQ(b.center(), (Vec3{1, 2, 3}));
  EXPECT_EQ(b.extents(), (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(b.max_extent(), 6.0);
  EXPECT_DOUBLE_EQ(b.bounding_radius(), 0.5 * std::sqrt(4.0 + 16.0 + 36.0));
}

TEST(Aabb, Contains) {
  Aabb b;
  b.expand({0, 0, 0});
  b.expand({1, 1, 1});
  EXPECT_TRUE(b.contains({0.5, 0.5, 0.5}));
  EXPECT_TRUE(b.contains({0, 0, 0}));
  EXPECT_TRUE(b.contains({1, 1, 1}));
  EXPECT_FALSE(b.contains({1.001, 0.5, 0.5}));
}

TEST(Aabb, BoundingCubeIsCubicAndContains) {
  Aabb b;
  b.expand({0, 0, 0});
  b.expand({2, 4, 1});
  const Aabb cube = b.bounding_cube();
  const Vec3 e = cube.extents();
  EXPECT_DOUBLE_EQ(e.x, 4.0);
  EXPECT_DOUBLE_EQ(e.y, 4.0);
  EXPECT_DOUBLE_EQ(e.z, 4.0);
  EXPECT_EQ(cube.center(), b.center());
  EXPECT_TRUE(cube.contains(b.lo));
  EXPECT_TRUE(cube.contains(b.hi));
}

TEST(Aabb, MergeBox) {
  Aabb a;
  a.expand({0, 0, 0});
  Aabb b;
  b.expand({5, -2, 3});
  a.merge(b);
  EXPECT_EQ(a.lo, (Vec3{0, -2, 0}));
  EXPECT_EQ(a.hi, (Vec3{5, 0, 3}));
}

TEST(Aabb, BoundingBoxOfRange) {
  const std::vector<Vec3> pts{{0, 1, 2}, {3, -1, 0}, {1, 1, 5}};
  const Aabb b = bounding_box(pts.begin(), pts.end());
  EXPECT_EQ(b.lo, (Vec3{0, -1, 0}));
  EXPECT_EQ(b.hi, (Vec3{3, 1, 5}));
}

}  // namespace
}  // namespace treecode
