#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <set>

#include "geom/hilbert.hpp"

namespace treecode {
namespace {

TEST(Hilbert, EncodeDecodeRoundTrip) {
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<std::uint32_t> u(0, (1u << kSfcBitsPerAxis) - 1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t x = u(rng);
    const std::uint32_t y = u(rng);
    const std::uint32_t z = u(rng);
    const GridCoord g = hilbert_decode(hilbert_encode(x, y, z));
    EXPECT_EQ(g, (GridCoord{x, y, z})) << "x=" << x << " y=" << y << " z=" << z;
  }
}

// The defining property of the Hilbert curve: consecutive indices map to
// face-adjacent grid cells (Manhattan distance exactly 1).
TEST(Hilbert, ConsecutiveKeysAreGridNeighbors) {
  // Walk a contiguous stretch of the curve. The full 63-bit curve is huge;
  // adjacency is a local property, so a window plus random windows suffice.
  auto manhattan = [](const GridCoord& a, const GridCoord& b) {
    auto d = [](std::uint32_t p, std::uint32_t q) {
      return p > q ? p - q : q - p;
    };
    return d(a.x, b.x) + d(a.y, b.y) + d(a.z, b.z);
  };
  GridCoord prev = hilbert_decode(0);
  for (std::uint64_t k = 1; k < 4096; ++k) {
    const GridCoord cur = hilbert_decode(k);
    EXPECT_EQ(manhattan(prev, cur), 1u) << "at key " << k;
    prev = cur;
  }
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::uint64_t> u(0, (1ull << 62) - 2);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t k = u(rng);
    EXPECT_EQ(manhattan(hilbert_decode(k), hilbert_decode(k + 1)), 1u) << "at key " << k;
  }
}

TEST(Hilbert, BijectiveOnSmallGrid) {
  // Exhaustive over the first 8^4 = 4096 keys: all decoded cells distinct.
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    const GridCoord g = hilbert_decode(k);
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(g.x) << 42) | (static_cast<std::uint64_t>(g.y) << 21) | g.z;
    EXPECT_TRUE(seen.insert(packed).second) << "duplicate cell at key " << k;
    EXPECT_EQ(hilbert_encode(g.x, g.y, g.z), k);
  }
}

TEST(Hilbert, StartsAtOrigin) {
  EXPECT_EQ(hilbert_decode(0), (GridCoord{0, 0, 0}));
}

TEST(HilbertKey, ProximityBeatsMorton) {
  // Statistical locality check: for consecutive key pairs along the curve,
  // the max jump in space is 1 cell (already tested); here check that
  // points close in hilbert_key order tend to be spatially close, by
  // sampling a sorted sequence of random points.
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<std::pair<std::uint64_t, Vec3>> pts;
  for (int i = 0; i < 2000; ++i) {
    const Vec3 p{u(rng), u(rng), u(rng)};
    pts.emplace_back(hilbert_key(p, box), p);
  }
  std::sort(pts.begin(), pts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double total = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    total += distance(pts[i - 1].second, pts[i].second);
  }
  const double mean_step = total / static_cast<double>(pts.size() - 1);
  // Random order would give a mean step ~0.66 (mean distance between
  // uniform points in the unit cube); Hilbert-sorted should be far smaller.
  EXPECT_LT(mean_step, 0.2);
}

}  // namespace
}  // namespace treecode
