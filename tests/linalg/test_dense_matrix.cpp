#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "linalg/dense_matrix.hpp"

namespace treecode {
namespace {

TEST(DenseMatrix, Apply) {
  DenseMatrix A(2, 3);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(0, 2) = 3;
  A.at(1, 0) = 4;
  A.at(1, 1) = 5;
  A.at(1, 2) = 6;
  const std::vector<double> x{1, 1, 1};
  std::vector<double> y(2);
  A.apply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
}

TEST(DenseMatrix, ApplySizeMismatchThrows) {
  DenseMatrix A(2, 2);
  std::vector<double> x(3), y(2);
  EXPECT_THROW(A.apply(x, y), std::invalid_argument);
}

TEST(DenseMatrix, SolveIdentity) {
  DenseMatrix A(3, 3);
  for (int i = 0; i < 3; ++i) A.at(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) = 1.0;
  const std::vector<double> b{1, 2, 3};
  const std::vector<double> x = A.solve(b);
  EXPECT_EQ(x, b);
}

TEST(DenseMatrix, SolveRandomSystemRoundTrip) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  const std::size_t n = 25;
  DenseMatrix A(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) A.at(i, j) = u(rng);
    A.at(i, i) += 5.0;  // diagonally dominant, well-conditioned
  }
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = u(rng);
  std::vector<double> b(n);
  A.apply(x_true, b);
  const std::vector<double> x = A.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(DenseMatrix, SolveNeedsPivoting) {
  // Zero top-left pivot: fails without partial pivoting.
  DenseMatrix A(2, 2);
  A.at(0, 0) = 0;
  A.at(0, 1) = 1;
  A.at(1, 0) = 1;
  A.at(1, 1) = 0;
  const std::vector<double> b{3.0, 7.0};
  const std::vector<double> x = A.solve(b);
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(DenseMatrix, SolveSingularThrows) {
  DenseMatrix A(2, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(1, 0) = 2;
  A.at(1, 1) = 4;
  const std::vector<double> b{1, 2};
  EXPECT_THROW(A.solve(b), std::runtime_error);
}

TEST(DenseMatrix, SolveNonSquareThrows) {
  DenseMatrix A(2, 3);
  const std::vector<double> b{1, 2};
  EXPECT_THROW(A.solve(b), std::runtime_error);
}

TEST(DenseMatrix, Diagonal) {
  DenseMatrix A(3, 3);
  A.at(0, 0) = 1;
  A.at(1, 1) = 2;
  A.at(2, 2) = 3;
  EXPECT_EQ(A.diagonal(), (std::vector<double>{1, 2, 3}));
}

TEST(FunctionOperator, WrapsCallable) {
  const FunctionOperator op(2, 2, [](std::span<const double> x, std::span<double> y) {
    y[0] = 2 * x[0];
    y[1] = 3 * x[1];
  });
  const std::vector<double> x{1, 1};
  std::vector<double> y(2);
  op.apply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2);
  EXPECT_DOUBLE_EQ(y[1], 3);
}

}  // namespace
}  // namespace treecode
