#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "linalg/dense_matrix.hpp"
#include "linalg/gmres.hpp"

namespace treecode {
namespace {

DenseMatrix random_dd_matrix(std::size_t n, std::uint64_t seed, double dominance = 4.0) {
  // Genuinely diagonally dominant: off-diagonal row sums stay below 1.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  DenseMatrix A(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) A.at(i, j) = u(rng) / static_cast<double>(n);
    A.at(i, i) += dominance;
  }
  return A;
}

TEST(Gmres, SolvesIdentityInOneIteration) {
  DenseMatrix A(4, 4);
  for (std::size_t i = 0; i < 4; ++i) A.at(i, i) = 1.0;
  const std::vector<double> b{1, 2, 3, 4};
  std::vector<double> x(4, 0.0);
  const GmresResult r = gmres(A, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x[i], b[i], 1e-10);
}

TEST(Gmres, SolvesRandomSystemToTolerance) {
  const std::size_t n = 60;
  const DenseMatrix A = random_dd_matrix(n, 5);
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = u(rng);
  std::vector<double> b(n);
  A.apply(x_true, b);
  std::vector<double> x(n, 0.0);
  GmresOptions opt;
  opt.tolerance = 1e-10;
  opt.max_iterations = 500;
  const GmresResult r = gmres(A, b, x, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.relative_residual, 1e-10);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(Gmres, RestartTenMatchesPaperSetup) {
  // Restarted GMRES(10) must still converge on a well-conditioned system,
  // just with more total iterations than full GMRES.
  const std::size_t n = 80;
  const DenseMatrix A = random_dd_matrix(n, 7);
  std::vector<double> b(n, 1.0);
  std::vector<double> x_full(n, 0.0), x_restart(n, 0.0);
  GmresOptions full;
  full.restart = static_cast<int>(n);
  full.tolerance = 1e-9;
  GmresOptions rst;
  rst.restart = 10;
  rst.tolerance = 1e-9;
  rst.max_iterations = 2000;
  const GmresResult rf = gmres(A, b, x_full, full);
  const GmresResult rr = gmres(A, b, x_restart, rst);
  EXPECT_TRUE(rf.converged);
  EXPECT_TRUE(rr.converged);
  EXPECT_GE(rr.iterations, rf.iterations);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_restart[i], x_full[i], 1e-6);
}

TEST(Gmres, ZeroRhsGivesZeroSolution) {
  const DenseMatrix A = random_dd_matrix(5, 8);
  const std::vector<double> b(5, 0.0);
  std::vector<double> x(5, 3.0);  // nonzero initial guess
  const GmresResult r = gmres(A, b, x);
  EXPECT_TRUE(r.converged);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Gmres, WarmStartReducesIterations) {
  const std::size_t n = 50;
  const DenseMatrix A = random_dd_matrix(n, 9);
  std::vector<double> b(n, 1.0);
  std::vector<double> x_cold(n, 0.0);
  GmresOptions opt;
  opt.tolerance = 1e-10;
  const GmresResult cold = gmres(A, b, x_cold, opt);
  std::vector<double> x_warm = x_cold;  // start at the solution
  const GmresResult warm = gmres(A, b, x_warm, opt);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 1);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(Gmres, JacobiPreconditionerHelpsScaledSystem) {
  // Badly *column*-scaled system: right Jacobi preconditioning rescales the
  // columns and restores fast convergence.
  const std::size_t n = 40;
  std::mt19937_64 rng(10);
  std::uniform_real_distribution<double> u(-0.2, 0.2);
  DenseMatrix A(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double scale = std::pow(10.0, static_cast<double>(j % 6));
      A.at(i, j) = u(rng) * scale / static_cast<double>(n);
      if (i == j) A.at(i, j) = scale;
    }
  }
  std::vector<double> b(n, 1.0);
  GmresOptions opt;
  opt.tolerance = 1e-8;
  opt.max_iterations = 400;
  std::vector<double> x_plain(n, 0.0);
  const GmresResult plain = gmres(A, b, x_plain, opt);
  std::vector<double> x_pre(n, 0.0);
  const GmresResult pre = gmres(A, b, x_pre, opt, jacobi_preconditioner(A.diagonal()));
  EXPECT_TRUE(pre.converged);
  EXPECT_LE(pre.iterations, plain.iterations);
}

TEST(Gmres, ReportsNonConvergence) {
  const std::size_t n = 30;
  const DenseMatrix A = random_dd_matrix(n, 11, 0.0);  // not dominant: harder
  std::vector<double> b(n, 1.0);
  std::vector<double> x(n, 0.0);
  GmresOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 2;  // starve it
  const GmresResult r = gmres(A, b, x, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.relative_residual, 1e-14);
  EXPECT_EQ(r.failure_reason, GmresFailure::kMaxIterations);
}

TEST(Gmres, RejectsNonFiniteRightHandSide) {
  const DenseMatrix A = random_dd_matrix(6, 13);
  std::vector<double> b(6, 1.0);
  b[3] = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x(6, 0.0);
  const GmresResult r = gmres(A, b, x);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure_reason, GmresFailure::kNonFiniteInput);
  EXPECT_EQ(r.iterations, 0);
  // The initial guess must not be clobbered by a poisoned solve.
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Gmres, RejectsNonFiniteInitialGuess) {
  const DenseMatrix A = random_dd_matrix(6, 14);
  const std::vector<double> b(6, 1.0);
  std::vector<double> x(6, 0.0);
  x[0] = std::numeric_limits<double>::infinity();
  const GmresResult r = gmres(A, b, x);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure_reason, GmresFailure::kNonFiniteInput);
}

namespace {
/// Well-behaved operator that starts emitting NaN after a set number of
/// applications — models a treecode matvec hitting a degenerate panel.
class PoisonedOperator final : public LinearOperator {
 public:
  PoisonedOperator(const DenseMatrix& inner, int poison_after)
      : inner_(inner), poison_after_(poison_after) {}
  [[nodiscard]] std::size_t rows() const override { return inner_.rows(); }
  [[nodiscard]] std::size_t cols() const override { return inner_.cols(); }
  void apply(std::span<const double> x, std::span<double> y) const override {
    inner_.apply(x, y);
    if (++applications_ > poison_after_) y[0] = std::numeric_limits<double>::quiet_NaN();
  }

 private:
  const DenseMatrix& inner_;
  int poison_after_;
  mutable int applications_ = 0;
};
}  // namespace

TEST(Gmres, DetectsNonFiniteOperator) {
  const std::size_t n = 20;
  const DenseMatrix inner = random_dd_matrix(n, 15);
  const PoisonedOperator A(inner, 3);
  const std::vector<double> b(n, 1.0);
  std::vector<double> x(n, 0.0);
  GmresOptions opt;
  opt.tolerance = 1e-12;
  const GmresResult r = gmres(A, b, x, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure_reason, GmresFailure::kNonFiniteOperator);
  // The reported solution is the last completed update: still finite.
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Gmres, DetectsStagnation) {
  // GMRES(1) on a plane rotation makes zero progress per cycle: the
  // one-dimensional Krylov subspace is orthogonal to the residual update.
  DenseMatrix A(2, 2);
  A.at(0, 0) = 0.0;
  A.at(0, 1) = -1.0;
  A.at(1, 0) = 1.0;
  A.at(1, 1) = 0.0;
  const std::vector<double> b{1.0, 0.0};
  std::vector<double> x(2, 0.0);
  GmresOptions opt;
  opt.restart = 1;
  opt.max_iterations = 500;
  opt.stagnation_window = 10;
  const GmresResult r = gmres(A, b, x, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure_reason, GmresFailure::kStagnation);
  EXPECT_LT(r.iterations, opt.max_iterations);  // bailed out early
}

TEST(Gmres, StagnationGuardCanBeDisabled) {
  DenseMatrix A(2, 2);
  A.at(0, 1) = -1.0;
  A.at(1, 0) = 1.0;
  const std::vector<double> b{1.0, 0.0};
  std::vector<double> x(2, 0.0);
  GmresOptions opt;
  opt.restart = 1;
  opt.max_iterations = 200;
  opt.stagnation_window = 0;  // run to the iteration cap instead
  const GmresResult r = gmres(A, b, x, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure_reason, GmresFailure::kMaxIterations);
  EXPECT_EQ(r.iterations, opt.max_iterations);
}

TEST(Gmres, HappyBreakdownOnSingularSystemSolvesLeastSquares) {
  // A = diag(1, 0) with b outside range(A): the Krylov space is exhausted
  // after two steps (exact breakdown) while the residual floor stays at
  // ||(0,1)||. The solver must flag the breakdown, keep the subspace
  // least-squares solution, and not divide by the stale basis vector.
  DenseMatrix A(2, 2);
  A.at(0, 0) = 1.0;
  const std::vector<double> b{1.0, 1.0};
  std::vector<double> x(2, 0.0);
  GmresOptions opt;
  opt.tolerance = 1e-12;
  opt.max_iterations = 50;
  const GmresResult r = gmres(A, b, x, opt);
  EXPECT_TRUE(r.happy_breakdown);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure_reason, GmresFailure::kBreakdown);
  EXPECT_LE(r.iterations, 2);  // no futile restarts on the invariant subspace
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(x[0], 1.0, 1e-10);  // the consistent component is solved exactly
  EXPECT_NEAR(r.relative_residual, 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(Gmres, HappyBreakdownBeforeRestartStillConverges) {
  // Minimal polynomial of degree 2 and a huge restart: the Arnoldi process
  // breaks down long before the cycle ends, and the solve must finish with
  // the exact answer rather than stale basis vectors.
  const std::size_t n = 16;
  DenseMatrix A(n, n);
  for (std::size_t i = 0; i < n; ++i) A.at(i, i) = (i < n / 2) ? 2.0 : 5.0;
  std::vector<double> x_true(n, 1.0);
  std::vector<double> b(n);
  A.apply(x_true, b);
  std::vector<double> x(n, 0.0);
  GmresOptions opt;
  opt.restart = static_cast<int>(n);
  opt.tolerance = 1e-12;
  const GmresResult r = gmres(A, b, x, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.failure_reason, GmresFailure::kNone);
  EXPECT_LE(r.iterations, 3);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], 1.0, 1e-9);
}

TEST(Gmres, FailureReasonToStringIsStable) {
  EXPECT_STREQ(to_string(GmresFailure::kNone), "none");
  EXPECT_STREQ(to_string(GmresFailure::kNonFiniteInput), "non-finite input");
  EXPECT_STREQ(to_string(GmresFailure::kNonFiniteOperator), "non-finite operator output");
  EXPECT_STREQ(to_string(GmresFailure::kStagnation), "stagnation");
  EXPECT_STREQ(to_string(GmresFailure::kBreakdown), "breakdown on singular system");
  EXPECT_STREQ(to_string(GmresFailure::kMaxIterations), "max iterations");
}

TEST(Gmres, ResidualHistoryIsMonotoneWithinCycle) {
  const std::size_t n = 50;
  const DenseMatrix A = random_dd_matrix(n, 12);
  std::vector<double> b(n, 1.0);
  std::vector<double> x(n, 0.0);
  GmresOptions opt;
  opt.restart = 50;
  opt.tolerance = 1e-12;
  const GmresResult r = gmres(A, b, x, opt);
  ASSERT_GE(r.residual_history.size(), 2u);
  for (std::size_t i = 1; i < r.residual_history.size(); ++i) {
    EXPECT_LE(r.residual_history[i], r.residual_history[i - 1] * (1 + 1e-12));
  }
}

TEST(Gmres, NonSquareOperatorThrows) {
  DenseMatrix A(3, 2);
  std::vector<double> b(3), x(2);
  EXPECT_THROW(gmres(A, b, x), std::invalid_argument);
}

}  // namespace
}  // namespace treecode
