// Request-trace unit tests: deterministic id minting for a fixed seed,
// tail-based keep rules and their reason precedence, identity-hashed
// sampling (schedule-independent), forced-keep linkage from a retained
// member to its batch trace, ring wraparound (newest spans win), retained
// FIFO eviction, and the JSONL / Chrome export shapes. Concurrent
// record/finish stress lives in tests/parallel/test_stress.cpp (TSan).
// With -DTREECODE_TRACING=OFF every check degrades to the no-op contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "obs/spans.hpp"

namespace treecode {
namespace {

namespace rt = obs::reqtrace;

bool tracing_compiled_in() {
#if defined(TREECODE_TRACING_ENABLED)
  return true;
#else
  return false;
#endif
}

class ReqTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rt::reset();
    obs::registry().reset_values();
  }
  void TearDown() override {
    rt::reset();
    obs::registry().reset_values();
  }

  static rt::SamplerConfig keep_nothing() {
    rt::SamplerConfig c;
    c.seed = 7;
    c.sample_rate = 0.0;
    return c;
  }

  static std::vector<std::string> lines_of(const std::string& text) {
    std::vector<std::string> lines;
    std::string::size_type pos = 0;
    while (pos < text.size()) {
      const auto nl = text.find('\n', pos);
      lines.push_back(text.substr(pos, nl - pos));
      if (nl == std::string::npos) break;
      pos = nl + 1;
    }
    return lines;
  }
};

// enable() under `config`, skipping the test when tracing is compiled out
// (the OFF stubs keep everything a no-op, which DisabledCallsAreInert
// covers). Must be a macro: GTEST_SKIP() returns from the *enclosing*
// function, so it only skips when expanded in the test body itself.
#define ENABLE_OR_SKIP(config)                                           \
  do {                                                                   \
    rt::enable(config);                                                  \
    if (!rt::enabled()) {                                                \
      ASSERT_FALSE(tracing_compiled_in());                               \
      GTEST_SKIP() << "tracing compiled out (TREECODE_TRACING=OFF)";     \
    }                                                                    \
  } while (0)

TEST_F(ReqTraceTest, HexRenderingsAreStable) {
  EXPECT_EQ(rt::trace_id_hex(0, 0), std::string(32, '0'));
  EXPECT_EQ(rt::trace_id_hex(0x0123456789abcdefULL, 0xfedcba9876543210ULL),
            "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(rt::span_id_hex(0xabcULL), "0000000000000abc");
  EXPECT_EQ(rt::span_kind_name(rt::SpanKind::kRequest), std::string("request"));
  EXPECT_EQ(rt::span_kind_name(rt::SpanKind::kQueue), std::string("queue"));
  EXPECT_EQ(rt::span_kind_name(rt::SpanKind::kBatch), std::string("batch"));
  EXPECT_EQ(rt::span_kind_name(rt::SpanKind::kPhase), std::string("phase"));
}

TEST_F(ReqTraceTest, DisabledCallsAreInert) {
  EXPECT_FALSE(rt::enabled());
  const rt::TraceContext ctx = rt::mint_request();
  EXPECT_FALSE(ctx.valid());
  rt::record_span(ctx, obs::span::kServiceRequest, rt::SpanKind::kRequest, 0, 1);
  rt::finish_request(ctx, rt::Verdict{.ok = false});
  EXPECT_TRUE(rt::retained().empty());
  EXPECT_TRUE(rt::jsonl().empty());
}

TEST_F(ReqTraceTest, MintedIdsAreDeterministicForAFixedSeed) {
  ENABLE_OR_SKIP(keep_nothing());
  std::vector<rt::TraceContext> first;
  for (int i = 0; i < 4; ++i) first.push_back(rt::mint_request());
  rt::reset();
  rt::enable(keep_nothing());
  for (int i = 0; i < 4; ++i) {
    const rt::TraceContext again = rt::mint_request();
    EXPECT_EQ(again.trace_hi, first[i].trace_hi) << i;
    EXPECT_EQ(again.trace_lo, first[i].trace_lo) << i;
    EXPECT_EQ(again.span_id, first[i].span_id) << i;
  }
  // A different seed produces a different id stream.
  rt::reset();
  rt::SamplerConfig other = keep_nothing();
  other.seed = 8;
  rt::enable(other);
  EXPECT_NE(rt::mint_request().trace_lo, first[0].trace_lo);
}

TEST_F(ReqTraceTest, ChildSharesTraceAndLinksParentSpan) {
  ENABLE_OR_SKIP(keep_nothing());
  const rt::TraceContext root = rt::mint_request();
  ASSERT_TRUE(root.valid());
  EXPECT_EQ(root.parent_span_id, 0u);
  const rt::TraceContext child = rt::child_of(root);
  EXPECT_EQ(child.trace_hi, root.trace_hi);
  EXPECT_EQ(child.trace_lo, root.trace_lo);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
  EXPECT_FALSE(rt::child_of(rt::TraceContext{}).valid());
}

TEST_F(ReqTraceTest, TailKeepRulesAndReasonPrecedence) {
  ENABLE_OR_SKIP(keep_nothing());
  struct Case {
    rt::Verdict verdict;
    const char* reason;  // nullptr = dropped
  };
  const std::vector<Case> cases = {
      {rt::Verdict{}, nullptr},  // healthy at sample_rate 0: dropped
      {rt::Verdict{.ok = false, .rung = 2, .deadline_missed = true}, "error"},
      {rt::Verdict{.rung = 2, .deadline_missed = true}, "deadline"},
      {rt::Verdict{.rung = 2, .slo_breach = true}, "degraded"},
      {rt::Verdict{.slo_breach = true}, "slo"},
  };
  for (const Case& c : cases) {
    const rt::TraceContext ctx = rt::mint_request();
    rt::record_span(ctx, obs::span::kServiceRequest, rt::SpanKind::kRequest, 0, 1);
    rt::finish_request(ctx, c.verdict);
    EXPECT_EQ(rt::is_retained(ctx), c.reason != nullptr);
  }
  const std::vector<rt::RetainedTrace> retained = rt::retained();
  ASSERT_EQ(retained.size(), 4u);
  EXPECT_STREQ(retained[0].reason, "error");
  EXPECT_STREQ(retained[1].reason, "deadline");
  EXPECT_STREQ(retained[2].reason, "degraded");
  EXPECT_STREQ(retained[3].reason, "slo");
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  EXPECT_EQ(snapshot.counters.at(obs::metric::kTraceRequests), 5u);
  EXPECT_EQ(snapshot.counters.at(obs::metric::kTraceRetained), 4u);
  EXPECT_EQ(snapshot.counters.at(obs::metric::kTraceSampledOut), 1u);
}

TEST_F(ReqTraceTest, SlowRuleKeepsOverThresholdRequests) {
  rt::SamplerConfig config = keep_nothing();
  config.keep_slower_than_seconds = 0.5;
  ENABLE_OR_SKIP(config);
  const rt::TraceContext fast = rt::mint_request();
  rt::finish_request(fast, rt::Verdict{.wall_seconds = 0.1});
  EXPECT_FALSE(rt::is_retained(fast));
  const rt::TraceContext slow = rt::mint_request();
  rt::finish_request(slow, rt::Verdict{.wall_seconds = 0.9});
  ASSERT_TRUE(rt::is_retained(slow));
  EXPECT_STREQ(rt::retained().back().reason, "slow");
}

TEST_F(ReqTraceTest, SampleRateOneKeepsHealthyTracesAsSampled) {
  rt::SamplerConfig config = keep_nothing();
  config.sample_rate = 1.0;
  ENABLE_OR_SKIP(config);
  const rt::TraceContext ctx = rt::mint_request();
  rt::finish_request(ctx, rt::Verdict{});
  ASSERT_TRUE(rt::is_retained(ctx));
  EXPECT_STREQ(rt::retained().back().reason, "sampled");
}

TEST_F(ReqTraceTest, SamplingCoinDependsOnIdentityNotCompletionOrder) {
  rt::SamplerConfig config = keep_nothing();
  config.sample_rate = 0.5;
  ENABLE_OR_SKIP(config);
  std::vector<rt::TraceContext> contexts;
  for (int i = 0; i < 32; ++i) contexts.push_back(rt::mint_request());
  std::set<std::pair<std::uint64_t, std::uint64_t>> forward;
  for (const rt::TraceContext& ctx : contexts) {
    rt::finish_request(ctx, rt::Verdict{});
    if (rt::is_retained(ctx)) forward.insert({ctx.trace_hi, ctx.trace_lo});
  }
  // A 0.5 coin over 32 ids keeps some and drops some with overwhelming
  // probability; both sides being exercised is what makes the order check
  // meaningful.
  ASSERT_FALSE(forward.empty());
  ASSERT_LT(forward.size(), contexts.size());

  // Same ids (same seed, fresh stream), reverse completion order: the keep
  // set must be identical because the coin hashes the trace id alone.
  rt::reset();
  rt::enable(config);
  contexts.clear();
  for (int i = 0; i < 32; ++i) contexts.push_back(rt::mint_request());
  std::set<std::pair<std::uint64_t, std::uint64_t>> backward;
  for (auto it = contexts.rbegin(); it != contexts.rend(); ++it) {
    rt::finish_request(*it, rt::Verdict{});
    if (rt::is_retained(*it)) backward.insert({it->trace_hi, it->trace_lo});
  }
  EXPECT_EQ(forward, backward);
}

TEST_F(ReqTraceTest, RetainedMemberForceKeepsItsBatchTrace) {
  ENABLE_OR_SKIP(keep_nothing());
  const rt::TraceContext member = rt::mint_request();
  const rt::TraceContext batch = rt::mint_request();
  rt::finish_request(member, rt::Verdict{.ok = false}, &batch);
  // The batch finishes healthy later; the member's retention already
  // demanded it be kept so the flow link resolves in exports.
  rt::finish_request(batch, rt::Verdict{});
  ASSERT_TRUE(rt::is_retained(batch));
  EXPECT_STREQ(rt::retained().back().reason, "forced");
  EXPECT_EQ(obs::registry().snapshot().counters.at(obs::metric::kTraceForcedKeeps),
            1u);
}

TEST_F(ReqTraceTest, DroppedMemberDoesNotForceItsBatch) {
  ENABLE_OR_SKIP(keep_nothing());
  const rt::TraceContext member = rt::mint_request();
  const rt::TraceContext batch = rt::mint_request();
  rt::finish_request(member, rt::Verdict{}, &batch);  // healthy: sampled out
  rt::finish_request(batch, rt::Verdict{});
  EXPECT_FALSE(rt::is_retained(member));
  EXPECT_FALSE(rt::is_retained(batch));
}

TEST_F(ReqTraceTest, NoteChildVerdictForcesEnclosingTrace) {
  ENABLE_OR_SKIP(keep_nothing());
  const rt::TraceContext root = rt::mint_request();
  const rt::TraceContext child = rt::child_of(root);
  rt::note_child_verdict(child, rt::Verdict{.ok = false});
  rt::finish_request(root, rt::Verdict{});  // root itself looks healthy
  ASSERT_TRUE(rt::is_retained(root));
  EXPECT_STREQ(rt::retained().back().reason, "forced");
  // A healthy child leaves no demand behind.
  const rt::TraceContext root2 = rt::mint_request();
  rt::note_child_verdict(rt::child_of(root2), rt::Verdict{});
  rt::finish_request(root2, rt::Verdict{});
  EXPECT_FALSE(rt::is_retained(root2));
}

TEST_F(ReqTraceTest, RingWraparoundKeepsNewestSpans) {
  rt::SamplerConfig config = keep_nothing();
  config.sample_rate = 1.0;
  ENABLE_OR_SKIP(config);
  const rt::TraceContext root = rt::mint_request();
  // Overfill this thread's 512-slot ring; the oldest 100 spans must be
  // overwritten, the newest 512 all readable.
  const std::int64_t total = 512 + 100;
  for (std::int64_t i = 0; i < total; ++i) {
    rt::record_span(rt::child_of(root), obs::span::kEngineReplay,
                    rt::SpanKind::kPhase, i, i + 1);
  }
  rt::finish_request(root, rt::Verdict{});
  const std::vector<rt::RetainedTrace> retained = rt::retained();
  ASSERT_EQ(retained.size(), 1u);
  ASSERT_EQ(retained[0].spans.size(), 512u);
  // Spans come back sorted by start time; the survivors are exactly the
  // newest 512 writes.
  EXPECT_EQ(retained[0].spans.front().start_us, total - 512);
  EXPECT_EQ(retained[0].spans.back().start_us, total - 1);
}

TEST_F(ReqTraceTest, RetainedSetEvictsOldestBeyondCapacity) {
  rt::SamplerConfig config = keep_nothing();
  config.retain_capacity = 2;
  ENABLE_OR_SKIP(config);
  std::vector<rt::TraceContext> contexts;
  for (int i = 0; i < 3; ++i) {
    contexts.push_back(rt::mint_request());
    rt::finish_request(contexts.back(), rt::Verdict{.ok = false});
  }
  EXPECT_FALSE(rt::is_retained(contexts[0]));
  EXPECT_TRUE(rt::is_retained(contexts[1]));
  EXPECT_TRUE(rt::is_retained(contexts[2]));
  EXPECT_EQ(rt::retained().size(), 2u);
}

TEST_F(ReqTraceTest, JsonlExportShapeAndTruncation) {
  ENABLE_OR_SKIP(keep_nothing());
  const rt::TraceContext root = rt::mint_request();
  rt::record_span(root, obs::span::kServiceRequest, rt::SpanKind::kRequest, 0, 10);
  rt::record_span(rt::child_of(root), obs::span::kServiceQueueWait,
                  rt::SpanKind::kQueue, 1, 4);
  rt::finish_request(root, rt::Verdict{.ok = false});
  const rt::TraceContext second = rt::mint_request();
  rt::record_span(second, obs::span::kServiceRequest, rt::SpanKind::kRequest, 0, 2);
  rt::finish_request(second, rt::Verdict{.ok = false});

  const std::vector<std::string> lines = lines_of(rt::jsonl());
  ASSERT_EQ(lines.size(), 2u);
  const obs::Json doc = obs::Json::parse(lines[0]);
  EXPECT_EQ(doc.at("schema").as_string(), "treecode-trace/v1");
  EXPECT_EQ(doc.at("trace_id").as_string(),
            rt::trace_id_hex(root.trace_hi, root.trace_lo));
  EXPECT_EQ(doc.at("reason").as_string(), "error");
  ASSERT_EQ(doc.at("spans").size(), 2u);
  const obs::Json& root_span = doc.at("spans").at(0);
  EXPECT_EQ(root_span.at("name").as_string(), "service.request");
  EXPECT_EQ(root_span.at("kind").as_string(), "request");
  EXPECT_EQ(root_span.at("parent_span_id").as_string(), std::string(16, '0'));
  const obs::Json& queue_span = doc.at("spans").at(1);
  EXPECT_EQ(queue_span.at("kind").as_string(), "queue");
  EXPECT_EQ(queue_span.at("parent_span_id").as_string(),
            root_span.at("span_id").as_string());

  // max_traces keeps the newest lines.
  const std::vector<std::string> tail = lines_of(rt::jsonl(1));
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(obs::Json::parse(tail[0]).at("trace_id").as_string(),
            rt::trace_id_hex(second.trace_hi, second.trace_lo));
}

TEST_F(ReqTraceTest, ChromeExportCarriesSlicesAndFlowEvents) {
  ENABLE_OR_SKIP(keep_nothing());
  const rt::TraceContext member = rt::mint_request();
  rt::record_span(member, obs::span::kServiceRequest, rt::SpanKind::kRequest, 0, 20);
  const rt::TraceContext batch = rt::mint_request();
  const std::uint64_t flow[] = {member.span_id};
  rt::record_span(batch, obs::span::kServiceBatch, rt::SpanKind::kBatch, 5, 15,
                  flow);
  rt::finish_request(member, rt::Verdict{.ok = false}, &batch);
  rt::finish_request(batch, rt::Verdict{});

  const obs::Json events = obs::Json::parse(rt::chrome_json());
  bool saw_slice = false;
  bool saw_flow_start = false;
  bool saw_flow_end = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Json& e = events.at(i);
    const std::string ph = e.at("ph").as_string();
    if (ph == "X" && e.at("name").as_string() == "service.batch") saw_slice = true;
    if (ph == "s" && e.at("id").as_string() == rt::span_id_hex(member.span_id)) {
      saw_flow_start = true;
    }
    if (ph == "f" && e.at("id").as_string() == rt::span_id_hex(member.span_id)) {
      saw_flow_end = true;
    }
  }
  EXPECT_TRUE(saw_slice);
  EXPECT_TRUE(saw_flow_start);
  EXPECT_TRUE(saw_flow_end);
}

TEST_F(ReqTraceTest, RequestScopeMintsRootAndChildAndDefaultFinishes) {
  rt::SamplerConfig config = keep_nothing();
  config.sample_rate = 1.0;
  ENABLE_OR_SKIP(config);
  rt::TraceContext root_ctx;
  {
    rt::RequestScope scope(obs::span::kServiceRequest);
    ASSERT_TRUE(scope.root());
    root_ctx = scope.context();
    EXPECT_EQ(rt::current().span_id, root_ctx.span_id);
    {
      // A nested scope inside the installed context becomes a child span.
      rt::RequestScope inner(obs::span::kReqEngineEvaluatePlan);
      EXPECT_FALSE(inner.root());
      EXPECT_EQ(inner.context().trace_lo, root_ctx.trace_lo);
      inner.finish(rt::Verdict{});
    }
    // No explicit finish: the destructor default-finishes the root.
  }
  EXPECT_FALSE(rt::current().valid());
  EXPECT_TRUE(rt::is_retained(root_ctx));

  // release() hands the tail decision to the caller: nothing is recorded or
  // decided by the destructor afterwards.
  rt::TraceContext released;
  {
    rt::RequestScope scope(obs::span::kServiceRequest);
    released = scope.release();
  }
  EXPECT_FALSE(rt::is_retained(released));
}

TEST_F(ReqTraceTest, WriteJsonlRoundTripsThroughAFile) {
  ENABLE_OR_SKIP(keep_nothing());
  const rt::TraceContext ctx = rt::mint_request();
  rt::record_span(ctx, obs::span::kServiceRequest, rt::SpanKind::kRequest, 0, 5);
  rt::finish_request(ctx, rt::Verdict{.ok = false});
  const std::string path = ::testing::TempDir() + "/reqtrace_export.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(rt::write_jsonl(path));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(obs::Json::parse(line).at("schema").as_string(), "treecode-trace/v1");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace treecode
