// SLO watchdog unit tests: each rule kind's measurement, breach side
// effects (slo.breaches counter, warning, flight-recorder arming), absent
// metrics reported unevaluated, the default engine rule set, and the
// status_json shape.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/slo.hpp"

namespace treecode {
namespace {

namespace slo = obs::slo;

class SloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::registry().reset_values();
    obs::recorder::reset();
    obs::drain_warnings();
  }
  void TearDown() override {
    obs::registry().reset_values();
    obs::recorder::reset();
    obs::drain_warnings();
  }
};

slo::Rule ratio_rule(double threshold) {
  slo::Rule r;
  r.name = "error-rate";
  r.kind = slo::RuleKind::kCounterRatio;
  r.metric = "engine.errors";
  r.denominator = "telemetry.requests";
  r.threshold = threshold;
  return r;
}

TEST_F(SloTest, CounterRatioMeasuresAndBreaches) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["engine.errors"] = 5;
  snapshot.counters["telemetry.requests"] = 100;
  slo::Watchdog watchdog;
  watchdog.add_rule(ratio_rule(0.01));
  const std::vector<slo::Status> statuses = watchdog.check(snapshot);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].evaluated);
  EXPECT_DOUBLE_EQ(statuses[0].measured, 0.05);
  EXPECT_TRUE(statuses[0].breached);
  EXPECT_EQ(watchdog.breaches(), 1u);
}

TEST_F(SloTest, CounterRatioZeroDenominatorIsZero) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["engine.errors"] = 5;
  snapshot.counters["telemetry.requests"] = 0;
  slo::Watchdog watchdog;
  watchdog.add_rule(ratio_rule(0.01));
  const std::vector<slo::Status> statuses = watchdog.check(snapshot);
  EXPECT_DOUBLE_EQ(statuses[0].measured, 0.0);
  EXPECT_FALSE(statuses[0].breached);
}

TEST_F(SloTest, MissingMetricIsUnevaluatedNotBreached) {
  slo::Watchdog watchdog;
  watchdog.add_rule(ratio_rule(0.01));
  slo::Rule q;
  q.name = "latency";
  q.kind = slo::RuleKind::kHistogramQuantile;
  q.metric = "telemetry.request_seconds";
  q.threshold = 1.0;
  watchdog.add_rule(std::move(q));
  const std::vector<slo::Status> statuses =
      watchdog.check(obs::MetricsSnapshot{});
  ASSERT_EQ(statuses.size(), 2u);
  for (const slo::Status& s : statuses) {
    EXPECT_FALSE(s.evaluated);
    EXPECT_FALSE(s.breached);
  }
  EXPECT_EQ(watchdog.breaches(), 0u);
}

TEST_F(SloTest, HistogramQuantileRule) {
  obs::MetricsSnapshot snapshot;
  obs::HistogramSnapshot h;
  h.bounds = {0.1, 1.0};
  h.counts = {99, 1, 0};
  h.total = 100;
  h.sum = 5.0;
  snapshot.histograms["telemetry.request_seconds"] = h;
  slo::Rule r;
  r.name = "p99";
  r.kind = slo::RuleKind::kHistogramQuantile;
  r.metric = "telemetry.request_seconds";
  r.quantile = 0.5;
  r.threshold = 0.01;  // p50 ~= 0.05 > 0.01 -> breach
  slo::Watchdog watchdog;
  watchdog.add_rule(std::move(r));
  const std::vector<slo::Status> statuses = watchdog.check(snapshot);
  EXPECT_TRUE(statuses[0].evaluated);
  EXPECT_GT(statuses[0].measured, 0.01);
  EXPECT_TRUE(statuses[0].breached);
}

TEST_F(SloTest, GaugeValueAndGaugeMaxRules) {
  obs::MetricsSnapshot snapshot;
  snapshot.gauges["audit.max_tightness"] = 0.4;
  snapshot.gauge_maxima["audit.max_tightness"] = 1.5;
  slo::Rule value;
  value.name = "gauge-now";
  value.kind = slo::RuleKind::kGaugeValue;
  value.metric = "audit.max_tightness";
  value.threshold = 1.0;
  slo::Rule max;
  max.name = "gauge-ever";
  max.kind = slo::RuleKind::kGaugeMax;
  max.metric = "audit.max_tightness";
  max.threshold = 1.0;
  slo::Watchdog watchdog;
  watchdog.add_rule(std::move(value));
  watchdog.add_rule(std::move(max));
  const std::vector<slo::Status> statuses = watchdog.check(snapshot);
  EXPECT_FALSE(statuses[0].breached);  // current value 0.4 <= 1.0
  EXPECT_TRUE(statuses[1].breached);   // running max 1.5 > 1.0
}

TEST_F(SloTest, BreachEmitsWarningCounterAndArmsRecorder) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["engine.errors"] = 50;
  snapshot.counters["telemetry.requests"] = 100;
  EXPECT_FALSE(obs::recorder::enabled());
  slo::Watchdog watchdog;
  watchdog.add_rule(ratio_rule(0.01));
  watchdog.check(snapshot);

  // Counter side effect lands in the live registry, not the checked snapshot.
  const obs::MetricsSnapshot after = obs::registry().snapshot();
  EXPECT_EQ(after.counters.at("slo.breaches"), 1u);
  EXPECT_EQ(after.counters.at("slo.checks"), 1u);

  bool warned = false;
  for (const std::string& w : obs::warnings()) {
    if (w.find("error-rate") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);

  // The flight recorder was armed and holds the breach event.
  EXPECT_TRUE(obs::recorder::enabled());
  bool recorded = false;
  for (const auto& e : obs::recorder::events()) {
    if (std::string(e.label) == "slo.breach") recorded = true;
  }
  EXPECT_TRUE(recorded);
}

TEST_F(SloTest, DefaultEngineRulesPassOnHealthySnapshot) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["engine.requests"] = 1000;
  snapshot.counters["engine.errors"] = 2;
  snapshot.counters["engine.degraded_serves"] = 10;
  obs::HistogramSnapshot h;
  h.bounds = {0.01, 0.1};
  h.counts = {990, 10, 0};
  h.total = 1000;
  h.sum = 6.0;
  snapshot.histograms["telemetry.request_seconds"] = h;
  snapshot.gauge_maxima["audit.max_tightness"] = 0.8;

  slo::Watchdog watchdog;
  for (slo::Rule& rule : slo::default_engine_rules()) {
    watchdog.add_rule(std::move(rule));
  }
  ASSERT_EQ(watchdog.rules().size(), 4u);
  const std::vector<slo::Status> statuses = watchdog.check(snapshot);
  for (const slo::Status& s : statuses) {
    EXPECT_TRUE(s.evaluated);
    EXPECT_FALSE(s.breached);
  }
  EXPECT_EQ(watchdog.breaches(), 0u);
}

TEST_F(SloTest, StatusJsonShape) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["engine.errors"] = 50;
  snapshot.counters["telemetry.requests"] = 100;
  slo::Watchdog watchdog;
  watchdog.add_rule(ratio_rule(0.01));
  watchdog.check(snapshot);
  const obs::Json j = watchdog.status_json();
  EXPECT_EQ(j.at("breaches").as_int(), 1);
  ASSERT_EQ(j.at("rules").size(), 1u);
  const obs::Json& rule = j.at("rules").at(0);
  EXPECT_EQ(rule.at("name").as_string(), "error-rate");
  EXPECT_EQ(rule.at("kind").as_string(), "counter_ratio");
  EXPECT_EQ(rule.at("metric").as_string(), "engine.errors");
  EXPECT_DOUBLE_EQ(rule.at("measured").as_double(), 0.5);
  EXPECT_TRUE(rule.at("breached").as_bool());
  EXPECT_TRUE(rule.at("evaluated").as_bool());
}

}  // namespace
}  // namespace treecode
