// Evaluator instrumentation: registry counters mirror EvalStats exactly,
// min/max_degree_used reflect degrees *actually evaluated* (not the degree
// table's range), and the unachievable-budget condition raises an obs
// warning while a sane budget stays silent.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/treecode.hpp"
#include "dist/distributions.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace treecode {
namespace {

bool any_contains(const std::vector<std::string>& warnings, const std::string& needle) {
  for (const std::string& w : warnings) {
    if (w.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Instrumentation, RegistryCountersMirrorEvalStats) {
  const ParticleSystem ps = dist::uniform_cube(2'000, 71);
  const Tree tree(ps);
  EvalConfig cfg;
  cfg.alpha = 0.6;
  cfg.degree = 3;
  obs::registry().reset_values();
  const EvalResult r = evaluate_potentials(tree, cfg);
  obs::Registry& reg = obs::registry();
  EXPECT_EQ(reg.counter("bh.m2p_count").value(), r.stats.m2p_count);
  EXPECT_EQ(reg.counter("bh.p2p_pairs").value(), r.stats.p2p_pairs);
  EXPECT_EQ(reg.counter("bh.multipole_terms").value(), r.stats.multipole_terms);
  EXPECT_GT(r.stats.m2p_count, 0u);  // the run actually exercised M2P
}

TEST(Instrumentation, FixedDegreeRunUsesExactlyThatDegree) {
  const ParticleSystem ps = dist::uniform_cube(2'000, 73);
  const Tree tree(ps);
  EvalConfig cfg;
  cfg.alpha = 0.6;
  cfg.degree = 3;
  const EvalResult r = evaluate_potentials(tree, cfg);
  ASSERT_GT(r.stats.m2p_count, 0u);
  EXPECT_EQ(r.stats.min_degree_used, 3);
  EXPECT_EQ(r.stats.max_degree_used, 3);
}

TEST(Instrumentation, AllP2PTraversalReportsZeroDegreeUsed) {
  // A system that fits in a single leaf has no cluster to expand: every
  // interaction is P2P, so no expansion degree was actually used — the
  // stats must say 0, not echo the degree table's range. (A strict alpha
  // is not enough: radius-0 single-particle leaves pass any MAC.)
  const ParticleSystem ps = dist::uniform_cube(8, 75);
  const Tree tree(ps);
  EvalConfig cfg;
  cfg.alpha = 0.5;
  cfg.degree = 5;
  const EvalResult r = evaluate_potentials(tree, cfg);
  ASSERT_EQ(r.stats.m2p_count, 0u);
  EXPECT_EQ(r.stats.min_degree_used, 0);
  EXPECT_EQ(r.stats.max_degree_used, 0);
}

TEST(Instrumentation, UnachievableBudgetRaisesWarning) {
  const ParticleSystem ps = dist::gaussian_ball(1'500, 59);
  const Tree tree(ps);
  EvalConfig cfg;
  cfg.enforce_budget = true;
  cfg.error_budget = 1e-300;  // demotes every nonzero-bound interaction
  obs::drain_warnings();
  const EvalResult r = evaluate_potentials(tree, cfg);
  ASSERT_GT(r.stats.budget_refinements, 0u);
  const std::vector<std::string> w = obs::drain_warnings();
  EXPECT_TRUE(any_contains(w, "error budget"))
      << "expected an unachievable-budget warning, got " << w.size() << " warnings";
}

TEST(Instrumentation, AchievableBudgetStaysSilent) {
  const ParticleSystem ps = dist::uniform_cube(1'000, 77);
  const Tree tree(ps);
  EvalConfig cfg;
  cfg.alpha = 0.6;
  cfg.degree = 4;
  cfg.enforce_budget = true;
  cfg.error_budget = 1e6;  // loose enough that nothing is demoted
  obs::drain_warnings();
  const EvalResult r = evaluate_potentials(tree, cfg);
  EXPECT_EQ(r.stats.budget_refinements, 0u);
  EXPECT_FALSE(any_contains(obs::drain_warnings(), "error budget"));
}

}  // namespace
}  // namespace treecode
