// Metrics registry: sharded counters/histograms must aggregate *exactly*
// under concurrent recording from the thread pool (run under
// scripts/sanitize.sh as well), histogram bucket boundaries must be
// inclusive upper bounds, and reset_values must zero values while keeping
// registrations alive.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace treecode {
namespace {

TEST(MetricsCounter, ConcurrentIncrementsAggregateExactly) {
  obs::Counter& c = obs::registry().counter("test.counter.concurrent");
  c.reset();
  constexpr std::size_t kItems = 200'000;
  ThreadPool pool(8);
  parallel_for(pool, kItems, 64, [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) c.add(1 + i % 3);
  });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kItems; ++i) expected += 1 + i % 3;
  EXPECT_EQ(c.value(), expected);
}

TEST(MetricsCounter, SameNameReturnsSameCounter) {
  obs::Counter& a = obs::registry().counter("test.counter.identity");
  obs::Counter& b = obs::registry().counter("test.counter.identity");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.increment();
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsGauge, SetAndRecordMax) {
  obs::Gauge& g = obs::registry().gauge("test.gauge.basic");
  g.reset();
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.record_max(1.0);
  g.record_max(7.0);
  g.record_max(3.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);  // set() does not touch max
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
}

TEST(MetricsGauge, ConcurrentRecordMaxKeepsMaximum) {
  obs::Gauge& g = obs::registry().gauge("test.gauge.concurrent");
  g.reset();
  constexpr std::size_t kItems = 100'000;
  ThreadPool pool(8);
  parallel_for(pool, kItems, 128, [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) g.record_max(static_cast<double>(i));
  });
  EXPECT_DOUBLE_EQ(g.max(), static_cast<double>(kItems - 1));
}

TEST(MetricsHistogram, BucketBoundariesAreInclusiveUpperBounds) {
  // Buckets: (-inf, 1], (1, 2], (2, 4], (4, +inf).
  obs::Histogram& h =
      obs::registry().histogram("test.hist.bounds", std::vector<double>{1.0, 2.0, 4.0});
  h.reset();
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(4.01);  // overflow
  h.observe(99.0);  // overflow
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 2u);
  EXPECT_EQ(s.total, 7u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.01 + 99.0);
}

TEST(MetricsHistogram, IntegerBucketsCountEachValueExactly) {
  obs::Histogram& h =
      obs::registry().histogram("test.hist.integer", obs::integer_buckets(5));
  h.reset();
  h.observe_n(0.0, 3);
  h.observe_n(2.0, 5);
  h.observe_n(5.0, 7);
  h.observe_n(11.0, 2);  // beyond the last bound -> overflow
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 6u);  // 0..5
  ASSERT_EQ(s.counts.size(), 7u);
  EXPECT_EQ(s.counts[0], 3u);
  EXPECT_EQ(s.counts[1], 0u);
  EXPECT_EQ(s.counts[2], 5u);
  EXPECT_EQ(s.counts[5], 7u);
  EXPECT_EQ(s.counts[6], 2u);
  EXPECT_EQ(s.total, 17u);
}

TEST(MetricsHistogram, ConcurrentObservationsAggregateExactly) {
  obs::Histogram& h =
      obs::registry().histogram("test.hist.concurrent", obs::integer_buckets(7));
  h.reset();
  constexpr std::size_t kItems = 160'000;
  ThreadPool pool(8);
  parallel_for(pool, kItems, 64, [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) h.observe(static_cast<double>(i % 8));
  });
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.total, kItems);
  ASSERT_EQ(s.counts.size(), 9u);
  for (std::size_t bucket = 0; bucket < 8; ++bucket) {
    EXPECT_EQ(s.counts[bucket], kItems / 8) << bucket;
  }
  EXPECT_EQ(s.counts[8], 0u);
}

TEST(MetricsSeries, AppendsInOrder) {
  obs::Series& s = obs::registry().series("test.series.order");
  s.reset();
  s.append(3.0);
  s.append(1.0);
  s.append(2.0);
  const std::vector<double> v = s.values();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 2.0);
}

TEST(MetricsRegistry, SnapshotContainsAllKinds) {
  obs::Registry& reg = obs::registry();
  reg.counter("test.snap.counter").add(4);
  reg.gauge("test.snap.gauge").set(1.5);
  reg.histogram("test.snap.hist", obs::integer_buckets(3)).observe(2.0);
  reg.series("test.snap.series").append(0.25);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_GE(snap.counters.at("test.snap.counter"), 4u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.snap.gauge"), 1.5);
  EXPECT_GE(snap.histograms.at("test.snap.hist").total, 1u);
  EXPECT_FALSE(snap.series.at("test.snap.series").empty());
}

TEST(MetricsRegistry, ResetValuesZeroesButKeepsRegistrations) {
  obs::Registry& reg = obs::registry();
  obs::Counter& c = reg.counter("test.reset.counter");
  obs::Histogram& h = reg.histogram("test.reset.hist", obs::integer_buckets(2));
  c.add(10);
  h.observe(1.0);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().total, 0u);
  // Same references still valid and usable; boundaries survive the reset.
  c.increment();
  EXPECT_EQ(reg.counter("test.reset.counter").value(), 1u);
  EXPECT_EQ(reg.histogram("test.reset.hist", {}).bounds().size(), 3u);
}

TEST(MetricsBuckets, ExponentialBuckets) {
  const std::vector<double> b = obs::exponential_buckets(1.0, 10.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 10.0);
  EXPECT_DOUBLE_EQ(b[2], 100.0);
  EXPECT_DOUBLE_EQ(b[3], 1000.0);
}

}  // namespace
}  // namespace treecode
