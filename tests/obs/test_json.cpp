// JSON document model: writer/parser round trips, insertion order, string
// escaping, non-finite handling, and strict-parser rejections.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"

namespace treecode {
namespace {

TEST(Json, BuildAndDumpObject) {
  obs::Json j = obs::Json::object();
  j["b"] = 2;
  j["a"] = 1;
  j["s"] = "text";
  j["flag"] = true;
  j["nothing"] = obs::Json();
  // Insertion order is preserved (reports stay diffable).
  EXPECT_EQ(j.dump(), R"({"b":2,"a":1,"s":"text","flag":true,"nothing":null})");
}

TEST(Json, NestedAutoVivification) {
  obs::Json j = obs::Json::object();
  j["outer"]["inner"] = 3.5;
  EXPECT_DOUBLE_EQ(j.at("outer").at("inner").as_double(), 3.5);
}

TEST(Json, IntegersPrintWithoutExponent) {
  obs::Json j = obs::Json::object();
  j["big"] = std::uint64_t{123456789012};
  j["neg"] = -42;
  EXPECT_EQ(j.dump(), R"({"big":123456789012,"neg":-42})");
}

TEST(Json, NonFiniteSerializesAsNull) {
  obs::Json j = obs::Json::array();
  j.push_back(std::numeric_limits<double>::infinity());
  j.push_back(std::numeric_limits<double>::quiet_NaN());
  j.push_back(1.5);
  EXPECT_EQ(j.dump(), "[null,null,1.5]");
}

TEST(Json, StringEscaping) {
  obs::Json j = obs::Json::object();
  j["k"] = std::string("quote \" backslash \\ newline \n tab \t");
  const std::string out = j.dump();
  EXPECT_NE(out.find(R"(\")"), std::string::npos);
  EXPECT_NE(out.find(R"(\\)"), std::string::npos);
  EXPECT_NE(out.find(R"(\n)"), std::string::npos);
  // Round trip through the parser restores the original bytes.
  const obs::Json back = obs::Json::parse(out);
  EXPECT_EQ(back.at("k").as_string(), "quote \" backslash \\ newline \n tab \t");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"tool":"bench","values":[1,2.5,-3e2],"ok":true,"none":null,"nested":{"k":"v"}})";
  const obs::Json j = obs::Json::parse(text);
  EXPECT_EQ(j.at("tool").as_string(), "bench");
  EXPECT_EQ(j.at("values").size(), 3u);
  EXPECT_DOUBLE_EQ(j.at("values").at(2).as_double(), -300.0);
  EXPECT_TRUE(j.at("ok").as_bool());
  EXPECT_TRUE(j.at("none").is_null());
  EXPECT_EQ(j.at("nested").at("k").as_string(), "v");
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(obs::Json::parse(j.dump()).dump(), j.dump());
}

TEST(Json, ParseUnicodeEscapes) {
  const obs::Json j = obs::Json::parse("[\"A\\u00e9\"]");  // "é" as a \u escape
  EXPECT_EQ(j.at(std::size_t{0}).as_string(), "A\xc3\xa9");  // UTF-8 bytes of é
}

TEST(Json, PrettyPrintIndents) {
  obs::Json j = obs::Json::object();
  j["a"] = 1;
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, StrictParserRejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse(""), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{'a':1}"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1] trailing"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("nul"), std::runtime_error);
}

TEST(Json, AccessorsThrowOnTypeMismatch) {
  const obs::Json j = obs::Json::parse("[1,2]");
  EXPECT_THROW((void)j.at("key"), std::out_of_range);
  EXPECT_THROW((void)j.at(std::size_t{5}), std::out_of_range);
  EXPECT_THROW((void)j.as_string(), std::runtime_error);
}

TEST(Json, NonFiniteRoundTripsAsNullDeterministically) {
  // Reports and flight records can legitimately contain NaN/Inf (an empty
  // histogram's mean, an infinite tightness ratio); they must serialize as
  // null the same way every time, and the result must re-parse.
  obs::Json j = obs::Json::object();
  j["nan"] = std::numeric_limits<double>::quiet_NaN();
  j["inf"] = std::numeric_limits<double>::infinity();
  j["ninf"] = -std::numeric_limits<double>::infinity();
  j["ok"] = 2.0;
  const std::string once = j.dump();
  EXPECT_EQ(once, j.dump());
  EXPECT_EQ(once, R"({"nan":null,"inf":null,"ninf":null,"ok":2})");
  const obs::Json back = obs::Json::parse(once);
  EXPECT_TRUE(back.at("nan").is_null());
  EXPECT_TRUE(back.at("inf").is_null());
  EXPECT_DOUBLE_EQ(back.at("ok").as_double(), 2.0);
}

TEST(Json, DeeplyNestedWithinLimitParses) {
  // Real reports nest a few levels; 100 is far beyond anything the bench
  // tools emit and must still parse on the recursive-descent parser.
  const int depth = 100;
  std::string text;
  for (int i = 0; i < depth; ++i) text += "[";
  text += "1";
  for (int i = 0; i < depth; ++i) text += "]";
  obs::Json j = obs::Json::parse(text);
  for (int i = 0; i < depth; ++i) j = j.at(std::size_t{0});
  EXPECT_DOUBLE_EQ(j.as_double(), 1.0);
}

TEST(Json, PathologicallyNestedInputIsRejectedNotStackOverflow) {
  // A hostile or corrupted file with thousands of open brackets must fail
  // with a parse error, not exhaust the stack in the recursive parser.
  std::string arrays(2000, '[');
  EXPECT_THROW(obs::Json::parse(arrays), std::runtime_error);
  std::string objects;
  for (int i = 0; i < 2000; ++i) objects += "{\"k\":";
  EXPECT_THROW(obs::Json::parse(objects), std::runtime_error);
  try {
    obs::Json::parse(arrays);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting too deep"), std::string::npos);
  }
}

}  // namespace
}  // namespace treecode
