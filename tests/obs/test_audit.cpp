// Audit engine unit tests: counter-based sampling keys, bounded top-K
// reservoirs, partition-independent merging, and finalize()'s tightness
// arithmetic. The end-to-end evaluator audits (K samples taken, ratios vs a
// real tree) live in tests/core and tests/engine; schedule-independence is
// stressed in tests/parallel/test_stress.cpp.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"

namespace treecode {
namespace {

using obs::audit::Reservoir;
using obs::audit::Sample;
using obs::audit::sample_key;
using obs::audit::sample_less;

Sample make_sample(std::uint64_t seed, std::uint64_t target, std::uint64_t ordinal) {
  Sample s;
  s.key = sample_key(seed, target, ordinal);
  s.target = target;
  s.node = static_cast<std::int64_t>(ordinal);
  return s;
}

TEST(AuditKey, DeterministicAndInputSensitive) {
  EXPECT_EQ(sample_key(1, 2, 3), sample_key(1, 2, 3));
  // Full-avalanche mixing: any single-input change must move the key.
  EXPECT_NE(sample_key(1, 2, 3), sample_key(2, 2, 3));
  EXPECT_NE(sample_key(1, 2, 3), sample_key(1, 3, 3));
  EXPECT_NE(sample_key(1, 2, 3), sample_key(1, 2, 4));
  // The digest chain keeps (target, ordinal) asymmetric.
  EXPECT_NE(sample_key(1, 2, 3), sample_key(1, 3, 2));
}

TEST(AuditReservoir, ZeroCapacityIsDisabled) {
  Reservoir r;
  r.offer(make_sample(0, 0, 0));
  EXPECT_EQ(r.size(), 0u);
  r.set_capacity(0);
  r.offer(make_sample(0, 0, 1));
  EXPECT_EQ(r.size(), 0u);
}

TEST(AuditReservoir, KeepsTheKSmallestKeys) {
  Reservoir r;
  r.set_capacity(8);
  std::vector<Sample> all;
  for (std::uint64_t i = 0; i < 200; ++i) {
    all.push_back(make_sample(7, i % 13, i));
    r.offer(all.back());
  }
  ASSERT_EQ(r.size(), 8u);
  std::sort(all.begin(), all.end(), sample_less);
  std::vector<Sample> kept = r.samples();
  std::sort(kept.begin(), kept.end(), sample_less);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].key, all[i].key) << "rank " << i;
    EXPECT_EQ(kept[i].target, all[i].target);
    EXPECT_EQ(kept[i].node, all[i].node);
  }
}

TEST(AuditMerge, IndependentOfPartitioning) {
  // The same 500 interactions pushed through 1, 2, and 7 reservoirs (the
  // serial run, a 2-thread run, a 7-thread run) must select the identical
  // global top-K — this is the determinism contract the evaluators rely on.
  const std::size_t k = 32;
  std::vector<Sample> interactions;
  for (std::uint64_t i = 0; i < 500; ++i) {
    interactions.push_back(make_sample(42, i / 5, i % 5));
  }
  std::vector<std::vector<Sample>> selections;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    std::vector<Reservoir> rs(shards);
    for (Reservoir& r : rs) r.set_capacity(k);
    for (std::size_t i = 0; i < interactions.size(); ++i) {
      rs[i % shards].offer(interactions[i]);
    }
    selections.push_back(obs::audit::merge(rs, k));
  }
  for (const auto& sel : selections) {
    ASSERT_EQ(sel.size(), k);
    // merge() returns ascending order.
    for (std::size_t i = 1; i < sel.size(); ++i) {
      EXPECT_TRUE(sample_less(sel[i - 1], sel[i]));
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(selections[0][i].key, selections[1][i].key);
    EXPECT_EQ(selections[0][i].key, selections[2][i].key);
    EXPECT_EQ(selections[0][i].target, selections[1][i].target);
    EXPECT_EQ(selections[0][i].target, selections[2][i].target);
  }
}

TEST(AuditMerge, TruncatesToKAcrossOverfullReservoirs) {
  std::vector<Reservoir> rs(3);
  for (Reservoir& r : rs) r.set_capacity(4);
  for (std::uint64_t i = 0; i < 60; ++i) rs[i % 3].offer(make_sample(9, i, i));
  const std::vector<Sample> sel = obs::audit::merge(rs, 4);
  ASSERT_EQ(sel.size(), 4u);
  // Each selected sample is among the 4 smallest of the reservoir that saw
  // it, so the global 4 smallest survive the per-thread truncation.
  std::vector<Sample> all;
  for (std::uint64_t i = 0; i < 60; ++i) all.push_back(make_sample(9, i, i));
  std::sort(all.begin(), all.end(), sample_less);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(sel[i].key, all[i].key);
}

class AuditFinalize : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::registry().reset_values();
    obs::drain_warnings();
    obs::recorder::reset();
  }
};

TEST_F(AuditFinalize, EmptyWinnersYieldEmptySummary) {
  const obs::audit::Summary s =
      obs::audit::finalize({}, [](const Sample&) { return 0.0; });
  EXPECT_EQ(s.samples, 0u);
  EXPECT_EQ(s.bound_violations, 0u);
  EXPECT_EQ(s.max_tightness, 0.0);
}

TEST_F(AuditFinalize, ComputesTightnessStatistics) {
  std::vector<Sample> winners(3);
  winners[0].approx = 1.0;
  winners[0].bound = 0.5;   // exact 0.9 -> observed 0.1 -> ratio 0.2
  winners[1].approx = 2.0;
  winners[1].bound = 0.25;  // exact 1.9 -> observed 0.1 -> ratio 0.4
  winners[2].approx = 3.0;
  winners[2].bound = 1.0;   // exact 3.0 -> observed 0.0 -> ratio 0.0
  const obs::audit::Summary s = obs::audit::finalize(
      winners, [](const Sample& w) { return w.approx - (w.bound < 1.0 ? 0.1 : 0.0); });
  EXPECT_EQ(s.samples, 3u);
  EXPECT_EQ(s.bound_violations, 0u);
  EXPECT_NEAR(s.max_tightness, 0.4, 1e-12);
  EXPECT_NEAR(s.mean_tightness, (0.2 + 0.4 + 0.0) / 3.0, 1e-12);
  EXPECT_EQ(obs::registry().snapshot().counters.at("audit.samples"), 3u);
  EXPECT_TRUE(obs::drain_warnings().empty());
}

TEST_F(AuditFinalize, RatioAboveOneCountsAsViolationAndWarns) {
  std::vector<Sample> winners(1);
  winners[0].approx = 1.0;
  winners[0].bound = 0.01;  // exact 0.5 -> observed 0.5 -> ratio 50
  const obs::audit::Summary s =
      obs::audit::finalize(winners, [](const Sample&) { return 0.5; });
  EXPECT_EQ(s.bound_violations, 1u);
  EXPECT_NEAR(s.max_tightness, 50.0, 1e-9);
  const std::vector<std::string> warnings = obs::drain_warnings();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("bound violated"), std::string::npos);
}

TEST_F(AuditFinalize, ZeroBoundWithErrorIsInfiniteViolation) {
  std::vector<Sample> winners(2);
  winners[0].approx = 1.0;
  winners[0].bound = 0.0;  // exact 1.0 -> observed 0 -> ratio 0, fine
  winners[1].approx = 2.0;
  winners[1].bound = 0.0;  // exact 1.5 -> observed 0.5 with a zero bound
  const obs::audit::Summary s = obs::audit::finalize(
      winners, [](const Sample& w) { return w.approx > 1.5 ? 1.5 : w.approx; });
  EXPECT_EQ(s.samples, 2u);
  EXPECT_EQ(s.bound_violations, 1u);
  // The infinite ratio is excluded from max/mean; only the clean sample's
  // zero ratio remains.
  EXPECT_EQ(s.max_tightness, 0.0);
  EXPECT_EQ(s.mean_tightness, 0.0);
  EXPECT_EQ(obs::drain_warnings().size(), 1u);
}

TEST_F(AuditFinalize, RecordsPerDimensionHistograms) {
  std::vector<Sample> winners(1);
  winners[0].approx = 1.0;
  winners[0].bound = 1.0;
  winners[0].level = 3;
  winners[0].degree = 5;
  winners[0].abs_charge = 250.0;  // decade 2
  (void)obs::audit::finalize(winners, [](const Sample&) { return 0.75; });
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  EXPECT_NE(snap.histograms.find("audit.tightness"), snap.histograms.end());
  EXPECT_NE(snap.histograms.find("audit.tightness.L3"), snap.histograms.end());
  EXPECT_NE(snap.histograms.find("audit.tightness.p5"), snap.histograms.end());
  EXPECT_NE(snap.histograms.find("audit.tightness.q2"), snap.histograms.end());
}

}  // namespace
}  // namespace treecode
