// Observability HTTP server tests, exercised over real loopback sockets:
// ephemeral-port bind, GET round-trip (status line, content type, body),
// query-string decoding, the 400/404/405 taxonomy, HEAD body suppression,
// handler-exception mapping to 500, concurrent scrapes from several client
// threads, and stop()/restart idempotence.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/httpd.hpp"

namespace treecode {
namespace {

namespace httpd = obs::httpd;

/// One blocking HTTP exchange against 127.0.0.1:`port`. Returns the raw
/// response (status line + headers + body), empty on connect failure.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[2048];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& target,
                     const std::string& method = "GET") {
  return http_exchange(port, method + " " + target +
                                  " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                  "Connection: close\r\n\r\n");
}

int status_of(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..."
  const std::size_t space = response.find(' ');
  if (space == std::string::npos) return -1;
  return std::atoi(response.c_str() + space + 1);
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

TEST(Httpd, EphemeralPortBindAndGetRoundTrip) {
  httpd::Server server;
  server.handle("/ping", [](const httpd::Request&) {
    return httpd::Response{200, "text/plain", "pong\n"};
  });
  const httpd::StartResult start = server.try_start(0);
  ASSERT_TRUE(start.ok) << start.error;
  ASSERT_NE(start.port, 0);
  EXPECT_EQ(server.port(), start.port);
  EXPECT_TRUE(server.running());

  const std::string response = http_get(start.port, "/ping");
  EXPECT_EQ(status_of(response), 200);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_EQ(body_of(response), "pong\n");
  EXPECT_GE(server.requests_served(), 1u);

  // A second try_start while running must fail without disturbing the
  // first listener.
  EXPECT_FALSE(server.try_start(0).ok);
  EXPECT_EQ(status_of(http_get(start.port, "/ping")), 200);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(Httpd, QueryStringIsDecodedWithDefaults) {
  httpd::Server server;
  server.handle("/echo", [](const httpd::Request& request) {
    return httpd::Response{200, "text/plain",
                           request.query_value("n", "5") + "|" +
                               request.query_value("missing", "fallback")};
  });
  const httpd::StartResult start = server.try_start(0);
  ASSERT_TRUE(start.ok) << start.error;
  EXPECT_EQ(body_of(http_get(start.port, "/echo?n=9&other=x")), "9|fallback");
  EXPECT_EQ(body_of(http_get(start.port, "/echo")), "5|fallback");
  server.stop();
}

TEST(Httpd, ErrorTaxonomy) {
  httpd::Server server;
  server.handle("/boom", [](const httpd::Request&) -> httpd::Response {
    throw std::runtime_error("handler exploded");
  });
  server.handle("/ok", [](const httpd::Request&) {
    return httpd::Response{200, "text/plain", "fine\n"};
  });
  const httpd::StartResult start = server.try_start(0);
  ASSERT_TRUE(start.ok) << start.error;

  EXPECT_EQ(status_of(http_get(start.port, "/missing")), 404);
  EXPECT_EQ(status_of(http_get(start.port, "/ok", "POST")), 405);
  EXPECT_EQ(status_of(http_exchange(start.port, "not http at all\r\n\r\n")), 400);
  const std::string boom = http_get(start.port, "/boom");
  EXPECT_EQ(status_of(boom), 500);
  EXPECT_NE(body_of(boom).find("handler exploded"), std::string::npos);
  // Errors never wedge the accept loop.
  EXPECT_EQ(status_of(http_get(start.port, "/ok")), 200);
  server.stop();
}

TEST(Httpd, HeadSuppressesTheBody) {
  httpd::Server server;
  server.handle("/doc", [](const httpd::Request&) {
    return httpd::Response{200, "text/plain", "content\n"};
  });
  const httpd::StartResult start = server.try_start(0);
  ASSERT_TRUE(start.ok) << start.error;
  const std::string response = http_get(start.port, "/doc", "HEAD");
  EXPECT_EQ(status_of(response), 200);
  EXPECT_TRUE(body_of(response).empty());
  server.stop();
}

TEST(Httpd, ConcurrentScrapesAllSucceed) {
  // The server serves one connection at a time; concurrent clients queue in
  // the listen backlog. Every request must still complete with 200 and a
  // coherent body (this is the "Prometheus + operator curl at once" shape).
  httpd::Server server;
  std::atomic<std::uint64_t> calls{0};
  server.handle("/metrics", [&calls](const httpd::Request&) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return httpd::Response{200, "text/plain", "treecode_up 1\n"};
  });
  const httpd::StartResult start = server.try_start(0);
  ASSERT_TRUE(start.ok) << start.error;

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string response = http_get(start.port, "/metrics");
        if (status_of(response) != 200 || body_of(response) != "treecode_up 1\n") {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(calls.load(),
            static_cast<std::uint64_t>(kThreads * kRequestsPerThread));
  EXPECT_GE(server.requests_served(),
            static_cast<std::uint64_t>(kThreads * kRequestsPerThread));
  server.stop();
}

TEST(Httpd, StopWhileIdleThenRestartOnFreshServer) {
  // stop() must be prompt (the accept loop polls with a timeout) and leave
  // the port free for a successor server.
  std::uint16_t port = 0;
  {
    httpd::Server server;
    server.handle("/x", [](const httpd::Request&) {
      return httpd::Response{200, "text/plain", "x"};
    });
    const httpd::StartResult start = server.try_start(0);
    ASSERT_TRUE(start.ok) << start.error;
    port = start.port;
    server.stop();
  }
  httpd::Server next;
  next.handle("/x", [](const httpd::Request&) {
    return httpd::Response{200, "text/plain", "y"};
  });
  const httpd::StartResult restart = next.try_start(port);
  ASSERT_TRUE(restart.ok) << restart.error;
  EXPECT_EQ(body_of(http_get(port, "/x")), "y");
  next.stop();
}

}  // namespace
}  // namespace treecode
