// Report emitter: the warning channel (dedup + drain), the RunReport schema,
// the metrics snapshot serialization, and ScopedTimer's metric accumulation.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/timer.hpp"

namespace treecode {
namespace {

TEST(Warnings, RecordDedupAndDrain) {
  obs::drain_warnings();
  obs::warn("test: condition A");
  obs::warn("test: condition B");
  obs::warn("test: condition A");  // exact duplicate collapses
  const std::vector<std::string> w = obs::warnings();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0], "test: condition A");
  EXPECT_EQ(w[1], "test: condition B");
  const std::vector<std::string> drained = obs::drain_warnings();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_TRUE(obs::warnings().empty());
}

TEST(RunReport, BuildContainsSchemaAndSections) {
  obs::drain_warnings();
  obs::warn("test: report warning");
  obs::registry().counter("test.report.counter").add(3);
  obs::RunReport report("test_tool");
  report.config()["n"] = 128;
  report.results()["value"] = 1.5;
  const obs::Json doc = report.build();
  EXPECT_EQ(doc.at("schema").as_string(), obs::kReportSchema);
  EXPECT_EQ(doc.at("tool").as_string(), "test_tool");
  EXPECT_EQ(doc.at("config").at("n").as_int(), 128);
  EXPECT_DOUBLE_EQ(doc.at("results").at("value").as_double(), 1.5);
  // Metrics section reflects the live registry.
  EXPECT_GE(doc.at("metrics").at("counters").at("test.report.counter").as_int(), 3);
  EXPECT_TRUE(doc.at("spans").is_array());
  bool found = false;
  const obs::Json& warnings = doc.at("warnings");
  for (std::size_t i = 0; i < warnings.size(); ++i) {
    if (warnings.at(i).as_string() == "test: report warning") found = true;
  }
  EXPECT_TRUE(found);
  obs::drain_warnings();
}

TEST(RunReport, WriteProducesParseableFile) {
  obs::RunReport report("test_tool_file");
  report.config()["seed"] = 7;
  const std::string path = testing::TempDir() + "/treecode_test_report.json";
  report.write(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
  std::fclose(f);
  const obs::Json doc = obs::Json::parse(text);
  EXPECT_EQ(doc.at("tool").as_string(), "test_tool_file");
  EXPECT_EQ(doc.at("config").at("seed").as_int(), 7);
  std::remove(path.c_str());
}

TEST(MetricsJson, SerializesHistogramShape) {
  obs::Registry& reg = obs::registry();
  obs::Histogram& h = reg.histogram("test.report.hist", obs::integer_buckets(2));
  h.reset();
  h.observe(1.0);
  h.observe(9.0);  // overflow bucket
  const obs::Json m = obs::metrics_json(reg.snapshot());
  const obs::Json& hist = m.at("histograms").at("test.report.hist");
  EXPECT_EQ(hist.at("bounds").size(), 3u);  // 0,1,2
  EXPECT_EQ(hist.at("counts").size(), 4u);  // + overflow
  EXPECT_EQ(hist.at("counts").at(1).as_int(), 1);
  EXPECT_EQ(hist.at("counts").at(3).as_int(), 1);
  EXPECT_EQ(hist.at("total").as_int(), 2);
}

TEST(ScopedTimer, AccumulatesIntoNamedMetricAndOutParam) {
  obs::Counter& ns = obs::registry().counter("test.scoped_timer_ns");
  ns.reset();
  double seconds = 0.0;
  {
    const ScopedTimer t("test.scoped_timer", &seconds);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  EXPECT_GT(seconds, 0.002);
  EXPECT_GE(ns.value(), 2'000'000u);  // >= 2 ms in nanoseconds
  {
    const ScopedTimer t("test.scoped_timer");  // out param optional
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(ns.value(), 3'000'000u);  // second timer adds to the same counter
}

}  // namespace
}  // namespace treecode
