// Flight recorder unit tests: disabled no-op, sequencing, ring wraparound,
// snapshot JSON shape, and trigger/dump behavior. Concurrent record/snapshot
// stress lives in tests/parallel/test_stress.cpp (under TSan).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/recorder.hpp"

namespace treecode {
namespace {

namespace rec = obs::recorder;

obs::Json parse_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return obs::Json::parse(text.str());
}

class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override { rec::reset(); }
  void TearDown() override { rec::reset(); }
};

TEST_F(RecorderTest, DisabledRecordIsANoOp) {
  EXPECT_FALSE(rec::enabled());
  rec::record(rec::Category::kCustom, "ignored", 1.0);
  EXPECT_EQ(rec::recorded_count(), 0u);
  EXPECT_TRUE(rec::events().empty());
}

TEST_F(RecorderTest, StopFreezesButKeepsEvents) {
  rec::start();
  rec::record(rec::Category::kCustom, "kept", 1.0);
  rec::stop();
  rec::record(rec::Category::kCustom, "dropped", 2.0);
  const std::vector<rec::Event> events = rec::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].label, "kept");
}

TEST_F(RecorderTest, EventsComeBackInSequenceOrderWithPayload) {
  rec::start();
  rec::record(rec::Category::kPhase, "phase.one", 0.25);
  rec::record(rec::Category::kBudget, "budget.demotions", 3.0);
  rec::record(rec::Category::kEviction, "cache.evict", 1024.0);
  const std::vector<rec::Event> events = rec::events();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
  EXPECT_EQ(events[0].category, rec::Category::kPhase);
  EXPECT_DOUBLE_EQ(events[0].value, 0.25);
  EXPECT_STREQ(events[1].label, "budget.demotions");
  EXPECT_EQ(events[2].category, rec::Category::kEviction);
  EXPECT_DOUBLE_EQ(events[2].value, 1024.0);
}

TEST_F(RecorderTest, CategoryNamesAreStable) {
  EXPECT_STREQ(rec::category_name(rec::Category::kPhase), "phase");
  EXPECT_STREQ(rec::category_name(rec::Category::kInvariant), "invariant");
  EXPECT_STREQ(rec::category_name(rec::Category::kNonFinite), "nonfinite");
  EXPECT_STREQ(rec::category_name(rec::Category::kAudit), "audit");
}

TEST_F(RecorderTest, RingWraparoundKeepsTheMostRecentEvents) {
  rec::start();
  const std::uint64_t total = rec::kCapacity + 100;
  for (std::uint64_t i = 0; i < total; ++i) {
    rec::record(rec::Category::kCustom, "tick", static_cast<double>(i));
  }
  EXPECT_EQ(rec::recorded_count(), total);
  const std::vector<rec::Event> events = rec::events();
  ASSERT_EQ(events.size(), rec::kCapacity);
  // The 100 oldest were overwritten; the survivors are contiguous and end
  // at the last record.
  EXPECT_EQ(events.front().seq, 100u);
  EXPECT_EQ(events.back().seq, total - 1);
  EXPECT_DOUBLE_EQ(events.back().value, static_cast<double>(total - 1));
}

TEST_F(RecorderTest, ToJsonReportsDropsAndRoundTrips) {
  rec::start();
  const std::uint64_t total = rec::kCapacity + 17;
  for (std::uint64_t i = 0; i < total; ++i) {
    rec::record(rec::Category::kWarning, "w", 0.0);
  }
  const obs::Json doc = rec::to_json("unit test");
  const obs::Json back = obs::Json::parse(doc.dump());
  EXPECT_EQ(back.at("schema").as_string(), "treecode-flight-record/v2");
  // v2 provenance block: attributable post-mortems.
  EXPECT_TRUE(back.at("provenance").is_object());
  EXPECT_TRUE(back.at("provenance").at("git_sha").is_string());
  EXPECT_TRUE(back.at("provenance").at("compiler").is_string());
  EXPECT_TRUE(back.at("provenance").at("host").is_string());
  EXPECT_TRUE(back.at("provenance").at("utc").is_string());
  EXPECT_EQ(back.at("reason").as_string(), "unit test");
  EXPECT_EQ(back.at("recorded").as_double(), static_cast<double>(total));
  EXPECT_EQ(back.at("dropped").as_double(), 17.0);
  EXPECT_EQ(back.at("events").size(), rec::kCapacity);
  const obs::Json& first = back.at("events").at(0);
  EXPECT_EQ(first.at("category").as_string(), "warning");
  EXPECT_EQ(first.at("label").as_string(), "w");
}

TEST_F(RecorderTest, TriggerWithoutDumpPathOnlyRecords) {
  rec::start();
  rec::trigger("no path configured");
  EXPECT_EQ(rec::trigger_count(), 0u);
  const std::vector<rec::Event> events = rec::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].label, "recorder.trigger");
}

TEST_F(RecorderTest, TriggerDumpsToConfiguredPath) {
  const std::string path = ::testing::TempDir() + "flight_record_trigger.json";
  std::remove(path.c_str());
  rec::start();
  rec::set_dump_path(path);
  rec::record(rec::Category::kInvariant, "inv.check", 0.0);
  rec::trigger("invariant failure: unit test");
  EXPECT_EQ(rec::trigger_count(), 1u);
  const obs::Json doc = parse_file(path);
  EXPECT_EQ(doc.at("schema").as_string(), "treecode-flight-record/v2");
  EXPECT_EQ(doc.at("reason").as_string(), "invariant failure: unit test");
  // The snapshot includes both the original event and the trigger marker.
  EXPECT_EQ(doc.at("events").size(), 2u);
  std::remove(path.c_str());
}

TEST_F(RecorderTest, DumpWorksWhileDisabled) {
  rec::start();
  rec::record(rec::Category::kCustom, "before stop", 1.0);
  rec::stop();
  const std::string path = ::testing::TempDir() + "flight_record_disabled.json";
  std::remove(path.c_str());
  EXPECT_TRUE(rec::dump(path, "post mortem"));
  const obs::Json doc = parse_file(path);
  EXPECT_EQ(doc.at("events").size(), 1u);
  std::remove(path.c_str());
}

TEST_F(RecorderTest, ResetClearsEverything) {
  rec::start();
  rec::record(rec::Category::kCustom, "x", 0.0);
  rec::reset();
  EXPECT_FALSE(rec::enabled());
  EXPECT_EQ(rec::recorded_count(), 0u);
  EXPECT_TRUE(rec::events().empty());
  EXPECT_EQ(rec::trigger_count(), 0u);
}

}  // namespace
}  // namespace treecode
