// Request-telemetry unit tests: disabled no-op, record round-trip through
// the ring, ring overflow (oldest records overwritten, emitted_count keeps
// the true total), JSON shape, registry side effects, and the JSONL sink
// with size-based rotation. Concurrent emit/records stress lives in
// tests/parallel/test_stress.cpp (under TSan).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace treecode {
namespace {

namespace tel = obs::telemetry;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tel::reset();
    obs::registry().reset_values();
  }
  void TearDown() override {
    tel::reset();
    obs::registry().reset_values();
  }
};

tel::RequestRecord sample_record(std::uint64_t key) {
  tel::RequestRecord r;
  r.api = tel::Api::kEvaluatePlan;
  r.plan_key = key;
  r.rung = 0;
  r.ok = true;
  r.wall_seconds = 0.001;
  r.targets = 64;
  r.plan_bytes = 1024;
  r.basis_bytes = 2048;
  r.deadline_slack_seconds = std::numeric_limits<double>::quiet_NaN();
  r.audit_max_tightness = 0.5;
  r.threads = 4;
  return r;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST_F(TelemetryTest, DisabledEmitIsANoOp) {
  EXPECT_FALSE(tel::enabled());
  tel::emit(sample_record(1));
  EXPECT_EQ(tel::emitted_count(), 0u);
  EXPECT_TRUE(tel::records().empty());
}

TEST_F(TelemetryTest, RecordRoundTripsThroughRing) {
  tel::enable();
  tel::emit(sample_record(0xabcd));
  const std::vector<tel::RequestRecord> records = tel::records();
  ASSERT_EQ(records.size(), 1u);
  const tel::RequestRecord& r = records[0];
  EXPECT_EQ(r.seq, 0u);
  EXPECT_EQ(r.plan_key, 0xabcdu);
  EXPECT_EQ(r.api, tel::Api::kEvaluatePlan);
  EXPECT_EQ(r.rung, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_STREQ(r.outcome_name, "ok");
  EXPECT_EQ(r.targets, 64u);
  EXPECT_EQ(r.threads, 4u);
  EXPECT_TRUE(std::isnan(r.deadline_slack_seconds));
}

TEST_F(TelemetryTest, ApiNamesAreStable) {
  EXPECT_STREQ(tel::api_name(tel::Api::kCompile), "compile");
  EXPECT_STREQ(tel::api_name(tel::Api::kCompileSelf), "compile_self");
  EXPECT_STREQ(tel::api_name(tel::Api::kUpdateCharges), "update_charges");
  EXPECT_STREQ(tel::api_name(tel::Api::kUpdateChargesSorted),
               "update_charges_sorted");
  EXPECT_STREQ(tel::api_name(tel::Api::kEvaluatePlan), "evaluate_plan");
  EXPECT_STREQ(tel::api_name(tel::Api::kEvaluateAt), "evaluate_at");
  EXPECT_STREQ(tel::api_name(tel::Api::kEvaluateSelf), "evaluate_self");
}

TEST_F(TelemetryTest, RingOverflowKeepsNewestRecords) {
  tel::enable();
  const std::uint64_t total = tel::kRingCapacity + 100;
  for (std::uint64_t i = 0; i < total; ++i) tel::emit(sample_record(i));
  EXPECT_EQ(tel::emitted_count(), total);
  const std::vector<tel::RequestRecord> records = tel::records();
  ASSERT_EQ(records.size(), tel::kRingCapacity);
  // Oldest surviving record is exactly `total - capacity`; order is oldest
  // first and contiguous.
  EXPECT_EQ(records.front().seq, total - tel::kRingCapacity);
  EXPECT_EQ(records.back().seq, total - 1);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
  }
}

TEST_F(TelemetryTest, EmitFeedsRegistryMetrics) {
  tel::enable();
  tel::emit(sample_record(1));
  tel::RequestRecord bad = sample_record(2);
  bad.ok = false;
  bad.outcome = 3;
  bad.outcome_name = "deadline_expired";
  tel::emit(bad);
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  EXPECT_EQ(snapshot.counters.at("telemetry.requests"), 2u);
  EXPECT_EQ(snapshot.counters.at("telemetry.errors"), 1u);
  EXPECT_EQ(snapshot.histograms.at("telemetry.request_seconds").total, 2u);
}

TEST_F(TelemetryTest, ToJsonShapeAndSentinels) {
  tel::RequestRecord r = sample_record(0xdeadbeef);
  r.seq = 41;
  const obs::Json j = tel::to_json(r);
  EXPECT_EQ(j.at("schema").as_string(), "treecode-request-record/v2");
  EXPECT_EQ(j.at("api").as_string(), "evaluate_plan");
  EXPECT_EQ(j.at("plan_key").as_string(), "0x00000000deadbeef");
  EXPECT_EQ(j.at("rung").as_int(), 0);
  EXPECT_EQ(j.at("rung_name").as_string(), "basis_replay");
  EXPECT_TRUE(j.at("ok").as_bool());
  // NaN slack (no deadline) must serialize as null, not a bare NaN token
  // (which JSON has no syntax for). The writer maps non-finite to null.
  EXPECT_NE(j.dump(0).find("\"deadline_slack_seconds\":null"), std::string::npos);
  // v2 fields: an untraced record renders the zero trace id as 32 '0' hex
  // chars; queue wait and scheduler round default to their sentinels.
  EXPECT_EQ(j.at("trace_id").as_string(), std::string(32, '0'));
  EXPECT_EQ(j.at("queue_wait_seconds").as_double(), 0.0);
  EXPECT_EQ(j.at("batch_seq").as_int(), 0);
}

TEST_F(TelemetryTest, ToJsonCarriesTraceFields) {
  tel::RequestRecord r = sample_record(7);
  r.api = tel::Api::kServiceServe;
  r.trace_hi = 0x0123456789abcdefULL;
  r.trace_lo = 0xfedcba9876543210ULL;
  r.queue_wait_seconds = 0.25;
  r.batch_seq = 9;
  const obs::Json j = tel::to_json(r);
  EXPECT_EQ(j.at("api").as_string(), "service_serve");
  EXPECT_EQ(j.at("trace_id").as_string(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(j.at("queue_wait_seconds").as_double(), 0.25);
  EXPECT_EQ(j.at("batch_seq").as_int(), 9);
}

TEST_F(TelemetryTest, SinkWritesOneJsonLinePerRecord) {
  const std::string path = ::testing::TempDir() + "/telemetry_sink.jsonl";
  std::remove(path.c_str());
  tel::enable();
  tel::set_sink(path);
  tel::emit(sample_record(1));
  tel::emit(sample_record(2));
  tel::close_sink();
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    const obs::Json j = obs::Json::parse(line);
    EXPECT_EQ(j.at("schema").as_string(), "treecode-request-record/v2");
  }
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, SinkRotatesBySizeAndDropsOldest) {
  const std::string path = ::testing::TempDir() + "/telemetry_rotate.jsonl";
  for (int i = 0; i < 4; ++i) {
    std::remove((i == 0 ? path : path + "." + std::to_string(i)).c_str());
  }
  tel::enable();
  // Each line is a few hundred bytes; rotate after ~1KB, keep 3 files.
  tel::set_sink(path, /*rotate_bytes=*/1024, /*max_files=*/3);
  for (std::uint64_t i = 0; i < 64; ++i) tel::emit(sample_record(i));
  tel::close_sink();

  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_TRUE(std::ifstream(path + ".1").good());
  EXPECT_TRUE(std::ifstream(path + ".2").good());
  EXPECT_FALSE(std::ifstream(path + ".3").good());

  // Rotation happened at least once and every surviving line still parses.
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  EXPECT_GE(snapshot.counters.at("telemetry.sink_rotations"), 1u);
  std::uint64_t parsed = 0;
  for (const std::string& suffix : {std::string(), std::string(".1"),
                                    std::string(".2")}) {
    for (const std::string& line : read_lines(path + suffix)) {
      const obs::Json j = obs::Json::parse(line);
      EXPECT_EQ(j.at("schema").as_string(), "treecode-request-record/v2");
      ++parsed;
    }
  }
  EXPECT_GT(parsed, 0u);
  EXPECT_LE(parsed, 64u);
  for (int i = 0; i < 3; ++i) {
    std::remove((i == 0 ? path : path + "." + std::to_string(i)).c_str());
  }
}

TEST_F(TelemetryTest, ResetClearsRingCountersAndSink) {
  tel::enable();
  tel::emit(sample_record(1));
  EXPECT_EQ(tel::emitted_count(), 1u);
  tel::reset();
  EXPECT_FALSE(tel::enabled());
  EXPECT_EQ(tel::emitted_count(), 0u);
  EXPECT_TRUE(tel::records().empty());
}

}  // namespace
}  // namespace treecode
