// OpenMetrics exporter unit tests: name sanitization (and collision
// handling), label escaping, non-finite rendering, counter/gauge/histogram
// exposition shape, empty snapshots, and histogram_quantile interpolation
// edge cases.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/openmetrics.hpp"
#include "obs/report.hpp"

namespace treecode {
namespace {

namespace om = obs::openmetrics;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(OpenMetricsName, SanitizesInvalidCharacters) {
  EXPECT_EQ(om::sanitize_name("engine.plan_bytes"), "engine_plan_bytes");
  EXPECT_EQ(om::sanitize_name("audit.tightness.L3"), "audit_tightness_L3");
  EXPECT_EQ(om::sanitize_name("already_valid:name"), "already_valid:name");
  EXPECT_EQ(om::sanitize_name("sp ace-dash/slash"), "sp_ace_dash_slash");
}

TEST(OpenMetricsName, PrefixesLeadingDigitAndEmpty) {
  EXPECT_EQ(om::sanitize_name("2fast"), "_2fast");
  EXPECT_EQ(om::sanitize_name(""), "_");
}

TEST(OpenMetricsName, EscapesLabelValues) {
  EXPECT_EQ(om::escape_label_value("plain"), "plain");
  EXPECT_EQ(om::escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(OpenMetricsRender, EmptySnapshotIsJustEof) {
  const obs::MetricsSnapshot snapshot;
  EXPECT_EQ(om::render(snapshot), "# EOF\n");
}

TEST(OpenMetricsRender, CountersGetTotalSuffixAndType) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["engine.replays"] = 7;
  const std::string text = om::render(snapshot);
  EXPECT_NE(text.find("# TYPE engine_replays counter\n"), std::string::npos);
  EXPECT_NE(text.find("engine_replays_total 7\n"), std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(OpenMetricsRender, GaugesAndMaximaCompanion) {
  obs::MetricsSnapshot snapshot;
  snapshot.gauges["audit.max_tightness"] = 0.25;
  snapshot.gauge_maxima["audit.max_tightness"] = 0.75;
  const std::string text = om::render(snapshot);
  EXPECT_NE(text.find("# TYPE audit_max_tightness gauge\n"), std::string::npos);
  EXPECT_NE(text.find("audit_max_tightness 0.25\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE audit_max_tightness_max gauge\n"), std::string::npos);
  EXPECT_NE(text.find("audit_max_tightness_max 0.75\n"), std::string::npos);
}

TEST(OpenMetricsRender, NonFiniteGaugesUseTextLiterals) {
  obs::MetricsSnapshot snapshot;
  snapshot.gauges["g.nan"] = kNan;
  snapshot.gauges["g.pos"] = kInf;
  snapshot.gauges["g.neg"] = -kInf;
  const std::string text = om::render(snapshot);
  EXPECT_NE(text.find("g_nan NaN\n"), std::string::npos);
  EXPECT_NE(text.find("g_pos +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("g_neg -Inf\n"), std::string::npos);
}

TEST(OpenMetricsRender, HistogramBucketsAreCumulativeWithInf) {
  obs::MetricsSnapshot snapshot;
  obs::HistogramSnapshot h;
  h.bounds = {0.1, 1.0};
  h.counts = {2, 3, 1};  // per-bucket: <=0.1, <=1.0, overflow
  h.total = 6;
  h.sum = 4.5;
  snapshot.histograms["telemetry.request_seconds"] = h;
  const std::string text = om::render(snapshot);
  EXPECT_NE(text.find("# TYPE telemetry_request_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_request_seconds_bucket{le=\"0.1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_request_seconds_bucket{le=\"1\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_request_seconds_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_request_seconds_sum 4.5\n"), std::string::npos);
  EXPECT_NE(text.find("telemetry_request_seconds_count 6\n"), std::string::npos);
}

TEST(OpenMetricsRender, EmptyHistogramStillWellFormed) {
  obs::MetricsSnapshot snapshot;
  obs::HistogramSnapshot h;
  h.bounds = {1.0};
  h.counts = {0, 0};
  h.total = 0;
  h.sum = 0.0;
  snapshot.histograms["empty.hist"] = h;
  const std::string text = om::render(snapshot);
  EXPECT_NE(text.find("empty_hist_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("empty_hist_count 0\n"), std::string::npos);
}

TEST(OpenMetricsRender, SanitizationCollisionSkipsSecondSeries) {
  obs::drain_warnings();
  obs::MetricsSnapshot snapshot;
  snapshot.counters["a.b"] = 1;
  snapshot.counters["a:b"] = 2;  // sorts after "a.b"; "a:b" is already valid
  const std::string text = om::render(snapshot);
  // "a.b" sanitizes to "a_b", "a:b" stays "a:b" — no collision here. Force
  // one with two dotted spellings of the same exposition name.
  obs::MetricsSnapshot clash;
  clash.counters["engine.plan.bytes"] = 1;
  clash.counters["engine.plan_bytes"] = 2;
  const std::string clashed = om::render(clash);
  const std::size_t first = clashed.find("engine_plan_bytes_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(clashed.find("engine_plan_bytes_total", first + 1), std::string::npos);
  bool warned = false;
  for (const std::string& w : obs::drain_warnings()) {
    if (w.find("already emitted") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
  (void)text;
}

TEST(OpenMetricsQuantile, EmptyHistogramIsNan) {
  obs::HistogramSnapshot h;
  h.bounds = {1.0};
  h.counts = {0, 0};
  h.total = 0;
  EXPECT_TRUE(std::isnan(om::histogram_quantile(h, 0.5)));
}

TEST(OpenMetricsQuantile, InterpolatesWithinBucket) {
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0};
  h.counts = {10, 10, 0};
  h.total = 20;
  // Median rank = 10 lands exactly at the first bucket's upper bound.
  EXPECT_DOUBLE_EQ(om::histogram_quantile(h, 0.5), 1.0);
  // Rank 15 is halfway through the (1.0, 2.0] bucket.
  EXPECT_DOUBLE_EQ(om::histogram_quantile(h, 0.75), 1.5);
}

TEST(OpenMetricsQuantile, FirstBucketInterpolatesFromZero) {
  obs::HistogramSnapshot h;
  h.bounds = {4.0};
  h.counts = {8, 0};
  h.total = 8;
  EXPECT_DOUBLE_EQ(om::histogram_quantile(h, 0.5), 2.0);
}

TEST(OpenMetricsQuantile, OverflowRankYieldsLastFiniteBound) {
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0};
  h.counts = {1, 1, 8};
  h.total = 10;
  EXPECT_DOUBLE_EQ(om::histogram_quantile(h, 0.99), 2.0);
}

TEST(OpenMetricsQuantile, RendersFromLiveRegistry) {
  obs::registry().reset_values();
  const std::vector<double> bounds = obs::exponential_buckets(0.001, 10.0, 4);
  auto& hist = obs::registry().histogram("quantile.live", bounds);
  hist.observe(0.0005);
  hist.observe(0.05);
  hist.observe(0.5);
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  const auto it = snapshot.histograms.find("quantile.live");
  ASSERT_NE(it, snapshot.histograms.end());
  const double p99 = om::histogram_quantile(it->second, 0.99);
  EXPECT_GT(p99, 0.05);
  EXPECT_LE(p99, 1.0);
  obs::registry().reset_values();
}

}  // namespace
}  // namespace treecode
