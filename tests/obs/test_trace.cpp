// Phase tracing: spans recorded between start()/stop() must surface in
// events() with sane timestamps, render as well-formed Chrome trace-event
// JSON (parsed back with obs::Json), and record nothing while disabled.
// With -DTREECODE_TRACING=OFF every check degrades to the no-op contract.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace treecode {
namespace {

bool tracing_compiled_in() {
#if defined(TREECODE_TRACING_ENABLED)
  return true;
#else
  return false;
#endif
}

TEST(Trace, DisabledRecordsNothing) {
  obs::trace::stop();
  {
    const obs::TraceSpan span("test.disabled");
  }
  // Spans constructed while disabled must not appear even if tracing starts
  // later (start() clears the buffers anyway).
  obs::trace::start();
  const std::vector<obs::TraceEvent> events = obs::trace::events();
  for (const obs::TraceEvent& e : events) {
    EXPECT_STRNE(e.name, "test.disabled");
  }
  obs::trace::stop();
}

TEST(Trace, SpanRecordsNameAndDuration) {
  obs::trace::start();
  if (!obs::trace::enabled()) {
    ASSERT_FALSE(tracing_compiled_in());
    GTEST_SKIP() << "tracing compiled out (TREECODE_TRACING=OFF)";
  }
  {
    const obs::TraceSpan span("test.span.outer");
    const obs::TraceSpan inner("test.span.inner");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  obs::trace::stop();
  const std::vector<obs::TraceEvent> events = obs::trace::events();
  bool saw_outer = false;
  bool saw_inner = false;
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "test.span.outer") {
      saw_outer = true;
      EXPECT_GE(e.ts_us, 0.0);
      EXPECT_GE(e.dur_us, 1000.0);  // slept >= 2 ms
    }
    if (std::string(e.name) == "test.span.inner") saw_inner = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST(Trace, StartClearsPreviousEvents) {
  obs::trace::start();
  if (!obs::trace::enabled()) GTEST_SKIP() << "tracing compiled out";
  {
    const obs::TraceSpan span("test.span.stale");
  }
  obs::trace::start();  // restart: stale events must be gone
  {
    const obs::TraceSpan span("test.span.fresh");
  }
  obs::trace::stop();
  bool saw_stale = false;
  bool saw_fresh = false;
  for (const obs::TraceEvent& e : obs::trace::events()) {
    if (std::string(e.name) == "test.span.stale") saw_stale = true;
    if (std::string(e.name) == "test.span.fresh") saw_fresh = true;
  }
  EXPECT_FALSE(saw_stale);
  EXPECT_TRUE(saw_fresh);
}

TEST(Trace, WorkerSpansSurviveThreadPoolDestruction) {
  obs::trace::start();
  if (!obs::trace::enabled()) GTEST_SKIP() << "tracing compiled out";
  {
    ThreadPool pool(4);
    parallel_for(
        pool, 1'000, 64, [](std::size_t, std::size_t, unsigned) {}, nullptr,
        "test.worker.span");
  }  // pool threads join here; their buffers must outlive them
  obs::trace::stop();
  int worker_spans = 0;
  for (const obs::TraceEvent& e : obs::trace::events()) {
    if (std::string(e.name) == "test.worker.span") ++worker_spans;
  }
  EXPECT_GE(worker_spans, 1);
}

TEST(Trace, ChromeJsonIsWellFormed) {
  obs::trace::start();
  if (!obs::trace::enabled()) {
    // Compiled out: the stub must still emit a valid (empty) JSON array.
    const obs::Json doc = obs::Json::parse(obs::trace::chrome_json());
    EXPECT_TRUE(doc.is_array());
    GTEST_SKIP() << "tracing compiled out";
  }
  {
    const obs::TraceSpan span("test.chrome \"quoted\\name");
  }
  obs::trace::stop();
  const std::string json = obs::trace::chrome_json();
  const obs::Json doc = obs::Json::parse(json);  // throws on malformed output
  ASSERT_TRUE(doc.is_array());
  ASSERT_GE(doc.size(), 1u);
  bool found = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const obs::Json& e = doc.at(i);
    ASSERT_TRUE(e.is_object());
    // Chrome trace-event required keys for complete ("X") events.
    EXPECT_TRUE(e.contains("name"));
    EXPECT_EQ(e.at("ph").as_string(), "X");
    EXPECT_TRUE(e.contains("ts"));
    EXPECT_TRUE(e.contains("dur"));
    EXPECT_TRUE(e.contains("pid"));
    EXPECT_TRUE(e.contains("tid"));
    if (e.at("name").as_string() == "test.chrome \"quoted\\name") found = true;
  }
  EXPECT_TRUE(found);  // escaping must round-trip through the writer
}

}  // namespace
}  // namespace treecode
