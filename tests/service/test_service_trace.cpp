// Service-level request tracing: every unhealthy request retains a trace
// covering the full causal path (submit -> queue wait -> coalesced batch
// with a resolving flow link -> replay phases), cancelled requests are
// tail-kept, per-tenant latency histograms surface in state_json, the live
// HTTP endpoint serves all four observability routes, and — the
// determinism contract — the retained-trace set for a fixed sampler seed
// is bitwise-identical across session thread counts in pump mode.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "dist/distributions.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "service/eval_service.hpp"

namespace treecode {
namespace {

namespace rt = obs::reqtrace;

bool tracing_compiled_in() {
#if defined(TREECODE_TRACING_ENABLED)
  return true;
#else
  return false;
#endif
}

class ServiceTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rt::reset();
    obs::registry().reset_values();
  }
  void TearDown() override {
    rt::reset();
    obs::registry().reset_values();
  }

  static service::EvalService::TenantOptions tenant_options(
      unsigned threads = 2) {
    service::EvalService::TenantOptions topt;
    topt.eval.alpha = 0.5;
    topt.eval.degree = 4;
    topt.eval.mode = DegreeMode::kAdaptive;
    topt.eval.threads = threads;
    return topt;
  }

  static std::vector<double> charges_for(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    std::vector<double> q(n);
    for (double& v : q) v = u(rng);
    return q;
  }

  static bool has_span(const rt::RetainedTrace& trace, const std::string& name,
                       rt::SpanKind kind) {
    for (const rt::SpanRecord& span : trace.spans) {
      if (span.name == name && span.kind == kind) return true;
    }
    return false;
  }

  static const rt::SpanRecord* root_span(const rt::RetainedTrace& trace) {
    for (const rt::SpanRecord& span : trace.spans) {
      if (span.parent_span_id == 0) return &span;
    }
    return nullptr;
  }
};

// enable() tracing for the test, skipping when compiled out. Must be a
// macro: GTEST_SKIP() returns from the *enclosing* function, so it only
// skips when expanded in the test body itself.
#define ENABLE_OR_SKIP(seed_value, rate_value)                           \
  do {                                                                   \
    rt::SamplerConfig config_;                                           \
    config_.seed = (seed_value);                                         \
    config_.sample_rate = (rate_value);                                  \
    rt::enable(config_);                                                 \
    if (!rt::enabled()) {                                                \
      ASSERT_FALSE(tracing_compiled_in());                               \
      GTEST_SKIP() << "tracing compiled out (TREECODE_TRACING=OFF)";     \
    }                                                                    \
  } while (0)

TEST_F(ServiceTraceTest, UnhealthyRequestsRetainTheFullCausalPath) {
  ENABLE_OR_SKIP(/*seed=*/1, /*sample_rate=*/0.0);
  const ParticleSystem ps = dist::uniform_cube(600, 17);
  service::EvalService svc(
      service::EvalService::Options{.start_scheduler = false});
  service::EvalService::TenantOptions topt = tenant_options();
  // An SLO no real evaluation can meet: every served request breaches and
  // must therefore be tail-kept even at sample rate 0.
  topt.latency_slo_seconds = 1e-9;
  ASSERT_TRUE(svc.try_register_tenant("t", ps, {}, topt).ok());

  std::vector<service::EvalService::Ticket> tickets;
  for (std::size_t c = 0; c < 3; ++c) {
    auto ticket = svc.try_submit("t", charges_for(ps.size(), 100 + c));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(ticket).value());
  }
  ASSERT_EQ(svc.pump(), 3u);
  for (auto& ticket : tickets) ASSERT_TRUE(ticket.wait().ok());

  std::vector<const rt::RetainedTrace*> members;
  const rt::RetainedTrace* batch = nullptr;
  const std::vector<rt::RetainedTrace> retained = rt::retained();
  for (const rt::RetainedTrace& trace : retained) {
    if (has_span(trace, "service.batch", rt::SpanKind::kBatch)) {
      batch = &trace;
    } else if (has_span(trace, "service.request", rt::SpanKind::kRequest)) {
      members.push_back(&trace);
    }
  }

  // All three breaching requests are retained, with the full causal path:
  // root request span, admission slice, queue wait.
  ASSERT_EQ(members.size(), 3u);
  for (const rt::RetainedTrace* member : members) {
    EXPECT_STREQ(member->reason, "slo");
    EXPECT_TRUE(has_span(*member, "service.req.submit", rt::SpanKind::kPhase));
    EXPECT_TRUE(has_span(*member, "service.queue_wait", rt::SpanKind::kQueue));
    const rt::SpanRecord* root = root_span(*member);
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->kind, rt::SpanKind::kRequest);
    // Children sit inside the root window.
    for (const rt::SpanRecord& span : member->spans) {
      EXPECT_GE(span.start_us, root->start_us);
      EXPECT_LE(span.end_us, root->end_us);
    }
  }

  // The batch trace rode along via forced keep, carries one flow link per
  // retained member (resolving to that member's root span), and contains
  // the replay phases the engine recorded under the lent batch context.
  ASSERT_NE(batch, nullptr);
  EXPECT_STREQ(batch->reason, "forced");
  const rt::SpanRecord* batch_span = nullptr;
  for (const rt::SpanRecord& span : batch->spans) {
    if (span.kind == rt::SpanKind::kBatch) batch_span = &span;
  }
  ASSERT_NE(batch_span, nullptr);
  ASSERT_EQ(batch_span->flow_count, 3u);
  for (std::uint32_t f = 0; f < batch_span->flow_count; ++f) {
    bool resolved = false;
    for (const rt::RetainedTrace* member : members) {
      const rt::SpanRecord* root = root_span(*member);
      if (root != nullptr && root->span_id == batch_span->flows[f]) {
        resolved = true;
      }
    }
    EXPECT_TRUE(resolved) << "flow " << f << " does not reach a retained root";
  }
  bool saw_replay_phase = false;
  for (const rt::SpanRecord& span : batch->spans) {
    const std::string name = span.name;
    if (name.rfind("time.", 0) == 0 || name.rfind("engine.", 0) == 0) {
      saw_replay_phase = true;
    }
  }
  EXPECT_TRUE(saw_replay_phase);
}

TEST_F(ServiceTraceTest, CancelledQueuedRequestsAreTailKept) {
  ENABLE_OR_SKIP(/*seed=*/1, /*sample_rate=*/0.0);
  const ParticleSystem ps = dist::uniform_cube(400, 3);
  service::EvalService svc(
      service::EvalService::Options{.start_scheduler = false});
  ASSERT_TRUE(svc.try_register_tenant("t", ps, {}, tenant_options()).ok());

  const std::vector<double> q(ps.size(), 1.0);
  auto first = svc.try_submit("t", q);
  auto second = svc.try_submit("t", q);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(svc.try_unregister_tenant("t").ok());
  EXPECT_EQ(first.value().wait().error().code, ErrorCode::kCancelled);
  EXPECT_EQ(second.value().wait().error().code, ErrorCode::kCancelled);

  // Both cancelled requests finished their traces with an error verdict,
  // so the tail sampler kept them even at sample rate 0.
  std::size_t cancelled_traces = 0;
  for (const rt::RetainedTrace& trace : rt::retained()) {
    if (!has_span(trace, "service.request", rt::SpanKind::kRequest)) continue;
    EXPECT_STREQ(trace.reason, "error");
    ++cancelled_traces;
  }
  EXPECT_EQ(cancelled_traces, 2u);
}

TEST_F(ServiceTraceTest, PerTenantLatencySummarySurfacesInStateJson) {
  ENABLE_OR_SKIP(/*seed=*/1, /*sample_rate=*/0.0);
  const ParticleSystem ps = dist::uniform_cube(500, 9);
  service::EvalService svc(
      service::EvalService::Options{.start_scheduler = false});
  service::EvalService::TenantOptions topt = tenant_options();
  topt.latency_slo_seconds = 30.0;
  ASSERT_TRUE(svc.try_register_tenant("alpha", ps, {}, topt).ok());
  auto ticket = svc.try_submit("alpha", charges_for(ps.size(), 5));
  ASSERT_TRUE(ticket.ok());
  ASSERT_EQ(svc.pump(), 1u);
  ASSERT_TRUE(ticket.value().wait().ok());

  const obs::Json doc = svc.state_json();
  ASSERT_EQ(doc.at("tenants").size(), 1u);
  const obs::Json& tenant = doc.at("tenants").at(0);
  EXPECT_EQ(tenant.at("latency_slo_seconds").as_double(), 30.0);
  const obs::Json& latency = tenant.at("latency");
  EXPECT_EQ(latency.at("count").as_int(), 1);
  EXPECT_GT(latency.at("mean_seconds").as_double(), 0.0);
  EXPECT_GT(latency.at("p50_seconds").as_double(), 0.0);
  EXPECT_GE(latency.at("p99_seconds").as_double(),
            latency.at("p50_seconds").as_double());

  // The tenant's latency objective joins the SLO rule set.
  bool saw_p99_rule = false;
  for (const obs::slo::Rule& rule : svc.slo_rules()) {
    if (rule.name == "service-latency-p99-alpha") saw_p99_rule = true;
  }
  EXPECT_TRUE(saw_p99_rule);
}

/// One blocking GET against the service's loopback endpoint; returns the
/// raw response text (status line + headers + body).
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[2048];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

TEST_F(ServiceTraceTest, HttpEndpointServesAllObservabilityRoutes) {
  ENABLE_OR_SKIP(/*seed=*/1, /*sample_rate=*/0.0);
  const ParticleSystem ps = dist::uniform_cube(400, 7);
  service::EvalService svc(
      service::EvalService::Options{.start_scheduler = false});
  service::EvalService::TenantOptions topt = tenant_options();
  topt.latency_slo_seconds = 1e-9;  // force a retained trace for /traces
  ASSERT_TRUE(svc.try_register_tenant("t", ps, {}, topt).ok());
  auto ticket = svc.try_submit("t", charges_for(ps.size(), 1));
  ASSERT_TRUE(ticket.ok());
  ASSERT_EQ(svc.pump(), 1u);
  ASSERT_TRUE(ticket.value().wait().ok());

  const auto port = svc.start_http(0);
  ASSERT_TRUE(port.ok());
  ASSERT_NE(port.value(), 0);
  EXPECT_EQ(svc.http_port(), port.value());
  // Starting twice while running is a typed error, not a crash.
  EXPECT_FALSE(svc.start_http(0).ok());

  const std::string state = http_get(port.value(), "/state");
  EXPECT_NE(state.find("HTTP/1.1 200"), std::string::npos);
  const obs::Json state_doc = obs::Json::parse(body_of(state));
  EXPECT_EQ(state_doc.at("schema").as_string(), "treecode-service/v1");
  EXPECT_EQ(state_doc.at("http_port").as_int(),
            static_cast<std::int64_t>(port.value()));

  const std::string metrics = http_get(port.value(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(body_of(metrics).find("# EOF"), std::string::npos);

  const std::string health = http_get(port.value(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1"), std::string::npos);
  const obs::Json health_doc = obs::Json::parse(body_of(health));
  EXPECT_TRUE(health_doc.at("status").as_string() == "ok" ||
              health_doc.at("status").as_string() == "breaching");

  const std::string traces = http_get(port.value(), "/traces?n=8");
  EXPECT_NE(traces.find("HTTP/1.1 200"), std::string::npos);
  const std::string trace_body = body_of(traces);
  ASSERT_FALSE(trace_body.empty());
  const obs::Json first_line =
      obs::Json::parse(trace_body.substr(0, trace_body.find('\n')));
  EXPECT_EQ(first_line.at("schema").as_string(), "treecode-trace/v1");

  svc.stop_http();
  EXPECT_EQ(svc.http_port(), 0);
  svc.stop_http();  // idempotent
}

TEST_F(ServiceTraceTest, RetainedSetIsBitwiseDeterministicAcrossThreadCounts) {
  if (!tracing_compiled_in()) {
    GTEST_SKIP() << "tracing compiled out (TREECODE_TRACING=OFF)";
  }
  // The same pump-driven workload, varying only the session's worker
  // thread count. Ids are minted exclusively on driver threads and the
  // sampling coin hashes the trace id, so the retained set — ids, order,
  // and reasons — must be bitwise-identical.
  const auto run_workload = [this](unsigned threads) {
    rt::reset();
    rt::SamplerConfig config;
    config.seed = 42;
    config.sample_rate = 0.5;
    rt::enable(config);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ids;
    std::vector<std::string> reasons;
    {
      const ParticleSystem ps = dist::uniform_cube(500, 11);
      service::EvalService svc(
          service::EvalService::Options{.start_scheduler = false});
      EXPECT_TRUE(
          svc.try_register_tenant("t", ps, {}, tenant_options(threads)).ok());
      std::vector<service::EvalService::Ticket> tickets;
      for (std::size_t c = 0; c < 8; ++c) {
        auto ticket = svc.try_submit("t", charges_for(ps.size(), 200 + c));
        EXPECT_TRUE(ticket.ok());
        if (ticket.ok()) tickets.push_back(std::move(ticket).value());
      }
      while (svc.pump() > 0) {
      }
      for (auto& ticket : tickets) EXPECT_TRUE(ticket.wait().ok());
      for (const rt::RetainedTrace& trace : rt::retained()) {
        ids.emplace_back(trace.trace_hi, trace.trace_lo);
        reasons.emplace_back(trace.reason);
      }
    }
    rt::reset();
    return std::make_pair(ids, reasons);
  };

  const auto baseline = run_workload(1);
  ASSERT_FALSE(baseline.first.empty());
  for (const unsigned threads : {2u, 4u}) {
    const auto other = run_workload(threads);
    EXPECT_EQ(other.first, baseline.first) << "threads=" << threads;
    EXPECT_EQ(other.second, baseline.second) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace treecode
