#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "bem/bem_operator.hpp"
#include "bem/meshgen.hpp"
#include "dist/distributions.hpp"
#include "engine/eval_session.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "service/bem_tenant.hpp"
#include "service/eval_service.hpp"
#include "tree/octree.hpp"

namespace treecode {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

EvalConfig base_config() {
  EvalConfig cfg;
  cfg.alpha = 0.5;
  cfg.degree = 4;
  cfg.mode = DegreeMode::kAdaptive;
  cfg.threads = 2;
  return cfg;
}

service::EvalService::TenantOptions tenant_options() {
  service::EvalService::TenantOptions topt;
  topt.eval = base_config();
  return topt;
}

std::vector<double> charges_for(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> q(n);
  for (double& v : q) v = u(rng);
  return q;
}

bool bitwise_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// pump() mode keeps scheduling deterministic: queue k requests, pump once,
// and the whole queue is served as one coalesced batch — with each ticket's
// result bitwise-identical to a direct single-RHS evaluation.
TEST(EvalService, PumpCoalescesQueueIntoOneBatchBitwiseEqualToSingleRhs) {
  const ParticleSystem ps = dist::uniform_cube(900, 17);
  service::EvalService svc(service::EvalService::Options{.start_scheduler = false});
  ASSERT_TRUE(svc.try_register_tenant("t", ps, {}, tenant_options()).ok());

  std::vector<std::vector<double>> cols;
  std::vector<service::EvalService::Ticket> tickets;
  for (std::size_t c = 0; c < 5; ++c) {
    cols.push_back(charges_for(ps.size(), 40 + c));
    auto t = svc.try_submit("t", cols.back());
    ASSERT_TRUE(t.ok());
    tickets.push_back(std::move(t).value());
  }
  EXPECT_EQ(svc.pump(), 5u);  // one round serves the whole queue
  EXPECT_EQ(svc.pump(), 0u);  // nothing left

  // Reference results from an independent session over the same geometry.
  engine::EvalSession ref(Tree(ps), base_config());
  const auto plan = ref.try_compile_self().value_or_throw();
  for (std::size_t c = 0; c < 5; ++c) {
    auto result = tickets[c].wait();
    ASSERT_TRUE(result.ok());
    ref.try_update_charges(cols[c]).value_or_throw();
    const EvalResult single = ref.try_evaluate(*plan).value_or_throw();
    EXPECT_TRUE(bitwise_equal(result.value().potential, single.potential)) << c;
  }

  // A ticket's result moves out exactly once.
  const auto again = tickets[0].wait();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, ErrorCode::kInvalidArgument);
}

TEST(EvalService, AdmissionTaxonomy) {
  const ParticleSystem ps = dist::uniform_cube(400, 3);
  service::EvalService svc(service::EvalService::Options{.start_scheduler = false});
  service::EvalService::TenantOptions topt = tenant_options();
  topt.max_queue_depth = 2;
  ASSERT_TRUE(svc.try_register_tenant("t", ps, {}, topt).ok());

  // Unknown tenant and bad names are invalid arguments, not rejections.
  const std::vector<double> q(ps.size(), 1.0);
  EXPECT_EQ(svc.try_submit("nobody", q).error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(svc.try_register_tenant("Bad Name!", ps, {}, topt).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(svc.try_register_tenant("t", ps, {}, topt).error().code,
            ErrorCode::kInvalidArgument);  // duplicate

  // Wrong size and non-finite inputs are caught at admission.
  const std::vector<double> short_q(ps.size() - 3, 1.0);
  EXPECT_EQ(svc.try_submit("t", short_q).error().code, ErrorCode::kInvalidArgument);
  std::vector<double> nan_q(ps.size(), 1.0);
  nan_q[0] = kNan;
  EXPECT_EQ(svc.try_submit("t", nan_q).error().code, ErrorCode::kNonFinite);

  // Queue full -> deterministic kRejected backpressure.
  ASSERT_TRUE(svc.try_submit("t", q).ok());
  ASSERT_TRUE(svc.try_submit("t", q).ok());
  const std::uint64_t rejected_before =
      obs::registry().counter(obs::metric::kServiceRejected).value();
  const auto full = svc.try_submit("t", q);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.error().code, ErrorCode::kRejected);
  EXPECT_EQ(obs::registry().counter(obs::metric::kServiceRejected).value(),
            rejected_before + 1);

  while (svc.pump() > 0) {
  }
}

// Exhausting the error budget quarantines the tenant: subsequent submits
// are rejected (typed, counted), not evaluated.
TEST(EvalService, ErrorBudgetQuarantine) {
  const ParticleSystem ps = dist::uniform_cube(300, 9);
  service::EvalService svc(service::EvalService::Options{.start_scheduler = false});
  service::EvalService::TenantOptions topt = tenant_options();
  topt.error_budget = 2;
  ASSERT_TRUE(svc.try_register_tenant("t", ps, {}, topt).ok());

  std::vector<double> nan_q(ps.size(), 1.0);
  nan_q[5] = kNan;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(svc.try_submit("t", nan_q).error().code, ErrorCode::kNonFinite) << i;
  }
  // Budget (2) exceeded on the third error; good input is now rejected.
  const std::vector<double> good(ps.size(), 1.0);
  const auto rejected = svc.try_submit("t", good);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kRejected);
}

// Unregistering cancels queued work with kCancelled and removes the
// tenant; its plan bytes leave the engine gauges with it.
TEST(EvalService, UnregisterCancelsQueuedRequestsAndShedsPlanBytes) {
  const ParticleSystem ps = dist::uniform_cube(800, 21);
  const double plan_bytes_before =
      obs::registry().gauge(obs::metric::kEnginePlanBytes).value();
  service::EvalService svc(service::EvalService::Options{.start_scheduler = false});
  ASSERT_TRUE(svc.try_register_tenant("t", ps, {}, tenant_options()).ok());
  EXPECT_GT(obs::registry().gauge(obs::metric::kEnginePlanBytes).value(),
            plan_bytes_before);

  const std::vector<double> q(ps.size(), 1.0);
  auto t1 = svc.try_submit("t", q);
  auto t2 = svc.try_submit("t", q);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());

  ASSERT_TRUE(svc.try_unregister_tenant("t").ok());
  EXPECT_EQ(svc.num_tenants(), 0u);
  EXPECT_DOUBLE_EQ(obs::registry().gauge(obs::metric::kEnginePlanBytes).value(),
                   plan_bytes_before);

  for (auto* ticket : {&t1.value(), &t2.value()}) {
    const auto r = ticket->wait();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kCancelled);
  }
  EXPECT_EQ(svc.try_unregister_tenant("t").error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(svc.try_submit("t", q).error().code, ErrorCode::kInvalidArgument);
}

// The background scheduler serves submissions without explicit pumping.
TEST(EvalService, BackgroundSchedulerServesSubmissions) {
  const ParticleSystem ps = dist::uniform_cube(600, 13);
  service::EvalService svc;  // scheduler on
  ASSERT_TRUE(svc.try_register_tenant("t", ps, {}, tenant_options()).ok());
  for (int i = 0; i < 6; ++i) {
    auto ticket = svc.try_submit("t", charges_for(ps.size(), 60 + i));
    ASSERT_TRUE(ticket.ok());
    const auto result = ticket.value().wait();
    ASSERT_TRUE(result.ok()) << result.error().message;
    EXPECT_EQ(result.value().potential.size(), ps.size());
  }
}

// The BEM operator as a tenant: bitwise-identical matvec to the in-process
// SingleLayerOperator, end to end through admission, batching, and replay.
TEST(EvalService, BemTenantMatvecBitwiseMatchesSingleLayerOperator) {
  const TriangleMesh mesh = make_sphere(8, 12);
  SingleLayerOperator::Options opt;
  opt.eval = base_config();
  const SingleLayerOperator direct(mesh, opt);

  service::EvalService svc;
  service::BemTenantOperator::Options bopt;
  bopt.eval = base_config();
  const service::BemTenantOperator tenant(svc, "bem", mesh, bopt);
  EXPECT_EQ(svc.num_tenants(), 1u);

  std::vector<double> x(mesh.num_vertices());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 + 0.5 * std::sin(0.37 * static_cast<double>(i));
  }
  std::vector<double> y_direct(mesh.num_vertices());
  std::vector<double> y_service(mesh.num_vertices());
  direct.apply(x, y_direct);
  tenant.apply(x, y_service);
  EXPECT_TRUE(bitwise_equal(y_direct, y_service));
}

TEST(EvalService, StateJsonReportsTenantsQueuesAndBatchOccupancy) {
  const ParticleSystem ps = dist::uniform_cube(500, 29);
  service::EvalService svc(service::EvalService::Options{.start_scheduler = false});
  ASSERT_TRUE(svc.try_register_tenant("alpha", ps, {}, tenant_options()).ok());
  const std::vector<double> q(ps.size(), 1.0);
  auto t1 = svc.try_submit("alpha", q);
  auto t2 = svc.try_submit("alpha", q);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());

  obs::Json doc = svc.state_json();
  EXPECT_EQ(doc.at("schema").as_string(), "treecode-service/v1");
  EXPECT_EQ(doc.at("num_tenants").as_int(), 1);
  const obs::Json& tenant = doc.at("tenants").at(std::size_t{0});
  EXPECT_EQ(tenant.at("name").as_string(), "alpha");
  EXPECT_EQ(tenant.at("queue_depth").as_int(), 2);
  EXPECT_EQ(tenant.at("submitted").as_int(), 2);
  EXPECT_TRUE(tenant.contains("plan"));
  EXPECT_TRUE(tenant.contains("governor"));
  EXPECT_TRUE(tenant.contains("plan_cache"));

  EXPECT_EQ(svc.pump(), 2u);
  doc = svc.state_json();
  const obs::Json& after = doc.at("tenants").at(std::size_t{0});
  EXPECT_EQ(after.at("served").as_int(), 2);
  EXPECT_EQ(after.at("batches").as_int(), 1);
  EXPECT_EQ(after.at("max_batch_seen").as_int(), 2);
  (void)t1.value().wait();
  (void)t2.value().wait();

  // SLO rules cover the aggregate plus two per-tenant objectives.
  EXPECT_EQ(svc.slo_rules().size(), 3u);
}

}  // namespace
}  // namespace treecode
