// Concurrency stress for the evaluation service — the tests TSan runs to
// prove the tenant table, queues, scheduler, and ticket hand-off are
// race-free, and that request accounting is exact under contention:
// every admitted request is eventually served, failed, or cancelled —
// never lost, never double-completed.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "dist/distributions.hpp"
#include "service/eval_service.hpp"

namespace treecode {
namespace {

EvalConfig small_config() {
  EvalConfig cfg;
  cfg.alpha = 0.5;
  cfg.degree = 2;
  cfg.threads = 2;
  return cfg;
}

// Concurrent submitters on one shared tenant: exact accounting — admitted
// requests all complete with ok or kCancelled, and admitted == served once
// the queue drains.
TEST(ServiceStress, ConcurrentSubmittersShareOnePlanExactAccounting) {
  const ParticleSystem ps = dist::uniform_cube(400, 7);
  service::EvalService svc;
  service::EvalService::TenantOptions topt;
  topt.eval = small_config();
  topt.max_queue_depth = 1024;
  ASSERT_TRUE(svc.try_register_tenant("shared", ps, {}, topt).ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      std::vector<double> q(ps.size(), 1.0 + 0.01 * static_cast<double>(w));
      for (int i = 0; i < kPerThread; ++i) {
        auto ticket = svc.try_submit("shared", q);
        if (!ticket.ok()) continue;
        admitted.fetch_add(1);
        const auto r = ticket.value().wait();
        if (r.ok()) served.fetch_add(1);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(admitted.load(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(served.load(), admitted.load());

  const obs::Json doc = svc.state_json();
  const obs::Json& tenant = doc.at("tenants").at(std::size_t{0});
  EXPECT_EQ(tenant.at("submitted").as_int(),
            static_cast<std::int64_t>(admitted.load()));
  EXPECT_EQ(tenant.at("served").as_int(),
            static_cast<std::int64_t>(served.load()));
  EXPECT_EQ(tenant.at("queue_depth").as_int(), 0);
}

// Register/submit/unregister races across many tenants: every wait()
// resolves (ok, rejected at admission, or kCancelled by the unregister);
// nothing deadlocks, nothing is lost, and the table ends empty.
TEST(ServiceStress, RegisterSubmitUnregisterRaces) {
  const ParticleSystem ps = dist::uniform_cube(250, 11);
  service::EvalService svc;
  service::EvalService::TenantOptions topt;
  topt.eval = small_config();

  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      const std::string name = "tenant-" + std::to_string(w);
      std::vector<double> q(ps.size(), 1.0);
      for (int round = 0; round < kRounds; ++round) {
        if (!svc.try_register_tenant(name, ps, {}, topt).ok()) continue;
        std::vector<service::EvalService::Ticket> tickets;
        for (int i = 0; i < 3; ++i) {
          if (auto t = svc.try_submit(name, q); t.ok()) {
            tickets.push_back(std::move(t).value());
          }
        }
        // Unregister with work still queued or in flight: queued requests
        // come back kCancelled, the in-flight batch completes first.
        ASSERT_TRUE(svc.try_unregister_tenant(name).ok());
        for (auto& ticket : tickets) {
          const auto r = ticket.wait();
          ASSERT_TRUE(r.ok() || r.error().code == ErrorCode::kCancelled);
          completed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_GT(completed.load(), 0u);
  EXPECT_EQ(svc.num_tenants(), 0u);
}

// Service destruction with queued work: every outstanding ticket resolves
// with kCancelled rather than hanging its waiter.
TEST(ServiceStress, DestructionCancelsOutstandingTickets) {
  const ParticleSystem ps = dist::uniform_cube(300, 13);
  std::vector<service::EvalService::Ticket> tickets;
  {
    service::EvalService svc(
        service::EvalService::Options{.start_scheduler = false});
    service::EvalService::TenantOptions topt;
    topt.eval = small_config();
    ASSERT_TRUE(svc.try_register_tenant("t", ps, {}, topt).ok());
    const std::vector<double> q(ps.size(), 1.0);
    for (int i = 0; i < 4; ++i) {
      auto t = svc.try_submit("t", q);
      ASSERT_TRUE(t.ok());
      tickets.push_back(std::move(t).value());
    }
  }  // ~EvalService with a full queue
  for (auto& ticket : tickets) {
    const auto r = ticket.wait();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kCancelled);
  }
}

}  // namespace
}  // namespace treecode
