// Deterministic concurrency stress tests. These are the workload the TSan
// build (scripts/sanitize.sh tsan) runs to certify the thread pool, the
// cancellation protocol, the sharded metrics registry, and the parallel
// evaluators race-free; every assertion here is schedule-independent, so
// the suite also passes in plain builds.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/treecode.hpp"
#include "dist/distributions.hpp"
#include "engine/eval_session.hpp"
#include "engine/plan_cache.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/reqtrace.hpp"
#include "obs/telemetry.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace treecode {
namespace {

TEST(ThreadPoolStress, RepeatedStartStopWithWork) {
  // Construct, use, and destroy pools back to back: the destructor must
  // join cleanly with a task having just drained (shutdown ordering).
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 40; ++round) {
    ThreadPool pool(4);
    pool.run_on_all([&](unsigned) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 40u * 4u);
}

TEST(ThreadPoolStress, ImmediateDestructionWithoutWork) {
  // Workers may still be parking in their wait loop when stop is requested.
  for (int round = 0; round < 40; ++round) {
    ThreadPool pool(4);
  }
}

TEST(ThreadPoolStress, ManyGenerationsOnOnePool) {
  // The generation counter must keep workers and the waiter in lockstep
  // across many consecutive run_on_all calls.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int gen = 0; gen < 300; ++gen) {
    pool.run_on_all([&](unsigned) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 300u * 4u);
}

TEST(ThreadPoolStress, WorkerExceptionRethrownAndPoolReusable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_on_all([](unsigned t) {
                 if (t == 0) throw std::runtime_error("worker failure");
               }),
               std::runtime_error);
  // A failed generation must not wedge the pool.
  std::atomic<std::uint64_t> total{0};
  pool.run_on_all([&](unsigned) { total.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(total.load(), 4u);
}

TEST(ParallelForStress, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(pool, n, 7, [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForStress, PreCancelledTokenProcessesNothing) {
  // Workers check the token before claiming each block, so a token that is
  // already cancelled on entry deterministically claims zero blocks.
  ThreadPool pool(4);
  CancellationToken token;
  token.cancel();
  std::atomic<std::uint64_t> blocks{0};
  const WorkStats stats = parallel_for_blocked(
      pool, 5000, 1,
      [&](std::size_t, std::size_t, unsigned) -> std::uint64_t {
        blocks.fetch_add(1, std::memory_order_relaxed);
        return 1;
      },
      &token);
  EXPECT_EQ(blocks.load(), 0u);
  EXPECT_EQ(stats.total_work(), 0u);
}

TEST(ParallelForStress, MidSweepCancellationStopsEarlyAndTokenIsReusable) {
  ThreadPool pool(4);
  CancellationToken token;
  const std::size_t n = 20000;
  std::atomic<std::uint64_t> blocks{0};
  parallel_for_blocked(
      pool, n, 1,
      [&](std::size_t, std::size_t, unsigned) -> std::uint64_t {
        token.cancel();  // first executed block stops the sweep
        blocks.fetch_add(1, std::memory_order_relaxed);
        return 1;
      },
      &token);
  EXPECT_GE(blocks.load(), 1u);
  EXPECT_LT(blocks.load(), n);

  // reset() re-arms the token; the next sweep must run to completion.
  token.reset();
  std::atomic<std::uint64_t> full{0};
  parallel_for_blocked(
      pool, n, 64,
      [&](std::size_t b, std::size_t e, unsigned) -> std::uint64_t {
        full.fetch_add(e - b, std::memory_order_relaxed);
        return e - b;
      },
      &token);
  EXPECT_EQ(full.load(), n);
}

TEST(ParallelForStress, BodyExceptionCancelsSweepAndRethrows) {
  ThreadPool pool(4);
  const std::size_t n = 20000;
  std::atomic<std::uint64_t> blocks{0};
  EXPECT_THROW(
      parallel_for_blocked(pool, n, 1,
                           [&](std::size_t, std::size_t, unsigned) -> std::uint64_t {
                             blocks.fetch_add(1, std::memory_order_relaxed);
                             throw std::runtime_error("body failure");
                           }),
      std::runtime_error);
  EXPECT_LT(blocks.load(), n);
}

TEST(MetricsStress, ShardedCounterExactUnderContention) {
  obs::Counter& c = obs::registry().counter("stress.counter_exactness");
  c.reset();
  ThreadPool pool(8);
  constexpr std::uint64_t kPerThread = 20000;
  pool.run_on_all([&](unsigned) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) c.increment();
  });
  EXPECT_EQ(c.value(), 8u * kPerThread);
}

TEST(MetricsStress, HistogramExactUnderContention) {
  const std::vector<double> bounds = obs::integer_buckets(8);
  obs::Histogram& h = obs::registry().histogram("stress.histogram_exactness", bounds);
  h.reset();
  ThreadPool pool(8);
  constexpr std::uint64_t kPerThread = 5000;
  pool.run_on_all([&](unsigned t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(static_cast<double>(t % 9));
  });
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.total, 8u * kPerThread);
  std::uint64_t sum = 0;
  for (std::uint64_t count : snap.counts) sum += count;
  EXPECT_EQ(sum, snap.total);
}

TEST(MetricsStress, GaugeRecordMaxUnderContention) {
  obs::Gauge& g = obs::registry().gauge("stress.gauge_max");
  g.reset();
  ThreadPool pool(8);
  pool.run_on_all([&](unsigned t) {
    for (int i = 0; i < 2000; ++i) g.record_max(static_cast<double>(t * 1000 + i));
  });
  EXPECT_EQ(g.max(), 7 * 1000 + 1999);
}

// ---------------------------------------------------------------------------
// Parallel evaluators. Each target's accumulation is thread-private and
// blocks partition the target range, so results must be *bitwise* identical
// across thread counts and block sizes — any divergence (or TSan report)
// means a worker touched state it does not own.

class EvaluatorStress : public ::testing::Test {
 protected:
  EvaluatorStress()
      : tree_(dist::overlapped_gaussians(2000, 3, 99, 0.08,
                                         dist::ChargeModel::kMixedSign)) {}

  EvalConfig config(unsigned threads, std::size_t block_size = 64) const {
    EvalConfig cfg;
    cfg.mode = DegreeMode::kAdaptive;
    cfg.degree = 2;
    cfg.threads = threads;
    cfg.block_size = block_size;
    return cfg;
  }

  Tree tree_;
};

TEST_F(EvaluatorStress, BarnesHutBitwiseDeterministicAcrossSchedules) {
  EvalConfig serial = config(1);
  serial.track_error_bounds = true;
  const EvalResult reference = evaluate_potentials(tree_, serial, Method::kBarnesHut);
  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const std::size_t block : {std::size_t{16}, std::size_t{64}}) {
      EvalConfig cfg = config(threads, block);
      cfg.track_error_bounds = true;
      const EvalResult r = evaluate_potentials(tree_, cfg, Method::kBarnesHut);
      EXPECT_EQ(r.potential, reference.potential)
          << "threads=" << threads << " block=" << block;
      EXPECT_EQ(r.error_bound, reference.error_bound);
    }
  }
}

TEST_F(EvaluatorStress, FmmBitwiseDeterministicAcrossSchedules) {
  const EvalResult reference = evaluate_potentials(tree_, config(1), Method::kFmm);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const EvalResult r = evaluate_potentials(tree_, config(threads), Method::kFmm);
    EXPECT_EQ(r.potential, reference.potential) << "threads=" << threads;
  }
}

// The engine's replay must hold the same bitwise-determinism contract as
// the fresh evaluators: the plan partitions targets, each slot is written
// by exactly one worker, and the accumulation order per target is frozen
// in the plan — independent of thread count, block size, or which worker
// claims which block. Run under TSan these also certify the compile /
// refresh / replay phases race-free.
class EngineStress : public EvaluatorStress {
 protected:
  static std::vector<Vec3> targets() {
    std::vector<Vec3> t;
    t.reserve(400);
    for (int i = 0; i < 400; ++i) {
      const double s = static_cast<double>(i) / 400.0;
      t.push_back({1.2 * s - 0.1, 0.9 * s * s, 0.3 + 0.5 * s});
    }
    return t;
  }

  std::vector<double> charges(double scale) const {
    std::vector<double> q(tree_.source_size());
    for (std::size_t i = 0; i < q.size(); ++i) {
      q[i] = scale * (1.0 + 0.25 * static_cast<double>(i % 17));
    }
    return q;
  }
};

TEST_F(EngineStress, ReplayBitwiseDeterministicAcrossSchedules) {
  const std::vector<Vec3> pts = targets();
  engine::EvalSession serial(Tree(tree_), config(1));
  const EvalResult reference = serial.evaluate_at(pts);
  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const std::size_t block : {std::size_t{16}, std::size_t{64}}) {
      engine::EvalSession session(Tree(tree_), config(threads, block));
      const EvalResult r = session.evaluate_at(pts);
      EXPECT_EQ(r.potential, reference.potential)
          << "threads=" << threads << " block=" << block;
      // Warm replay of the cached plan must reproduce itself exactly.
      const EvalResult again = session.evaluate_at(pts);
      EXPECT_EQ(again.potential, r.potential);
    }
  }
}

TEST_F(EngineStress, ReplayAfterChargeUpdateBitwiseAcrossSchedules) {
  const std::vector<Vec3> pts = targets();
  const std::vector<double> q = charges(0.75);
  engine::EvalSession serial(Tree(tree_), config(1));
  serial.update_charges(q);
  const EvalResult reference = serial.evaluate_at(pts);
  for (const unsigned threads : {2u, 4u, 8u}) {
    engine::EvalSession session(Tree(tree_), config(threads));
    (void)session.evaluate_at(pts);  // compile + first refresh at old charges
    session.update_charges(q);       // lazy partial re-refresh path
    const EvalResult r = session.evaluate_at(pts);
    EXPECT_EQ(r.potential, reference.potential) << "threads=" << threads;
  }
}

// The audit engine's determinism contract: counter-based sampling keys
// depend only on (seed, target, per-target acceptance ordinal), so the
// audited sample set — and every statistic derived from it — must be
// bitwise identical no matter how targets are partitioned across threads
// and blocks. Under TSan these also certify the per-thread reservoirs and
// the merge as race-free.
TEST_F(EvaluatorStress, AuditBitwiseDeterministicAcrossSchedules) {
  EvalConfig serial = config(1);
  serial.audit_samples = 24;
  serial.audit_seed = 11;
  const EvalResult reference = evaluate_potentials(tree_, serial, Method::kBarnesHut);
  ASSERT_EQ(reference.stats.audit_samples, 24u);
  ASSERT_EQ(reference.stats.audit_bound_violations, 0u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const std::size_t block : {std::size_t{16}, std::size_t{64}}) {
      EvalConfig cfg = config(threads, block);
      cfg.audit_samples = 24;
      cfg.audit_seed = 11;
      const EvalResult r = evaluate_potentials(tree_, cfg, Method::kBarnesHut);
      EXPECT_EQ(r.potential, reference.potential)
          << "threads=" << threads << " block=" << block;
      EXPECT_EQ(r.stats.audit_samples, reference.stats.audit_samples);
      EXPECT_EQ(r.stats.audit_bound_violations, reference.stats.audit_bound_violations);
      EXPECT_EQ(r.stats.audit_max_tightness, reference.stats.audit_max_tightness)
          << "threads=" << threads << " block=" << block;
      EXPECT_EQ(r.stats.audit_mean_tightness, reference.stats.audit_mean_tightness)
          << "threads=" << threads << " block=" << block;
    }
  }
}

TEST_F(EngineStress, ReplayAuditBitwiseDeterministicAcrossSchedules) {
  const std::vector<Vec3> pts = targets();
  EvalConfig serial = config(1);
  serial.audit_samples = 16;
  serial.audit_seed = 5;
  engine::EvalSession ref_session(Tree(tree_), serial);
  const EvalResult reference = ref_session.evaluate_at(pts);
  ASSERT_GT(reference.stats.audit_samples, 0u);
  for (const unsigned threads : {2u, 4u, 8u}) {
    for (const std::size_t block : {std::size_t{16}, std::size_t{64}}) {
      EvalConfig cfg = config(threads, block);
      cfg.audit_samples = 16;
      cfg.audit_seed = 5;
      engine::EvalSession session(Tree(tree_), cfg);
      const EvalResult r = session.evaluate_at(pts);
      EXPECT_EQ(r.potential, reference.potential)
          << "threads=" << threads << " block=" << block;
      EXPECT_EQ(r.stats.audit_samples, reference.stats.audit_samples);
      EXPECT_EQ(r.stats.audit_max_tightness, reference.stats.audit_max_tightness)
          << "threads=" << threads << " block=" << block;
      EXPECT_EQ(r.stats.audit_mean_tightness, reference.stats.audit_mean_tightness)
          << "threads=" << threads << " block=" << block;
    }
  }
}

TEST(RecorderStress, ConcurrentRecordersAndSnapshotReaders) {
  // Writers hammer the ring from 6 threads while 2 threads repeatedly
  // snapshot it: TSan certifies the seqlock slots race-free, and every
  // snapshot must be internally consistent (strictly increasing seqs,
  // valid categories, non-null labels) even mid-overwrite.
  namespace rec = obs::recorder;
  rec::reset();
  rec::start();
  constexpr int kWriters = 6;
  constexpr std::uint64_t kPerWriter = 30000;
  ThreadPool pool(kWriters);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::vector<std::jthread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const std::vector<rec::Event> events = rec::events();
        for (std::size_t j = 1; j < events.size(); ++j) {
          ASSERT_LT(events[j - 1].seq, events[j].seq);
        }
        for (const rec::Event& e : events) {
          ASSERT_NE(e.label, nullptr);
          ASSERT_LE(static_cast<int>(e.category), static_cast<int>(rec::Category::kCustom));
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  pool.run_on_all([&](unsigned t) {
    for (std::uint64_t i = 0; i < kPerWriter; ++i) {
      rec::record(rec::Category::kCustom, "stress.tick",
                  static_cast<double>(t) * 1e6 + static_cast<double>(i));
    }
  });
  done.store(true, std::memory_order_release);
  readers.clear();  // join
  EXPECT_EQ(rec::recorded_count(), kWriters * kPerWriter);
  EXPECT_GT(snapshots.load(), 0u);
  const std::vector<rec::Event> final_events = rec::events();
  EXPECT_EQ(final_events.size(), rec::kCapacity);
  rec::reset();
}

TEST(TelemetryStress, ConcurrentEmittersWithSinkAndReaders) {
  // Same seqlock contract as RecorderStress, for the request-telemetry
  // ring — with the JSONL sink armed so the mutex-serialized append path
  // runs concurrently too. Writers stamp a per-record relation
  // (targets == plan_key * 3 + 1); any torn slot a reader surfaced would
  // break it. No record may be lost: emitted_count is exact.
  namespace tel = obs::telemetry;
  tel::reset();
  const std::string sink = ::testing::TempDir() + "/telemetry_stress.jsonl";
  std::remove(sink.c_str());
  tel::enable();
  tel::set_sink(sink, /*rotate_bytes=*/64 * 1024, /*max_files=*/2);
  constexpr int kWriters = 6;
  constexpr std::uint64_t kPerWriter = 4000;
  ThreadPool pool(kWriters);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::vector<std::jthread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const std::vector<tel::RequestRecord> records = tel::records();
        for (std::size_t j = 1; j < records.size(); ++j) {
          ASSERT_LT(records[j - 1].seq, records[j].seq);
        }
        for (const tel::RequestRecord& r : records) {
          ASSERT_EQ(r.targets, r.plan_key * 3 + 1);
          ASSERT_NE(r.outcome_name, nullptr);
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  pool.run_on_all([&](unsigned t) {
    for (std::uint64_t i = 0; i < kPerWriter; ++i) {
      tel::RequestRecord r;
      r.api = tel::Api::kEvaluatePlan;
      r.plan_key = static_cast<std::uint64_t>(t) * kPerWriter + i;
      r.targets = r.plan_key * 3 + 1;
      r.wall_seconds = 1e-6 * static_cast<double>(i);
      tel::emit(r);
    }
  });
  done.store(true, std::memory_order_release);
  readers.clear();  // join
  EXPECT_EQ(tel::emitted_count(), kWriters * kPerWriter);
  EXPECT_GT(snapshots.load(), 0u);
  const std::vector<tel::RequestRecord> final_records = tel::records();
  EXPECT_EQ(final_records.size(), tel::kRingCapacity);
  for (const tel::RequestRecord& r : final_records) {
    EXPECT_EQ(r.targets, r.plan_key * 3 + 1);
  }
  tel::close_sink();
  // Every sink line is whole: the mutex serialized appends, so each parses
  // and satisfies the same relation (no torn or interleaved writes).
  std::ifstream in(sink);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t parsed = 0;
  while (std::getline(in, line)) {
    const obs::Json j = obs::Json::parse(line);
    const std::uint64_t key =
        std::stoull(j.at("plan_key").as_string(), nullptr, 16);
    ASSERT_EQ(static_cast<std::uint64_t>(j.at("targets").as_int()), key * 3 + 1);
    ++parsed;
  }
  EXPECT_GT(parsed, 0u);
  tel::reset();
  std::remove(sink.c_str());
  std::remove((sink + ".1").c_str());
}

TEST(ReqTraceStress, ConcurrentSpanWritersFinishersAndReaders) {
  // Same seqlock contract for the request-trace span rings: 6 writer
  // threads hammer record_span (with periodic finish_request calls so the
  // sampler mutex runs concurrently too) while 2 readers snapshot
  // retained(). Writers stamp a per-span relation (end == start + 1,
  // parent == span_id ^ mask); a torn slot surfacing in a snapshot would
  // break it — TSan certifies the slots race-free, the relation certifies
  // the torn-read filter works even in plain builds.
  namespace rt = obs::reqtrace;
  rt::reset();
  rt::SamplerConfig trace_config;
  trace_config.seed = 9;
  trace_config.sample_rate = 0.0;
  rt::enable(trace_config);
  if (!rt::enabled()) {
    GTEST_SKIP() << "tracing compiled out (TREECODE_TRACING=OFF)";
  }
  // Pre-retained traces the writers append spans into.
  std::array<rt::TraceContext, 4> hot{};
  for (rt::TraceContext& ctx : hot) {
    ctx = rt::mint_request();
    rt::finish_request(ctx, rt::Verdict{.ok = false});
  }
  constexpr unsigned kWriters = 6;
  constexpr std::uint64_t kPerWriter = 20000;
  constexpr std::uint64_t kParentMask = 0x5a5a5a5a5a5a5a5aULL;
  ThreadPool pool(kWriters);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::vector<std::jthread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (const rt::RetainedTrace& trace : rt::retained()) {
          for (const rt::SpanRecord& span : trace.spans) {
            if (span.kind != rt::SpanKind::kPhase) continue;
            ASSERT_EQ(span.end_us, span.start_us + 1);
            ASSERT_EQ(span.parent_span_id, span.span_id ^ kParentMask);
          }
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  pool.run_on_all([&](unsigned t) {
    for (std::uint64_t i = 0; i < kPerWriter; ++i) {
      rt::TraceContext ctx = hot[(t + i) % hot.size()];
      ctx.span_id = (t + 1) * 1000000000ULL + i + 1;
      ctx.parent_span_id = ctx.span_id ^ kParentMask;
      rt::record_span(ctx, "stress.span", rt::SpanKind::kPhase,
                      static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(i) + 1);
      if ((i & 2047) == 0) {
        rt::finish_request(rt::mint_request(), rt::Verdict{.ok = false});
      }
    }
  });
  done.store(true, std::memory_order_release);
  readers.clear();  // join
  EXPECT_GT(snapshots.load(), 0u);
  // The final quiescent snapshot obeys the same relation.
  for (const rt::RetainedTrace& trace : rt::retained()) {
    for (const rt::SpanRecord& span : trace.spans) {
      if (span.kind != rt::SpanKind::kPhase) continue;
      EXPECT_EQ(span.end_us, span.start_us + 1);
      EXPECT_EQ(span.parent_span_id, span.span_id ^ kParentMask);
    }
  }
  rt::reset();
}

TEST(PlanCacheStress, ConcurrentFindInsertClearUnderEvictionPressure) {
  // The cache is the one engine structure shared across threads without the
  // session's serialization (a diagnostics thread may clear() while a serve
  // thread compiles). Hammer find/insert/clear from several threads with a
  // byte capacity small enough that inserts constantly evict; TSan certifies
  // the mutex covers every ledger update, and the byte ledger must return to
  // a consistent state afterwards.
  engine::PlanCache cache(4, 6000);
  auto make = [](std::uint64_t key) {
    auto plan = std::make_shared<engine::EvalPlan>();
    plan->key = key;
    plan->targets = {{static_cast<double>(key), 0.0, 0.0}};
    plan->self = false;
    plan->entries.assign(200 + static_cast<std::size_t>(key % 7) * 50, 0);
    return plan;
  };
  constexpr int kThreads = 6;
  constexpr std::uint64_t kOpsPerThread = 4000;
  std::atomic<std::uint64_t> verified_hits{0};
  {
    std::vector<std::jthread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
          const std::uint64_t key = (static_cast<std::uint64_t>(t) * 31 + i) % 11;
          switch (i % 4) {
            case 0:
            case 1: {
              const auto plan = make(key);
              if (const auto hit = cache.find(key, plan->targets, false)) {
                // A verified hit must be exactly the plan inserted under
                // this key: same target, never a torn or foreign plan.
                ASSERT_EQ(hit->key, key);
                ASSERT_EQ(hit->targets[0].x, static_cast<double>(key));
                verified_hits.fetch_add(1, std::memory_order_relaxed);
              }
              break;
            }
            case 2:
              cache.insert(make(key));
              break;
            default:
              if (i % 512 == 3) cache.clear();
              break;
          }
        }
      });
    }
  }
  EXPECT_GT(verified_hits.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_LE(cache.bytes(), cache.byte_capacity());
  // The ledger reconciles: a final clear leaves exactly nothing accounted.
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.basis_bytes(), 0u);
}

TEST_F(EvaluatorStress, ConcurrentEvaluationsOnSharedTree) {
  // The Tree is immutable after build; two parallel evaluations reading it
  // concurrently (each with its own pool) must not interfere.
  const EvalResult reference = evaluate_potentials(tree_, config(1), Method::kBarnesHut);
  std::vector<EvalResult> results(4);
  {
    std::vector<std::jthread> threads;
    threads.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      threads.emplace_back([&, i] {
        results[i] = evaluate_potentials(tree_, config(2), Method::kBarnesHut);
      });
    }
  }
  for (const EvalResult& r : results) {
    EXPECT_EQ(r.potential, reference.potential);
  }
}

}  // namespace
}  // namespace treecode
