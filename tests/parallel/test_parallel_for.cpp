#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace treecode {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {0u, 1u, 4u}) {
    ThreadPool pool(threads);
    const std::size_t n = 1003;  // deliberately not a multiple of block size
    std::vector<std::atomic<int>> hits(n);
    parallel_for(pool, n, 16, [&](std::size_t b, std::size_t e, unsigned) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, EmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 0, 8, [&](std::size_t, std::size_t, unsigned) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, ZeroBlockSizeTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 10, 0, [&](std::size_t b, std::size_t e, unsigned) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelForBlocked, AccumulatesWorkPerThread) {
  ThreadPool pool(4);
  const std::size_t n = 4096;
  const WorkStats stats = parallel_for_blocked(
      pool, n, 32, [](std::size_t b, std::size_t e, unsigned) -> std::uint64_t {
        return (e - b) * 3;  // cost 3 per element
      });
  EXPECT_EQ(stats.work.size(), 4u);
  EXPECT_EQ(stats.total_work(), n * 3);
  EXPECT_GE(stats.max_work(), stats.total_work() / 4);
}

TEST(WorkStats, LoadBalanceAndSpeedup) {
  WorkStats s;
  s.work = {100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(s.load_balance(), 1.0);
  EXPECT_DOUBLE_EQ(s.modeled_speedup(), 4.0);
  s.work = {400, 0, 0, 0};
  EXPECT_DOUBLE_EQ(s.load_balance(), 0.25);
  EXPECT_DOUBLE_EQ(s.modeled_speedup(), 1.0);
  s.work = {};
  EXPECT_DOUBLE_EQ(s.load_balance(), 1.0);
  EXPECT_DOUBLE_EQ(s.modeled_speedup(), 1.0);
}

TEST(Cancellation, PreCancelledTokenRunsNothing) {
  for (unsigned threads : {0u, 4u}) {
    ThreadPool pool(threads);
    CancellationToken token;
    token.cancel();
    std::atomic<int> blocks{0};
    parallel_for(
        pool, 1000, 10,
        [&](std::size_t, std::size_t, unsigned) { blocks.fetch_add(1); }, &token);
    EXPECT_EQ(blocks.load(), 0) << "threads=" << threads;
  }
}

TEST(Cancellation, BodyExceptionPropagatesAndStopsEarly) {
  ThreadPool pool(4);
  const std::size_t n = 10'000;
  const std::size_t block = 10;  // 1000 blocks total
  std::atomic<int> blocks{0};
  auto body = [&](std::size_t b, std::size_t, unsigned) {
    if (b == 0) throw std::runtime_error("boom at block zero");
    blocks.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  try {
    parallel_for(pool, n, block, body);
    FAIL() << "expected the body exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at block zero");
  }
  // Cancellation is cooperative, so a handful of in-flight blocks may
  // finish — but nowhere near the full sweep.
  EXPECT_LT(blocks.load(), static_cast<int>(n / block) / 2);
}

TEST(Cancellation, SerialPoolStopsAtThrowingBlock) {
  ThreadPool pool(0);  // inline execution: deterministic block order
  std::atomic<int> blocks{0};
  auto body = [&](std::size_t b, std::size_t, unsigned) {
    if (b >= 50) throw std::logic_error("halt");
    blocks.fetch_add(1);
  };
  EXPECT_THROW(parallel_for(pool, 1000, 10, body), std::logic_error);
  EXPECT_EQ(blocks.load(), 5);  // blocks 0..40 ran, block 50 threw
}

TEST(Cancellation, BodyCanCancelWithoutThrowing) {
  ThreadPool pool(4);
  CancellationToken token;
  std::atomic<int> blocks{0};
  const WorkStats stats = parallel_for_blocked(
      pool, 10'000, 10,
      [&](std::size_t b, std::size_t e, unsigned) -> std::uint64_t {
        blocks.fetch_add(1);
        if (b >= 100) token.cancel();  // stop the sweep partway through
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return e - b;
      },
      &token);
  EXPECT_TRUE(token.cancelled());
  EXPECT_GT(blocks.load(), 0);
  EXPECT_LT(blocks.load(), 500);
  EXPECT_LT(stats.total_work(), 10'000u);  // partial sweep reflected in stats
}

TEST(Cancellation, TokenResetAllowsReuse) {
  ThreadPool pool(2);
  CancellationToken token;
  token.cancel();
  ASSERT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
  std::atomic<int> total{0};
  parallel_for(
      pool, 100, 10,
      [&](std::size_t b, std::size_t e, unsigned) {
        total.fetch_add(static_cast<int>(e - b));
      },
      &token);
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelFor, DeterministicResultRegardlessOfThreads) {
  // Summing per-index values into per-index slots is deterministic; this
  // guards the scheduling machinery against skipped/duplicated blocks.
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    const std::size_t n = 2048;
    std::vector<double> out(n, 0.0);
    parallel_for(pool, n, 64, [&](std::size_t b, std::size_t e, unsigned) {
      for (std::size_t i = b; i < e; ++i) out[i] = static_cast<double>(i) * 0.5;
    });
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double serial = run(0);
  EXPECT_DOUBLE_EQ(run(2), serial);
  EXPECT_DOUBLE_EQ(run(8), serial);
}

}  // namespace
}  // namespace treecode
