#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace treecode {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {0u, 1u, 4u}) {
    ThreadPool pool(threads);
    const std::size_t n = 1003;  // deliberately not a multiple of block size
    std::vector<std::atomic<int>> hits(n);
    parallel_for(pool, n, 16, [&](std::size_t b, std::size_t e, unsigned) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads=" << threads;
    }
  }
}

TEST(ParallelFor, EmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 0, 8, [&](std::size_t, std::size_t, unsigned) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, ZeroBlockSizeTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 10, 0, [&](std::size_t b, std::size_t e, unsigned) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelForBlocked, AccumulatesWorkPerThread) {
  ThreadPool pool(4);
  const std::size_t n = 4096;
  const WorkStats stats = parallel_for_blocked(
      pool, n, 32, [](std::size_t b, std::size_t e, unsigned) -> std::uint64_t {
        return (e - b) * 3;  // cost 3 per element
      });
  EXPECT_EQ(stats.work.size(), 4u);
  EXPECT_EQ(stats.total_work(), n * 3);
  EXPECT_GE(stats.max_work(), stats.total_work() / 4);
}

TEST(WorkStats, LoadBalanceAndSpeedup) {
  WorkStats s;
  s.work = {100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(s.load_balance(), 1.0);
  EXPECT_DOUBLE_EQ(s.modeled_speedup(), 4.0);
  s.work = {400, 0, 0, 0};
  EXPECT_DOUBLE_EQ(s.load_balance(), 0.25);
  EXPECT_DOUBLE_EQ(s.modeled_speedup(), 1.0);
  s.work = {};
  EXPECT_DOUBLE_EQ(s.load_balance(), 1.0);
  EXPECT_DOUBLE_EQ(s.modeled_speedup(), 1.0);
}

TEST(ParallelFor, DeterministicResultRegardlessOfThreads) {
  // Summing per-index values into per-index slots is deterministic; this
  // guards the scheduling machinery against skipped/duplicated blocks.
  auto run = [](unsigned threads) {
    ThreadPool pool(threads);
    const std::size_t n = 2048;
    std::vector<double> out(n, 0.0);
    parallel_for(pool, n, 64, [&](std::size_t b, std::size_t e, unsigned) {
      for (std::size_t i = b; i < e; ++i) out[i] = static_cast<double>(i) * 0.5;
    });
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  const double serial = run(0);
  EXPECT_DOUBLE_EQ(run(2), serial);
  EXPECT_DOUBLE_EQ(run(8), serial);
}

}  // namespace
}  // namespace treecode
