#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace treecode {
namespace {

TEST(ThreadPool, InlineModeRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.width(), 1u);
  int calls = 0;
  pool.run_on_all([&](unsigned t) {
    EXPECT_EQ(t, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SingleThreadIsAlsoInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.width(), 1u);
}

TEST(ThreadPool, AllWorkersParticipate) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.width(), 4u);
  std::mutex m;
  std::set<unsigned> seen;
  pool.run_on_all([&](unsigned t) {
    std::lock_guard lock(m);
    seen.insert(t);
  });
  EXPECT_EQ(seen, (std::set<unsigned>{0, 1, 2, 3}));
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.run_on_all([&](unsigned) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 60);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run_on_all([](unsigned t) {
        if (t == 0) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> counter{0};
  pool.run_on_all([&](unsigned) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, HardwareThreadsNonZero) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace treecode
