#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "analysis/invariants.hpp"
#include "core/treecode.hpp"
#include "dist/distributions.hpp"

namespace treecode {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

ParticleSystem clustered(std::size_t n, unsigned seed) {
  return dist::overlapped_gaussians(n, 3, seed, 0.08, dist::ChargeModel::kMixedSign);
}

// ---------------------------------------------------------------------------
// Clean structures pass.

TEST(Invariants, CleanTreesPassAcrossConfigurations) {
  const ParticleSystem ps = clustered(1500, 42);
  for (const Ordering ordering : {Ordering::kHilbert, Ordering::kMorton}) {
    for (const bool collapse : {false, true}) {
      for (const std::size_t leaf : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
        TreeConfig cfg;
        cfg.ordering = ordering;
        cfg.collapse_chains = collapse;
        cfg.leaf_capacity = leaf;
        const Tree tree(ps, cfg);
        const analysis::InvariantReport report = analysis::check_tree(tree);
        EXPECT_TRUE(report.ok()) << report.summary();
        EXPECT_EQ(report.nodes_checked, tree.num_nodes());
      }
    }
  }
}

TEST(Invariants, EmptyAndSingleParticleTreesPass) {
  EXPECT_TRUE(analysis::check_tree(Tree(ParticleSystem{})).ok());
  ParticleSystem one;
  one.add({0.25, 0.5, 0.75}, 3.0);
  EXPECT_TRUE(analysis::check_tree(Tree(one)).ok());
}

TEST(Invariants, SanitizedTreePasses) {
  ParticleSystem ps = clustered(400, 7);
  ps.add({kNan, 0.0, 0.0}, 1.0);
  const Tree tree(ps, {.validation = ValidationPolicy::kSanitize});
  const analysis::InvariantReport report = analysis::check_tree(tree);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Invariants, DegreeTablesPassForEveryModeLawAndReference) {
  const Tree tree(clustered(1200, 5));
  for (const DegreeMode mode : {DegreeMode::kFixed, DegreeMode::kAdaptive}) {
    for (const DegreeLaw law : {DegreeLaw::kCharge, DegreeLaw::kChargeOverSize}) {
      for (const DegreeReference ref :
           {DegreeReference::kMinLeaf, DegreeReference::kMeanLeaf}) {
        EvalConfig cfg;
        cfg.mode = mode;
        cfg.law = law;
        cfg.reference = ref;
        cfg.degree = 3;
        const DegreeAssignment degrees = assign_degrees(tree, cfg);
        const analysis::InvariantReport report = analysis::check_degrees(tree, degrees, cfg);
        EXPECT_TRUE(report.ok()) << report.summary();
      }
    }
  }
}

TEST(Invariants, EvaluationResultsPassForAllMethods) {
  const Tree tree(clustered(800, 11));
  EvalConfig cfg;
  cfg.mode = DegreeMode::kAdaptive;
  cfg.degree = 3;
  cfg.compute_gradient = true;
  cfg.track_error_bounds = true;
  const DegreeAssignment degrees = assign_degrees(tree, cfg);
  for (const Method m : {Method::kBarnesHut, Method::kFmm, Method::kDirect}) {
    EvalConfig method_cfg = cfg;
    if (m != Method::kBarnesHut) method_cfg.track_error_bounds = false;
    const EvalResult r = evaluate_potentials(tree, method_cfg, m);
    const analysis::InvariantReport report =
        analysis::check_eval_result(r, method_cfg, tree.source_size(), &degrees);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

TEST(Invariants, BudgetEnforcedResultPasses) {
  const Tree tree(clustered(600, 13));
  EvalConfig cfg;
  cfg.enforce_budget = true;
  cfg.error_budget = 1e-3;
  const EvalResult r = evaluate_potentials(tree, cfg);
  const analysis::InvariantReport report =
      analysis::check_eval_result(r, cfg, tree.source_size());
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Corruption is detected. check_nodes takes an explicit node array so these
// tests can tamper with copies of a genuine tree's nodes.

class CorruptionTest : public ::testing::Test {
 protected:
  CorruptionTest() : tree_(clustered(700, 23)), nodes_(tree_.nodes()) {}

  /// First internal node with at least 2 children (guaranteed to exist at
  /// this size), for child-topology tampering.
  std::size_t internal_node() const {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!nodes_[i].is_leaf() && nodes_[i].num_children >= 2) return i;
    }
    ADD_FAILURE() << "no internal node in fixture tree";
    return 0;
  }

  analysis::InvariantReport check() const {
    return analysis::check_nodes(nodes_, tree_.positions(), tree_.charges());
  }

  Tree tree_;
  std::vector<TreeNode> nodes_;
};

TEST_F(CorruptionTest, CleanCopyPasses) { EXPECT_TRUE(check().ok()); }

TEST_F(CorruptionTest, TamperedAbsChargeDetected) {
  nodes_[0].abs_charge *= 1.5;
  const auto report = check();
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("abs_charge"), std::string::npos) << report.summary();
}

TEST_F(CorruptionTest, TamperedNetChargeDetected) {
  nodes_[internal_node()].net_charge += 0.5;
  EXPECT_FALSE(check().ok());
}

TEST_F(CorruptionTest, ShrunkBoundingSphereDetected) {
  // A radius that no longer bounds its members breaks the MAC's premise.
  TreeNode& node = nodes_[0];
  node.radius *= 0.5;
  const auto report = check();
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("outside radius"), std::string::npos) << report.summary();
}

TEST_F(CorruptionTest, InflatedBoundingSphereDetected) {
  // Sound but not tight: an inflated radius silently rejects MAC-acceptable
  // interactions (pure performance loss) — the walk still flags it.
  nodes_[0].radius *= 4.0;
  const auto report = check();
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("not tight"), std::string::npos) << report.summary();
}

TEST_F(CorruptionTest, DisplacedExpansionCenterDetected) {
  TreeNode& node = nodes_[0];
  node.center = node.center + Vec3{10.0, 0.0, 0.0};
  EXPECT_FALSE(check().ok());
}

TEST_F(CorruptionTest, NonFiniteRadiusDetected) {
  nodes_[0].radius = kNan;
  EXPECT_FALSE(check().ok());
}

TEST_F(CorruptionTest, BrokenChildPartitionDetected) {
  const std::size_t i = internal_node();
  TreeNode& child = nodes_[static_cast<std::size_t>(nodes_[i].first_child)];
  child.end -= 1;  // children no longer tile the parent range
  EXPECT_FALSE(check().ok());
}

TEST_F(CorruptionTest, BrokenParentLinkDetected) {
  const std::size_t i = internal_node();
  nodes_[static_cast<std::size_t>(nodes_[i].first_child)].parent = -1;
  EXPECT_FALSE(check().ok());
}

TEST_F(CorruptionTest, NonIncreasingLevelDetected) {
  const std::size_t i = internal_node();
  nodes_[static_cast<std::size_t>(nodes_[i].first_child)].level = nodes_[i].level;
  EXPECT_FALSE(check().ok());
}

TEST_F(CorruptionTest, OutOfRangeChildIndexDetected) {
  nodes_[internal_node()].first_child = static_cast<int>(nodes_.size());
  EXPECT_FALSE(check().ok());
}

TEST(InvariantsDegrees, TamperedDegreeEntryDetected) {
  const Tree tree(clustered(500, 31));
  EvalConfig cfg;
  cfg.mode = DegreeMode::kAdaptive;
  DegreeAssignment degrees = assign_degrees(tree, cfg);
  degrees.degree[tree.num_nodes() / 2] += 2;
  EXPECT_FALSE(analysis::check_degrees(tree, degrees, cfg).ok());
}

TEST(InvariantsDegrees, WrongReferenceChargeDetected) {
  const Tree tree(clustered(500, 37));
  EvalConfig cfg;
  cfg.mode = DegreeMode::kAdaptive;
  DegreeAssignment degrees = assign_degrees(tree, cfg);
  degrees.reference_charge *= 3.0;
  EXPECT_FALSE(analysis::check_degrees(tree, degrees, cfg).ok());
}

TEST(InvariantsEval, NonFinitePotentialDetected) {
  EvalResult r;
  r.potential = {1.0, kNan, 3.0};
  EvalConfig cfg;
  EXPECT_FALSE(analysis::check_eval_result(r, cfg, 3).ok());
}

TEST(InvariantsEval, SizeMismatchDetected) {
  EvalResult r;
  r.potential = {1.0, 2.0};
  EvalConfig cfg;
  EXPECT_FALSE(analysis::check_eval_result(r, cfg, 3).ok());
}

TEST(InvariantsEval, BudgetOverflowDetected) {
  EvalResult r;
  r.potential = {1.0};
  r.error_bound = {0.5};
  EvalConfig cfg;
  cfg.enforce_budget = true;
  cfg.error_budget = 1e-6;
  EXPECT_FALSE(analysis::check_eval_result(r, cfg, 1).ok());
}

TEST(InvariantsEval, RequireThrowsWithContextPrefix) {
  EvalResult r;
  r.potential = {kNan};
  EvalConfig cfg;
  const analysis::InvariantReport report = analysis::check_eval_result(r, cfg, 1);
  try {
    analysis::require(report, "test-context");
    FAIL() << "require() must throw on a failing report";
  } catch (const analysis::InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("test-context"), std::string::npos);
    EXPECT_FALSE(e.report().ok());
  }
}

TEST(InvariantsEval, RequirePassesCleanReport) {
  EvalResult r;
  r.potential = {1.0};
  EvalConfig cfg;
  EXPECT_NO_THROW(analysis::require(analysis::check_eval_result(r, cfg, 1), "ctx"));
}

}  // namespace
}  // namespace treecode
