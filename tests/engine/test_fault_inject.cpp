#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/treecode.hpp"
#include "dist/distributions.hpp"
#include "engine/eval_session.hpp"
#include "util/fault_inject.hpp"

namespace treecode {
namespace {

/// All tests here drive the TREECODE_FAULT_INJECT harness; in ungated
/// builds the sites compile to `return false` and there is nothing to test.
class FaultInject : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "built without TREECODE_FAULT_INJECT";
    }
    fault::reset();
    fault::set_seed(0x5eed);
  }
  void TearDown() override { fault::reset(); }
};

EvalConfig base_config() {
  EvalConfig cfg;
  cfg.alpha = 0.5;
  cfg.degree = 4;
  cfg.threads = 2;
  cfg.track_error_bounds = true;
  return cfg;
}

ParticleSystem clustered(std::size_t n, unsigned seed) {
  return dist::overlapped_gaussians(n, 3, seed, 0.08, dist::ChargeModel::kMixedSign);
}

std::vector<Vec3> grid_targets(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-0.2, 1.2);
  std::vector<Vec3> t(n);
  for (Vec3& x : t) x = {u(rng), u(rng), u(rng)};
  return t;
}

bool bitwise_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Reservation ordinals per public call (the harness's instruction set):
// compile = 1 plan commit, then 1 basis commit when any entry is covered;
// degraded serve adds 1 traversal reservation.

TEST_F(FaultInject, FirstAllocationDeniedDegradesToTraversal) {
  const ParticleSystem ps = clustered(800, 11);
  engine::EvalSession session(Tree(ps), base_config());
  const std::vector<Vec3> targets = grid_targets(100, 13);

  const EvalResult clean = session.evaluate_at(targets);
  session.cache().clear();

  fault::arm_nth(fault::Site::kEngineAlloc, 1);  // deny the plan commit
  auto r = session.try_evaluate_at(targets);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stats.served_rung, ServeRung::kTraversal);
  EXPECT_EQ(fault::fired(fault::Site::kEngineAlloc), 1u);
  EXPECT_TRUE(session.governor().last_denial_was_fault());
  // The degraded serve is the same traversal the plan encodes.
  EXPECT_TRUE(bitwise_equal(clean.potential, r.value().potential));
  EXPECT_TRUE(bitwise_equal(clean.error_bound, r.value().error_bound));
}

TEST_F(FaultInject, BasisDenialYieldsPlainReplayRung) {
  const ParticleSystem ps = clustered(800, 17);
  engine::EvalSession session(Tree(ps), base_config());
  const std::vector<Vec3> targets = grid_targets(100, 19);

  const EvalResult clean = session.evaluate_at(targets);
  session.cache().clear();

  fault::arm_nth(fault::Site::kEngineAlloc, 2);  // plan commits, basis denied
  auto r = session.try_evaluate_at(targets);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stats.served_rung, ServeRung::kPlainReplay);
  EXPECT_EQ(fault::fired(fault::Site::kEngineAlloc), 1u);
  // A basis-free plan replays through the full m2p kernel: identical bits.
  EXPECT_TRUE(bitwise_equal(clean.potential, r.value().potential));
  EXPECT_TRUE(bitwise_equal(clean.error_bound, r.value().error_bound));
}

TEST_F(FaultInject, EveryAllocationDeniedServesExactDirect) {
  const ParticleSystem ps = clustered(400, 23);
  engine::EvalSession session(Tree(ps), base_config());
  fault::arm_every(fault::Site::kEngineAlloc);
  auto r = session.try_evaluate_at(grid_targets(30, 29));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stats.served_rung, ServeRung::kDirect);
  for (const double b : r.value().error_bound) EXPECT_EQ(b, 0.0);
}

TEST_F(FaultInject, RungChoiceDeterministicAcrossThreadCounts) {
  const ParticleSystem ps = clustered(600, 31);
  const std::vector<Vec3> targets = grid_targets(80, 37);
  for (const std::uint64_t nth : {std::uint64_t{1}, std::uint64_t{2}}) {
    ServeRung first{};
    std::vector<double> phi_first;
    for (const unsigned threads : {1u, 4u}) {
      EvalConfig cfg = base_config();
      cfg.threads = threads;
      engine::EvalSession session(Tree(ps), cfg);
      fault::reset();
      fault::arm_nth(fault::Site::kEngineAlloc, nth);
      auto r = session.try_evaluate_at(targets);
      ASSERT_TRUE(r.ok()) << "nth " << nth << " threads " << threads;
      if (threads == 1u) {
        first = r.value().stats.served_rung;
        phi_first = r.value().potential;
      } else {
        EXPECT_EQ(r.value().stats.served_rung, first) << "nth " << nth;
        EXPECT_TRUE(bitwise_equal(phi_first, r.value().potential)) << "nth " << nth;
      }
    }
  }
}

TEST_F(FaultInject, NanChargeCaughtAsNonFiniteOutcome) {
  const ParticleSystem ps = clustered(500, 41);
  engine::EvalSession session(Tree(ps), base_config());
  auto plan = session.try_compile_self();
  ASSERT_TRUE(plan.ok());

  std::vector<double> q(ps.charges().begin(), ps.charges().end());
  fault::arm_nth(fault::Site::kNanCharge, 1);
  // The update passes input validation — the poison lands after it.
  ASSERT_TRUE(session.try_update_charges(q).ok());
  EXPECT_EQ(fault::fired(fault::Site::kNanCharge), 1u);

  auto r = session.try_evaluate(*plan.value());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNonFinite);

  // A clean update recovers the session: the poisoned charge is overwritten.
  ASSERT_TRUE(session.try_update_charges(q).ok());
  auto recovered = session.try_evaluate(*plan.value());
  ASSERT_TRUE(recovered.ok());
}

TEST_F(FaultInject, CacheVerifyMissForcesRecompile) {
  const ParticleSystem ps = clustered(500, 43);
  engine::EvalSession session(Tree(ps), base_config());
  const std::vector<Vec3> targets = grid_targets(50, 47);
  auto p1 = session.try_compile(targets);
  ASSERT_TRUE(p1.ok());

  fault::arm_nth(fault::Site::kCacheVerifyMiss, 1);
  auto p2 = session.try_compile(targets);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(fault::fired(fault::Site::kCacheVerifyMiss), 1u);
  // The discarded hit forced a fresh compile of an identical plan.
  EXPECT_NE(p1.value().get(), p2.value().get());
  EXPECT_EQ(p1.value()->key, p2.value()->key);
  EXPECT_EQ(p1.value()->num_entries(), p2.value()->num_entries());

  // Disarmed again: the recompiled plan is served from cache.
  auto p3 = session.try_compile(targets);
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(p2.value().get(), p3.value().get());
}

TEST_F(FaultInject, SlowWorkerTripsDeadline) {
  const ParticleSystem ps = clustered(1000, 53);
  EvalConfig cfg = base_config();
  cfg.deadline_seconds = 5e-3;  // a few stalled blocks blow it; polling can't
  cfg.block_size = 16;
  engine::EvalSession session(Tree(ps), cfg);
  const std::vector<Vec3> targets = grid_targets(400, 59);
  auto plan = session.try_compile(targets);
  ASSERT_TRUE(plan.ok());
  // Warm the multipoles so the deadline window covers only the replay sweep.
  ASSERT_TRUE(session.try_evaluate(*plan.value()).ok());

  fault::arm_every(fault::Site::kSlowWorker);
  auto r = session.try_evaluate(*plan.value());
  fault::disarm(fault::Site::kSlowWorker);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kDeadline);
  EXPECT_GT(fault::fired(fault::Site::kSlowWorker), 0u);
}

TEST_F(FaultInject, RandomModeReplaysWithSeed) {
  const ParticleSystem ps = clustered(300, 61);
  const std::vector<Vec3> targets = grid_targets(40, 67);
  // Two sessions, same seed and arming: identical rung and fire counts.
  std::uint64_t fired_first = 0;
  ServeRung rung_first{};
  for (int round = 0; round < 2; ++round) {
    fault::reset();
    fault::set_seed(0xabcdef);
    fault::arm_random(fault::Site::kEngineAlloc, 0.5);
    engine::EvalSession session(Tree(ps), base_config());
    auto r = session.try_evaluate_at(targets);
    ASSERT_TRUE(r.ok());
    if (round == 0) {
      fired_first = fault::fired(fault::Site::kEngineAlloc);
      rung_first = r.value().stats.served_rung;
    } else {
      EXPECT_EQ(fault::fired(fault::Site::kEngineAlloc), fired_first);
      EXPECT_EQ(r.value().stats.served_rung, rung_first);
    }
  }
}

TEST_F(FaultInject, FiringsAreCounted) {
  fault::arm_nth(fault::Site::kEngineAlloc, 2);
  EXPECT_FALSE(fault::fire(fault::Site::kEngineAlloc));
  EXPECT_TRUE(fault::fire(fault::Site::kEngineAlloc));
  // kNth is one-shot: it disarms itself after firing.
  EXPECT_FALSE(fault::fire(fault::Site::kEngineAlloc));
  EXPECT_EQ(fault::hits(fault::Site::kEngineAlloc), 3u);
  EXPECT_EQ(fault::fired(fault::Site::kEngineAlloc), 1u);
}

}  // namespace
}  // namespace treecode
