#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <memory>
#include <random>
#include <span>
#include <vector>

#include "dist/distributions.hpp"
#include "engine/eval_session.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "tree/octree.hpp"

namespace treecode {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

EvalConfig base_config(unsigned threads) {
  EvalConfig cfg;
  cfg.alpha = 0.5;
  cfg.degree = 4;
  cfg.mode = DegreeMode::kAdaptive;
  cfg.threads = threads;
  cfg.track_error_bounds = true;
  return cfg;
}

std::vector<Vec3> grid_targets(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-0.2, 1.2);
  std::vector<Vec3> t(n);
  for (Vec3& x : t) x = {u(rng), u(rng), u(rng)};
  return t;
}

std::vector<std::vector<double>> distinct_columns(std::size_t k, std::size_t n,
                                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-1.5, 1.5);
  std::vector<std::vector<double>> cols(k, std::vector<double>(n));
  for (auto& col : cols) {
    for (double& q : col) q = u(rng);
  }
  return cols;
}

std::vector<std::span<const double>> as_spans(
    const std::vector<std::vector<double>>& cols) {
  std::vector<std::span<const double>> spans;
  spans.reserve(cols.size());
  for (const auto& col : cols) spans.emplace_back(col);
  return spans;
}

bool bitwise_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// The tentpole contract: each column of a k-wide batched replay is
// bitwise-identical to the single-RHS replay of that column — at every
// thread count and every batch width. Batch composition can never change a
// column's floating-point result.
TEST(EvalBatch, ColumnsBitwiseMatchSingleRhsAtEveryThreadCountAndWidth) {
  const ParticleSystem ps = dist::overlapped_gaussians(
      2000, 3, 19, 0.08, dist::ChargeModel::kMixedSign);
  const std::vector<Vec3> targets = grid_targets(257, 5);
  for (const unsigned threads : {1u, 2u, 4u}) {
    engine::EvalSession session(Tree(ps), base_config(threads));
    const auto plan = session.try_compile(targets).value_or_throw();
    for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                std::size_t{5}, std::size_t{8}}) {
      const auto cols = distinct_columns(k, ps.size(), 100 + k);
      const auto batch =
          session.try_evaluate_batch(*plan, as_spans(cols)).value_or_throw();
      ASSERT_EQ(batch.size(), k);
      for (std::size_t c = 0; c < k; ++c) {
        session.try_update_charges(cols[c]).value_or_throw();
        const EvalResult single = session.try_evaluate(*plan).value_or_throw();
        EXPECT_TRUE(bitwise_equal(batch[c].potential, single.potential))
            << "threads=" << threads << " k=" << k << " column=" << c;
        EXPECT_TRUE(bitwise_equal(batch[c].error_bound, single.error_bound))
            << "threads=" << threads << " k=" << k << " column=" << c;
      }
    }
  }
}

// Self plans scatter back to original particle order; the batched path
// must apply the identical permutation.
TEST(EvalBatch, SelfPlanColumnsBitwiseMatchSingleRhs) {
  const ParticleSystem ps = dist::uniform_cube(1500, 23);
  engine::EvalSession session(Tree(ps), base_config(2));
  const auto plan = session.try_compile_self().value_or_throw();
  const auto cols = distinct_columns(4, ps.size(), 7);
  const auto batch =
      session.try_evaluate_batch(*plan, as_spans(cols)).value_or_throw();
  for (std::size_t c = 0; c < 4; ++c) {
    session.try_update_charges(cols[c]).value_or_throw();
    const EvalResult single = session.try_evaluate(*plan).value_or_throw();
    EXPECT_TRUE(bitwise_equal(batch[c].potential, single.potential)) << c;
    EXPECT_TRUE(bitwise_equal(batch[c].error_bound, single.error_bound)) << c;
  }
}

// The batched path reads columns directly; the session's own charge state
// (and its refresh epochs) must be left exactly as it was.
TEST(EvalBatch, BatchLeavesSessionChargesUntouched) {
  const ParticleSystem ps = dist::uniform_cube(800, 3);
  engine::EvalSession session(Tree(ps), base_config(2));
  const auto plan = session.try_compile_self().value_or_throw();
  const std::vector<double> before(session.sorted_charges().begin(),
                                   session.sorted_charges().end());
  const auto cols = distinct_columns(3, ps.size(), 99);
  (void)session.try_evaluate_batch(*plan, as_spans(cols)).value_or_throw();
  EXPECT_TRUE(bitwise_equal(before, session.sorted_charges()));
}

TEST(EvalBatch, RejectsEmptyWrongSizedAndNonFiniteColumns) {
  const ParticleSystem ps = dist::uniform_cube(500, 5);
  engine::EvalSession session(Tree(ps), base_config(1));
  const auto plan = session.try_compile_self().value_or_throw();

  const auto empty = session.try_evaluate_batch(*plan, {});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code, ErrorCode::kInvalidArgument);

  std::vector<double> wrong(ps.size() - 1, 1.0);
  const std::vector<std::span<const double>> bad_size{wrong};
  const auto sized = session.try_evaluate_batch(*plan, bad_size);
  ASSERT_FALSE(sized.ok());
  EXPECT_EQ(sized.error().code, ErrorCode::kInvalidArgument);

  std::vector<double> good(ps.size(), 1.0);
  std::vector<double> poisoned(ps.size(), 1.0);
  poisoned[7] = kNan;
  const std::vector<std::span<const double>> cols{good, poisoned};
  const auto nonfinite = session.try_evaluate_batch(*plan, cols);
  ASSERT_FALSE(nonfinite.ok());
  EXPECT_EQ(nonfinite.error().code, ErrorCode::kNonFinite);
  EXPECT_NE(nonfinite.error().message.find("column 1"), std::string::npos);
}

// Gradient configs fall back to the sequential per-column path — results
// must still match the single-RHS replays exactly.
TEST(EvalBatch, GradientConfigFallsBackToSequentialWithIdenticalResults) {
  const ParticleSystem ps = dist::uniform_cube(600, 11);
  EvalConfig cfg = base_config(2);
  cfg.compute_gradient = true;
  engine::EvalSession session(Tree(ps), cfg);
  const auto plan = session.try_compile_self().value_or_throw();
  const std::uint64_t fallbacks_before =
      obs::registry().counter(obs::metric::kEngineBatchFallbacks).value();
  const auto cols = distinct_columns(2, ps.size(), 31);
  const auto batch =
      session.try_evaluate_batch(*plan, as_spans(cols)).value_or_throw();
  EXPECT_GT(obs::registry().counter(obs::metric::kEngineBatchFallbacks).value(),
            fallbacks_before);
  for (std::size_t c = 0; c < 2; ++c) {
    session.try_update_charges(cols[c]).value_or_throw();
    const EvalResult single = session.try_evaluate(*plan).value_or_throw();
    EXPECT_TRUE(bitwise_equal(batch[c].potential, single.potential)) << c;
    ASSERT_EQ(batch[c].gradient.size(), single.gradient.size());
  }
}

// The satellite fix: with one PlanCache per tenant session, the
// engine.plan_bytes / engine.basis_bytes gauges must aggregate across live
// caches and shed a session's contribution the moment it is destroyed —
// not strand it (stale attribution) or clobber a neighbour's total.
TEST(EvalBatch, PlanBytesGaugeShedsDestroyedSessionsContribution) {
  obs::Gauge& gauge = obs::registry().gauge(obs::metric::kEnginePlanBytes);
  const double baseline = gauge.value();

  const ParticleSystem ps_a = dist::uniform_cube(700, 1);
  const ParticleSystem ps_b = dist::uniform_cube(900, 2);
  auto session_a =
      std::make_unique<engine::EvalSession>(Tree(ps_a), base_config(1));
  (void)session_a->try_compile_self().value_or_throw();
  const double with_a = gauge.value();
  EXPECT_GT(with_a, baseline);

  auto session_b =
      std::make_unique<engine::EvalSession>(Tree(ps_b), base_config(1));
  (void)session_b->try_compile_self().value_or_throw();
  const double with_both = gauge.value();
  EXPECT_GT(with_both, with_a);

  // Destroying B must subtract exactly B's share, leaving A's intact —
  // a per-cache `set` would instead leave the gauge at B's last total.
  session_b.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), with_a);
  session_a.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), baseline);
}

}  // namespace
}  // namespace treecode
