// EvalSession request-telemetry integration: every try_* entry point emits
// one RequestRecord at exit with the right api, plan key, serving rung,
// outcome, and session facts (cache bytes, deadline slack, thread width) —
// on failures as much as successes.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/treecode.hpp"
#include "dist/distributions.hpp"
#include "engine/eval_session.hpp"
#include "obs/telemetry.hpp"

namespace treecode {
namespace {

namespace tel = obs::telemetry;

class EvalSessionTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tel::reset();
    tel::enable();
  }
  void TearDown() override { tel::reset(); }
};

EvalConfig base_config() {
  EvalConfig cfg;
  cfg.alpha = 0.5;
  cfg.degree = 4;
  cfg.threads = 2;
  return cfg;
}

TEST_F(EvalSessionTelemetryTest, WarmReplayLoopEmitsOneRecordPerCall) {
  const ParticleSystem ps = dist::uniform_cube(1200, 9);
  engine::EvalSession session(Tree(ps, TreeConfig{.leaf_capacity = 8}),
                              base_config());

  auto plan = session.try_compile_self();
  ASSERT_TRUE(plan.ok());
  std::vector<double> charges(session.sorted_charges().begin(),
                              session.sorted_charges().end());
  for (double& q : charges) q = -q;
  ASSERT_TRUE(session.try_update_charges_sorted(charges).ok());
  ASSERT_TRUE(session.try_evaluate(*plan.value()).ok());

  const std::vector<tel::RequestRecord> records = tel::records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(tel::emitted_count(), 3u);

  const tel::RequestRecord& compile = records[0];
  EXPECT_EQ(compile.api, tel::Api::kCompileSelf);
  EXPECT_TRUE(compile.ok);
  EXPECT_EQ(compile.plan_key, plan.value()->key);
  EXPECT_NE(compile.plan_key, 0u);
  EXPECT_EQ(compile.rung, -1);
  EXPECT_GT(compile.plan_bytes, 0u);
  EXPECT_EQ(compile.threads, 2u);

  const tel::RequestRecord& update = records[1];
  EXPECT_EQ(update.api, tel::Api::kUpdateChargesSorted);
  EXPECT_TRUE(update.ok);
  EXPECT_EQ(update.rung, -1);

  const tel::RequestRecord& eval = records[2];
  EXPECT_EQ(eval.api, tel::Api::kEvaluatePlan);
  EXPECT_TRUE(eval.ok);
  EXPECT_EQ(eval.plan_key, plan.value()->key);
  EXPECT_GE(eval.rung, 0);  // served by some ladder rung
  EXPECT_EQ(eval.targets, ps.size());
  EXPECT_GE(eval.wall_seconds, 0.0);
  // No deadline configured: slack is the NaN sentinel.
  EXPECT_TRUE(std::isnan(eval.deadline_slack_seconds));
}

TEST_F(EvalSessionTelemetryTest, FailedRequestEmitsErrorRecord) {
  const ParticleSystem ps = dist::uniform_cube(600, 3);
  engine::EvalSession session(Tree(ps, TreeConfig{.leaf_capacity = 8}),
                              base_config());
  // Wrong charge count: the update must fail but still emit telemetry.
  const std::vector<double> wrong(ps.size() + 1, 1.0);
  ASSERT_FALSE(session.try_update_charges_sorted(wrong).ok());

  const std::vector<tel::RequestRecord> records = tel::records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].api, tel::Api::kUpdateChargesSorted);
  EXPECT_FALSE(records[0].ok);
  EXPECT_NE(records[0].outcome, 0);
  EXPECT_STRNE(records[0].outcome_name, "ok");
}

TEST_F(EvalSessionTelemetryTest, DeadlineSlackRecordedWhenDeadlineArmed) {
  const ParticleSystem ps = dist::uniform_cube(600, 5);
  EvalConfig cfg = base_config();
  cfg.deadline_seconds = 30.0;  // generous: must not expire, only be recorded
  engine::EvalSession session(Tree(ps, TreeConfig{.leaf_capacity = 8}), cfg);
  ASSERT_TRUE(session.try_compile_self().ok());

  const std::vector<tel::RequestRecord> records = tel::records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(std::isnan(records[0].deadline_slack_seconds));
  EXPECT_GT(records[0].deadline_slack_seconds, 0.0);
  EXPECT_LT(records[0].deadline_slack_seconds, 30.0);
}

TEST_F(EvalSessionTelemetryTest, DisabledTelemetryEmitsNothing) {
  tel::reset();  // disabled
  const ParticleSystem ps = dist::uniform_cube(600, 7);
  engine::EvalSession session(Tree(ps, TreeConfig{.leaf_capacity = 8}),
                              base_config());
  ASSERT_TRUE(session.try_compile_self().ok());
  EXPECT_EQ(tel::emitted_count(), 0u);
}

}  // namespace
}  // namespace treecode
